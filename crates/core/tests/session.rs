//! Behavioural tests for the step-driven [`TrainSession`] API: event
//! delivery, observer-driven cancellation, step/epoch semantics, and
//! equivalence with the classic `train()` entry point.

use ff_core::{
    train, Algorithm, CoreError, EvalSplit, SessionControl, SessionStatus, TrainEvent,
    TrainOptions, TrainSession,
};
use ff_data::{synthetic_mnist, Dataset, SyntheticConfig};
use ff_models::small_mlp;
use ff_nn::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

fn tiny_dataset() -> (Dataset, Dataset) {
    synthetic_mnist(&SyntheticConfig {
        train_size: 96,
        test_size: 32,
        noise_std: 0.2,
        max_shift: 0,
        seed: 17,
    })
}

fn tiny_net(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    small_mlp(784, &[16], 10, &mut rng)
}

fn tiny_options(epochs: usize) -> TrainOptions {
    TrainOptions {
        epochs,
        batch_size: 32,
        max_eval_samples: 32,
        ..TrainOptions::fast_test()
    }
}

#[test]
fn session_run_matches_classic_train_bit_exactly() {
    // The wrapper and a manually stepped session must produce the same
    // trajectory: same seed, same algorithm, same loop.
    for algorithm in [
        Algorithm::FfInt8 { lookahead: true },
        Algorithm::BpFp32,
        Algorithm::BpGdai8,
    ] {
        let (train_set, test_set) = tiny_dataset();
        let options = tiny_options(2);

        let mut net_a = tiny_net(1);
        let classic = train(&mut net_a, &train_set, &test_set, algorithm, &options).unwrap();

        let mut net_b = tiny_net(1);
        let stepped = {
            let mut session =
                TrainSession::new(&mut net_b, &train_set, &test_set, algorithm, &options).unwrap();
            loop {
                match session.step().unwrap() {
                    SessionStatus::Finished | SessionStatus::Stopped => break,
                    _ => {}
                }
            }
            session.history().clone()
        };
        assert!(
            classic.same_trajectory(&stepped),
            "{algorithm}: stepped session must match train()"
        );
        // And the weights agree bit-for-bit.
        let wa: Vec<Vec<u32>> = net_a
            .params_mut()
            .iter()
            .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
            .collect();
        let wb: Vec<Vec<u32>> = net_b
            .params_mut()
            .iter()
            .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
            .collect();
        assert_eq!(wa, wb, "{algorithm}: weights must be bit-identical");
    }
}

#[test]
fn events_follow_the_documented_lifecycle() {
    let (train_set, test_set) = tiny_dataset();
    let options = tiny_options(2);
    let mut net = tiny_net(2);
    let mut session = TrainSession::new(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &options,
    )
    .unwrap();
    let events: Rc<RefCell<Vec<TrainEvent>>> = Rc::default();
    let sink = Rc::clone(&events);
    session.on_event(move |event| {
        sink.borrow_mut().push(event.clone());
        SessionControl::Continue
    });
    let history = session.run().unwrap();
    let events = events.borrow();

    // 96 samples / batch 32 = 3 steps per epoch, 2 epochs.
    let steps: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, TrainEvent::StepEnd { .. }))
        .collect();
    assert_eq!(steps.len(), 6);
    let epoch_starts: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, TrainEvent::EpochStart { .. }))
        .collect();
    assert_eq!(epoch_starts.len(), 2);
    let epoch_ends: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TrainEvent::EpochEnd {
                epoch,
                mean_loss,
                test_accuracy,
                seconds,
                ..
            } => Some((*epoch, *mean_loss, *test_accuracy, *seconds)),
            _ => None,
        })
        .collect();
    assert_eq!(epoch_ends.len(), 2);
    assert_eq!(epoch_ends[0].0, 0);
    assert_eq!(epoch_ends[1].0, 1);
    // EpochEnd mirrors the history records, including wall-clock seconds.
    for (record, (epoch, mean_loss, test_accuracy, seconds)) in
        history.records().iter().zip(&epoch_ends)
    {
        assert_eq!(record.epoch, *epoch);
        assert_eq!(record.train_loss, *mean_loss);
        assert_eq!(record.test_accuracy, *test_accuracy);
        assert_eq!(record.seconds, *seconds);
        assert!(*seconds > 0.0, "epochs must measure wall-clock time");
    }
    // FF evaluates train + test on every eval epoch.
    let evals: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TrainEvent::Eval { split, .. } => Some(*split),
            _ => None,
        })
        .collect();
    assert_eq!(
        evals,
        vec![
            EvalSplit::Train,
            EvalSplit::Test,
            EvalSplit::Train,
            EvalSplit::Test
        ]
    );
    // λ = 0.0 at epoch 0 (paper schedule), then 0.001 at epoch 1 → exactly
    // two change events for a look-ahead run with lambda_init = 0.
    let lambdas: Vec<f32> = events
        .iter()
        .filter_map(|e| match e {
            TrainEvent::LambdaChanged { lambda, .. } => Some(*lambda),
            _ => None,
        })
        .collect();
    assert_eq!(lambdas.len(), 2);
    assert_eq!(lambdas[0], 0.0);
    assert!((lambdas[1] - 0.001).abs() < 1e-7);
}

#[test]
fn bp_runs_emit_no_lambda_events() {
    let (train_set, test_set) = tiny_dataset();
    let mut net = tiny_net(3);
    let mut session = TrainSession::new(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::BpFp32,
        &tiny_options(1),
    )
    .unwrap();
    let saw_lambda = Rc::new(RefCell::new(false));
    let flag = Rc::clone(&saw_lambda);
    session.on_event(move |event| {
        if matches!(event, TrainEvent::LambdaChanged { .. }) {
            *flag.borrow_mut() = true;
        }
        SessionControl::Continue
    });
    session.run().unwrap();
    assert!(!*saw_lambda.borrow());
}

#[test]
fn observer_stop_cancels_the_run() {
    let (train_set, test_set) = tiny_dataset();
    let mut net = tiny_net(4);
    let mut session = TrainSession::new(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::BpFp32,
        &tiny_options(50),
    )
    .unwrap();
    // Stop after the first completed epoch: classic early stopping.
    session.on_event(|event| match event {
        TrainEvent::EpochEnd { .. } => SessionControl::Stop,
        _ => SessionControl::Continue,
    });
    let history = session.run().unwrap();
    assert_eq!(history.len(), 1, "only one epoch may complete");
}

#[test]
fn step_semantics_and_terminal_states() {
    let (train_set, test_set) = tiny_dataset();
    let mut net = tiny_net(5);
    let options = tiny_options(2);
    let mut session =
        TrainSession::new(&mut net, &train_set, &test_set, Algorithm::BpFp32, &options).unwrap();
    assert_eq!(session.epoch(), 0);
    assert!(!session.is_finished());
    // 3 steps per epoch: two Running, then EpochFinished.
    assert_eq!(session.step().unwrap(), SessionStatus::Running);
    assert_eq!(session.step().unwrap(), SessionStatus::Running);
    assert_eq!(
        session.step().unwrap(),
        SessionStatus::EpochFinished { epoch: 0 }
    );
    assert_eq!(session.epoch(), 1);
    assert_eq!(session.global_step(), 3);
    // run_epoch finishes the second (final) epoch.
    assert_eq!(session.run_epoch().unwrap(), SessionStatus::Finished);
    assert!(session.is_finished());
    assert_eq!(session.history().len(), 2);
    // Stepping a finished session is a no-op.
    assert_eq!(session.step().unwrap(), SessionStatus::Finished);
    assert_eq!(session.global_step(), 6);
    // The trainer's evaluator stays available.
    let acc = session.eval().unwrap();
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn invalid_configurations_fail_at_creation() {
    let (train_set, test_set) = tiny_dataset();

    let mut net = tiny_net(6);
    let zero_epochs = tiny_options(0);
    assert!(matches!(
        TrainSession::new(
            &mut net,
            &train_set,
            &test_set,
            Algorithm::BpFp32,
            &zero_epochs
        ),
        Err(CoreError::InvalidConfig { .. })
    ));

    let bad_lr = tiny_options(1).with_learning_rate(f32::INFINITY);
    assert!(matches!(
        TrainSession::new(&mut net, &train_set, &test_set, Algorithm::BpFp32, &bad_lr),
        Err(CoreError::InvalidConfig { .. })
    ));

    let empty = train_set.take(0).unwrap();
    assert!(matches!(
        TrainSession::new(
            &mut net,
            &empty,
            &test_set,
            Algorithm::BpFp32,
            &tiny_options(1)
        ),
        Err(CoreError::InvalidConfig { .. })
    ));
}

#[test]
fn eval_cadence_matches_options() {
    let (train_set, test_set) = tiny_dataset();
    let mut net = tiny_net(7);
    let options = TrainOptions {
        epochs: 4,
        eval_every: 2,
        ..tiny_options(4)
    };
    let history = TrainSession::new(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::FfFp32 { lookahead: false },
        &options,
    )
    .unwrap()
    .run()
    .unwrap();
    let evaluated: Vec<bool> = history
        .records()
        .iter()
        .map(|r| r.test_accuracy.is_some())
        .collect();
    // Epochs 0 and 2 by cadence, epoch 3 because it is last.
    assert_eq!(evaluated, vec![true, false, true, true]);
}
