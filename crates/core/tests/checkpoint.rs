//! `FF8C` checkpoint robustness and resume-determinism tests.
//!
//! The bar (the same one PR 3 set for `FF8S` serving artifacts):
//!
//! - **bit-exact resume** — a run checkpointed anywhere (epoch boundary or
//!   mid-epoch) and resumed produces a `TrainingHistory` and final layer
//!   parameters bit-identical to the uninterrupted run, for FF-INT8 with
//!   look-ahead and for BP-FP32;
//! - **panic-free loading** — truncation at every byte offset and random
//!   single-byte flips yield typed errors (or, for flips that land in value
//!   payloads, a different but valid checkpoint), never a panic.

use ff_core::checkpoint::{latest, load_bytes, save_bytes, step_file_name};
use ff_core::{
    Algorithm, AutoCheckpoint, Checkpoint, CoreError, OptimizerKind, OptimizerSlot, SessionStatus,
    TrainOptions, TrainSession,
};
use ff_data::{synthetic_mnist, Dataset, SyntheticConfig};
use ff_metrics::TrainingHistory;
use ff_models::small_mlp;
use ff_nn::Sequential;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_dataset() -> (Dataset, Dataset) {
    synthetic_mnist(&SyntheticConfig {
        train_size: 64,
        test_size: 24,
        noise_std: 0.2,
        max_shift: 0,
        seed: 23,
    })
}

fn tiny_net(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    small_mlp(784, &[12], 10, &mut rng)
}

fn tiny_options(epochs: usize) -> TrainOptions {
    TrainOptions {
        epochs,
        batch_size: 32,
        max_eval_samples: 24,
        ..TrainOptions::fast_test()
    }
}

fn weight_bits(net: &mut Sequential) -> Vec<Vec<u32>> {
    net.params_mut()
        .iter()
        .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Trains `options.epochs` straight through and returns (history, weights).
fn straight_run_with(
    algorithm: Algorithm,
    options: &TrainOptions,
    net_seed: u64,
) -> (TrainingHistory, Vec<Vec<u32>>) {
    let (train_set, test_set) = tiny_dataset();
    let mut net = tiny_net(net_seed);
    let history = TrainSession::new(&mut net, &train_set, &test_set, algorithm, options)
        .unwrap()
        .run()
        .unwrap();
    (history, weight_bits(&mut net))
}

fn straight_run(
    algorithm: Algorithm,
    total_epochs: usize,
    net_seed: u64,
) -> (TrainingHistory, Vec<Vec<u32>>) {
    straight_run_with(algorithm, &tiny_options(total_epochs), net_seed)
}

/// Trains to `checkpoint_after_steps` steps (across epoch boundaries),
/// serializes the checkpoint through FF8C bytes, resumes onto a *freshly
/// initialised* network, finishes the run, and returns (history, weights).
fn interrupted_run_with(
    algorithm: Algorithm,
    options: &TrainOptions,
    net_seed: u64,
    checkpoint_after_steps: u64,
) -> (TrainingHistory, Vec<Vec<u32>>) {
    let (train_set, test_set) = tiny_dataset();
    let options = options.clone();

    // Phase 1: train up to the checkpoint, then drop everything.
    let bytes = {
        let mut net = tiny_net(net_seed);
        let mut session =
            TrainSession::new(&mut net, &train_set, &test_set, algorithm, &options).unwrap();
        while session.global_step() < checkpoint_after_steps {
            match session.step().unwrap() {
                SessionStatus::Finished | SessionStatus::Stopped => break,
                _ => {}
            }
        }
        save_bytes(&session.checkpoint())
    };

    // Phase 2: a fresh process would rebuild the architecture with any
    // RNG — resume overwrites every parameter.
    let checkpoint = load_bytes(&bytes).unwrap();
    let mut net = tiny_net(net_seed + 999);
    let history = {
        let mut session =
            TrainSession::resume(&mut net, &train_set, &test_set, &checkpoint).unwrap();
        loop {
            match session.step().unwrap() {
                SessionStatus::Finished | SessionStatus::Stopped => break,
                _ => {}
            }
        }
        session.history().clone()
    };
    (history, weight_bits(&mut net))
}

fn interrupted_run(
    algorithm: Algorithm,
    total_epochs: usize,
    net_seed: u64,
    checkpoint_after_steps: u64,
) -> (TrainingHistory, Vec<Vec<u32>>) {
    interrupted_run_with(
        algorithm,
        &tiny_options(total_epochs),
        net_seed,
        checkpoint_after_steps,
    )
}

/// The acceptance-criteria matrix: epoch-boundary resume for both required
/// algorithms. 64 samples / batch 32 = 2 steps per epoch, so 4 steps = the
/// epoch-2 boundary of a 3-epoch run.
#[test]
fn interrupt_resume_is_bit_exact_at_epoch_boundary() {
    for algorithm in [Algorithm::FfInt8 { lookahead: true }, Algorithm::BpFp32] {
        let (straight_history, straight_weights) = straight_run(algorithm, 3, 7);
        let (resumed_history, resumed_weights) = interrupted_run(algorithm, 3, 7, 4);
        assert!(
            straight_history.same_trajectory(&resumed_history),
            "{algorithm}: resumed history must match straight run\nstraight: {straight_history:?}\nresumed: {resumed_history:?}"
        );
        assert_eq!(
            straight_weights, resumed_weights,
            "{algorithm}: resumed weights must be bit-identical"
        );
    }
}

#[test]
fn interrupt_resume_is_bit_exact_mid_epoch() {
    for algorithm in [Algorithm::FfInt8 { lookahead: true }, Algorithm::BpFp32] {
        // 3 steps = one step into epoch 1: the checkpoint carries the
        // epoch's shuffled order and loss/accuracy accumulators.
        let (straight_history, straight_weights) = straight_run(algorithm, 3, 8);
        let (resumed_history, resumed_weights) = interrupted_run(algorithm, 3, 8, 3);
        assert!(
            straight_history.same_trajectory(&resumed_history),
            "{algorithm}: mid-epoch resume must match straight run"
        );
        assert_eq!(straight_weights, resumed_weights, "{algorithm}");
    }
}

/// The `scripts/check.sh` interrupt-resume smoke gate entry point:
/// train 2 epochs → checkpoint → resume 1 epoch ≡ 3 straight epochs.
#[test]
fn interrupt_resume_smoke_gate() {
    let algorithm = Algorithm::FfInt8 { lookahead: true };
    let (straight_history, straight_weights) = straight_run(algorithm, 3, 42);
    // 2 epochs × 2 steps = step 4 → checkpoint exactly after epoch 2.
    let (resumed_history, resumed_weights) = interrupted_run(algorithm, 3, 42, 4);
    assert!(straight_history.same_trajectory(&resumed_history));
    assert_eq!(straight_weights, resumed_weights);
}

#[test]
fn resume_rejects_mismatched_network() {
    let (train_set, test_set) = tiny_dataset();
    let mut net = tiny_net(1);
    let mut session = TrainSession::new(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::BpFp32,
        &tiny_options(2),
    )
    .unwrap();
    session.run_epoch().unwrap();
    let checkpoint = session.checkpoint();

    // Wrong hidden width → parameter shape mismatch.
    let mut rng = StdRng::seed_from_u64(2);
    let mut wrong_net = small_mlp(784, &[24], 10, &mut rng);
    assert!(matches!(
        TrainSession::resume(&mut wrong_net, &train_set, &test_set, &checkpoint),
        Err(CoreError::CheckpointMismatch { .. })
    ));

    // Wrong depth → parameter count mismatch.
    let mut rng = StdRng::seed_from_u64(3);
    let mut deeper = small_mlp(784, &[12, 12], 10, &mut rng);
    assert!(matches!(
        TrainSession::resume(&mut deeper, &train_set, &test_set, &checkpoint),
        Err(CoreError::CheckpointMismatch { .. })
    ));
}

#[test]
fn resume_rejects_mismatched_momentum_buffers() {
    let (train_set, test_set) = tiny_dataset();
    let mut net = tiny_net(7);
    let mut session = TrainSession::new(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &tiny_options(2),
    )
    .unwrap();
    session.run_epoch().unwrap();
    let mut checkpoint = session.checkpoint();

    // Corrupt only the trainer state: params stay valid, but a momentum
    // buffer no longer matches its parameter's shape. Must fail with a
    // typed error at resume, not panic inside the optimizer later.
    let OptimizerSlot::Sgd { velocity } = &mut checkpoint.trainer.slots[0] else {
        panic!("FF trainer with default options exports SGD slots");
    };
    let buffer = &mut velocity[0];
    let elements: Vec<f32> = buffer.data().to_vec();
    *buffer = ff_tensor::Tensor::from_vec(&[1, elements.len()], elements).unwrap();
    assert!(matches!(
        TrainSession::resume(&mut tiny_net(7), &train_set, &test_set, &checkpoint),
        Err(CoreError::CheckpointMismatch { .. })
    ));
}

/// The Adam state-export regression: resume with Adam must continue the
/// exact moment trajectory and bias-correction step count — for both
/// trainer families, at a mid-epoch checkpoint.
#[test]
fn adam_resume_is_bit_exact_mid_epoch() {
    for algorithm in [Algorithm::FfInt8 { lookahead: true }, Algorithm::BpFp32] {
        let options = tiny_options(3).with_optimizer(OptimizerKind::Adam);
        let (straight_history, straight_weights) = straight_run_with(algorithm, &options, 11);
        let (resumed_history, resumed_weights) = interrupted_run_with(algorithm, &options, 11, 3);
        assert!(
            straight_history.same_trajectory(&resumed_history),
            "{algorithm}: Adam mid-epoch resume must match straight run"
        );
        assert_eq!(
            straight_weights, resumed_weights,
            "{algorithm}: Adam resumed weights must be bit-identical"
        );
    }
}

/// A checkpoint whose optimizer state disagrees with the configured kind is
/// a typed mismatch, never a silent skip of the stored moments.
#[test]
fn optimizer_kind_mismatch_is_a_typed_error() {
    let (train_set, test_set) = tiny_dataset();
    let options = tiny_options(2).with_optimizer(OptimizerKind::Adam);
    let mut net = tiny_net(12);
    let mut session =
        TrainSession::new(&mut net, &train_set, &test_set, Algorithm::BpFp32, &options).unwrap();
    session.step().unwrap();
    let mut checkpoint = session.checkpoint();
    assert_eq!(checkpoint.trainer.slots[0].kind(), OptimizerKind::Adam);

    // Flip the *options* back to SGD while the slots still hold Adam state
    // (what a hand-edited or version-skewed artifact would look like).
    checkpoint.options.optimizer = OptimizerKind::Sgd;
    let checkpoint = load_bytes(&save_bytes(&checkpoint)).unwrap();
    let mut fresh = tiny_net(12);
    let outcome = TrainSession::resume(&mut fresh, &train_set, &test_set, &checkpoint)
        .map(|_| ())
        .unwrap_err();
    match outcome {
        CoreError::CheckpointMismatch { message } => {
            assert!(message.contains("Adam"), "{message}");
        }
        other => panic!("expected CheckpointMismatch, got {other:?}"),
    }
}

/// The auto-checkpoint observer: periodic saves, keep-last-k rotation, and
/// a crash-resume from `latest` that lands on the straight-run trajectory.
#[test]
fn auto_checkpoint_rotates_and_resumes_bit_exactly() {
    let algorithm = Algorithm::FfInt8 { lookahead: true };
    let dir = std::env::temp_dir().join("ff8c_auto_checkpoint_it");
    std::fs::remove_dir_all(&dir).ok();

    let (train_set, test_set) = tiny_dataset();
    let (straight_history, straight_weights) = straight_run(algorithm, 3, 31);

    // 64 samples / batch 32 = 2 steps per epoch → 6 steps over 3 epochs.
    // every_steps = 2, keep_last = 2 → steps 2, 4, 6 saved; 2 rotated away.
    let mut net = tiny_net(31);
    let mut session =
        TrainSession::new(&mut net, &train_set, &test_set, algorithm, &tiny_options(3)).unwrap();
    session
        .auto_checkpoint(AutoCheckpoint::new(&dir, 2, 2))
        .unwrap();
    assert!(matches!(
        session.auto_checkpoint(AutoCheckpoint::new(&dir, 0, 2)),
        Err(CoreError::InvalidConfig { .. })
    ));
    assert!(matches!(
        session.auto_checkpoint(AutoCheckpoint::new(&dir, 2, 0)),
        Err(CoreError::InvalidConfig { .. })
    ));
    let finished_history = session.run().unwrap();
    assert!(finished_history.same_trajectory(&straight_history));

    assert!(!dir.join(step_file_name(2)).exists(), "step 2 rotated away");
    assert!(dir.join(step_file_name(4)).exists());
    assert!(dir.join(step_file_name(6)).exists());

    // Crash recovery: resume from the *previous* checkpoint (step 4, the
    // epoch-2 boundary) and finish — trajectory and weights must land
    // exactly on the straight run.
    let resume_from = dir.join(step_file_name(4));
    let checkpoint = Checkpoint::load(&resume_from).unwrap();
    assert_eq!(checkpoint.global_step, 4);
    let mut fresh = tiny_net(31 + 999);
    let resumed_history = {
        let session = TrainSession::resume(&mut fresh, &train_set, &test_set, &checkpoint).unwrap();
        session.run().unwrap()
    };
    assert!(resumed_history.same_trajectory(&straight_history));
    assert_eq!(weight_bits(&mut fresh), straight_weights);

    // `latest` points at the newest artifact.
    assert_eq!(latest(&dir).unwrap(), Some(dir.join(step_file_name(6))));
    std::fs::remove_dir_all(&dir).ok();
}

/// `on_checkpoint` hooks observe every auto-checkpoint artifact, after the
/// save and rotation — each delivered path is a loadable FF8C file (the
/// train-to-serve hot-swap handoff relies on exactly this).
#[test]
fn checkpoint_hooks_fire_after_save_with_live_paths() {
    let dir = std::env::temp_dir().join("ff8c_checkpoint_hook_it");
    std::fs::remove_dir_all(&dir).ok();

    let (train_set, test_set) = tiny_dataset();
    let mut net = tiny_net(7);
    let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut session = TrainSession::new(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &tiny_options(2),
    )
    .unwrap();
    session
        .auto_checkpoint(AutoCheckpoint::new(&dir, 2, 1))
        .unwrap();
    let seen_by_hook = std::rc::Rc::clone(&seen);
    session.on_checkpoint(move |path| {
        // The artifact is complete and validated at hook time.
        let checkpoint = Checkpoint::load(path).unwrap();
        seen_by_hook
            .borrow_mut()
            .push((path.to_path_buf(), checkpoint.global_step));
    });
    session.run().unwrap();

    // 64 samples / batch 32 = 2 steps per epoch → 4 steps, saves at 2 and 4.
    let seen = seen.borrow();
    assert_eq!(
        *seen,
        vec![
            (dir.join(step_file_name(2)), 2),
            (dir.join(step_file_name(4)), 4),
        ]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mid_epoch_resume_rejects_mismatched_dataset() {
    let (train_set, test_set) = tiny_dataset();
    let mut net = tiny_net(4);
    let mut session = TrainSession::new(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::BpFp32,
        &tiny_options(2),
    )
    .unwrap();
    session.step().unwrap(); // mid-epoch: checkpoint carries the order
    let checkpoint = session.checkpoint();

    let shrunk = train_set.take(32).unwrap();
    let mut fresh = tiny_net(4);
    assert!(matches!(
        TrainSession::resume(&mut fresh, &shrunk, &test_set, &checkpoint),
        Err(CoreError::CheckpointMismatch { .. })
    ));
}

fn sample_bytes() -> Vec<u8> {
    let (train_set, test_set) = tiny_dataset();
    let mut net = tiny_net(5);
    let mut session = TrainSession::new(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &tiny_options(2),
    )
    .unwrap();
    session.step().unwrap();
    save_bytes(&session.checkpoint())
}

#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = sample_bytes();
    for len in 0..bytes.len() {
        match load_bytes(&bytes[..len]) {
            Err(CoreError::Checkpoint(_)) => {}
            other => panic!("prefix of {len} bytes: expected typed error, got {other:?}"),
        }
    }
}

#[test]
fn checkpoint_roundtrip_is_verbatim() {
    let bytes = sample_bytes();
    let checkpoint = load_bytes(&bytes).unwrap();
    assert_eq!(save_bytes(&checkpoint), bytes);
}

proptest! {
    #[test]
    fn single_byte_flips_never_panic(
        position_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        // Any single-byte corruption must either fail with a typed error or
        // load as a (different but) structurally valid checkpoint — never
        // panic. (The artifact is rebuilt per case; flips hitting value
        // payloads legitimately load.)
        let mut bytes = sample_bytes();
        let position = ((bytes.len() as f64) * position_fraction) as usize % bytes.len();
        bytes[position] ^= flip;
        match load_bytes(&bytes) {
            Ok(checkpoint) => {
                // Still structurally sound: counters and parameters intact.
                prop_assert!(!checkpoint.params.is_empty());
            }
            Err(CoreError::Checkpoint(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    // Resume determinism as a property: a checkpoint taken after *any*
    // number of steps (boundary or mid-epoch, here over a 3-epoch run with
    // 2 steps per epoch) resumes into the identical trajectory. The
    // uninterrupted reference runs are computed once per algorithm and
    // cached across cases.
    #[test]
    fn resume_is_bit_exact_after_any_step_count(
        steps in 0u64..6,
        algo in 0usize..2,
    ) {
        let algorithm = if algo == 0 {
            Algorithm::FfInt8 { lookahead: true }
        } else {
            Algorithm::BpFp32
        };
        let (straight_history, straight_weights) = cached_straight_run(algorithm);
        let (resumed_history, resumed_weights) =
            interrupted_run(algorithm, 3, PROPTEST_NET_SEED, steps);
        prop_assert!(straight_history.same_trajectory(&resumed_history));
        prop_assert_eq!(straight_weights, resumed_weights);
    }
}

const PROPTEST_NET_SEED: u64 = 100;

/// Straight-run reference results, computed once per algorithm.
fn cached_straight_run(algorithm: Algorithm) -> (TrainingHistory, Vec<Vec<u32>>) {
    use std::sync::OnceLock;
    static FF: OnceLock<(TrainingHistory, Vec<Vec<u32>>)> = OnceLock::new();
    static BP: OnceLock<(TrainingHistory, Vec<Vec<u32>>)> = OnceLock::new();
    let slot = if algorithm.is_forward_forward() {
        &FF
    } else {
        &BP
    };
    slot.get_or_init(|| straight_run(algorithm, 3, PROPTEST_NET_SEED))
        .clone()
}

#[test]
fn checkpoint_survives_the_filesystem() {
    let (train_set, test_set) = tiny_dataset();
    let mut net = tiny_net(6);
    let mut session = TrainSession::new(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &tiny_options(2),
    )
    .unwrap();
    session.run_epoch().unwrap();
    let checkpoint = session.checkpoint();
    let path = std::env::temp_dir().join("ff8c_integration_roundtrip.ff8c");
    checkpoint.save(&path).unwrap();
    let restored = Checkpoint::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(restored, checkpoint);
}
