//! Backpropagation baselines: BP-FP32, naive BP-INT8, BP-UI8 and BP-GDAI8.
//!
//! All four share the same training loop (full forward, softmax cross-entropy,
//! full backward); they differ only in the [`GradientPolicy`] applied to the
//! weight gradients right before the optimizer step, which is exactly how the
//! paper frames the INT8-training landscape (Section II).

use crate::config::{Algorithm, TrainOptions};
use crate::optimizer::AnyOptimizer;
use crate::session::{elapsed_ns, StepSpans, StepStats, TrainSession, TrainerCore, TrainerState};
use crate::Result;
use ff_data::{Batch, Dataset};
use ff_metrics::{accuracy, TrainingHistory};
use ff_nn::{softmax_cross_entropy, ForwardMode, ParamRefMut, Sequential};
use ff_quant::{QuantConfig, QuantTensor, Rounding};
use ff_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// How weight gradients are treated before the optimizer step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradientPolicy {
    /// Keep gradients in FP32 (the BP-FP32 baseline).
    Fp32,
    /// Quantize every gradient tensor directly to INT8 with a per-tensor
    /// max-abs scale (naive BP-INT8) — the configuration the paper shows
    /// diverging in Fig. 2 and Table I.
    DirectInt8,
    /// UI8 (Zhu et al., 2020): direction-sensitive gradient clipping — the
    /// clip threshold is chosen to keep the quantized gradient aligned with
    /// the raw gradient — plus deviation-counteractive learning-rate scaling.
    Ui8,
    /// GDAI8 (Wang & Kang, 2023): gradient-distribution-aware clipping — the
    /// clip threshold is chosen per tensor to minimise quantization MSE.
    Gdai8,
}

impl GradientPolicy {
    /// Short identifier used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            GradientPolicy::Fp32 => "BP-FP32",
            GradientPolicy::DirectInt8 => "BP-INT8",
            GradientPolicy::Ui8 => "BP-UI8",
            GradientPolicy::Gdai8 => "BP-GDAI8",
        }
    }

    /// Candidate clipping thresholds: the |g| percentiles scanned by the
    /// clipping-based policies.
    fn candidate_clips(values: &Tensor) -> Vec<f32> {
        let mut magnitudes: Vec<f32> = values.data().iter().map(|v| v.abs()).collect();
        magnitudes.sort_by(|a, b| a.partial_cmp(b).expect("no NaN gradients"));
        let n = magnitudes.len();
        if n == 0 {
            return vec![1e-8];
        }
        [1.0f32, 0.999, 0.995, 0.99, 0.97, 0.95]
            .iter()
            .map(|&p| {
                let idx = (((n as f32) * p).ceil() as usize).clamp(1, n) - 1;
                magnitudes[idx].max(1e-12)
            })
            .collect()
    }

    /// Applies the policy to every gradient in place and returns the
    /// learning-rate scale factor to use for this step (1.0 for all policies
    /// except UI8's deviation-counteractive scaling).
    pub fn apply(&self, params: &mut [ParamRefMut<'_>], rng: &mut StdRng) -> f32 {
        match self {
            GradientPolicy::Fp32 => 1.0,
            GradientPolicy::DirectInt8 => {
                // Naive direct quantization: per-tensor max-abs scale with
                // nearest rounding. Sharp gradient distributions (paper
                // Fig. 3) make most gradient entries round to zero, which is
                // what collapses deep-network training in Fig. 2 / Table I.
                for p in params.iter_mut() {
                    let q = QuantTensor::quantize_with_rng(
                        p.grad,
                        QuantConfig::new(Rounding::Nearest),
                        rng,
                    );
                    *p.grad = q.dequantize();
                }
                1.0
            }
            GradientPolicy::Gdai8 => {
                for p in params.iter_mut() {
                    let clips = Self::candidate_clips(p.grad);
                    let mut best: Option<(f32, Tensor)> = None;
                    for clip in clips {
                        let q = QuantTensor::quantize_with_rng(
                            p.grad,
                            QuantConfig::new(Rounding::Stochastic).with_clip(Some(clip)),
                            rng,
                        );
                        let mse = q.quantization_mse(p.grad).unwrap_or(f32::INFINITY);
                        if best.as_ref().map(|(m, _)| mse < *m).unwrap_or(true) {
                            best = Some((mse, q.dequantize()));
                        }
                    }
                    if let Some((_, deq)) = best {
                        *p.grad = deq;
                    }
                }
                1.0
            }
            GradientPolicy::Ui8 => {
                let mut total_deviation = 0.0f32;
                let mut counted = 0usize;
                for p in params.iter_mut() {
                    let clips = Self::candidate_clips(p.grad);
                    let norm = p.grad.frobenius_norm();
                    let mut best: Option<(f32, Tensor)> = None;
                    for clip in clips {
                        let q = QuantTensor::quantize_with_rng(
                            p.grad,
                            QuantConfig::new(Rounding::Stochastic).with_clip(Some(clip)),
                            rng,
                        );
                        let deq = q.dequantize();
                        let cosine = cosine_similarity(p.grad, &deq);
                        if best.as_ref().map(|(c, _)| cosine > *c).unwrap_or(true) {
                            best = Some((cosine, deq));
                        }
                    }
                    if let Some((cosine, deq)) = best {
                        if norm > 0.0 {
                            total_deviation += (1.0 - cosine).max(0.0);
                            counted += 1;
                        }
                        *p.grad = deq;
                    }
                }
                let mean_deviation = if counted > 0 {
                    total_deviation / counted as f32
                } else {
                    0.0
                };
                // Deviation-counteractive learning-rate scaling: larger
                // quantization deviation → smaller effective step.
                1.0 / (1.0 + 10.0 * mean_deviation)
            }
        }
    }
}

fn cosine_similarity(a: &Tensor, b: &Tensor) -> f32 {
    let dot: f32 = a.data().iter().zip(b.data()).map(|(x, y)| x * y).sum();
    let na = a.frobenius_norm();
    let nb = b.frobenius_norm();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Trains a [`Sequential`] network with backpropagation and a configurable
/// gradient-quantization policy.
///
/// # Examples
///
/// ```
/// use ff_core::{BpTrainer, GradientPolicy, TrainOptions};
/// use ff_data::{synthetic_mnist, SyntheticConfig};
/// use ff_models::small_mlp;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ff_core::CoreError> {
/// let (train_set, test_set) = synthetic_mnist(&SyntheticConfig::small());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = small_mlp(784, &[32], 10, &mut rng);
/// let mut trainer = BpTrainer::new(GradientPolicy::Fp32, TrainOptions::fast_test());
/// let history = trainer.train(&mut net, &train_set, &test_set)?;
/// assert_eq!(history.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BpTrainer {
    options: TrainOptions,
    policy: GradientPolicy,
    optimizer: AnyOptimizer,
    rng: StdRng,
}

impl BpTrainer {
    /// Creates a backpropagation trainer with the given gradient policy.
    pub fn new(policy: GradientPolicy, options: TrainOptions) -> Self {
        let optimizer =
            AnyOptimizer::new(options.optimizer, options.learning_rate, options.momentum);
        let rng = StdRng::seed_from_u64(options.seed);
        BpTrainer {
            options,
            policy,
            optimizer,
            rng,
        }
    }

    /// The gradient policy in use.
    pub fn policy(&self) -> GradientPolicy {
        self.policy
    }

    /// Trains `net` with softmax cross-entropy for the configured number of
    /// epochs and returns the per-epoch history.
    ///
    /// Equivalent to driving a [`TrainSession`] to completion with this
    /// trainer; use a session directly for stepping, events, early stopping
    /// or checkpointing.
    ///
    /// # Errors
    ///
    /// Returns an error when the options are invalid, the dataset is empty,
    /// or a layer operation fails.
    pub fn train(
        &mut self,
        net: &mut Sequential,
        train_set: &Dataset,
        test_set: &Dataset,
    ) -> Result<TrainingHistory> {
        TrainSession::with_trainer(net, train_set, test_set, &mut *self)?.run()
    }

    /// Classification accuracy (argmax of the logits) on a capped prefix of a
    /// dataset.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn evaluate(&mut self, net: &mut Sequential, dataset: &Dataset) -> Result<f32> {
        let count = dataset.len().min(self.options.max_eval_samples);
        if count == 0 {
            return Ok(0.0);
        }
        let subset = dataset.take(count)?;
        let input = input_for_net(subset.images(), net)?;
        let predictions = net.predict(&input, ForwardMode::Fp32)?;
        Ok(accuracy(&predictions, subset.labels()))
    }
}

impl TrainerCore for BpTrainer {
    fn algorithm(&self) -> Algorithm {
        match self.policy {
            GradientPolicy::Fp32 => Algorithm::BpFp32,
            GradientPolicy::DirectInt8 => Algorithm::BpInt8,
            GradientPolicy::Ui8 => Algorithm::BpUi8,
            GradientPolicy::Gdai8 => Algorithm::BpGdai8,
        }
    }

    fn options(&self) -> &TrainOptions {
        &self.options
    }

    fn step_batch(
        &mut self,
        net: &mut Sequential,
        batch: &Batch,
        _num_classes: usize,
        _lambda: f32,
    ) -> Result<StepStats> {
        let prep_start = Instant::now();
        let input = input_for_net(&batch.images, net)?;
        let quantize_ns = elapsed_ns(prep_start);
        let forward_start = Instant::now();
        let logits = net.forward(&input, ForwardMode::Fp32)?;
        let out = softmax_cross_entropy(&logits, &batch.labels)?;
        let correct = out
            .predictions
            .iter()
            .zip(&batch.labels)
            .filter(|(p, l)| p == l)
            .count();
        net.zero_grad();
        net.backward(&out.grad)?;
        let forward_ns = elapsed_ns(forward_start);
        let update_start = Instant::now();
        let mut params = net.params_mut();
        let lr_scale = self.policy.apply(&mut params, &mut self.rng);
        self.optimizer
            .set_learning_rate(self.options.learning_rate * lr_scale);
        self.optimizer.step(&mut params);
        // Safety net mirroring FfTrainer::step: guarantee the parameter
        // versions move even if a custom Optimizer impl forgets
        // mark_updated, so no stale packed plan survives.
        for p in &mut params {
            p.mark_updated();
        }
        Ok(StepStats {
            loss: out.loss,
            correct,
            seen: batch.labels.len(),
            spans: StepSpans {
                quantize_ns,
                forward_ns,
                update_ns: elapsed_ns(update_start),
            },
        })
    }

    fn evaluate(&mut self, net: &mut Sequential, dataset: &Dataset) -> Result<f32> {
        BpTrainer::evaluate(self, net, dataset)
    }

    fn tracks_running_accuracy(&self) -> bool {
        true
    }

    fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn export_state(&self) -> TrainerState {
        TrainerState {
            rng: self.rng.state(),
            slots: vec![self.optimizer.export()],
        }
    }

    fn import_state(&mut self, state: &TrainerState, net: &mut Sequential) -> Result<()> {
        if state.slots.len() > 1 {
            return Err(crate::CoreError::CheckpointMismatch {
                message: format!(
                    "checkpoint holds {} optimizer slots but backpropagation uses one",
                    state.slots.len()
                ),
            });
        }
        self.optimizer = match state.slots.first() {
            Some(slot) => {
                let shapes: Vec<Vec<usize>> = net
                    .params_mut()
                    .iter()
                    .map(|p| p.value.shape().to_vec())
                    .collect();
                AnyOptimizer::import(
                    self.options.optimizer,
                    self.options.learning_rate,
                    self.options.momentum,
                    slot,
                    &shapes,
                    "the network",
                )?
            }
            None => AnyOptimizer::new(
                self.options.optimizer,
                self.options.learning_rate,
                self.options.momentum,
            ),
        };
        self.rng = StdRng::from_state(state.rng);
        Ok(())
    }
}

/// Flattens image batches when the network starts with a dense layer.
fn input_for_net(images: &Tensor, net: &mut Sequential) -> Result<Tensor> {
    let first_is_dense = net
        .layers()
        .first()
        .map(|l| l.name() == "dense")
        .unwrap_or(true);
    if first_is_dense {
        Ok(images.reshape(&[images.rows(), images.cols()])?)
    } else {
        Ok(images.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_data::{synthetic_mnist, SyntheticConfig};
    use ff_models::small_mlp;

    fn tiny_mnist() -> (Dataset, Dataset) {
        synthetic_mnist(&SyntheticConfig {
            train_size: 300,
            test_size: 100,
            noise_std: 0.15,
            max_shift: 0,
            seed: 5,
        })
    }

    fn options(epochs: usize) -> TrainOptions {
        TrainOptions {
            epochs,
            learning_rate: 0.05,
            max_eval_samples: 100,
            ..TrainOptions::default()
        }
    }

    #[test]
    fn bp_fp32_learns_mlp() {
        let (train_set, test_set) = tiny_mnist();
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = small_mlp(784, &[64], 10, &mut rng);
        let mut trainer = BpTrainer::new(GradientPolicy::Fp32, options(6));
        let history = trainer.train(&mut net, &train_set, &test_set).unwrap();
        assert!(history.final_accuracy().unwrap() > 0.7);
        assert_eq!(trainer.policy(), GradientPolicy::Fp32);
    }

    #[test]
    fn gdai8_tracks_fp32_better_than_direct_int8_on_deep_mlp() {
        // The core claim of Section IV-A / Table I: direct gradient
        // quantization degrades with depth, distribution-aware quantization
        // does not (as much).
        let (train_set, test_set) = tiny_mnist();
        let run = |policy: GradientPolicy| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut net = small_mlp(784, &[64, 64], 10, &mut rng);
            let mut trainer = BpTrainer::new(policy, options(6));
            trainer
                .train(&mut net, &train_set, &test_set)
                .unwrap()
                .final_accuracy()
                .unwrap()
        };
        let direct = run(GradientPolicy::DirectInt8);
        let gdai8 = run(GradientPolicy::Gdai8);
        assert!(
            gdai8 >= direct,
            "GDAI8 ({gdai8}) should not underperform direct INT8 ({direct})"
        );
    }

    #[test]
    fn ui8_policy_scales_learning_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut value = Tensor::ones(&[64]);
        // A sharp gradient distribution with an outlier → noticeable deviation.
        let mut grad_data = vec![1e-4f32; 63];
        grad_data.push(1.0);
        let mut grad = Tensor::from_vec(&[64], grad_data).unwrap();
        let mut params = vec![ParamRefMut {
            value: &mut value,
            grad: &mut grad,
            version: None,
        }];
        let scale = GradientPolicy::Ui8.apply(&mut params, &mut rng);
        assert!(scale <= 1.0);
        assert!(scale > 0.0);
    }

    #[test]
    fn direct_int8_policy_quantizes_gradients() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut value = Tensor::ones(&[8]);
        let mut grad =
            Tensor::from_vec(&[8], vec![0.9, -0.5, 0.1, -0.01, 0.77, -0.33, 0.0, 0.25]).unwrap();
        let original = grad.clone();
        let mut params = vec![ParamRefMut {
            value: &mut value,
            grad: &mut grad,
            version: None,
        }];
        let scale = GradientPolicy::DirectInt8.apply(&mut params, &mut rng);
        assert_eq!(scale, 1.0);
        // the quantized-dequantized gradient is close to, but generally not
        // identical to, the original
        let diff = original.sub(&grad).unwrap().max_abs();
        assert!(diff <= original.max_abs() / 127.0 + 1e-6);
    }

    #[test]
    fn fp32_policy_is_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut value = Tensor::ones(&[4]);
        let mut grad = Tensor::from_slice(&[4], &[0.1, 0.2, 0.3, 0.4]).unwrap();
        let original = grad.clone();
        let mut params = vec![ParamRefMut {
            value: &mut value,
            grad: &mut grad,
            version: None,
        }];
        assert_eq!(GradientPolicy::Fp32.apply(&mut params, &mut rng), 1.0);
        assert_eq!(grad.data(), original.data());
    }

    #[test]
    fn policy_labels() {
        assert_eq!(GradientPolicy::Fp32.label(), "BP-FP32");
        assert_eq!(GradientPolicy::DirectInt8.label(), "BP-INT8");
        assert_eq!(GradientPolicy::Ui8.label(), "BP-UI8");
        assert_eq!(GradientPolicy::Gdai8.label(), "BP-GDAI8");
    }

    #[test]
    fn empty_training_set_is_rejected() {
        let (train_set, test_set) = tiny_mnist();
        let empty = train_set.take(0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = small_mlp(784, &[16], 10, &mut rng);
        let mut trainer = BpTrainer::new(GradientPolicy::Fp32, options(1));
        assert!(trainer.train(&mut net, &empty, &test_set).is_err());
    }
}
