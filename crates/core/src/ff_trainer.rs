//! The Forward-Forward trainer (FP32 and INT8) with the look-ahead scheme.

use crate::config::{Algorithm, Precision, TrainOptions};
use crate::goodness::{goodness, FfLossKind, GoodnessSweep};
use crate::optimizer::AnyOptimizer;
use crate::session::{elapsed_ns, StepSpans, StepStats, TrainSession, TrainerCore, TrainerState};
use crate::shard::{
    accumulate_ff_pass, compute_shard, normalize_activations, reduce_shard_grads,
    reshape_for_input, shard_tasks, step_layers, PassMode, PreparedBatch, ShardGrads,
};
use crate::{CoreError, Result};
use ff_data::{positive_negative_sets, Batch, Dataset};
use ff_metrics::{accuracy, TrainingHistory};
use ff_nn::{ForwardMode, Sequential};
use ff_quant::Rounding;
use ff_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Trains a [`Sequential`] network with the Forward-Forward algorithm.
///
/// Every layer with trainable parameters is treated as one FF unit: its
/// goodness is the per-sample sum of squared activations of its output, and
/// it is optimised with the losses of paper Eq. 1–2. With `lookahead`
/// enabled, each unit's update additionally receives `λ ·
/// ∂L_j/∂W_i` contributions from all later units `j > i` (Eq. 3–4,
/// Algorithm 1), where λ follows the schedule in [`TrainOptions`].
///
/// In INT8 mode every stochastic-rounding decision is seeded from the
/// trainer's own RNG (one fresh seed per forward pass, derived per layer),
/// so a run is a pure function of its [`TrainOptions::seed`] — which is what
/// lets `FF8C` checkpoints resume bit-exactly (see [`crate::checkpoint`]).
///
/// The epoch loop lives in [`TrainSession`]; this type supplies the
/// per-batch numerics through [`TrainerCore`], and [`FfTrainer::train`] is a
/// convenience wrapper running a full session.
///
/// # Examples
///
/// ```
/// use ff_core::{FfTrainer, Precision, TrainOptions};
/// use ff_data::{synthetic_mnist, SyntheticConfig};
/// use ff_models::small_mlp;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ff_core::CoreError> {
/// let (train_set, test_set) = synthetic_mnist(&SyntheticConfig::small());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = small_mlp(784, &[32], 10, &mut rng);
/// let mut trainer = FfTrainer::new(Precision::Int8, true, TrainOptions::fast_test());
/// let history = trainer.train(&mut net, &train_set, &test_set)?;
/// assert_eq!(history.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FfTrainer {
    options: TrainOptions,
    precision: Precision,
    lookahead: bool,
    optimizers: Vec<AnyOptimizer>,
    rng: StdRng,
}

impl FfTrainer {
    /// Creates a trainer with the given precision, look-ahead flag and
    /// hyperparameters.
    pub fn new(precision: Precision, lookahead: bool, options: TrainOptions) -> Self {
        let rng = StdRng::seed_from_u64(options.seed);
        FfTrainer {
            options,
            precision,
            lookahead,
            optimizers: Vec::new(),
            rng,
        }
    }

    /// The generic numeric mode for this trainer's precision, with
    /// thread-local (non-reproducible) stochastic rounding in INT8 mode.
    ///
    /// The training and prediction paths do **not** use this directly: they
    /// derive per-pass seeded modes via `FfTrainer::pass_mode` so every
    /// rounding decision comes from the trainer's checkpointable RNG.
    pub fn forward_mode(&self) -> ForwardMode {
        match self.precision {
            Precision::Fp32 => ForwardMode::Fp32,
            Precision::Int8 => ForwardMode::Int8(Rounding::Stochastic),
        }
    }

    /// Draws one fresh pass seed from the trainer RNG and returns the mode
    /// factory for this pass: layer `i` gets a decorrelated seeded rounding
    /// stream derived from `(pass_seed, i)`. FP32 passes draw nothing.
    fn pass_mode(&mut self) -> PassMode {
        PassMode::draw(self.precision, &mut self.rng).1
    }

    /// `true` when the look-ahead scheme is enabled.
    pub fn has_lookahead(&self) -> bool {
        self.lookahead
    }

    /// The numeric precision this trainer runs at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Trains `net` for the configured number of epochs and returns the
    /// per-epoch history.
    ///
    /// Equivalent to driving a [`TrainSession`] to completion with this
    /// trainer; use a session directly for stepping, events, early stopping
    /// or checkpointing.
    ///
    /// # Errors
    ///
    /// Returns an error when the options are invalid, the dataset geometry
    /// is incompatible with the network, or a layer operation fails.
    pub fn train(
        &mut self,
        net: &mut Sequential,
        train_set: &Dataset,
        test_set: &Dataset,
    ) -> Result<TrainingHistory> {
        TrainSession::with_trainer(net, train_set, test_set, &mut *self)?.run()
    }

    /// Label-embeds one mini-batch and draws its positive/negative pass
    /// seeds — everything a step consumes from the trainer RNG, drawn in
    /// the exact historic order (negative-label draws, then the positive
    /// pass seed, then the negative pass seed), so the prepared batch is a
    /// pure function of the RNG state and a 1-shard run stays bit-identical
    /// to every run recorded before sharding existed.
    ///
    /// Distributed trainers call this on the coordinator, then cut the
    /// result into [`crate::shard::ShardTask`]s; `first_is_dense` is
    /// [`first_layer_is_dense`] of the target network, passed as a flag so
    /// the network can be borrowed elsewhere (pipeline stages) while
    /// batches are prepared.
    ///
    /// # Errors
    ///
    /// Propagates dataset and tensor errors.
    pub fn prepare_batch(
        &mut self,
        images: &Tensor,
        labels: &[usize],
        num_classes: usize,
        first_is_dense: bool,
    ) -> Result<PreparedBatch> {
        let flat = images.reshape(&[images.rows(), images.cols()])?;
        let (pos, neg) = positive_negative_sets(&flat, labels, num_classes, &mut self.rng)?;
        let pos = reshape_for_input(&pos, images.shape(), first_is_dense)?;
        let neg = reshape_for_input(&neg, images.shape(), first_is_dense)?;
        let (pos_seed, _) = PassMode::draw(self.precision, &mut self.rng);
        let (neg_seed, _) = PassMode::draw(self.precision, &mut self.rng);
        Ok(PreparedBatch {
            pos,
            neg,
            pos_seed,
            neg_seed,
        })
    }

    /// Runs one mini-batch (positive pass + negative pass + optimizer step)
    /// and returns the summed FF loss plus where the step's time went.
    ///
    /// With `grad_shards = 1` (the default) the batch runs as one pass pair,
    /// bit-identical to the historic trainer; with more shards it runs the
    /// canonical sharded decomposition (see [`crate::shard`]) — compute each
    /// shard in order, reduce gradients in shard order, step once.
    fn train_batch(
        &mut self,
        net: &mut Sequential,
        images: &Tensor,
        labels: &[usize],
        num_classes: usize,
        lambda: f32,
    ) -> Result<(f32, StepSpans)> {
        let prep_start = Instant::now();
        let first_is_dense = first_layer_is_dense(net);
        let prepared = self.prepare_batch(images, labels, num_classes, first_is_dense)?;
        let quantize_ns = elapsed_ns(prep_start);
        let theta = self.options.theta;

        if self.options.grad_shards <= 1 {
            let forward_start = Instant::now();
            net.zero_grad();
            let rows = prepared.pos.rows();
            let pos_pass = PassMode::from_seed(self.precision, prepared.pos_seed);
            let neg_pass = PassMode::from_seed(self.precision, prepared.neg_seed);
            let loss_pos = accumulate_ff_pass(
                net,
                &prepared.pos,
                FfLossKind::Positive,
                theta,
                lambda,
                pos_pass,
                0,
                rows,
            )?;
            let loss_neg = accumulate_ff_pass(
                net,
                &prepared.neg,
                FfLossKind::Negative,
                theta,
                lambda,
                neg_pass,
                0,
                rows,
            )?;
            let forward_ns = elapsed_ns(forward_start);

            let update_start = Instant::now();
            self.step(net);
            let spans = StepSpans {
                quantize_ns,
                forward_ns,
                update_ns: elapsed_ns(update_start),
            };
            return Ok((loss_pos + loss_neg, spans));
        }

        let forward_start = Instant::now();
        let tasks = shard_tasks(
            &prepared,
            self.options.grad_shards,
            net.len(),
            theta,
            lambda,
            self.precision,
        )?;
        let mut reduced: Option<ShardGrads> = None;
        for task in &tasks {
            let out = compute_shard(net, task)?;
            reduce_shard_grads(&mut reduced, &out)?;
        }
        let forward_ns = elapsed_ns(forward_start);

        let update_start = Instant::now();
        let loss = match reduced {
            Some(r) => {
                self.apply_reduced_grads(net, &r.grads)?;
                r.loss_pos + r.loss_neg
            }
            None => 0.0,
        };
        let spans = StepSpans {
            quantize_ns,
            forward_ns,
            update_ns: elapsed_ns(update_start),
        };
        Ok((loss, spans))
    }

    /// Writes already-reduced shard gradients into the network and applies
    /// one optimizer step — the coordinator half of the sharded step, used
    /// by data-parallel trainers after collecting [`crate::shard::ShardGrads`]
    /// from workers.
    ///
    /// Gradients **overwrite** the accumulators (they are the full reduced
    /// gradient, not a contribution), so the call is insensitive to
    /// whatever the accumulators held before.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the tensor count or a
    /// shape disagrees with the network's parameters.
    pub fn apply_reduced_grads(&mut self, net: &mut Sequential, grads: &[Tensor]) -> Result<()> {
        {
            let mut params = net.params_mut();
            if params.len() != grads.len() {
                return Err(CoreError::InvalidConfig {
                    message: format!(
                        "reduced gradients hold {} tensors but the network has {} parameters",
                        grads.len(),
                        params.len()
                    ),
                });
            }
            for (p, g) in params.iter_mut().zip(grads) {
                if p.grad.shape() != g.shape() {
                    return Err(CoreError::InvalidConfig {
                        message: format!(
                            "reduced gradient shape {:?} does not match parameter shape {:?}",
                            g.shape(),
                            p.grad.shape()
                        ),
                    });
                }
                *p.grad = g.clone();
            }
        }
        self.step(net);
        Ok(())
    }

    /// Grows the per-layer optimizer list to `layer_count` entries (the
    /// lazy construction [`FfTrainer`] itself performs on the first step),
    /// so callers that split the optimizers across pipeline stages see a
    /// fully materialised list.
    pub fn ensure_optimizers(&mut self, layer_count: usize) {
        let lr = self.options.learning_rate;
        let momentum = self.options.momentum;
        while self.optimizers.len() < layer_count {
            self.optimizers
                .push(AnyOptimizer::new(self.options.optimizer, lr, momentum));
        }
    }

    /// Mutable access to the per-layer optimizers (index `i` steps layer
    /// `i`). Pipeline trainers temporarily take this list, split it across
    /// stage threads in lockstep with the layer slices, and restore it —
    /// checkpoint export reads optimizer state from here, so the list must
    /// be back in place before [`TrainerCore::export_state`].
    pub fn optimizers_mut(&mut self) -> &mut Vec<AnyOptimizer> {
        &mut self.optimizers
    }

    /// Applies one optimizer step per layer and clears the gradients.
    ///
    /// Stepping writes every parameter through `ParamRefMut`, which bumps
    /// each layer's parameter version; in INT8 mode that is what invalidates
    /// the layers' cached packed weight plans (`ff_quant::plan`), so the
    /// next forward requantizes exactly the weights that moved — and the
    /// many forwards in between (evaluation runs one per candidate label)
    /// all reuse the same packed panels.
    fn step(&mut self, net: &mut Sequential) {
        self.ensure_optimizers(net.len());
        step_layers(net.layers_mut(), &mut self.optimizers);
    }

    /// Goodness-based classification accuracy on (a capped prefix of) a
    /// dataset.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn evaluate(&mut self, net: &mut Sequential, dataset: &Dataset) -> Result<f32> {
        let count = dataset.len().min(self.options.max_eval_samples);
        if count == 0 {
            return Ok(0.0);
        }
        let subset = dataset.take(count)?;
        let predictions = self.predict(net, subset.images(), subset.num_classes())?;
        Ok(accuracy(&predictions, subset.labels()))
    }

    /// Predicts labels by trying every candidate label embedding and picking
    /// the one with the highest goodness accumulated across all FF units.
    ///
    /// In INT8 mode each call draws one stochastic-rounding seed from the
    /// trainer RNG (so predictions are reproducible and checkpointable).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn predict(
        &mut self,
        net: &mut Sequential,
        images: &Tensor,
        num_classes: usize,
    ) -> Result<Vec<usize>> {
        let pass = self.pass_mode();
        let rows = images.rows();
        let flat = images.reshape(&[rows, images.cols()])?;
        let mut sweep = GoodnessSweep::new(rows, num_classes);
        let first_is_dense = first_layer_is_dense(net);
        let trainable: Vec<bool> = net
            .layers_mut()
            .iter_mut()
            .map(|l| l.param_count() > 0)
            .collect();
        let layer_count = trainable.len();
        for candidate in 0..num_classes {
            let labels = vec![candidate; rows];
            let embedded = ff_data::embed_label(&flat, &labels, num_classes)?;
            let shaped = reshape_for_input(&embedded, images.shape(), first_is_dense)?;
            let mut x = shaped;
            let layers = net.layers_mut();
            for (i, layer) in layers.iter_mut().enumerate() {
                // Decorrelate per (candidate, layer) so the ten candidate
                // sweeps do not share one rounding stream.
                let y = layer.forward(&x, pass.for_layer(candidate * layer_count + i))?;
                if trainable[i] {
                    let flat_y = y.reshape(&[rows, y.cols()])?;
                    sweep.accumulate(candidate, &goodness(&flat_y));
                    x = normalize_activations(&y)?;
                } else {
                    x = y;
                }
            }
        }
        Ok(sweep.predictions())
    }
}

impl TrainerCore for FfTrainer {
    fn algorithm(&self) -> Algorithm {
        match self.precision {
            Precision::Int8 => Algorithm::FfInt8 {
                lookahead: self.lookahead,
            },
            Precision::Fp32 => Algorithm::FfFp32 {
                lookahead: self.lookahead,
            },
        }
    }

    fn options(&self) -> &TrainOptions {
        &self.options
    }

    fn step_batch(
        &mut self,
        net: &mut Sequential,
        batch: &Batch,
        num_classes: usize,
        lambda: f32,
    ) -> Result<StepStats> {
        let (loss, spans) =
            self.train_batch(net, &batch.images, &batch.labels, num_classes, lambda)?;
        Ok(StepStats {
            loss,
            correct: 0,
            seen: 0,
            spans,
        })
    }

    fn evaluate(&mut self, net: &mut Sequential, dataset: &Dataset) -> Result<f32> {
        FfTrainer::evaluate(self, net, dataset)
    }

    fn tracks_running_accuracy(&self) -> bool {
        false
    }

    fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn export_state(&self) -> TrainerState {
        TrainerState {
            rng: self.rng.state(),
            slots: self.optimizers.iter().map(|o| o.export()).collect(),
        }
    }

    fn import_state(&mut self, state: &TrainerState, net: &mut Sequential) -> Result<()> {
        if state.slots.len() > net.len() {
            return Err(crate::CoreError::CheckpointMismatch {
                message: format!(
                    "checkpoint holds {} optimizer slots but the network has {} layers",
                    state.slots.len(),
                    net.len()
                ),
            });
        }
        let mut optimizers = Vec::with_capacity(state.slots.len());
        for (index, (slot, layer)) in state.slots.iter().zip(net.layers_mut()).enumerate() {
            let shapes: Vec<Vec<usize>> = layer
                .params_mut()
                .iter()
                .map(|p| p.value.shape().to_vec())
                .collect();
            optimizers.push(AnyOptimizer::import(
                self.options.optimizer,
                self.options.learning_rate,
                self.options.momentum,
                slot,
                &shapes,
                &format!("layer {index}"),
            )?);
        }
        self.rng = StdRng::from_state(state.rng);
        self.optimizers = optimizers;
        Ok(())
    }
}

/// `true` when the network's first layer is dense — i.e. the network takes
/// flat `[batch, features]` inputs and label-embedded batches need no
/// reshape (see [`crate::FfTrainer::prepare_batch`]).
pub fn first_layer_is_dense(net: &Sequential) -> bool {
    net.layers()
        .first()
        .map(|l| l.name() == "dense")
        .unwrap_or(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_data::{synthetic_mnist, SyntheticConfig};
    use ff_models::{small_mlp, small_resnet, SmallModelConfig};

    fn tiny_mnist() -> (Dataset, Dataset) {
        synthetic_mnist(&SyntheticConfig {
            train_size: 300,
            test_size: 100,
            noise_std: 0.15,
            max_shift: 0,
            seed: 5,
        })
    }

    #[test]
    fn ff_fp32_learns_on_mlp() {
        let (train_set, test_set) = tiny_mnist();
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = small_mlp(784, &[64, 64], 10, &mut rng);
        let options = TrainOptions {
            epochs: 10,
            learning_rate: 0.2,
            max_eval_samples: 100,
            ..TrainOptions::default()
        };
        let mut trainer = FfTrainer::new(Precision::Fp32, false, options);
        let history = trainer.train(&mut net, &train_set, &test_set).unwrap();
        let acc = history.final_accuracy().unwrap();
        assert!(acc > 0.5, "FF-FP32 accuracy {acc}");
    }

    #[test]
    fn ff_int8_learns_on_mlp() {
        let (train_set, test_set) = tiny_mnist();
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = small_mlp(784, &[64, 64], 10, &mut rng);
        let options = TrainOptions {
            epochs: 10,
            learning_rate: 0.2,
            max_eval_samples: 100,
            ..TrainOptions::default()
        };
        let mut trainer = FfTrainer::new(Precision::Int8, true, options);
        let history = trainer.train(&mut net, &train_set, &test_set).unwrap();
        let acc = history.final_accuracy().unwrap();
        assert!(acc > 0.5, "FF-INT8 accuracy {acc}");
    }

    #[test]
    fn int8_training_is_reproducible() {
        // The historic thread-rng stochastic rounding made two identically
        // seeded FF-INT8 runs diverge; seeded rounding makes them
        // bit-identical — the foundation of checkpoint/resume determinism.
        let (train_set, test_set) = tiny_mnist();
        let run = || {
            let mut rng = StdRng::seed_from_u64(3);
            let mut net = small_mlp(784, &[32, 32], 10, &mut rng);
            let options = TrainOptions {
                epochs: 2,
                max_eval_samples: 50,
                ..TrainOptions::fast_test()
            };
            let mut trainer = FfTrainer::new(Precision::Int8, true, options);
            let history = trainer.train(&mut net, &train_set, &test_set).unwrap();
            let weights: Vec<Vec<f32>> = net
                .params_mut()
                .iter()
                .map(|p| p.value.data().to_vec())
                .collect();
            (history, weights)
        };
        let (h1, w1) = run();
        let (h2, w2) = run();
        assert!(h1.same_trajectory(&h2), "histories must be bit-identical");
        assert_eq!(w1, w2, "weights must be bit-identical");
    }

    #[test]
    fn lookahead_relay_changes_early_layer_gradients() {
        // With look-ahead, the first layer's update must receive contributions
        // from later layers' losses; verify the relay path is exercised by
        // comparing gradients with and without λ.
        let (train_set, _) = tiny_mnist();
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = small_mlp(784, &[32, 32], 10, &mut rng);
        let batch = &train_set.batches(16, false, &mut rng)[0];
        let flat = batch
            .images
            .reshape(&[batch.images.rows(), batch.images.cols()])
            .unwrap();
        let options = TrainOptions::default();
        let mut trainer = FfTrainer::new(Precision::Fp32, true, options);
        let theta = trainer.options.theta;
        let (pos, _) = positive_negative_sets(&flat, &batch.labels, 10, &mut trainer.rng).unwrap();
        let rows = pos.rows();

        net.zero_grad();
        accumulate_ff_pass(
            &mut net,
            &pos,
            FfLossKind::Positive,
            theta,
            0.0,
            PassMode::Fp32,
            0,
            rows,
        )
        .unwrap();
        let grad_no_lambda = net.params_mut()[0].grad.clone();
        net.zero_grad();
        accumulate_ff_pass(
            &mut net,
            &pos,
            FfLossKind::Positive,
            theta,
            0.5,
            PassMode::Fp32,
            0,
            rows,
        )
        .unwrap();
        let grad_with_lambda = net.params_mut()[0].grad.clone();
        let diff = grad_no_lambda.sub(&grad_with_lambda).unwrap().max_abs();
        assert!(diff > 0.0, "look-ahead must change first-layer gradients");
    }

    #[test]
    fn predict_returns_valid_labels() {
        let (train_set, _) = tiny_mnist();
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = small_mlp(784, &[32], 10, &mut rng);
        let mut trainer = FfTrainer::new(Precision::Fp32, false, TrainOptions::fast_test());
        let subset = train_set.take(20).unwrap();
        let preds = trainer.predict(&mut net, subset.images(), 10).unwrap();
        assert_eq!(preds.len(), 20);
        assert!(preds.iter().all(|&p| p < 10));
    }

    #[test]
    fn empty_training_set_is_rejected() {
        let (train_set, test_set) = tiny_mnist();
        let empty = train_set.take(0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = small_mlp(784, &[16], 10, &mut rng);
        let mut trainer = FfTrainer::new(Precision::Fp32, false, TrainOptions::fast_test());
        assert!(trainer.train(&mut net, &empty, &test_set).is_err());
    }

    #[test]
    fn ff_trains_convolutional_residual_model() {
        // Smoke test: the FF trainer must handle conv nets with residual
        // blocks and parameter-free layers (global pooling) in the chain.
        let config = SyntheticConfig {
            train_size: 60,
            test_size: 30,
            noise_std: 0.15,
            max_shift: 0,
            seed: 6,
        };
        let (train_set, test_set) = ff_data::synthetic_cifar10(&config);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = SmallModelConfig::default()
            .with_base_channels(4)
            .with_stages(1)
            .with_input(3, 32);
        let mut net = small_resnet(&cfg, &mut rng);
        let options = TrainOptions {
            epochs: 1,
            batch_size: 16,
            max_eval_samples: 20,
            ..TrainOptions::default()
        };
        let mut trainer = FfTrainer::new(Precision::Int8, true, options);
        let history = trainer.train(&mut net, &train_set, &test_set).unwrap();
        assert_eq!(history.len(), 1);
        assert!(history.final_loss().unwrap().is_finite());
    }

    #[test]
    fn forward_mode_matches_precision() {
        let t8 = FfTrainer::new(Precision::Int8, true, TrainOptions::fast_test());
        assert!(t8.forward_mode().is_int8());
        assert!(t8.has_lookahead());
        assert_eq!(
            TrainerCore::algorithm(&t8),
            Algorithm::FfInt8 { lookahead: true }
        );
        let t32 = FfTrainer::new(Precision::Fp32, false, TrainOptions::fast_test());
        assert!(!t32.forward_mode().is_int8());
        assert!(!t32.has_lookahead());
        assert_eq!(
            TrainerCore::algorithm(&t32),
            Algorithm::FfFp32 { lookahead: false }
        );
    }

    #[test]
    fn trainer_state_roundtrips() {
        let (train_set, test_set) = tiny_mnist();
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = small_mlp(784, &[16], 10, &mut rng);
        let options = TrainOptions {
            epochs: 1,
            max_eval_samples: 20,
            ..TrainOptions::fast_test()
        };
        let mut trainer = FfTrainer::new(Precision::Int8, true, options.clone());
        trainer.train(&mut net, &train_set, &test_set).unwrap();
        let state = trainer.export_state();
        assert_eq!(state.slots.len(), trainer.optimizers.len());
        let mut fresh = FfTrainer::new(Precision::Int8, true, options);
        fresh.import_state(&state, &mut net).unwrap();
        assert_eq!(fresh.export_state(), state);
    }
}
