//! The canonical decomposition of one FF training step into row shards and
//! layer stages — the determinism contract shared by the sequential
//! [`crate::FfTrainer`] and the `ff-dist` distributed trainers.
//!
//! # Why a *canonical* decomposition
//!
//! Distributed training is only trustworthy on this codebase's terms if it
//! is **bit-identical** to the single-process run from the same seed (the
//! property FF8C checkpoints, the serving parity gates and the chaos
//! harness are all built on). Floating-point addition is not associative,
//! and INT8 stochastic rounding consumes seeded streams, so "split the
//! batch and sum the gradients" is only reproducible if the split points,
//! the per-shard rounding-stream derivation and the reduction order are
//! all pinned down *once*, in core — not improvised per transport.
//!
//! This module is that single definition:
//!
//! - [`shard_ranges`] fixes the split: contiguous balanced row ranges,
//!   earlier shards take the remainder.
//! - [`ShardTask`] carries everything one shard's forward/backward needs —
//!   including the *full-batch* loss divisor, so per-shard losses and
//!   gradients are partial sums of the batch mean and summing them over
//!   shards reproduces the whole-batch objective.
//! - [`PassMode::for_layer`] fixes the rounding streams: shard `s`, layer
//!   `i` uses the stream derived from `(pass_seed, s · layer_count + i)`,
//!   so shard 0 of a 1-shard run is exactly the historic unsharded
//!   derivation.
//! - [`compute_shard`] is the pure function workers evaluate: identical
//!   inputs and parameters give identical [`ShardGrads`] whether the shard
//!   runs in-process, on another thread, or across a socket.
//! - Reduction is **order-fixed**: the coordinator accumulates shard
//!   gradients with [`reduce_shard_grads`] in ascending shard index, never
//!   in arrival order.
//! - [`ff_stage_pass`] and [`step_layers`] are the layer-stage analogues
//!   used by pipeline parallelism: each stage replays exactly the
//!   per-layer operation sequence of the sequential trainer (forward,
//!   own-goodness backward, step), so the pipeline run is bit-identical to
//!   the λ = 0 sequential run.

use crate::config::Precision;
use crate::goodness::{ff_loss_scaled, goodness, goodness_gradient, FfLossKind};
use crate::optimizer::AnyOptimizer;
use crate::{CoreError, Result};
use ff_nn::{ForwardMode, Layer, Sequential};
use ff_quant::Rounding;
use ff_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// The numeric modes of one forward (or forward+backward) pass: FP32, or
/// INT8 with a per-layer family of seeded stochastic-rounding streams all
/// derived from one pass seed.
#[derive(Debug, Clone, Copy)]
pub enum PassMode {
    /// Full 32-bit floating point — no rounding streams, no seed.
    Fp32,
    /// INT8 MACs; `base` is the pass's seeded rounding stream from which
    /// per-layer streams are derived.
    Int8 {
        /// The pass-level seeded rounding mode (`Rounding::StochasticSeeded`).
        base: Rounding,
    },
}

impl PassMode {
    /// Draws one fresh pass seed from `rng` (INT8 only; FP32 draws nothing)
    /// and returns the seed alongside the mode. The seed is what travels
    /// over the wire to data-parallel workers; `0` for FP32.
    pub fn draw(precision: Precision, rng: &mut StdRng) -> (u64, PassMode) {
        match precision {
            Precision::Fp32 => (0, PassMode::Fp32),
            Precision::Int8 => {
                let seed = rng.gen::<u64>();
                (seed, PassMode::from_seed(precision, seed))
            }
        }
    }

    /// Reconstructs the mode from a transmitted pass seed (the receiving
    /// side of [`PassMode::draw`]).
    pub fn from_seed(precision: Precision, seed: u64) -> PassMode {
        match precision {
            Precision::Fp32 => PassMode::Fp32,
            Precision::Int8 => PassMode::Int8 {
                base: Rounding::StochasticSeeded(seed),
            },
        }
    }

    /// The forward mode for one layer: layer `index` gets the decorrelated
    /// stream derived from `(pass_seed, index)`. Callers pass a *global*
    /// index (`shard_index · layer_count + layer`, or
    /// `candidate · layer_count + layer` during prediction) so no two
    /// shards or candidates share a stream.
    pub fn for_layer(self, index: usize) -> ForwardMode {
        match self {
            PassMode::Fp32 => ForwardMode::Fp32,
            PassMode::Int8 { base } => ForwardMode::Int8(base.derive(index as u64)),
        }
    }
}

/// A label-embedded batch with its positive/negative pass seeds, ready to
/// be trained on directly or cut into [`ShardTask`]s.
///
/// Produced by [`crate::FfTrainer::prepare_batch`], which draws from the
/// trainer RNG in the exact historic order (negative-label draws, then the
/// positive pass seed, then the negative pass seed) so a 1-shard run is
/// bit-identical to every run recorded before sharding existed.
#[derive(Debug, Clone)]
pub struct PreparedBatch {
    /// The positive (correctly label-embedded) inputs, already reshaped for
    /// the network's first layer.
    pub pos: Tensor,
    /// The negative (wrongly label-embedded) inputs, same shape as `pos`.
    pub neg: Tensor,
    /// Pass seed for the positive pass (`0` in FP32, which draws nothing).
    pub pos_seed: u64,
    /// Pass seed for the negative pass.
    pub neg_seed: u64,
}

/// Everything one worker needs to compute one shard's gradients — a pure
/// function of this struct plus the current network parameters.
#[derive(Debug, Clone)]
pub struct ShardTask {
    /// This shard's rows of the positive inputs.
    pub pos: Tensor,
    /// This shard's rows of the negative inputs.
    pub neg: Tensor,
    /// The batch's positive pass seed (shared by all shards; per-shard
    /// streams are derived via the layer-index offset).
    pub pos_seed: u64,
    /// The batch's negative pass seed.
    pub neg_seed: u64,
    /// Position of this shard in the batch (fixes its rounding streams and
    /// its slot in the reduction order).
    pub shard_index: usize,
    /// Number of layers in the network (the stride of the per-shard
    /// rounding-stream derivation).
    pub layer_count: usize,
    /// Row count of the **full** batch. Dividing each shard's loss and
    /// per-sample gradients by this (instead of the shard's own row count)
    /// makes shard quantities partial sums of the batch mean.
    pub loss_divisor: usize,
    /// The goodness threshold θ.
    pub theta: f32,
    /// The look-ahead weight λ for this epoch (0 disables the relay).
    pub lambda: f32,
    /// Numeric precision of the pass.
    pub precision: Precision,
}

/// One shard's contribution to a step: its summed FF loss partial and one
/// gradient tensor per network parameter, in parameter order.
#[derive(Debug, Clone)]
pub struct ShardGrads {
    /// Positive-pass loss partial (already divided by the full batch size).
    pub loss_pos: f32,
    /// Negative-pass loss partial.
    pub loss_neg: f32,
    /// Gradients in [`Sequential::params_mut`] order.
    pub grads: Vec<Tensor>,
}

/// Splits `rows` into `shards` contiguous balanced ranges.
///
/// Earlier shards take the remainder (sizes differ by at most one); empty
/// tail ranges (when `shards > rows`) are dropped, so the returned
/// vector's positions coincide with shard indices.
///
/// This is the **canonical split**: every execution of a `grad_shards = W`
/// step — local, pipelined, or data-parallel — must cut the batch exactly
/// here, or runs stop being comparable bit-for-bit.
pub fn shard_ranges(rows: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1);
    let base = rows / shards;
    let extra = rows % shards;
    let mut ranges = Vec::with_capacity(shards.min(rows));
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        if len == 0 {
            break;
        }
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// Cuts a prepared batch into per-shard tasks along [`shard_ranges`].
///
/// # Errors
///
/// Propagates tensor row-selection errors.
pub fn shard_tasks(
    prepared: &PreparedBatch,
    shards: usize,
    layer_count: usize,
    theta: f32,
    lambda: f32,
    precision: Precision,
) -> Result<Vec<ShardTask>> {
    let rows = prepared.pos.rows();
    let mut tasks = Vec::new();
    for (shard_index, (start, end)) in shard_ranges(rows, shards).into_iter().enumerate() {
        let indices: Vec<usize> = (start..end).collect();
        tasks.push(ShardTask {
            pos: prepared.pos.select_rows(&indices)?,
            neg: prepared.neg.select_rows(&indices)?,
            pos_seed: prepared.pos_seed,
            neg_seed: prepared.neg_seed,
            shard_index,
            layer_count,
            loss_divisor: rows,
            theta,
            lambda,
            precision,
        });
    }
    Ok(tasks)
}

/// Evaluates one shard: zeroes the network's gradient accumulators, runs
/// the positive and negative passes with this shard's derived rounding
/// streams and the full-batch loss divisor, clones out the accumulated
/// gradients and zeroes the accumulators again (leaving the network clean
/// for the next shard or the reduced write-back).
///
/// This is the function data-parallel workers run remotely; because it is
/// a pure function of `(task, parameters)`, a coordinator that loses a
/// worker mid-step can recompute the same shard locally (or on a survivor)
/// and obtain bit-identical gradients.
///
/// # Errors
///
/// Propagates layer and tensor errors.
pub fn compute_shard(net: &mut Sequential, task: &ShardTask) -> Result<ShardGrads> {
    net.zero_grad();
    let offset = task.shard_index * task.layer_count;
    let pos_pass = PassMode::from_seed(task.precision, task.pos_seed);
    let neg_pass = PassMode::from_seed(task.precision, task.neg_seed);
    let loss_pos = accumulate_ff_pass(
        net,
        &task.pos,
        FfLossKind::Positive,
        task.theta,
        task.lambda,
        pos_pass,
        offset,
        task.loss_divisor,
    )?;
    let loss_neg = accumulate_ff_pass(
        net,
        &task.neg,
        FfLossKind::Negative,
        task.theta,
        task.lambda,
        neg_pass,
        offset,
        task.loss_divisor,
    )?;
    let mut grads = Vec::new();
    for p in net.params_mut() {
        grads.push(p.grad.clone());
    }
    net.zero_grad();
    Ok(ShardGrads {
        loss_pos,
        loss_neg,
        grads,
    })
}

/// Order-fixed gradient reduction: folds `incoming` (shard `s`) into the
/// running accumulator, which must hold shards `0..s` already.
///
/// Callers collect results in any order the transport delivers them but
/// **must** reduce in ascending shard index — floating-point addition is
/// not associative, and the reduction order is part of the determinism
/// contract.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] when the gradient counts disagree,
/// and propagates shape errors from the tensor addition.
pub fn reduce_shard_grads(
    accumulator: &mut Option<ShardGrads>,
    incoming: &ShardGrads,
) -> Result<()> {
    match accumulator {
        None => {
            *accumulator = Some(incoming.clone());
            Ok(())
        }
        Some(acc) => {
            if acc.grads.len() != incoming.grads.len() {
                return Err(CoreError::InvalidConfig {
                    message: format!(
                        "shard gradient reduction mismatch: accumulator holds {} tensors, \
                         incoming shard holds {}",
                        acc.grads.len(),
                        incoming.grads.len()
                    ),
                });
            }
            acc.loss_pos += incoming.loss_pos;
            acc.loss_neg += incoming.loss_neg;
            for (a, g) in acc.grads.iter_mut().zip(&incoming.grads) {
                a.add_assign(g)?;
            }
            Ok(())
        }
    }
}

/// One forward pass plus per-unit gradient accumulation for one side
/// (positive or negative) of the FF objective, over a full network.
///
/// This is the sequential trainer's historic `accumulate_pass` with two
/// generalisations: the rounding stream for layer `i` is derived from
/// `layer_index_offset + i` (shard 0 passes offset 0 and reproduces the
/// unsharded stream), and the loss divisor is explicit (pass the input's
/// own row count to reproduce the unsharded objective).
///
/// # Errors
///
/// Propagates layer and tensor errors.
#[allow(clippy::too_many_arguments)]
pub fn accumulate_ff_pass(
    net: &mut Sequential,
    input: &Tensor,
    kind: FfLossKind,
    theta: f32,
    lambda: f32,
    pass: PassMode,
    layer_index_offset: usize,
    loss_divisor: usize,
) -> Result<f32> {
    let layer_count = net.len();
    // Forward pass, collecting the raw output of every layer. The input
    // of the next layer is the row-normalised output of the previous
    // trainable layer (Hinton's layer normalisation) so goodness cannot
    // be trivially copied forward.
    let mut outputs: Vec<Tensor> = Vec::with_capacity(layer_count);
    let mut x = input.clone();
    {
        let layers = net.layers_mut();
        for (i, layer) in layers.iter_mut().enumerate() {
            let y = layer.forward(&x, pass.for_layer(layer_index_offset + i))?;
            x = if layer.param_count() > 0 {
                normalize_activations(&y)?
            } else {
                y.clone()
            };
            outputs.push(y);
        }
    }
    // Per-unit FF losses and gradients w.r.t. each unit's own output.
    let mut total_loss = 0.0f32;
    let mut own_grads: Vec<Option<Tensor>> = Vec::with_capacity(layer_count);
    {
        let layers = net.layers_mut();
        for (layer, output) in layers.iter_mut().zip(&outputs) {
            if layer.param_count() == 0 {
                own_grads.push(None);
                continue;
            }
            let rows = output.rows();
            let flat = output.reshape(&[rows, output.cols()])?;
            let g = goodness(&flat);
            let (loss, dg) = ff_loss_scaled(&g, theta, kind, loss_divisor);
            total_loss += loss;
            let grad_flat = goodness_gradient(&flat, &dg);
            own_grads.push(Some(grad_flat.reshape(output.shape())?));
        }
    }
    // Backward sweep from the last unit to the first. `relay` carries
    // λ-weighted gradients of *later* units' losses w.r.t. the current
    // layer's output (Eq. 4); it is empty in vanilla FF mode (λ = 0).
    let mut relay: Option<Tensor> = None;
    let layers = net.layers_mut();
    for i in (0..layer_count).rev() {
        let own = own_grads[i].take();
        let incoming_relay = relay.take();
        match (own, incoming_relay) {
            (Some(own_grad), maybe_relay) => {
                let d_own = layers[i].backward(&own_grad)?;
                let d_relay = match maybe_relay {
                    Some(r) => Some(layers[i].backward(&r)?),
                    None => None,
                };
                relay = if lambda > 0.0 && i > 0 {
                    let mut r = d_own.scale(lambda);
                    if let Some(dr) = d_relay {
                        r.add_assign(&dr)?;
                    }
                    Some(r)
                } else {
                    None
                };
            }
            (None, Some(r)) => {
                // Parameter-free layer: relay the gradient through its
                // backward pass unchanged.
                let d = layers[i].backward(&r)?;
                relay = if i > 0 { Some(d) } else { None };
            }
            (None, None) => {
                relay = None;
            }
        }
    }
    Ok(total_loss)
}

/// One side of the FF objective over a **contiguous layer stage** — the
/// pipeline-parallel unit of work. λ must be 0 (the look-ahead relay
/// crosses stage boundaries and is rejected by the pipeline constructor).
///
/// Runs the stage's forwards (deriving each layer's rounding stream from
/// its *global* index `first_layer_index + i`, identical to the sequential
/// derivation), accumulates each trainable layer's own-goodness gradient
/// via its backward pass, and returns this stage's loss partial plus the
/// activation that feeds the next stage (row-normalised after trainable
/// layers, raw otherwise — exactly what the sequential forward chain
/// produces).
///
/// Per layer, the operation sequence (forward, backward-with-own-grad) and
/// every operand are identical to [`accumulate_ff_pass`] at λ = 0; only
/// the interleaving *across* layers differs, which cannot change any value
/// because each layer's backward depends only on its own cached forward
/// state. Summing stage partials in ascending stage order reproduces the
/// sequential loss fold bit-for-bit.
///
/// # Errors
///
/// Propagates layer and tensor errors.
pub fn ff_stage_pass(
    layers: &mut [Box<dyn Layer>],
    first_layer_index: usize,
    input: &Tensor,
    kind: FfLossKind,
    theta: f32,
    pass: PassMode,
    loss_divisor: usize,
) -> Result<(f32, Tensor)> {
    let mut outputs: Vec<Tensor> = Vec::with_capacity(layers.len());
    let mut x = input.clone();
    for (i, layer) in layers.iter_mut().enumerate() {
        let y = layer.forward(&x, pass.for_layer(first_layer_index + i))?;
        x = if layer.param_count() > 0 {
            normalize_activations(&y)?
        } else {
            y.clone()
        };
        outputs.push(y);
    }
    let mut total_loss = 0.0f32;
    let mut own_grads: Vec<Option<Tensor>> = Vec::with_capacity(layers.len());
    for (layer, output) in layers.iter_mut().zip(&outputs) {
        if layer.param_count() == 0 {
            own_grads.push(None);
            continue;
        }
        let rows = output.rows();
        let flat = output.reshape(&[rows, output.cols()])?;
        let g = goodness(&flat);
        let (loss, dg) = ff_loss_scaled(&g, theta, kind, loss_divisor);
        total_loss += loss;
        let grad_flat = goodness_gradient(&flat, &dg);
        own_grads.push(Some(grad_flat.reshape(output.shape())?));
    }
    for i in (0..layers.len()).rev() {
        if let Some(own_grad) = own_grads[i].take() {
            layers[i].backward(&own_grad)?;
        }
    }
    Ok((total_loss, x))
}

/// Applies one optimizer step per layer and clears the gradients — the
/// per-layer body of [`crate::FfTrainer`]'s step, factored out so pipeline
/// stages can step their own layer slice with their own optimizer slice.
///
/// Stepping writes every parameter through `ParamRefMut::mark_updated`,
/// which is what invalidates cached packed INT8 weight plans.
pub fn step_layers(layers: &mut [Box<dyn Layer>], optimizers: &mut [AnyOptimizer]) {
    for (layer, optimizer) in layers.iter_mut().zip(optimizers) {
        let mut params = layer.params_mut();
        if !params.is_empty() {
            optimizer.step(&mut params);
            // Safety net: an Optimizer impl that forgets mark_updated
            // would otherwise leave layers serving stale packed weight
            // plans. An extra bump is free (plans rebuild at most once
            // per step, on the next INT8 forward).
            for p in &mut params {
                p.mark_updated();
            }
        }
        layer.zero_grad();
    }
}

/// Row-normalises activations (flattened per sample) before they feed the
/// next FF unit.
pub(crate) fn normalize_activations(output: &Tensor) -> Result<Tensor> {
    let rows = output.rows();
    let flat = output.reshape(&[rows, output.cols()])?;
    Ok(flat.normalize_rows(1e-6).reshape(output.shape())?)
}

/// Reshapes a flattened (label-embedded) batch back to the input shape the
/// network expects: flat `[batch, features]` when the first layer is
/// dense, the original image shape otherwise.
pub(crate) fn reshape_for_input(
    flat: &Tensor,
    original_shape: &[usize],
    first_is_dense: bool,
) -> Result<Tensor> {
    if first_is_dense {
        Ok(flat.clone())
    } else {
        Ok(flat.reshape(original_shape)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_are_contiguous_balanced_and_cover() {
        for rows in [0usize, 1, 2, 7, 16, 33] {
            for shards in [1usize, 2, 3, 4, 8, 40] {
                let ranges = shard_ranges(rows, shards);
                let mut expected_start = 0;
                for &(start, end) in &ranges {
                    assert_eq!(start, expected_start, "rows={rows} shards={shards}");
                    assert!(end > start, "empty range leaked");
                    expected_start = end;
                }
                assert_eq!(expected_start, rows, "rows={rows} shards={shards}");
                if !ranges.is_empty() {
                    let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
                    let max = *sizes.iter().max().unwrap();
                    let min = *sizes.iter().min().unwrap();
                    assert!(max - min <= 1, "unbalanced split {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn pass_mode_derivation_is_per_global_index() {
        let pass = PassMode::from_seed(Precision::Int8, 99);
        // Distinct global layer indices get distinct rounding streams, so
        // shard 1's layers never share a stream with shard 0's.
        let layer_count = 3;
        for i in 0..layer_count {
            assert_ne!(pass.for_layer(i), pass.for_layer(layer_count + i));
        }
        // FP32 ignores indices entirely.
        assert_eq!(
            PassMode::from_seed(Precision::Fp32, 7).for_layer(5),
            ForwardMode::Fp32
        );
    }

    #[test]
    fn reduce_rejects_mismatched_grad_counts() {
        let a = ShardGrads {
            loss_pos: 1.0,
            loss_neg: 1.0,
            grads: vec![Tensor::zeros(&[2])],
        };
        let b = ShardGrads {
            loss_pos: 1.0,
            loss_neg: 1.0,
            grads: Vec::new(),
        };
        let mut acc = None;
        reduce_shard_grads(&mut acc, &a).unwrap();
        assert!(matches!(
            reduce_shard_grads(&mut acc, &b),
            Err(CoreError::InvalidConfig { .. })
        ));
    }
}
