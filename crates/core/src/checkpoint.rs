//! The versioned `FF8C` training-checkpoint format.
//!
//! A checkpoint captures **everything** a training run's future depends on,
//! so `save → load → resume` is bit-identical to never having stopped:
//!
//! - the algorithm and full [`TrainOptions`] (including the optimizer
//!   family);
//! - epoch / global-step counters, and — for mid-epoch checkpoints — the
//!   epoch's shuffled sample order, cursor and loss/accuracy accumulators;
//! - the trainer's RNG stream position (shuffling, negative-label sampling
//!   and seeded stochastic rounding all draw from this one generator);
//! - per-optimizer state: SGD momentum buffers, or Adam first/second
//!   moments plus the bias-correction step count
//!   ([`crate::optimizer::OptimizerSlot`]);
//! - every layer parameter tensor, stored as IEEE-754 bit patterns;
//! - the [`TrainingHistory`] recorded so far (including per-epoch
//!   wall-clock seconds).
//!
//! # Byte layout (version 3, all integers little-endian)
//!
//! Built on [`ff_codec`]'s length-prefixed record machinery (shared with
//! the `FF8S` serving format and the `FF8P` wire protocol). Version 2
//! extends version 1 with the optimizer-family byte in the options record
//! and a per-slot optimizer-kind byte (version-1 artifacts implicitly held
//! SGD state only, so there is no in-place upgrade path — retrain or
//! re-checkpoint). Version 3 appends the `grad_shards` word to the options
//! record; version-2 artifacts still load (their runs were by definition
//! unsharded, so `grad_shards` defaults to 1) — the same minor-version-bump
//! evolution the `FF8P` deadline fields used.
//!
//! ```text
//! header:
//!   magic            4 × u8   = "FF8C"
//!   format_version   u16      = 3 (2 still readable)
//!   flags            u16      = 0 (reserved)
//! record "meta":
//!   algorithm_kind   u8       — 0..=3 BP policies, 4 FF-INT8, 5 FF-FP32
//!   lookahead        u8       — 0/1 (FF kinds only)
//!   epoch            u64
//!   global_step      u64
//!   rng_state        4 × u64  — xoshiro256++ state, non-zero
//! record "options":
//!   epochs, batch_size               u64
//!   learning_rate, momentum, theta   f32
//!   lambda_init, lambda_step, lambda_max  f32
//!   eval_every, max_eval_samples, seed    u64
//!   optimizer        u8       — 0 = SGD, 1 = Adam
//!   grad_shards      u64      — version ≥ 3 only (v2 implies 1)
//! record "history":
//!   name             string   — u32 length + UTF-8
//!   count            u32
//!   per record: epoch u64, train_loss f32, train_accuracy f32,
//!               has_test u8, test_accuracy f32, seconds f64
//! record "params":
//!   count            u32
//!   per tensor: ndim u32, dims ndim × u32, data Π·dims × f32
//! record "optimizers":
//!   count            u32      — optimizer slots
//!   per slot: kind u8 (0 = SGD, 1 = Adam), then
//!     SGD:  count u32, then tensors as above (momentum buffers)
//!     Adam: step_count u64, count u32, then count first-moment tensors
//!           followed by count second-moment tensors
//! record "progress":
//!   present          u8       — 0 = checkpoint at an epoch boundary
//!   order_len        u32, order order_len × u32
//!   next             u64      — sample cursor within order
//!   loss_sum         f32
//!   batch_count, correct, seen  u64
//!   elapsed_seconds  f64
//! ```
//!
//! Like `FF8S`, loading never panics: every malformed input maps to a typed
//! [`CoreError`] ([`CoreError::Checkpoint`] wrapping the codec error), which
//! the truncation/byte-flip fuzz suite in `crates/core/tests/checkpoint.rs`
//! exercises.

use crate::config::{Algorithm, OptimizerKind, TrainOptions};
use crate::optimizer::OptimizerSlot;
use crate::session::TrainerState;
use crate::{CoreError, Result};
use ff_codec::{CodecError, Reader, RecordWriter, Writer};
use ff_metrics::TrainingHistory;
use ff_nn::Sequential;
use ff_tensor::Tensor;
use std::path::{Path, PathBuf};

/// The four magic bytes every training checkpoint starts with.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"FF8C";

/// The checkpoint format version this build writes.
pub const CHECKPOINT_VERSION: u16 = 3;

/// The oldest checkpoint format version this build still reads
/// (version 2 predates the `grad_shards` option, which defaults to 1).
pub const CHECKPOINT_MIN_VERSION: u16 = 2;

/// Wire code of [`OptimizerKind::Sgd`] in the options and optimizers
/// records.
const OPTIMIZER_SGD: u8 = 0;
/// Wire code of [`OptimizerKind::Adam`].
const OPTIMIZER_ADAM: u8 = 1;

/// Upper bound on the persisted history-name length (sanity bound for the
/// loader; real names are short algorithm labels).
const MAX_NAME_LEN: usize = 1024;
/// Upper bound on tensor rank in a checkpoint (conv weights are rank 4).
const MAX_NDIM: usize = 8;

/// Mid-epoch progress: what a checkpoint taken between two steps of an
/// epoch needs so the resumed session finishes that epoch identically.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochProgress {
    /// The epoch's full shuffled sample order (a permutation of the
    /// training-set indices).
    pub order: Vec<usize>,
    /// Offset of the next batch's first sample within `order`.
    pub next: usize,
    /// Sum of batch losses accumulated so far this epoch.
    pub loss_sum: f32,
    /// Batches trained so far this epoch.
    pub batch_count: u64,
    /// Running correctly-classified count (backpropagation trainers).
    pub correct: u64,
    /// Running scored-sample count (backpropagation trainers).
    pub seen: u64,
    /// Wall-clock seconds already spent on this epoch.
    pub elapsed_seconds: f64,
}

/// A complete, serializable snapshot of a [`crate::TrainSession`].
///
/// Produced by [`crate::TrainSession::checkpoint`]; consumed by
/// [`crate::TrainSession::resume`]. [`save_bytes`] / [`load_bytes`] move it
/// through the versioned `FF8C` binary format (see the [module
/// docs](self)); [`Checkpoint::save`] / [`Checkpoint::load`] add the file
/// I/O.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The algorithm the run trains with.
    pub algorithm: Algorithm,
    /// The run's full hyperparameters.
    pub options: TrainOptions,
    /// Index of the epoch the next step belongs to.
    pub epoch: u64,
    /// Mini-batches trained so far across the run.
    pub global_step: u64,
    /// Trainer-owned state: RNG stream position + optimizer momentum.
    pub trainer: TrainerState,
    /// Per-epoch history recorded so far.
    pub history: TrainingHistory,
    /// Every layer parameter tensor, in `Sequential::params_mut` order.
    pub params: Vec<Tensor>,
    /// Mid-epoch progress, `None` when taken at an epoch boundary.
    pub progress: Option<EpochProgress>,
}

impl Checkpoint {
    /// Serializes and writes this checkpoint to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, save_bytes(self)).map_err(|e| CoreError::Io {
            message: format!("writing {}: {e}", path.display()),
        })
    }

    /// Reads and deserializes a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on filesystem failures and
    /// [`CoreError::Checkpoint`] on malformed artifacts.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Checkpoint> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| CoreError::Io {
            message: format!("reading {}: {e}", path.display()),
        })?;
        load_bytes(&bytes)
    }

    /// Restores this checkpoint's parameter tensors into `net`, validating
    /// count and shapes.
    ///
    /// This is the parameter half of [`crate::TrainSession::resume`],
    /// exposed separately so a checkpoint can feed *serving* directly —
    /// [`FrozenModel::from_checkpoint`] rebuilds the architecture, calls
    /// this, and freezes, without ever constructing a training session.
    /// Restored parameters have their gradients cleared and their versions
    /// bumped (stale cached packed weight plans are invalidated).
    ///
    /// [`FrozenModel::from_checkpoint`]: https://docs.rs/ff-serve
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CheckpointMismatch`] when the parameter count or
    /// any shape disagrees with the network.
    pub fn restore_params(&self, net: &mut Sequential) -> Result<()> {
        let mut params = net.params_mut();
        if params.len() != self.params.len() {
            return Err(CoreError::CheckpointMismatch {
                message: format!(
                    "checkpoint holds {} parameter tensors but the network has {}",
                    self.params.len(),
                    params.len()
                ),
            });
        }
        for (index, (param, saved)) in params.iter_mut().zip(&self.params).enumerate() {
            if param.value.shape() != saved.shape() {
                return Err(CoreError::CheckpointMismatch {
                    message: format!(
                        "parameter {index} has shape {:?} in the network but {:?} in the \
                         checkpoint",
                        param.value.shape(),
                        saved.shape()
                    ),
                });
            }
            *param.value = saved.clone();
            // Stale gradients never survive a step boundary; make that
            // explicit, and invalidate any cached packed weight plans.
            param.grad.scale_inplace(0.0);
            param.mark_updated();
        }
        Ok(())
    }
}

/// The canonical file name of a checkpoint taken at `global_step`
/// (`step-0000000042.ff8c`): zero-padded so lexicographic and numeric order
/// agree, which is what [`rotate`] and [`latest`] key on.
pub fn step_file_name(global_step: u64) -> String {
    format!("step-{global_step:010}.ff8c")
}

/// Parses a file name produced by [`step_file_name`] back into its step.
///
/// Returns `None` for anything else, so foreign files in a checkpoint
/// directory are never touched by [`rotate`].
pub fn parse_step_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("step-")?.strip_suffix(".ff8c")?;
    if digits.len() != 10 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Lists the step-named checkpoints in `dir`, sorted oldest → newest.
fn step_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let entries = std::fs::read_dir(dir).map_err(|e| CoreError::Io {
        message: format!("listing {}: {e}", dir.display()),
    })?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CoreError::Io {
            message: format!("listing {}: {e}", dir.display()),
        })?;
        let name = entry.file_name();
        if let Some(step) = name.to_str().and_then(parse_step_file_name) {
            found.push((step, entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// Deletes all but the newest `keep_last` step-named checkpoints
/// (`step-<step>.ff8c`, see [`step_file_name`]) in `dir` and returns the
/// removed paths, oldest first.
///
/// Files not matching the step naming scheme are ignored, so a checkpoint
/// directory can hold other artifacts safely. Edge devices checkpoint
/// often and have small disks — this is the GC half of the auto-checkpoint
/// story ([`crate::TrainSession::auto_checkpoint`] calls it after every
/// save).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] when `keep_last` is zero (rotating
/// away every checkpoint is never what a caller wants) and
/// [`CoreError::Io`] on filesystem failures.
pub fn rotate(dir: impl AsRef<Path>, keep_last: usize) -> Result<Vec<PathBuf>> {
    if keep_last == 0 {
        return Err(CoreError::InvalidConfig {
            message: "rotate keep_last must be at least 1".to_string(),
        });
    }
    let found = step_checkpoints(dir.as_ref())?;
    let excess = found.len().saturating_sub(keep_last);
    let mut removed = Vec::with_capacity(excess);
    for (_, path) in found.into_iter().take(excess) {
        std::fs::remove_file(&path).map_err(|e| CoreError::Io {
            message: format!("removing {}: {e}", path.display()),
        })?;
        removed.push(path);
    }
    Ok(removed)
}

/// The newest step-named checkpoint in `dir` (by step, not mtime), or
/// `None` when the directory holds none — the resume entry point after a
/// crash: `latest(dir)? → Checkpoint::load → TrainSession::resume`.
///
/// # Errors
///
/// Returns [`CoreError::Io`] when the directory cannot be listed.
pub fn latest(dir: impl AsRef<Path>) -> Result<Option<PathBuf>> {
    Ok(step_checkpoints(dir.as_ref())?.pop().map(|(_, path)| path))
}

fn algorithm_code(algorithm: Algorithm) -> (u8, u8) {
    match algorithm {
        Algorithm::BpFp32 => (0, 0),
        Algorithm::BpInt8 => (1, 0),
        Algorithm::BpUi8 => (2, 0),
        Algorithm::BpGdai8 => (3, 0),
        Algorithm::FfInt8 { lookahead } => (4, u8::from(lookahead)),
        Algorithm::FfFp32 { lookahead } => (5, u8::from(lookahead)),
    }
}

fn algorithm_from_code(kind: u8, lookahead: u8) -> Result<Algorithm> {
    if lookahead > 1 {
        return Err(corrupt(format!("lookahead flag {lookahead} is not 0/1")));
    }
    let lookahead = lookahead == 1;
    match kind {
        0 => Ok(Algorithm::BpFp32),
        1 => Ok(Algorithm::BpInt8),
        2 => Ok(Algorithm::BpUi8),
        3 => Ok(Algorithm::BpGdai8),
        4 => Ok(Algorithm::FfInt8 { lookahead }),
        5 => Ok(Algorithm::FfFp32 { lookahead }),
        _ => Err(corrupt(format!("unknown algorithm kind {kind}"))),
    }
}

fn corrupt(message: String) -> CoreError {
    CoreError::Checkpoint(CodecError::Corrupt { message })
}

/// Serialized size of `tensors` in a record: rank + dims + f32 payload each.
fn tensors_bytes(tensors: &[Tensor]) -> usize {
    tensors
        .iter()
        .map(|t| 4 + 4 * t.ndim() + 4 * t.data().len())
        .sum()
}

fn write_tensor(record: &mut RecordWriter, tensor: &Tensor) {
    record.put_u32(tensor.ndim() as u32);
    for &dim in tensor.shape() {
        record.put_u32(dim as u32);
    }
    for &value in tensor.data() {
        record.put_f32(value);
    }
}

fn read_tensor(record: &mut Reader<'_>, context: &'static str) -> Result<Tensor> {
    let ndim = record.get_u32(context)? as usize;
    if ndim == 0 || ndim > MAX_NDIM {
        return Err(corrupt(format!(
            "{context}: tensor rank {ndim} out of range"
        )));
    }
    let mut shape = Vec::with_capacity(ndim);
    let mut len: usize = 1;
    for _ in 0..ndim {
        let dim = record.get_u32(context)? as usize;
        len = len
            .checked_mul(dim)
            .ok_or_else(|| corrupt(format!("{context}: tensor dimensions overflow")))?;
        shape.push(dim);
    }
    record.ensure_fits(len, 4, context)?;
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(record.get_f32(context)?);
    }
    Ok(Tensor::from_vec(&shape, data)?)
}

/// Serializes a checkpoint into its versioned `FF8C` byte artifact.
///
/// Round-trips through [`load_bytes`] are bit-exact: every `f32`/`f64` is
/// stored as its IEEE-754 bit pattern and re-serializing a loaded
/// checkpoint reproduces the artifact verbatim.
pub fn save_bytes(checkpoint: &Checkpoint) -> Vec<u8> {
    let params_bytes = 4 + tensors_bytes(&checkpoint.params);
    let optim_bytes = 4 + checkpoint
        .trainer
        .slots
        .iter()
        .map(|slot| match slot {
            OptimizerSlot::Sgd { velocity } => 1 + 4 + tensors_bytes(velocity),
            OptimizerSlot::Adam { m, v, .. } => 1 + 8 + 4 + tensors_bytes(m) + tensors_bytes(v),
        })
        .sum::<usize>();
    let progress_bytes = match &checkpoint.progress {
        Some(progress) => 1 + 4 + 4 * progress.order.len() + 8 + 4 + 8 * 3 + 8,
        None => 1,
    };
    // Header + meta/options/history records (small) + the sized records.
    let estimate =
        512 + 17 * checkpoint.history.len() + params_bytes + optim_bytes + progress_bytes;
    let mut writer = Writer::with_capacity(&CHECKPOINT_MAGIC, CHECKPOINT_VERSION, estimate);
    let (kind, lookahead) = algorithm_code(checkpoint.algorithm);
    writer.record(|r| {
        r.put_u8(kind);
        r.put_u8(lookahead);
        r.put_u64(checkpoint.epoch);
        r.put_u64(checkpoint.global_step);
        for word in checkpoint.trainer.rng {
            r.put_u64(word);
        }
    });
    let o = &checkpoint.options;
    writer.record(|r| {
        r.put_u64(o.epochs as u64);
        r.put_u64(o.batch_size as u64);
        r.put_f32(o.learning_rate);
        r.put_f32(o.momentum);
        r.put_f32(o.theta);
        r.put_f32(o.lambda_init);
        r.put_f32(o.lambda_step);
        r.put_f32(o.lambda_max);
        r.put_u64(o.eval_every as u64);
        r.put_u64(o.max_eval_samples as u64);
        r.put_u64(o.seed);
        r.put_u8(match o.optimizer {
            OptimizerKind::Sgd => OPTIMIZER_SGD,
            OptimizerKind::Adam => OPTIMIZER_ADAM,
        });
        r.put_u64(o.grad_shards as u64);
    });
    writer.record(|r| {
        r.put_string(&checkpoint.history.name);
        r.put_u32(checkpoint.history.len() as u32);
        for record in checkpoint.history.records() {
            r.put_u64(record.epoch as u64);
            r.put_f32(record.train_loss);
            r.put_f32(record.train_accuracy);
            r.put_u8(u8::from(record.test_accuracy.is_some()));
            r.put_f32(record.test_accuracy.unwrap_or(0.0));
            r.put_f64(record.seconds);
        }
    });
    writer.record_sized(params_bytes, |r| {
        r.put_u32(checkpoint.params.len() as u32);
        for tensor in &checkpoint.params {
            write_tensor(r, tensor);
        }
    });
    writer.record_sized(optim_bytes, |r| {
        r.put_u32(checkpoint.trainer.slots.len() as u32);
        for slot in &checkpoint.trainer.slots {
            match slot {
                OptimizerSlot::Sgd { velocity } => {
                    r.put_u8(OPTIMIZER_SGD);
                    r.put_u32(velocity.len() as u32);
                    for tensor in velocity {
                        write_tensor(r, tensor);
                    }
                }
                OptimizerSlot::Adam { m, v, step_count } => {
                    r.put_u8(OPTIMIZER_ADAM);
                    r.put_u64(*step_count);
                    // m and v grow in lockstep, so one count covers both; an
                    // uneven hand-built slot fails the record-length check
                    // at load with a typed error.
                    r.put_u32(m.len() as u32);
                    for tensor in m {
                        write_tensor(r, tensor);
                    }
                    for tensor in v {
                        write_tensor(r, tensor);
                    }
                }
            }
        }
    });
    writer.record_sized(progress_bytes, |r| match &checkpoint.progress {
        None => r.put_u8(0),
        Some(progress) => {
            r.put_u8(1);
            r.put_u32(progress.order.len() as u32);
            for &index in &progress.order {
                r.put_u32(index as u32);
            }
            r.put_u64(progress.next as u64);
            r.put_f32(progress.loss_sum);
            r.put_u64(progress.batch_count);
            r.put_u64(progress.correct);
            r.put_u64(progress.seen);
            r.put_f64(progress.elapsed_seconds);
        }
    });
    writer.into_vec()
}

/// Deserializes an artifact produced by [`save_bytes`].
///
/// # Errors
///
/// Never panics: any malformed, truncated or trailing-garbage input maps to
/// a typed [`CoreError::Checkpoint`]. Structural sanity (algorithm kind,
/// RNG state, option validity, permutation bounds against the actual
/// dataset) is checked here or at [`crate::TrainSession::resume`] time.
pub fn load_bytes(bytes: &[u8]) -> Result<Checkpoint> {
    let map_header = |e: CodecError| CoreError::Checkpoint(e);
    let (mut reader, version) = Reader::with_versions(
        bytes,
        &CHECKPOINT_MAGIC,
        CHECKPOINT_MIN_VERSION..=CHECKPOINT_VERSION,
    )
    .map_err(map_header)?;

    let mut meta = reader.record("meta record")?;
    let kind = meta.get_u8("algorithm kind")?;
    let lookahead = meta.get_u8("lookahead flag")?;
    let algorithm = algorithm_from_code(kind, lookahead)?;
    let epoch = meta.get_u64("epoch counter")?;
    let global_step = meta.get_u64("global step counter")?;
    let mut rng = [0u64; 4];
    for word in &mut rng {
        *word = meta.get_u64("rng state")?;
    }
    if rng == [0; 4] {
        return Err(corrupt("all-zero RNG state".to_string()));
    }
    meta.finish("meta record")?;

    let mut opt = reader.record("options record")?;
    let mut options = TrainOptions {
        epochs: opt.get_u64("epochs")? as usize,
        batch_size: opt.get_u64("batch_size")? as usize,
        learning_rate: opt.get_f32("learning_rate")?,
        momentum: opt.get_f32("momentum")?,
        theta: opt.get_f32("theta")?,
        lambda_init: opt.get_f32("lambda_init")?,
        lambda_step: opt.get_f32("lambda_step")?,
        lambda_max: opt.get_f32("lambda_max")?,
        eval_every: opt.get_u64("eval_every")? as usize,
        max_eval_samples: opt.get_u64("max_eval_samples")? as usize,
        seed: opt.get_u64("seed")?,
        optimizer: match opt.get_u8("optimizer kind")? {
            OPTIMIZER_SGD => OptimizerKind::Sgd,
            OPTIMIZER_ADAM => OptimizerKind::Adam,
            other => return Err(corrupt(format!("unknown optimizer kind {other}"))),
        },
        grad_shards: 1,
    };
    if version >= 3 {
        options.grad_shards = opt.get_u64("grad_shards")? as usize;
    }
    opt.finish("options record")?;
    options
        .validate()
        .map_err(|e| corrupt(format!("stored options are invalid: {e}")))?;

    let mut hist = reader.record("history record")?;
    let name = hist.get_string(MAX_NAME_LEN, "history name")?;
    let mut history = TrainingHistory::new(name);
    let count = hist.get_u32("history length")?;
    for _ in 0..count {
        let record_epoch = hist.get_u64("history epoch")? as usize;
        let train_loss = hist.get_f32("history train loss")?;
        let train_accuracy = hist.get_f32("history train accuracy")?;
        let has_test = hist.get_u8("history test flag")?;
        let test_value = hist.get_f32("history test accuracy")?;
        let seconds = hist.get_f64("history seconds")?;
        if has_test > 1 {
            return Err(corrupt(format!("history test flag {has_test} is not 0/1")));
        }
        let test_accuracy = (has_test == 1).then_some(test_value);
        history.record_timed(
            record_epoch,
            train_loss,
            train_accuracy,
            test_accuracy,
            seconds,
        );
    }
    hist.finish("history record")?;

    let mut params_record = reader.record("params record")?;
    let param_count = params_record.get_u32("param count")?;
    let mut params = Vec::new();
    for _ in 0..param_count {
        params.push(read_tensor(&mut params_record, "param tensor")?);
    }
    params_record.finish("params record")?;

    let mut optim = reader.record("optimizers record")?;
    let slot_count = optim.get_u32("optimizer count")?;
    let mut slots = Vec::new();
    for _ in 0..slot_count {
        let slot = match optim.get_u8("optimizer slot kind")? {
            OPTIMIZER_SGD => {
                let buffer_count = optim.get_u32("momentum buffer count")?;
                let mut velocity = Vec::new();
                for _ in 0..buffer_count {
                    velocity.push(read_tensor(&mut optim, "momentum tensor")?);
                }
                OptimizerSlot::Sgd { velocity }
            }
            OPTIMIZER_ADAM => {
                let step_count = optim.get_u64("Adam step count")?;
                let moment_count = optim.get_u32("Adam moment count")?;
                let mut m = Vec::new();
                for _ in 0..moment_count {
                    m.push(read_tensor(&mut optim, "Adam first-moment tensor")?);
                }
                let mut v = Vec::new();
                for _ in 0..moment_count {
                    v.push(read_tensor(&mut optim, "Adam second-moment tensor")?);
                }
                for (index, (a, b)) in m.iter().zip(&v).enumerate() {
                    if a.shape() != b.shape() {
                        return Err(corrupt(format!(
                            "Adam moment pair {index} has mismatched shapes {:?} vs {:?}",
                            a.shape(),
                            b.shape()
                        )));
                    }
                }
                OptimizerSlot::Adam { m, v, step_count }
            }
            other => return Err(corrupt(format!("unknown optimizer slot kind {other}"))),
        };
        slots.push(slot);
    }
    optim.finish("optimizers record")?;

    let mut prog = reader.record("progress record")?;
    let present = prog.get_u8("progress flag")?;
    let progress = match present {
        0 => None,
        1 => {
            let order_len = prog.get_u32("epoch order length")? as usize;
            prog.ensure_fits(order_len, 4, "epoch order")?;
            let mut order = Vec::with_capacity(order_len);
            for _ in 0..order_len {
                order.push(prog.get_u32("epoch order index")? as usize);
            }
            Some(EpochProgress {
                order,
                next: prog.get_u64("epoch cursor")? as usize,
                loss_sum: prog.get_f32("epoch loss sum")?,
                batch_count: prog.get_u64("epoch batch count")?,
                correct: prog.get_u64("epoch correct count")?,
                seen: prog.get_u64("epoch seen count")?,
                elapsed_seconds: prog.get_f64("epoch elapsed seconds")?,
            })
        }
        other => return Err(corrupt(format!("progress flag {other} is not 0/1"))),
    };
    prog.finish("progress record")?;
    reader.finish("checkpoint")?;

    Ok(Checkpoint {
        algorithm,
        options,
        epoch,
        global_step,
        trainer: TrainerState { rng, slots },
        history,
        params,
        progress,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        let mut history = TrainingHistory::new("FF-INT8");
        history.record_timed(0, 1.25, 0.5, Some(0.45), 3.5);
        history.record_timed(1, 0.75, 0.0, None, 2.25);
        Checkpoint {
            algorithm: Algorithm::FfInt8 { lookahead: true },
            options: TrainOptions::fast_test(),
            epoch: 2,
            global_step: 40,
            trainer: TrainerState {
                rng: [1, 2, 3, 4],
                slots: vec![
                    OptimizerSlot::Sgd {
                        velocity: vec![Tensor::ones(&[2, 3]), Tensor::zeros(&[3])],
                    },
                    OptimizerSlot::Adam {
                        m: vec![Tensor::ones(&[4])],
                        v: vec![Tensor::zeros(&[4])],
                        step_count: 17,
                    },
                ],
            },
            history,
            params: vec![Tensor::ones(&[2, 3]), Tensor::zeros(&[3])],
            progress: Some(EpochProgress {
                order: vec![3, 1, 0, 2],
                next: 2,
                loss_sum: 0.5,
                batch_count: 1,
                correct: 0,
                seen: 0,
                elapsed_seconds: 0.125,
            }),
        }
    }

    /// Serializes `checkpoint` in the historic version-2 layout (no
    /// `grad_shards` word) — the artifacts every pre-sharding build wrote.
    fn save_bytes_v2(checkpoint: &Checkpoint) -> Vec<u8> {
        let mut writer = Writer::new(&CHECKPOINT_MAGIC, 2);
        let (kind, lookahead) = algorithm_code(checkpoint.algorithm);
        writer.record(|r| {
            r.put_u8(kind);
            r.put_u8(lookahead);
            r.put_u64(checkpoint.epoch);
            r.put_u64(checkpoint.global_step);
            for word in checkpoint.trainer.rng {
                r.put_u64(word);
            }
        });
        let o = &checkpoint.options;
        writer.record(|r| {
            r.put_u64(o.epochs as u64);
            r.put_u64(o.batch_size as u64);
            r.put_f32(o.learning_rate);
            r.put_f32(o.momentum);
            r.put_f32(o.theta);
            r.put_f32(o.lambda_init);
            r.put_f32(o.lambda_step);
            r.put_f32(o.lambda_max);
            r.put_u64(o.eval_every as u64);
            r.put_u64(o.max_eval_samples as u64);
            r.put_u64(o.seed);
            r.put_u8(match o.optimizer {
                OptimizerKind::Sgd => OPTIMIZER_SGD,
                OptimizerKind::Adam => OPTIMIZER_ADAM,
            });
        });
        writer.record(|r| {
            r.put_string(&checkpoint.history.name);
            r.put_u32(checkpoint.history.len() as u32);
            for record in checkpoint.history.records() {
                r.put_u64(record.epoch as u64);
                r.put_f32(record.train_loss);
                r.put_f32(record.train_accuracy);
                r.put_u8(u8::from(record.test_accuracy.is_some()));
                r.put_f32(record.test_accuracy.unwrap_or(0.0));
                r.put_f64(record.seconds);
            }
        });
        writer.record(|r| {
            r.put_u32(checkpoint.params.len() as u32);
            for tensor in &checkpoint.params {
                write_tensor(r, tensor);
            }
        });
        writer.record(|r| {
            r.put_u32(checkpoint.trainer.slots.len() as u32);
            for slot in &checkpoint.trainer.slots {
                match slot {
                    OptimizerSlot::Sgd { velocity } => {
                        r.put_u8(OPTIMIZER_SGD);
                        r.put_u32(velocity.len() as u32);
                        for tensor in velocity {
                            write_tensor(r, tensor);
                        }
                    }
                    OptimizerSlot::Adam { m, v, step_count } => {
                        r.put_u8(OPTIMIZER_ADAM);
                        r.put_u64(*step_count);
                        r.put_u32(m.len() as u32);
                        for tensor in m {
                            write_tensor(r, tensor);
                        }
                        for tensor in v {
                            write_tensor(r, tensor);
                        }
                    }
                }
            }
        });
        writer.record(|r| match &checkpoint.progress {
            None => r.put_u8(0),
            Some(progress) => {
                r.put_u8(1);
                r.put_u32(progress.order.len() as u32);
                for &index in &progress.order {
                    r.put_u32(index as u32);
                }
                r.put_u64(progress.next as u64);
                r.put_f32(progress.loss_sum);
                r.put_u64(progress.batch_count);
                r.put_u64(progress.correct);
                r.put_u64(progress.seen);
                r.put_f64(progress.elapsed_seconds);
            }
        });
        writer.into_vec()
    }

    #[test]
    fn version_2_artifacts_load_with_default_grad_shards() {
        // Pre-sharding builds wrote version 2 without the grad_shards word;
        // their runs were by definition unsharded, so loading one must give
        // grad_shards = 1 and everything else verbatim.
        let mut checkpoint = sample_checkpoint();
        checkpoint.options.grad_shards = 1;
        let v2_bytes = save_bytes_v2(&checkpoint);
        let restored = load_bytes(&v2_bytes).unwrap();
        assert_eq!(restored, checkpoint);
        assert_eq!(restored.options.grad_shards, 1);
        // Version 1 (and future versions) stay rejected.
        let mut too_old = v2_bytes.clone();
        too_old[4] = 1;
        assert!(matches!(
            load_bytes(&too_old),
            Err(CoreError::Checkpoint(CodecError::UnsupportedVersion { .. }))
        ));
        let mut too_new = v2_bytes;
        too_new[4] = (CHECKPOINT_VERSION + 1) as u8;
        assert!(load_bytes(&too_new).is_err());
    }

    #[test]
    fn sharded_options_roundtrip_in_version_3() {
        let mut checkpoint = sample_checkpoint();
        checkpoint.options.grad_shards = 4;
        let bytes = save_bytes(&checkpoint);
        let restored = load_bytes(&bytes).unwrap();
        assert_eq!(restored.options.grad_shards, 4);
        assert_eq!(restored, checkpoint);
        assert_eq!(save_bytes(&restored), bytes);
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let checkpoint = sample_checkpoint();
        let bytes = save_bytes(&checkpoint);
        let restored = load_bytes(&bytes).unwrap();
        assert_eq!(restored, checkpoint);
        assert_eq!(save_bytes(&restored), bytes, "re-serialization is verbatim");
    }

    #[test]
    fn boundary_checkpoint_roundtrips_without_progress() {
        let mut checkpoint = sample_checkpoint();
        checkpoint.progress = None;
        checkpoint.algorithm = Algorithm::BpGdai8;
        let restored = load_bytes(&save_bytes(&checkpoint)).unwrap();
        assert_eq!(restored, checkpoint);
    }

    #[test]
    fn algorithm_codes_roundtrip() {
        for algorithm in [
            Algorithm::BpFp32,
            Algorithm::BpInt8,
            Algorithm::BpUi8,
            Algorithm::BpGdai8,
            Algorithm::FfInt8 { lookahead: true },
            Algorithm::FfInt8 { lookahead: false },
            Algorithm::FfFp32 { lookahead: true },
            Algorithm::FfFp32 { lookahead: false },
        ] {
            let (kind, lookahead) = algorithm_code(algorithm);
            assert_eq!(algorithm_from_code(kind, lookahead).unwrap(), algorithm);
        }
        assert!(algorithm_from_code(9, 0).is_err());
        assert!(algorithm_from_code(4, 2).is_err());
    }

    #[test]
    fn zero_rng_state_is_rejected() {
        let mut checkpoint = sample_checkpoint();
        checkpoint.trainer.rng = [0; 4];
        assert!(matches!(
            load_bytes(&save_bytes(&checkpoint)),
            Err(CoreError::Checkpoint(_))
        ));
    }

    #[test]
    fn invalid_stored_options_are_rejected() {
        let mut checkpoint = sample_checkpoint();
        checkpoint.options.learning_rate = f32::NAN;
        assert!(matches!(
            load_bytes(&save_bytes(&checkpoint)),
            Err(CoreError::Checkpoint(_))
        ));
    }

    #[test]
    fn adam_options_and_slots_roundtrip() {
        let mut checkpoint = sample_checkpoint();
        checkpoint.options.optimizer = OptimizerKind::Adam;
        checkpoint.trainer.slots = vec![OptimizerSlot::Adam {
            m: vec![Tensor::ones(&[2, 3]), Tensor::zeros(&[3])],
            v: vec![Tensor::zeros(&[2, 3]), Tensor::ones(&[3])],
            step_count: 123,
        }];
        let bytes = save_bytes(&checkpoint);
        let restored = load_bytes(&bytes).unwrap();
        assert_eq!(restored, checkpoint);
        assert_eq!(save_bytes(&restored), bytes);
    }

    #[test]
    fn uneven_adam_moments_fail_to_load_with_typed_error() {
        let mut checkpoint = sample_checkpoint();
        checkpoint.trainer.slots = vec![OptimizerSlot::Adam {
            m: vec![Tensor::ones(&[3])],
            v: Vec::new(),
            step_count: 1,
        }];
        assert!(matches!(
            load_bytes(&save_bytes(&checkpoint)),
            Err(CoreError::Checkpoint(_))
        ));
    }

    #[test]
    fn step_file_names_roundtrip_and_reject_foreign_names() {
        assert_eq!(step_file_name(42), "step-0000000042.ff8c");
        assert_eq!(parse_step_file_name("step-0000000042.ff8c"), Some(42));
        assert_eq!(
            parse_step_file_name(&step_file_name(u32::MAX as u64)),
            Some(u32::MAX as u64)
        );
        for foreign in [
            "step-42.ff8c",         // unpadded
            "step-00000000xx.ff8c", // non-digits
            "model.ff8c",           // no step prefix
            "step-0000000042.ff8s", // wrong extension
            "step-0000000042",      // no extension
        ] {
            assert_eq!(parse_step_file_name(foreign), None, "{foreign}");
        }
    }

    #[test]
    fn rotate_keeps_newest_and_ignores_foreign_files() {
        let dir = std::env::temp_dir().join("ff8c_rotate_unit");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        for step in [2u64, 30, 4, 100] {
            std::fs::write(dir.join(step_file_name(step)), b"x").unwrap();
        }
        std::fs::write(dir.join("keep-me.txt"), b"y").unwrap();
        assert_eq!(latest(&dir).unwrap(), Some(dir.join(step_file_name(100))));
        let removed = rotate(&dir, 2).unwrap();
        assert_eq!(
            removed,
            vec![dir.join(step_file_name(2)), dir.join(step_file_name(4))]
        );
        assert!(dir.join(step_file_name(30)).exists());
        assert!(dir.join(step_file_name(100)).exists());
        assert!(dir.join("keep-me.txt").exists());
        // Already within budget: nothing to do.
        assert!(rotate(&dir, 2).unwrap().is_empty());
        assert!(matches!(
            rotate(&dir, 0),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            rotate(dir.join("missing-subdir"), 1),
            Err(CoreError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_save_load_roundtrip() {
        let checkpoint = sample_checkpoint();
        let path = std::env::temp_dir().join("ff8c_unit_roundtrip.ff8c");
        checkpoint.save(&path).unwrap();
        let restored = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored, checkpoint);
        assert!(matches!(
            Checkpoint::load("/nonexistent/dir/x.ff8c"),
            Err(CoreError::Io { .. })
        ));
    }
}
