//! Step-driven training sessions: observe, pause, checkpoint and cancel a
//! training run instead of blocking inside a monolithic loop.
//!
//! The paper targets *edge devices* — machines that lose power, get
//! preempted and train in bursts — so the training API must be resumable and
//! observable. This module provides:
//!
//! - [`TrainerCore`]: the uniform `step_batch` / `evaluate` interface both
//!   [`crate::FfTrainer`] and [`crate::BpTrainer`] (all four gradient
//!   policies) implement, so one driver loop serves every algorithm;
//! - [`TrainSession`]: the driver. [`TrainSession::step`] trains exactly one
//!   mini-batch; [`TrainSession::run_epoch`] and [`TrainSession::run`] build
//!   on it. The classic [`crate::train`] entry point is now a thin wrapper
//!   over `TrainSession::run`;
//! - typed [`TrainEvent`]s delivered to caller-registered observers, whose
//!   [`SessionControl`] return value implements early stopping and
//!   cancellation;
//! - [`TrainSession::checkpoint`] / [`TrainSession::resume`]: capture the
//!   complete training state (parameters, optimizer momentum, RNG stream
//!   position, epoch/step counters, mid-epoch batch order and loss
//!   accumulators, history) such that `save → load → resume` reproduces the
//!   uninterrupted run **bit-exactly** (see [`crate::checkpoint`]).
//!
//! # Examples
//!
//! Epoch-driven training with an early-stopping observer:
//!
//! ```
//! use ff_core::{Algorithm, SessionControl, TrainEvent, TrainOptions, TrainSession};
//! use ff_data::{synthetic_mnist, SyntheticConfig};
//! use ff_models::small_mlp;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), ff_core::CoreError> {
//! let (train_set, test_set) = synthetic_mnist(&SyntheticConfig::small());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = small_mlp(784, &[32], 10, &mut rng);
//! let options = TrainOptions::fast_test();
//! let mut session = TrainSession::new(
//!     &mut net,
//!     &train_set,
//!     &test_set,
//!     Algorithm::FfInt8 { lookahead: true },
//!     &options,
//! )?;
//! session.on_event(|event| match event {
//!     // Stop as soon as the test accuracy clears 95%.
//!     TrainEvent::EpochEnd {
//!         test_accuracy: Some(acc),
//!         ..
//!     } if *acc > 0.95 => SessionControl::Stop,
//!     _ => SessionControl::Continue,
//! });
//! let history = session.run()?;
//! assert!(!history.is_empty());
//! # Ok(())
//! # }
//! ```

use crate::baselines::{BpTrainer, GradientPolicy};
use crate::checkpoint::{Checkpoint, EpochProgress};
use crate::config::{Algorithm, Precision, TrainOptions};
use crate::ff_trainer::FfTrainer;
use crate::optimizer::OptimizerSlot;
use crate::{CoreError, Result};
use ff_data::{Batch, Dataset};
use ff_metrics::TrainingHistory;
use ff_nn::Sequential;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::time::Instant;

/// Where one training step's wall-clock time went, in nanoseconds — the
/// training-side analogue of the serving path's stage histograms. Carried
/// by [`StepStats`] and [`TrainEvent::StepEnd`] so observers can feed a
/// metrics registry without re-timing anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepSpans {
    /// Input preparation: building the positive/negative overlay sets and
    /// reshaping them for the network (FF), or overlaying/flattening the
    /// input batch (backpropagation).
    pub quantize_ns: u64,
    /// Forward passes plus loss and gradient accumulation.
    pub forward_ns: u64,
    /// The optimizer step (and its packed-plan invalidation).
    pub update_ns: u64,
}

impl StepSpans {
    /// Sum of all three spans.
    pub fn total_ns(&self) -> u64 {
        self.quantize_ns
            .saturating_add(self.forward_ns)
            .saturating_add(self.update_ns)
    }
}

/// Saturating nanosecond reading of `start.elapsed()`, shared by the
/// trainers' span timing.
pub(crate) fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Statistics returned by one [`TrainerCore::step_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// The batch's training loss (summed FF loss, or mean cross-entropy).
    pub loss: f32,
    /// Correctly classified training samples in this batch, for trainers
    /// whose forward pass yields predictions for free (backpropagation).
    /// Zero for trainers that report [`TrainerCore::tracks_running_accuracy`]
    /// `= false`.
    pub correct: usize,
    /// Samples scored into `correct` (zero when accuracy is not tracked).
    pub seen: usize,
    /// Per-phase timing of the step.
    pub spans: StepSpans,
}

/// A snapshot of a trainer's mutable state, captured into (and restored
/// from) `FF8C` checkpoints.
///
/// Network parameters live in the checkpoint itself; this struct covers what
/// the *trainer* owns: the RNG stream position and the per-optimizer state
/// ([`crate::FfTrainer`] keeps one optimizer per layer,
/// [`crate::BpTrainer`] a single one — hence the `Vec` of slots). Each slot
/// is the typed state of its optimizer family ([`OptimizerSlot`]): SGD
/// momentum buffers, or Adam moments plus the bias-correction step count.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerState {
    /// Full xoshiro256++ state of the trainer's RNG.
    pub rng: [u64; 4],
    /// Optimizer state, one entry per optimizer slot the trainer owns.
    pub slots: Vec<OptimizerSlot>,
}

/// The uniform per-batch training interface behind [`TrainSession`].
///
/// Both trainer families implement it: [`crate::FfTrainer`] (FF-INT8 /
/// FF-FP32, with or without look-ahead) and [`crate::BpTrainer`] (all four
/// [`crate::GradientPolicy`] variants). The session owns the epoch loop —
/// shuffling, λ scheduling, evaluation cadence, history, events — while the
/// trainer owns the numerics of one batch and one evaluation.
pub trait TrainerCore {
    /// The algorithm this trainer implements (also names the history).
    fn algorithm(&self) -> Algorithm;

    /// The hyperparameters the trainer was constructed with.
    fn options(&self) -> &TrainOptions;

    /// Trains on one mini-batch: forward, loss, backward, optimizer step.
    ///
    /// `lambda` is the current look-ahead coefficient (always `0.0` for
    /// backpropagation and for FF without look-ahead).
    ///
    /// # Errors
    ///
    /// Propagates layer/loss errors.
    fn step_batch(
        &mut self,
        net: &mut Sequential,
        batch: &Batch,
        num_classes: usize,
        lambda: f32,
    ) -> Result<StepStats>;

    /// Classification accuracy on (a capped prefix of) `dataset`.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    fn evaluate(&mut self, net: &mut Sequential, dataset: &Dataset) -> Result<f32>;

    /// `true` when [`StepStats::correct`] / [`StepStats::seen`] carry a
    /// running training accuracy (backpropagation); `false` when training
    /// accuracy requires a separate evaluation pass (Forward-Forward).
    fn tracks_running_accuracy(&self) -> bool;

    /// The trainer's RNG; the session shuffles each epoch's sample order
    /// through it so the entire stochastic stream of a run lives in one
    /// checkpointable generator.
    fn rng_mut(&mut self) -> &mut StdRng;

    /// Captures RNG + optimizer state for a checkpoint.
    fn export_state(&self) -> TrainerState;

    /// Restores state captured by [`TrainerCore::export_state`].
    ///
    /// `net` is the network this trainer will train — momentum buffers are
    /// validated against its parameter shapes so a mismatched checkpoint
    /// fails here with a typed error instead of panicking inside the
    /// optimizer on the first step.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CheckpointMismatch`] when the state's shape does
    /// not fit this trainer and network.
    fn import_state(&mut self, state: &TrainerState, net: &mut Sequential) -> Result<()>;
}

impl<T: TrainerCore + ?Sized> TrainerCore for &mut T {
    fn algorithm(&self) -> Algorithm {
        (**self).algorithm()
    }

    fn options(&self) -> &TrainOptions {
        (**self).options()
    }

    fn step_batch(
        &mut self,
        net: &mut Sequential,
        batch: &Batch,
        num_classes: usize,
        lambda: f32,
    ) -> Result<StepStats> {
        (**self).step_batch(net, batch, num_classes, lambda)
    }

    fn evaluate(&mut self, net: &mut Sequential, dataset: &Dataset) -> Result<f32> {
        (**self).evaluate(net, dataset)
    }

    fn tracks_running_accuracy(&self) -> bool {
        (**self).tracks_running_accuracy()
    }

    fn rng_mut(&mut self) -> &mut StdRng {
        (**self).rng_mut()
    }

    fn export_state(&self) -> TrainerState {
        (**self).export_state()
    }

    fn import_state(&mut self, state: &TrainerState, net: &mut Sequential) -> Result<()> {
        (**self).import_state(state, net)
    }
}

/// Which dataset split an evaluation ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalSplit {
    /// The training set.
    Train,
    /// The held-out test set.
    Test,
}

/// Typed notifications a [`TrainSession`] delivers to its observers.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainEvent {
    /// A new epoch is about to train its first batch.
    EpochStart {
        /// Epoch index (0-based).
        epoch: usize,
        /// The look-ahead coefficient in effect this epoch.
        lambda: f32,
    },
    /// The λ schedule moved to a new value (emitted at the first epoch it
    /// applies to; only Forward-Forward runs with look-ahead emit this).
    LambdaChanged {
        /// Epoch at which the new value takes effect.
        epoch: usize,
        /// The new coefficient.
        lambda: f32,
    },
    /// One mini-batch was trained.
    StepEnd {
        /// Epoch the step belongs to.
        epoch: usize,
        /// Step index within the epoch (0-based).
        step_in_epoch: usize,
        /// Monotonic step counter across the whole run.
        global_step: u64,
        /// The batch's training loss.
        loss: f32,
        /// Where the step's time went (quantize / forward / update).
        spans: StepSpans,
    },
    /// An evaluation pass finished.
    Eval {
        /// Epoch the evaluation belongs to.
        epoch: usize,
        /// Which split was scored.
        split: EvalSplit,
        /// Accuracy in `[0, 1]`.
        accuracy: f32,
    },
    /// An epoch finished (its history record carries the same values).
    EpochEnd {
        /// Epoch index.
        epoch: usize,
        /// Mean training loss over the epoch's batches.
        mean_loss: f32,
        /// Training accuracy (running for BP, evaluated for FF, `0.0` on
        /// FF epochs without evaluation).
        train_accuracy: f32,
        /// Test accuracy when this epoch evaluated.
        test_accuracy: Option<f32>,
        /// Wall-clock seconds the epoch took.
        seconds: f64,
    },
}

/// Observer verdict after each event: keep training or stop the session.
///
/// The `ControlFlow`-style return is what lets a callback implement early
/// stopping or cancellation without the session exposing channels or flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SessionControl {
    /// Keep training.
    #[default]
    Continue,
    /// Stop after the current step; [`TrainSession::run`] returns the
    /// history recorded so far.
    Stop,
}

/// What a [`TrainSession::step`] (or [`TrainSession::run_epoch`]) call left
/// the session in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Mid-epoch: more steps remain in the current epoch.
    Running,
    /// The step completed epoch `epoch`; more epochs remain.
    EpochFinished {
        /// The epoch that just finished.
        epoch: usize,
    },
    /// Every configured epoch has trained; further steps are no-ops.
    Finished,
    /// An observer returned [`SessionControl::Stop`]; further steps are
    /// no-ops.
    Stopped,
}

/// A registered event callback (see [`TrainSession::on_event`]).
type Observer<'a> = Box<dyn FnMut(&TrainEvent) -> SessionControl + 'a>;

/// A registered checkpoint-saved callback (see
/// [`TrainSession::on_checkpoint`]).
type CheckpointHook<'a> = Box<dyn FnMut(&std::path::Path) + 'a>;

/// Configuration of the built-in auto-checkpoint observer (see
/// [`TrainSession::auto_checkpoint`]): persist the session every
/// `every_steps` mini-batches, keeping only the newest `keep_last`
/// artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutoCheckpoint {
    /// Directory the `step-<step>.ff8c` artifacts are written to (created
    /// if missing).
    pub dir: std::path::PathBuf,
    /// Checkpoint every this many global steps.
    pub every_steps: u64,
    /// How many artifacts survive rotation
    /// ([`crate::checkpoint::rotate`]).
    pub keep_last: usize,
}

impl AutoCheckpoint {
    /// Checkpoint into `dir` every `every_steps` steps, keeping the newest
    /// `keep_last` artifacts.
    pub fn new(dir: impl Into<std::path::PathBuf>, every_steps: u64, keep_last: usize) -> Self {
        AutoCheckpoint {
            dir: dir.into(),
            every_steps,
            keep_last,
        }
    }
}

/// Progress bookkeeping of the epoch currently being trained.
struct EpochState {
    /// Shuffled sample order for this epoch; batches are consecutive
    /// `batch_size` chunks of it.
    order: Vec<usize>,
    /// Offset of the next batch's first sample within `order`.
    next: usize,
    loss_sum: f32,
    batch_count: usize,
    correct: usize,
    seen: usize,
    lambda: f32,
    /// Wall-clock seconds spent on this epoch before the latest (re)start —
    /// non-zero only for epochs resumed from a mid-epoch checkpoint.
    elapsed_before: f64,
    started: Instant,
}

/// A step-driven training run over one network and one dataset pair.
///
/// See the [module docs](self) for the motivation and an example; see
/// [`crate::checkpoint`] for the persistence format.
pub struct TrainSession<'a> {
    net: &'a mut Sequential,
    train_set: &'a Dataset,
    test_set: &'a Dataset,
    options: TrainOptions,
    trainer: Box<dyn TrainerCore + 'a>,
    observers: Vec<Observer<'a>>,
    history: TrainingHistory,
    /// Index of the epoch the next step belongs to.
    epoch: usize,
    global_step: u64,
    current: Option<EpochState>,
    stopped: bool,
    /// λ in effect for the most recently started epoch, for change events.
    last_lambda: Option<f32>,
    /// Built-in periodic-checkpoint observer, `None` unless enabled.
    auto_checkpoint: Option<AutoCheckpoint>,
    /// Callbacks fired with the path of every auto-checkpoint artifact.
    checkpoint_hooks: Vec<CheckpointHook<'a>>,
}

impl std::fmt::Debug for TrainSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainSession")
            .field("algorithm", &self.trainer.algorithm().label())
            .field("epoch", &self.epoch)
            .field("global_step", &self.global_step)
            .field("observers", &self.observers.len())
            .field("stopped", &self.stopped)
            .finish()
    }
}

impl<'a> TrainSession<'a> {
    /// Creates a session for `algorithm`, constructing the matching trainer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `options` fails
    /// [`TrainOptions::validate`] or the training set is empty — the checks
    /// run *here*, at session creation, instead of failing deep inside the
    /// loop.
    pub fn new(
        net: &'a mut Sequential,
        train_set: &'a Dataset,
        test_set: &'a Dataset,
        algorithm: Algorithm,
        options: &TrainOptions,
    ) -> Result<Self> {
        let trainer: Box<dyn TrainerCore + 'a> = match algorithm {
            Algorithm::BpFp32 => Box::new(BpTrainer::new(GradientPolicy::Fp32, options.clone())),
            Algorithm::BpInt8 => {
                Box::new(BpTrainer::new(GradientPolicy::DirectInt8, options.clone()))
            }
            Algorithm::BpUi8 => Box::new(BpTrainer::new(GradientPolicy::Ui8, options.clone())),
            Algorithm::BpGdai8 => Box::new(BpTrainer::new(GradientPolicy::Gdai8, options.clone())),
            Algorithm::FfInt8 { lookahead } => {
                Box::new(FfTrainer::new(Precision::Int8, lookahead, options.clone()))
            }
            Algorithm::FfFp32 { lookahead } => {
                Box::new(FfTrainer::new(Precision::Fp32, lookahead, options.clone()))
            }
        };
        Self::from_boxed(net, train_set, test_set, trainer)
    }

    /// Creates a session around an existing trainer (any [`TrainerCore`]
    /// implementation, including `&mut FfTrainer` / `&mut BpTrainer`).
    ///
    /// # Errors
    ///
    /// Same validation as [`TrainSession::new`].
    pub fn with_trainer<T: TrainerCore + 'a>(
        net: &'a mut Sequential,
        train_set: &'a Dataset,
        test_set: &'a Dataset,
        trainer: T,
    ) -> Result<Self> {
        Self::from_boxed(net, train_set, test_set, Box::new(trainer))
    }

    fn from_boxed(
        net: &'a mut Sequential,
        train_set: &'a Dataset,
        test_set: &'a Dataset,
        trainer: Box<dyn TrainerCore + 'a>,
    ) -> Result<Self> {
        trainer.options().validate()?;
        if train_set.is_empty() {
            return Err(CoreError::InvalidConfig {
                message: "training set is empty".to_string(),
            });
        }
        let options = trainer.options().clone();
        let history = TrainingHistory::new(trainer.algorithm().label());
        Ok(TrainSession {
            net,
            train_set,
            test_set,
            options,
            trainer,
            observers: Vec::new(),
            history,
            epoch: 0,
            global_step: 0,
            current: None,
            stopped: false,
            last_lambda: None,
            auto_checkpoint: None,
            checkpoint_hooks: Vec::new(),
        })
    }

    /// Enables the built-in auto-checkpoint observer: after every
    /// `config.every_steps`-th [`TrainSession::step`] the session persists
    /// itself to `config.dir` as `step-<global_step>.ff8c`
    /// ([`crate::checkpoint::step_file_name`]) and rotates the directory
    /// down to the newest `config.keep_last` artifacts
    /// ([`crate::checkpoint::rotate`]). After a crash,
    /// [`crate::checkpoint::latest`] + [`TrainSession::resume`] continue
    /// the run bit-exactly from the last saved step.
    ///
    /// The directory is created eagerly so a misconfigured path fails here,
    /// not hundreds of steps into training.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `every_steps` or
    /// `keep_last` is zero, and [`CoreError::Io`] when the directory cannot
    /// be created.
    pub fn auto_checkpoint(&mut self, config: AutoCheckpoint) -> Result<()> {
        if config.every_steps == 0 {
            return Err(CoreError::InvalidConfig {
                message: "auto-checkpoint every_steps must be at least 1".to_string(),
            });
        }
        if config.keep_last == 0 {
            return Err(CoreError::InvalidConfig {
                message: "auto-checkpoint keep_last must be at least 1".to_string(),
            });
        }
        std::fs::create_dir_all(&config.dir).map_err(|e| CoreError::Io {
            message: format!("creating {}: {e}", config.dir.display()),
        })?;
        self.auto_checkpoint = Some(config);
        Ok(())
    }

    /// Registers an observer. Every [`TrainEvent`] is delivered to every
    /// observer in registration order; any observer returning
    /// [`SessionControl::Stop`] stops the session after the current step.
    pub fn on_event<F: FnMut(&TrainEvent) -> SessionControl + 'a>(&mut self, observer: F) {
        self.observers.push(Box::new(observer));
    }

    /// Registers a callback fired with the path of every artifact the
    /// [`TrainSession::auto_checkpoint`] observer writes, *after* the save
    /// and rotation succeed — the path points at a complete, validated
    /// `FF8C` file that survived rotation.
    ///
    /// This is the train-to-serve handoff: a co-located serving loop
    /// registers a hook that reloads the checkpoint into its model registry
    /// (`ff-serve`'s `ModelRegistry::swap_from_checkpoint`), so a training
    /// run continuously publishes its latest weights to live traffic with
    /// no coordination beyond this callback. Hooks run on the training
    /// thread in registration order; they cannot fail the step — a hook
    /// that cannot use the artifact (e.g. a rejected swap) must handle that
    /// itself.
    pub fn on_checkpoint<F: FnMut(&std::path::Path) + 'a>(&mut self, hook: F) {
        self.checkpoint_hooks.push(Box::new(hook));
    }

    /// The algorithm this session trains with.
    pub fn algorithm(&self) -> Algorithm {
        self.trainer.algorithm()
    }

    /// The session's hyperparameters.
    pub fn options(&self) -> &TrainOptions {
        &self.options
    }

    /// Index of the epoch the next step belongs to (== number of completed
    /// epochs).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Mini-batches trained so far across the whole run.
    pub fn global_step(&self) -> u64 {
        self.global_step
    }

    /// The per-epoch history recorded so far.
    pub fn history(&self) -> &TrainingHistory {
        &self.history
    }

    /// `true` once every configured epoch has trained or an observer
    /// stopped the session.
    pub fn is_finished(&self) -> bool {
        self.stopped || self.epoch >= self.options.epochs
    }

    /// The look-ahead coefficient for `epoch` under this session's
    /// algorithm: the [`TrainOptions::lambda_at_epoch`] schedule for FF with
    /// look-ahead, `0.0` otherwise.
    pub fn lambda_for_epoch(&self, epoch: usize) -> f32 {
        if self.trainer.algorithm().has_lookahead() {
            self.options.lambda_at_epoch(epoch)
        } else {
            0.0
        }
    }

    /// Evaluates test-set accuracy with the trainer's own evaluator
    /// (goodness sweep for FF, logits argmax for BP), without recording
    /// anything.
    ///
    /// Note that for INT8 Forward-Forward trainers an evaluation draws
    /// stochastic-rounding seeds from the trainer RNG, so it advances the
    /// run's random stream — by design, checkpoints capture that too.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn eval(&mut self) -> Result<f32> {
        self.trainer.evaluate(self.net, self.test_set)
    }

    fn emit(&mut self, event: TrainEvent) {
        for observer in &mut self.observers {
            if observer(&event) == SessionControl::Stop {
                self.stopped = true;
            }
        }
    }

    /// Starts the next epoch: computes λ, shuffles the sample order through
    /// the trainer's RNG (same stream the monolithic loop used), and emits
    /// [`TrainEvent::EpochStart`] (+ [`TrainEvent::LambdaChanged`]).
    fn begin_epoch(&mut self) {
        let epoch = self.epoch;
        let lambda = self.lambda_for_epoch(epoch);
        let mut order: Vec<usize> = (0..self.train_set.len()).collect();
        order.shuffle(self.trainer.rng_mut());
        self.current = Some(EpochState {
            order,
            next: 0,
            loss_sum: 0.0,
            batch_count: 0,
            correct: 0,
            seen: 0,
            lambda,
            elapsed_before: 0.0,
            started: Instant::now(),
        });
        let lambda_changed =
            self.trainer.algorithm().has_lookahead() && self.last_lambda != Some(lambda);
        self.last_lambda = Some(lambda);
        self.emit(TrainEvent::EpochStart { epoch, lambda });
        if lambda_changed {
            self.emit(TrainEvent::LambdaChanged { epoch, lambda });
        }
    }

    /// Trains exactly one mini-batch and returns where that left the
    /// session. Call in a loop (or use [`TrainSession::run_epoch`] /
    /// [`TrainSession::run`]); once `Finished` or `Stopped` is returned,
    /// further calls are no-ops returning the same status.
    ///
    /// # Errors
    ///
    /// Propagates trainer errors; the session stays resumable (the failed
    /// batch is not counted).
    pub fn step(&mut self) -> Result<SessionStatus> {
        if self.stopped {
            return Ok(SessionStatus::Stopped);
        }
        if self.epoch >= self.options.epochs {
            return Ok(SessionStatus::Finished);
        }
        if self.current.is_none() {
            self.begin_epoch();
            if self.stopped {
                return Ok(SessionStatus::Stopped);
            }
        }
        // Cut the next batch out of the shuffled order.
        let (batch, start, end, lambda) = {
            let state = self.current.as_ref().expect("epoch state just ensured");
            let start = state.next;
            let end = (start + self.options.batch_size).min(state.order.len());
            let chunk = &state.order[start..end];
            let images = self.train_set.images().select_rows(chunk)?;
            let labels = chunk.iter().map(|&i| self.train_set.labels()[i]).collect();
            (Batch { images, labels }, start, end, state.lambda)
        };
        let stats =
            self.trainer
                .step_batch(self.net, &batch, self.train_set.num_classes(), lambda)?;
        let epoch = self.epoch;
        let (step_in_epoch, epoch_done) = {
            let state = self.current.as_mut().expect("epoch state exists");
            state.next = end;
            state.loss_sum += stats.loss;
            state.batch_count += 1;
            state.correct += stats.correct;
            state.seen += stats.seen;
            (
                start / self.options.batch_size.max(1),
                end >= state.order.len(),
            )
        };
        let global_step = self.global_step;
        self.global_step += 1;
        self.emit(TrainEvent::StepEnd {
            epoch,
            step_in_epoch,
            global_step,
            loss: stats.loss,
            spans: stats.spans,
        });
        let status = if epoch_done {
            self.finish_epoch()?;
            if self.stopped {
                SessionStatus::Stopped
            } else if self.epoch >= self.options.epochs {
                SessionStatus::Finished
            } else {
                SessionStatus::EpochFinished { epoch }
            }
        } else if self.stopped {
            SessionStatus::Stopped
        } else {
            SessionStatus::Running
        };
        self.maybe_auto_checkpoint()?;
        Ok(status)
    }

    /// The built-in periodic-checkpoint observer (see
    /// [`TrainSession::auto_checkpoint`]): fires after every configured
    /// number of completed steps, *after* any epoch finalization so
    /// boundary checkpoints carry the finished epoch's history record.
    fn maybe_auto_checkpoint(&mut self) -> Result<()> {
        let Some(config) = self.auto_checkpoint.clone() else {
            return Ok(());
        };
        if !self.global_step.is_multiple_of(config.every_steps) {
            return Ok(());
        }
        let path = config
            .dir
            .join(crate::checkpoint::step_file_name(self.global_step));
        self.checkpoint().save(&path)?;
        crate::checkpoint::rotate(&config.dir, config.keep_last)?;
        // The just-saved artifact is the newest, so it survived rotation;
        // hooks always receive a live path.
        for hook in &mut self.checkpoint_hooks {
            hook(&path);
        }
        Ok(())
    }

    /// Finishes the current epoch: evaluation (per the `eval_every`
    /// cadence), history record, [`TrainEvent::EpochEnd`].
    fn finish_epoch(&mut self) -> Result<()> {
        let state = self.current.take().expect("finish_epoch without epoch");
        let epoch = self.epoch;
        let mean_loss = state.loss_sum / state.batch_count.max(1) as f32;
        let evaluate_now = epoch.is_multiple_of(self.options.eval_every.max(1))
            || epoch + 1 == self.options.epochs;
        let (train_accuracy, test_accuracy) = if self.trainer.tracks_running_accuracy() {
            let train_accuracy = state.correct as f32 / state.seen.max(1) as f32;
            let test_accuracy = if evaluate_now {
                let accuracy = self.trainer.evaluate(self.net, self.test_set)?;
                self.emit(TrainEvent::Eval {
                    epoch,
                    split: EvalSplit::Test,
                    accuracy,
                });
                Some(accuracy)
            } else {
                None
            };
            (train_accuracy, test_accuracy)
        } else if evaluate_now {
            let train_accuracy = self.trainer.evaluate(self.net, self.train_set)?;
            self.emit(TrainEvent::Eval {
                epoch,
                split: EvalSplit::Train,
                accuracy: train_accuracy,
            });
            let test_accuracy = self.trainer.evaluate(self.net, self.test_set)?;
            self.emit(TrainEvent::Eval {
                epoch,
                split: EvalSplit::Test,
                accuracy: test_accuracy,
            });
            (train_accuracy, Some(test_accuracy))
        } else {
            (0.0, None)
        };
        let seconds = state.elapsed_before + state.started.elapsed().as_secs_f64();
        self.history
            .record_timed(epoch, mean_loss, train_accuracy, test_accuracy, seconds);
        self.epoch += 1;
        self.emit(TrainEvent::EpochEnd {
            epoch,
            mean_loss,
            train_accuracy,
            test_accuracy,
            seconds,
        });
        Ok(())
    }

    /// Steps until the current epoch finishes (or the run finishes / an
    /// observer stops it).
    ///
    /// # Errors
    ///
    /// Propagates the first step error.
    pub fn run_epoch(&mut self) -> Result<SessionStatus> {
        loop {
            match self.step()? {
                SessionStatus::Running => continue,
                terminal => return Ok(terminal),
            }
        }
    }

    /// Steps until every epoch has trained (or an observer stops the run)
    /// and returns the recorded history.
    ///
    /// # Errors
    ///
    /// Propagates the first step error.
    pub fn run(mut self) -> Result<TrainingHistory> {
        loop {
            match self.step()? {
                SessionStatus::Finished | SessionStatus::Stopped => return Ok(self.history),
                SessionStatus::Running | SessionStatus::EpochFinished { .. } => continue,
            }
        }
    }

    /// Captures the complete training state into a [`Checkpoint`].
    ///
    /// The checkpoint holds everything a bit-exact resume needs: algorithm
    /// and options, epoch/step counters, the trainer's RNG stream position
    /// and optimizer momentum, every layer parameter, the history so far,
    /// and — when taken mid-epoch — the epoch's remaining shuffled batch
    /// order plus its loss/accuracy accumulators.
    pub fn checkpoint(&mut self) -> Checkpoint {
        let progress = self.current.as_ref().map(|state| EpochProgress {
            order: state.order.clone(),
            next: state.next,
            loss_sum: state.loss_sum,
            batch_count: state.batch_count as u64,
            correct: state.correct as u64,
            seen: state.seen as u64,
            elapsed_seconds: state.elapsed_before + state.started.elapsed().as_secs_f64(),
        });
        let params = self
            .net
            .params_mut()
            .iter()
            .map(|p| p.value.clone())
            .collect();
        Checkpoint {
            algorithm: self.trainer.algorithm(),
            options: self.options.clone(),
            epoch: self.epoch as u64,
            global_step: self.global_step,
            trainer: self.trainer.export_state(),
            history: self.history.clone(),
            params,
            progress,
        }
    }

    /// Rebuilds a session from a [`Checkpoint`], restoring parameters into
    /// `net` and continuing the run bit-exactly where the checkpoint was
    /// taken.
    ///
    /// `net` must have the same architecture the checkpoint was taken from
    /// (the caller rebuilds it with any RNG — every parameter is
    /// overwritten); `train_set` must have the same length and class count.
    ///
    /// # Errors
    ///
    /// [`CoreError::CheckpointMismatch`] when the parameter count/shapes or
    /// the dataset geometry disagree with the checkpoint;
    /// [`CoreError::InvalidConfig`] when the checkpoint's options fail
    /// validation.
    pub fn resume(
        net: &'a mut Sequential,
        train_set: &'a Dataset,
        test_set: &'a Dataset,
        checkpoint: &Checkpoint,
    ) -> Result<Self> {
        let mut session = Self::new(
            net,
            train_set,
            test_set,
            checkpoint.algorithm,
            &checkpoint.options,
        )?;
        session
            .trainer
            .import_state(&checkpoint.trainer, session.net)?;
        checkpoint.restore_params(session.net)?;
        session.history = checkpoint.history.clone();
        session.epoch = checkpoint.epoch as usize;
        session.global_step = checkpoint.global_step;
        if let Some(progress) = &checkpoint.progress {
            let state = session.restore_progress(progress)?;
            session.current = Some(state);
            session.last_lambda = Some(session.lambda_for_epoch(session.epoch));
        } else if session.epoch > 0 {
            session.last_lambda = Some(session.lambda_for_epoch(session.epoch - 1));
        }
        Ok(session)
    }

    /// Validates and rehydrates a mid-epoch [`EpochProgress`] against this
    /// session's dataset.
    fn restore_progress(&self, progress: &EpochProgress) -> Result<EpochState> {
        let n = self.train_set.len();
        if progress.order.len() != n {
            return Err(CoreError::CheckpointMismatch {
                message: format!(
                    "checkpoint epoch order covers {} samples but the training set has {n}",
                    progress.order.len()
                ),
            });
        }
        let mut seen = vec![false; n];
        for &index in &progress.order {
            if index >= n || seen[index] {
                return Err(CoreError::CheckpointMismatch {
                    message: format!(
                        "checkpoint epoch order is not a permutation of 0..{n} \
                         (offending index {index})"
                    ),
                });
            }
            seen[index] = true;
        }
        if progress.next > n {
            return Err(CoreError::CheckpointMismatch {
                message: format!(
                    "checkpoint epoch cursor {} is past the training set length {n}",
                    progress.next
                ),
            });
        }
        Ok(EpochState {
            order: progress.order.clone(),
            next: progress.next,
            loss_sum: progress.loss_sum,
            batch_count: progress.batch_count as usize,
            correct: progress.correct as usize,
            seen: progress.seen as usize,
            lambda: self.lambda_for_epoch(self.epoch),
            elapsed_before: progress.elapsed_seconds,
            started: Instant::now(),
        })
    }
}
