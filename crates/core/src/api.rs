//! Unified training entry point dispatching over all five algorithms.

use crate::config::{Algorithm, TrainOptions};
use crate::session::TrainSession;
use crate::Result;
use ff_data::Dataset;
use ff_metrics::TrainingHistory;
use ff_nn::Sequential;
use serde::{Deserialize, Serialize};

/// Trains `net` on `train_set` with the requested algorithm and returns the
/// per-epoch history (the same network is used for evaluation on `test_set`).
///
/// This is the entry point used by the experiment binaries that regenerate
/// the paper's tables and figures. It is a thin wrapper over
/// [`TrainSession::run`]; construct a [`TrainSession`] directly to step a
/// run batch by batch, observe typed [`crate::TrainEvent`]s, stop early, or
/// checkpoint/resume it.
///
/// # Errors
///
/// Returns an error when the options are invalid, the dataset is empty or
/// incompatible with the network, or a layer operation fails.
///
/// # Examples
///
/// ```
/// use ff_core::{train, Algorithm, TrainOptions};
/// use ff_data::{synthetic_mnist, SyntheticConfig};
/// use ff_models::small_mlp;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ff_core::CoreError> {
/// let (train_set, test_set) = synthetic_mnist(&SyntheticConfig::small());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = small_mlp(784, &[32], 10, &mut rng);
/// let history = train(&mut net, &train_set, &test_set, Algorithm::BpFp32, &TrainOptions::fast_test())?;
/// assert!(!history.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn train(
    net: &mut Sequential,
    train_set: &Dataset,
    test_set: &Dataset,
    algorithm: Algorithm,
    options: &TrainOptions,
) -> Result<TrainingHistory> {
    TrainSession::new(net, train_set, test_set, algorithm, options)?.run()
}

/// A training run bundled with the algorithm that produced it — the unit the
/// experiment harness aggregates into the paper's tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Label of the training algorithm (e.g. `"FF-INT8"`).
    pub algorithm: String,
    /// Name of the model that was trained.
    pub model: String,
    /// Per-epoch history.
    pub history: TrainingHistory,
}

impl TrainingReport {
    /// Bundles a history with its provenance.
    pub fn new(algorithm: Algorithm, model: impl Into<String>, history: TrainingHistory) -> Self {
        TrainingReport {
            algorithm: algorithm.label(),
            model: model.into(),
            history,
        }
    }

    /// Final accuracy as a percentage (0–100), the unit used in the paper's
    /// tables.
    pub fn accuracy_percent(&self) -> f32 {
        self.history.final_accuracy().unwrap_or(0.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_data::{synthetic_mnist, SyntheticConfig};
    use ff_models::small_mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dispatch_covers_all_algorithms() {
        let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
            train_size: 80,
            test_size: 40,
            noise_std: 0.2,
            max_shift: 0,
            seed: 1,
        });
        let options = TrainOptions {
            epochs: 1,
            max_eval_samples: 20,
            ..TrainOptions::fast_test()
        };
        for algorithm in [
            Algorithm::BpFp32,
            Algorithm::BpInt8,
            Algorithm::BpUi8,
            Algorithm::BpGdai8,
            Algorithm::FfInt8 { lookahead: true },
            Algorithm::FfFp32 { lookahead: false },
        ] {
            let mut rng = StdRng::seed_from_u64(0);
            let mut net = small_mlp(784, &[16], 10, &mut rng);
            let history = train(&mut net, &train_set, &test_set, algorithm, &options).unwrap();
            assert_eq!(history.len(), 1, "{}", algorithm.label());
        }
    }

    #[test]
    fn report_exposes_percentage() {
        let mut history = TrainingHistory::new("x");
        history.record(0, 1.0, 0.5, Some(0.43));
        let report = TrainingReport::new(Algorithm::BpFp32, "MLP", history);
        assert_eq!(report.algorithm, "BP-FP32");
        assert_eq!(report.model, "MLP");
        assert!((report.accuracy_percent() - 43.0).abs() < 1e-4);
    }
}
