//! Trainer-side optimizer dispatch and checkpointable optimizer state.
//!
//! The trainers pick their optimizer family from
//! [`TrainOptions::optimizer`](crate::TrainOptions) and step parameters
//! through [`AnyOptimizer`], a closed enum over the `ff-nn`
//! optimizers (public so distributed trainers can step pipeline stages
//! with exactly the trainer's dispatch). Each
//! optimizer's mutable state has a matching serializable form,
//! [`OptimizerSlot`], which `FF8C` checkpoints persist:
//!
//! - SGD: the per-parameter momentum buffers;
//! - Adam: the first/second moment estimates **and** the bias-correction
//!   step count (without it a resumed run would re-warm-up the moments and
//!   diverge from the uninterrupted trajectory).
//!
//! Importing a slot validates both the optimizer **kind** and every buffer
//! shape against the parameters the optimizer will step, so a checkpoint
//! taken with a different optimizer (or network) fails with a typed
//! [`CoreError::CheckpointMismatch`] at resume time — never a silent skip
//! of the stored state, and never a shape panic on the first step.

use crate::config::OptimizerKind;
use crate::{CoreError, Result};
use ff_nn::{Adam, Optimizer, ParamRefMut, Sgd};
use ff_tensor::Tensor;

/// The serializable state of one optimizer slot, as persisted in `FF8C`
/// checkpoints ([`crate::TrainerState`] holds one per optimizer the trainer
/// owns: one per layer for [`crate::FfTrainer`], a single one for
/// [`crate::BpTrainer`]).
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerSlot {
    /// SGD momentum buffers, one per parameter already stepped.
    Sgd {
        /// The momentum (velocity) buffers, in parameter order.
        velocity: Vec<Tensor>,
    },
    /// Adam moment estimates plus the bias-correction step count.
    Adam {
        /// First-moment estimates, in parameter order.
        m: Vec<Tensor>,
        /// Second-moment estimates (always the same length as `m`).
        v: Vec<Tensor>,
        /// Steps taken so far — the `t` of the bias-correction terms.
        step_count: u64,
    },
}

impl OptimizerSlot {
    /// The optimizer family this state belongs to.
    pub fn kind(&self) -> OptimizerKind {
        match self {
            OptimizerSlot::Sgd { .. } => OptimizerKind::Sgd,
            OptimizerSlot::Adam { .. } => OptimizerKind::Adam,
        }
    }

    /// An empty slot of the given kind (what a fresh optimizer exports).
    pub fn empty(kind: OptimizerKind) -> Self {
        match kind {
            OptimizerKind::Sgd => OptimizerSlot::Sgd {
                velocity: Vec::new(),
            },
            OptimizerKind::Adam => OptimizerSlot::Adam {
                m: Vec::new(),
                v: Vec::new(),
                step_count: 0,
            },
        }
    }

    /// Validates this slot against the parameter shapes it will step.
    ///
    /// Optimizers grow their buffer lists lazily, so a slot holding a
    /// *prefix* of the parameters' buffers is legal; any buffer that is
    /// present must match its parameter's shape exactly, and Adam's `m`/`v`
    /// lists must have equal length.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CheckpointMismatch`] naming the offending
    /// buffer.
    pub fn check_shapes(&self, param_shapes: &[Vec<usize>], what: &str) -> Result<()> {
        match self {
            OptimizerSlot::Sgd { velocity } => {
                check_buffer_shapes(velocity, param_shapes, what, "momentum")
            }
            OptimizerSlot::Adam { m, v, .. } => {
                if m.len() != v.len() {
                    return Err(CoreError::CheckpointMismatch {
                        message: format!(
                            "Adam state for {what} has {} first moments but {} second moments",
                            m.len(),
                            v.len()
                        ),
                    });
                }
                check_buffer_shapes(m, param_shapes, what, "Adam first-moment")?;
                check_buffer_shapes(v, param_shapes, what, "Adam second-moment")
            }
        }
    }
}

/// Validates restored per-parameter buffers against the parameter shapes
/// they will step (see [`OptimizerSlot::check_shapes`]).
pub(crate) fn check_buffer_shapes(
    buffers: &[Tensor],
    param_shapes: &[Vec<usize>],
    what: &str,
    which: &str,
) -> Result<()> {
    if buffers.len() > param_shapes.len() {
        return Err(CoreError::CheckpointMismatch {
            message: format!(
                "checkpoint holds {} {which} buffers for {what} but it has {} parameters",
                buffers.len(),
                param_shapes.len()
            ),
        });
    }
    for (index, (buffer, shape)) in buffers.iter().zip(param_shapes).enumerate() {
        if buffer.shape() != shape.as_slice() {
            return Err(CoreError::CheckpointMismatch {
                message: format!(
                    "{which} buffer {index} for {what} has shape {:?} but the parameter has \
                     shape {:?}",
                    buffer.shape(),
                    shape
                ),
            });
        }
    }
    Ok(())
}

/// The closed set of optimizers the trainers dispatch over.
///
/// A thin enum (instead of `Box<dyn Optimizer>`) so state can be exported
/// and imported without downcasting. Public so distributed trainers
/// (pipeline stage workers, data-parallel coordinators) can step layers
/// with the exact same dispatch the sequential [`crate::FfTrainer`] uses.
#[derive(Debug, Clone)]
pub enum AnyOptimizer {
    /// Plain SGD with momentum.
    Sgd(Sgd),
    /// Adam with bias correction.
    Adam(Adam),
}

impl AnyOptimizer {
    /// Builds a fresh optimizer of `kind` from the trainer's
    /// hyperparameters.
    pub fn new(kind: OptimizerKind, learning_rate: f32, momentum: f32) -> Self {
        match kind {
            OptimizerKind::Sgd => AnyOptimizer::Sgd(Sgd::new(learning_rate, momentum)),
            OptimizerKind::Adam => AnyOptimizer::Adam(Adam::new(learning_rate)),
        }
    }

    /// Applies one update step (see [`Optimizer::step`]).
    pub fn step(&mut self, params: &mut [ParamRefMut<'_>]) {
        match self {
            AnyOptimizer::Sgd(o) => o.step(params),
            AnyOptimizer::Adam(o) => o.step(params),
        }
    }

    /// Overrides the learning rate (UI8's deviation-counteractive scaling).
    pub fn set_learning_rate(&mut self, lr: f32) {
        match self {
            AnyOptimizer::Sgd(o) => o.set_learning_rate(lr),
            AnyOptimizer::Adam(o) => o.set_learning_rate(lr),
        }
    }

    /// Captures this optimizer's mutable state for a checkpoint.
    pub fn export(&self) -> OptimizerSlot {
        match self {
            AnyOptimizer::Sgd(o) => OptimizerSlot::Sgd {
                velocity: o.velocity().to_vec(),
            },
            AnyOptimizer::Adam(o) => OptimizerSlot::Adam {
                m: o.first_moments().to_vec(),
                v: o.second_moments().to_vec(),
                step_count: o.step_count(),
            },
        }
    }

    /// Rebuilds an optimizer of the trainer's configured `kind` from a
    /// checkpointed slot, validating kind and buffer shapes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CheckpointMismatch`] when the slot was exported
    /// by a different optimizer family (e.g. an Adam checkpoint resumed
    /// into an SGD-configured trainer) or a buffer shape disagrees with its
    /// parameter.
    pub fn import(
        kind: OptimizerKind,
        learning_rate: f32,
        momentum: f32,
        slot: &OptimizerSlot,
        param_shapes: &[Vec<usize>],
        what: &str,
    ) -> Result<Self> {
        if slot.kind() != kind {
            return Err(CoreError::CheckpointMismatch {
                message: format!(
                    "checkpoint stores {} optimizer state for {what} but the trainer is \
                     configured for {}",
                    slot.kind(),
                    kind
                ),
            });
        }
        slot.check_shapes(param_shapes, what)?;
        let mut optimizer = AnyOptimizer::new(kind, learning_rate, momentum);
        match (&mut optimizer, slot) {
            (AnyOptimizer::Sgd(o), OptimizerSlot::Sgd { velocity }) => {
                o.set_velocity(velocity.clone());
            }
            (AnyOptimizer::Adam(o), OptimizerSlot::Adam { m, v, step_count }) => {
                o.set_state(m.clone(), v.clone(), *step_count);
            }
            // Kind equality was checked above.
            _ => unreachable!("optimizer kind checked before state restore"),
        }
        Ok(optimizer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn import_rejects_kind_mismatch_with_typed_error() {
        // An Adam checkpoint fed to an SGD-configured trainer (or vice
        // versa) must fail loudly — the historic behaviour was to silently
        // skip unsupported optimizer state.
        let adam_slot = OptimizerSlot::Adam {
            m: Vec::new(),
            v: Vec::new(),
            step_count: 3,
        };
        let err = AnyOptimizer::import(OptimizerKind::Sgd, 0.1, 0.9, &adam_slot, &[], "layer 0")
            .unwrap_err();
        match err {
            CoreError::CheckpointMismatch { message } => {
                assert!(message.contains("Adam"), "{message}");
                assert!(message.contains("SGD"), "{message}");
            }
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
        let sgd_slot = OptimizerSlot::empty(OptimizerKind::Sgd);
        assert!(matches!(
            AnyOptimizer::import(OptimizerKind::Adam, 0.1, 0.9, &sgd_slot, &[], "layer 0"),
            Err(CoreError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn import_validates_adam_moment_shapes() {
        let shapes = vec![vec![2, 3]];
        let good = OptimizerSlot::Adam {
            m: vec![Tensor::zeros(&[2, 3])],
            v: vec![Tensor::zeros(&[2, 3])],
            step_count: 1,
        };
        assert!(AnyOptimizer::import(OptimizerKind::Adam, 0.1, 0.0, &good, &shapes, "x").is_ok());
        let wrong_shape = OptimizerSlot::Adam {
            m: vec![Tensor::zeros(&[3, 2])],
            v: vec![Tensor::zeros(&[3, 2])],
            step_count: 1,
        };
        assert!(matches!(
            AnyOptimizer::import(OptimizerKind::Adam, 0.1, 0.0, &wrong_shape, &shapes, "x"),
            Err(CoreError::CheckpointMismatch { .. })
        ));
        let uneven = OptimizerSlot::Adam {
            m: vec![Tensor::zeros(&[2, 3])],
            v: Vec::new(),
            step_count: 1,
        };
        assert!(matches!(
            AnyOptimizer::import(OptimizerKind::Adam, 0.1, 0.0, &uneven, &shapes, "x"),
            Err(CoreError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn export_import_roundtrips_both_kinds() {
        for kind in [OptimizerKind::Sgd, OptimizerKind::Adam] {
            let mut optimizer = AnyOptimizer::new(kind, 0.1, 0.9);
            let mut w = Tensor::ones(&[4]);
            let mut g = Tensor::ones(&[4]);
            optimizer.step(&mut [ParamRefMut {
                value: &mut w,
                grad: &mut g,
                version: None,
            }]);
            let slot = optimizer.export();
            assert_eq!(slot.kind(), kind);
            let restored =
                AnyOptimizer::import(kind, 0.1, 0.9, &slot, &[vec![4]], "param").unwrap();
            assert_eq!(restored.export(), slot);
        }
    }

    #[test]
    fn empty_slots_match_fresh_exports() {
        for kind in [OptimizerKind::Sgd, OptimizerKind::Adam] {
            assert_eq!(
                AnyOptimizer::new(kind, 0.1, 0.9).export(),
                OptimizerSlot::empty(kind)
            );
        }
    }
}
