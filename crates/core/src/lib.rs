//! # ff-core
//!
//! The FF-INT8 paper's contribution: INT8 Forward-Forward training with the
//! "look-ahead" scheme, plus the backpropagation baselines it is evaluated
//! against (BP-FP32, naive BP-INT8, BP-UI8, BP-GDAI8).
//!
//! Training is **step-driven**: a [`TrainSession`] trains one mini-batch
//! per [`TrainSession::step`] call, delivers typed [`TrainEvent`]s to
//! observers (early stopping via [`SessionControl`]), and can be
//! checkpointed into a versioned `FF8C` artifact ([`checkpoint`]) whose
//! resume is **bit-identical** to an uninterrupted run — the interruptible,
//! integer-state on-device training loop the paper's edge setting calls
//! for. Both trainer families plug into the session through the
//! [`TrainerCore`] trait.
//!
//! The unified [`train`] entry point (a thin wrapper over
//! [`TrainSession::run`]) dispatches on [`Algorithm`], so the experiment
//! harness can sweep all five training algorithms over the same model and
//! dataset.
//!
//! # Examples
//!
//! Train a 2-hidden-layer MLP with FF-INT8 + look-ahead on the synthetic
//! MNIST stand-in:
//!
//! ```
//! use ff_core::{train, Algorithm, TrainOptions};
//! use ff_data::{synthetic_mnist, SyntheticConfig};
//! use ff_models::small_mlp;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), ff_core::CoreError> {
//! let (train_set, test_set) = synthetic_mnist(&SyntheticConfig::small());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = small_mlp(784, &[64, 64], 10, &mut rng);
//! let options = TrainOptions::fast_test();
//! let history = train(
//!     &mut net,
//!     &train_set,
//!     &test_set,
//!     Algorithm::FfInt8 { lookahead: true },
//!     &options,
//! )?;
//! assert_eq!(history.len(), options.epochs);
//! assert!(history.final_loss().unwrap().is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod baselines;
pub mod checkpoint;
mod config;
mod error;
mod ff_trainer;
mod goodness;
pub mod optimizer;
pub mod session;
pub mod shard;

pub use api::{train, TrainingReport};
pub use baselines::{BpTrainer, GradientPolicy};
pub use checkpoint::{
    Checkpoint, EpochProgress, CHECKPOINT_MAGIC, CHECKPOINT_MIN_VERSION, CHECKPOINT_VERSION,
};
pub use config::{Algorithm, OptimizerKind, Precision, TrainOptions};
pub use error::CoreError;
pub use ff_trainer::{first_layer_is_dense, FfTrainer};
pub use goodness::{
    ff_loss, ff_loss_scaled, goodness, goodness_gradient, goodness_sum, FfLossKind, GoodnessSweep,
};
pub use optimizer::{AnyOptimizer, OptimizerSlot};
pub use session::{
    AutoCheckpoint, EvalSplit, SessionControl, SessionStatus, StepSpans, StepStats, TrainEvent,
    TrainSession, TrainerCore, TrainerState,
};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
