//! Training configuration shared by all algorithms.

use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Numeric precision of the training arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Precision {
    /// 32-bit floating point.
    #[default]
    Fp32,
    /// Symmetric INT8 with stochastic gradient rounding.
    Int8,
}

/// The training algorithms evaluated in the paper's Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Standard backpropagation in FP32 (baseline).
    BpFp32,
    /// Backpropagation with gradients directly quantized to INT8.
    BpInt8,
    /// Unified INT8 training (UI8, Zhu et al. 2020): direction-sensitive
    /// gradient clipping plus deviation-counteractive learning-rate scaling.
    BpUi8,
    /// Gradient-distribution-aware INT8 training (GDAI8, Wang & Kang 2023).
    BpGdai8,
    /// The paper's contribution: Forward-Forward training with INT8 MACs.
    FfInt8 {
        /// Enables the look-ahead scheme (Section IV-C, Algorithm 1).
        lookahead: bool,
    },
    /// Forward-Forward training in FP32 (ablation of the quantization).
    FfFp32 {
        /// Enables the look-ahead scheme.
        lookahead: bool,
    },
}

impl fmt::Display for Algorithm {
    /// The canonical report label (`"FF-INT8"`, `"BP-GDAI8"`, ...), the same
    /// string [`Algorithm::parse`] accepts.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            Algorithm::BpFp32 => "BP-FP32",
            Algorithm::BpInt8 => "BP-INT8",
            Algorithm::BpUi8 => "BP-UI8",
            Algorithm::BpGdai8 => "BP-GDAI8",
            Algorithm::FfInt8 { lookahead: true } => "FF-INT8",
            Algorithm::FfInt8 { lookahead: false } => "FF-INT8 (no look-ahead)",
            Algorithm::FfFp32 { lookahead: true } => "FF-FP32",
            Algorithm::FfFp32 { lookahead: false } => "FF-FP32 (no look-ahead)",
        };
        f.write_str(label)
    }
}

impl FromStr for Algorithm {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self> {
        Algorithm::parse(s)
    }
}

impl Algorithm {
    /// Short identifier used in reports (`"FF-INT8"`, `"BP-GDAI8"`, ...).
    ///
    /// Equivalent to the [`Display`](fmt::Display) rendering; kept for
    /// callers that want an owned `String`.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Parses a canonical label back into its algorithm.
    ///
    /// Matching is case-insensitive and also accepts `_` for `-`, so CLI
    /// flags like `--algo=bp_int8` work. The no-look-ahead FF variants
    /// accept both the report label (`"FF-INT8 (no look-ahead)"`) and the
    /// flag-friendly short form (`"FF-INT8-NOLA"`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the unknown label.
    ///
    /// # Examples
    ///
    /// ```
    /// use ff_core::Algorithm;
    ///
    /// assert_eq!(Algorithm::parse("bp-gdai8").unwrap(), Algorithm::BpGdai8);
    /// assert_eq!(
    ///     Algorithm::parse("FF-INT8").unwrap(),
    ///     Algorithm::FfInt8 { lookahead: true }
    /// );
    /// assert!(Algorithm::parse("FF-INT4").is_err());
    /// ```
    pub fn parse(s: &str) -> Result<Self> {
        let normalized = s.trim().to_ascii_uppercase().replace('_', "-");
        match normalized.as_str() {
            "BP-FP32" => Ok(Algorithm::BpFp32),
            "BP-INT8" => Ok(Algorithm::BpInt8),
            "BP-UI8" => Ok(Algorithm::BpUi8),
            "BP-GDAI8" => Ok(Algorithm::BpGdai8),
            "FF-INT8" => Ok(Algorithm::FfInt8 { lookahead: true }),
            "FF-INT8 (NO LOOK-AHEAD)" | "FF-INT8-NOLA" => {
                Ok(Algorithm::FfInt8 { lookahead: false })
            }
            "FF-FP32" => Ok(Algorithm::FfFp32 { lookahead: true }),
            "FF-FP32 (NO LOOK-AHEAD)" | "FF-FP32-NOLA" => {
                Ok(Algorithm::FfFp32 { lookahead: false })
            }
            _ => Err(CoreError::InvalidConfig {
                message: format!(
                    "unknown algorithm `{s}` (expected one of BP-FP32, BP-INT8, BP-UI8, \
                     BP-GDAI8, FF-INT8, FF-INT8-NOLA, FF-FP32, FF-FP32-NOLA)"
                ),
            }),
        }
    }

    /// `true` for the Forward-Forward family.
    pub fn is_forward_forward(&self) -> bool {
        matches!(self, Algorithm::FfInt8 { .. } | Algorithm::FfFp32 { .. })
    }

    /// `true` when the look-ahead scheme is enabled (always `false` for the
    /// backpropagation baselines).
    pub fn has_lookahead(&self) -> bool {
        matches!(
            self,
            Algorithm::FfInt8 { lookahead: true } | Algorithm::FfFp32 { lookahead: true }
        )
    }

    /// `true` when weight gradients (and, for FF, activations) are INT8.
    pub fn is_int8(&self) -> bool {
        matches!(
            self,
            Algorithm::BpInt8 | Algorithm::BpUi8 | Algorithm::BpGdai8 | Algorithm::FfInt8 { .. }
        )
    }

    /// The five algorithms compared in the paper's Table V, in table order.
    pub fn table5_lineup() -> Vec<Algorithm> {
        vec![
            Algorithm::BpFp32,
            Algorithm::BpInt8,
            Algorithm::BpUi8,
            Algorithm::BpGdai8,
            Algorithm::FfInt8 { lookahead: true },
        ]
    }
}

/// Which optimizer family the trainers step parameters with.
///
/// Both trainer families construct their optimizer(s) from this choice, and
/// `FF8C` checkpoints persist the matching state — SGD momentum buffers, or
/// Adam first/second moments plus the bias-correction step count — so a
/// resumed run continues the exact same update trajectory. A checkpoint
/// whose optimizer state disagrees with the configured kind fails resume
/// with a typed [`CoreError::CheckpointMismatch`], never a silent skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with [`TrainOptions::momentum`] (the
    /// paper's configuration).
    #[default]
    Sgd,
    /// Adam with standard defaults (β₁=0.9, β₂=0.999); ignores
    /// [`TrainOptions::momentum`].
    Adam,
}

impl fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptimizerKind::Sgd => "SGD",
            OptimizerKind::Adam => "Adam",
        })
    }
}

/// Hyperparameters shared by every trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Number of training epochs.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 32).
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Goodness threshold θ in the FF losses (paper: 2.0).
    pub theta: f32,
    /// Initial λ of the look-ahead loss (paper: 0.0).
    pub lambda_init: f32,
    /// Per-epoch increment of λ (paper: 0.001).
    pub lambda_step: f32,
    /// Upper bound on λ.
    pub lambda_max: f32,
    /// Evaluate test accuracy every `eval_every` epochs (1 = every epoch).
    pub eval_every: usize,
    /// Cap on the number of test samples scored per evaluation (goodness
    /// scoring runs one forward pass per candidate label).
    pub max_eval_samples: usize,
    /// RNG seed controlling shuffling, negative-label sampling and stochastic
    /// rounding.
    pub seed: u64,
    /// Optimizer family stepping the parameters (default
    /// [`OptimizerKind::Sgd`], the paper's configuration).
    pub optimizer: OptimizerKind,
    /// Number of contiguous row shards each mini-batch's gradient is
    /// computed in (default 1: classic whole-batch math, bit-identical to
    /// every run recorded before this option existed).
    ///
    /// Sharding is a property of the *math*, not of the execution: with
    /// `grad_shards = W`, each batch is split into `W` contiguous row
    /// ranges, every shard's forward/backward runs as if it were its own
    /// pass (per-shard INT8 quantization scales, per-shard rounding streams
    /// derived as `pass_seed → layer (shard · layer_count + i)`), and the
    /// shard gradients are reduced in ascending shard order before one
    /// optimizer step. A data-parallel cluster evaluating those shards on
    /// remote workers therefore reproduces the single-process run
    /// **bit-exactly** — the distributed trainer and the local
    /// [`crate::FfTrainer`] execute the same canonical decomposition (see
    /// [`crate::shard`]).
    pub grad_shards: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 30,
            batch_size: 32,
            learning_rate: 0.02,
            momentum: 0.9,
            theta: 2.0,
            lambda_init: 0.0,
            lambda_step: 0.001,
            lambda_max: 0.05,
            eval_every: 1,
            max_eval_samples: 512,
            seed: 42,
            optimizer: OptimizerKind::Sgd,
            grad_shards: 1,
        }
    }
}

impl TrainOptions {
    /// A very small configuration for unit tests and doc examples.
    pub fn fast_test() -> Self {
        TrainOptions {
            epochs: 3,
            batch_size: 32,
            learning_rate: 0.05,
            momentum: 0.9,
            eval_every: 1,
            max_eval_samples: 64,
            ..TrainOptions::default()
        }
    }

    /// Overrides the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Overrides the learning rate.
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Overrides the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the SGD momentum coefficient.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Overrides the goodness threshold θ.
    pub fn with_theta(mut self, theta: f32) -> Self {
        self.theta = theta;
        self
    }

    /// Overrides the look-ahead λ schedule (initial value, per-epoch step,
    /// upper bound).
    pub fn with_lambda_schedule(mut self, init: f32, step: f32, max: f32) -> Self {
        self.lambda_init = init;
        self.lambda_step = step;
        self.lambda_max = max;
        self
    }

    /// Overrides the evaluation cadence (evaluate every `eval_every` epochs).
    pub fn with_eval_every(mut self, eval_every: usize) -> Self {
        self.eval_every = eval_every;
        self
    }

    /// Overrides the per-evaluation sample cap.
    pub fn with_max_eval_samples(mut self, max_eval_samples: usize) -> Self {
        self.max_eval_samples = max_eval_samples;
        self
    }

    /// Overrides the optimizer family.
    pub fn with_optimizer(mut self, optimizer: OptimizerKind) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Overrides the per-batch gradient shard count (see
    /// [`TrainOptions::grad_shards`]).
    pub fn with_grad_shards(mut self, grad_shards: usize) -> Self {
        self.grad_shards = grad_shards;
        self
    }

    /// Checks every field for values that would make a training run
    /// meaningless or fail deep inside the loop.
    ///
    /// [`crate::TrainSession`] calls this at session creation so a typo'd
    /// configuration surfaces as one typed error up front instead of a
    /// divide-by-zero, an empty history, or a NaN loss hundreds of steps in.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the offending field for:
    /// zero `epochs`, zero `batch_size`, a non-finite or non-positive
    /// `learning_rate`, a non-finite or negative `momentum`, a non-finite
    /// `theta`, a non-finite or descending λ schedule, or zero `eval_every`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ff_core::TrainOptions;
    ///
    /// assert!(TrainOptions::default().validate().is_ok());
    /// assert!(TrainOptions::default().with_epochs(0).validate().is_err());
    /// assert!(TrainOptions::default()
    ///     .with_learning_rate(f32::NAN)
    ///     .validate()
    ///     .is_err());
    /// ```
    pub fn validate(&self) -> Result<()> {
        let fail = |message: String| Err(CoreError::InvalidConfig { message });
        if self.epochs == 0 {
            return fail("epochs must be at least 1".to_string());
        }
        if self.batch_size == 0 {
            return fail("batch_size must be at least 1".to_string());
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return fail(format!(
                "learning_rate must be positive and finite, got {}",
                self.learning_rate
            ));
        }
        if !self.momentum.is_finite() || self.momentum < 0.0 {
            return fail(format!(
                "momentum must be non-negative and finite, got {}",
                self.momentum
            ));
        }
        if !self.theta.is_finite() {
            return fail(format!("theta must be finite, got {}", self.theta));
        }
        if !self.lambda_init.is_finite()
            || !self.lambda_step.is_finite()
            || !self.lambda_max.is_finite()
        {
            return fail(format!(
                "lambda schedule must be finite, got init {} step {} max {}",
                self.lambda_init, self.lambda_step, self.lambda_max
            ));
        }
        if self.lambda_step < 0.0 || self.lambda_max < self.lambda_init {
            return fail(format!(
                "lambda schedule must be non-decreasing, got init {} step {} max {}",
                self.lambda_init, self.lambda_step, self.lambda_max
            ));
        }
        if self.eval_every == 0 {
            return fail("eval_every must be at least 1".to_string());
        }
        if self.grad_shards == 0 {
            return fail("grad_shards must be at least 1".to_string());
        }
        Ok(())
    }

    /// The look-ahead coefficient λ at a given epoch: starts at
    /// `lambda_init` and grows by `lambda_step` per epoch, capped at
    /// `lambda_max` (paper Section V-A3).
    pub fn lambda_at_epoch(&self, epoch: usize) -> f32 {
        (self.lambda_init + self.lambda_step * epoch as f32).min(self.lambda_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = Algorithm::table5_lineup()
            .iter()
            .map(|a| a.label())
            .collect();
        assert_eq!(labels.len(), 5);
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), 5);
        assert_eq!(labels[0], "BP-FP32");
        assert_eq!(labels[4], "FF-INT8");
    }

    #[test]
    fn algorithm_queries() {
        assert!(Algorithm::FfInt8 { lookahead: true }.is_forward_forward());
        assert!(!Algorithm::BpGdai8.is_forward_forward());
        assert!(Algorithm::BpInt8.is_int8());
        assert!(!Algorithm::BpFp32.is_int8());
        assert!(Algorithm::FfInt8 { lookahead: false }
            .label()
            .contains("no look-ahead"));
        assert_eq!(Algorithm::FfFp32 { lookahead: true }.label(), "FF-FP32");
        assert!(Algorithm::FfFp32 { lookahead: false }
            .label()
            .contains("no look-ahead"));
    }

    #[test]
    fn lambda_schedule_matches_paper() {
        let opt = TrainOptions::default();
        assert_eq!(opt.lambda_at_epoch(0), 0.0);
        assert!((opt.lambda_at_epoch(10) - 0.01).abs() < 1e-6);
        // capped
        assert_eq!(opt.lambda_at_epoch(1000), opt.lambda_max);
    }

    #[test]
    fn builders_override_fields() {
        let opt = TrainOptions::default()
            .with_epochs(5)
            .with_learning_rate(0.1)
            .with_batch_size(8)
            .with_seed(7)
            .with_momentum(0.5)
            .with_theta(1.5)
            .with_lambda_schedule(0.01, 0.002, 0.1)
            .with_eval_every(3)
            .with_max_eval_samples(99)
            .with_optimizer(OptimizerKind::Adam);
        assert_eq!(opt.epochs, 5);
        assert_eq!(opt.learning_rate, 0.1);
        assert_eq!(opt.batch_size, 8);
        assert_eq!(opt.seed, 7);
        assert_eq!(opt.momentum, 0.5);
        assert_eq!(opt.theta, 1.5);
        assert_eq!(
            (opt.lambda_init, opt.lambda_step, opt.lambda_max),
            (0.01, 0.002, 0.1)
        );
        assert_eq!(opt.eval_every, 3);
        assert_eq!(opt.max_eval_samples, 99);
        assert_eq!(opt.optimizer, OptimizerKind::Adam);
        assert_eq!(opt.optimizer.to_string(), "Adam");
        assert_eq!(TrainOptions::default().batch_size, 32);
        assert_eq!(TrainOptions::default().optimizer, OptimizerKind::Sgd);
    }

    #[test]
    fn validate_names_the_offending_field() {
        let cases: Vec<(TrainOptions, &str)> = vec![
            (TrainOptions::default().with_epochs(0), "epochs"),
            (TrainOptions::default().with_batch_size(0), "batch_size"),
            (
                TrainOptions::default().with_learning_rate(f32::NAN),
                "learning_rate",
            ),
            (
                TrainOptions::default().with_learning_rate(0.0),
                "learning_rate",
            ),
            (
                TrainOptions::default().with_learning_rate(-0.5),
                "learning_rate",
            ),
            (TrainOptions::default().with_momentum(-0.1), "momentum"),
            (
                TrainOptions::default().with_momentum(f32::INFINITY),
                "momentum",
            ),
            (TrainOptions::default().with_theta(f32::NAN), "theta"),
            (
                TrainOptions::default().with_lambda_schedule(0.0, f32::NAN, 0.05),
                "lambda",
            ),
            (
                TrainOptions::default().with_lambda_schedule(0.0, -0.001, 0.05),
                "lambda",
            ),
            (
                TrainOptions::default().with_lambda_schedule(0.1, 0.001, 0.05),
                "lambda",
            ),
            (TrainOptions::default().with_eval_every(0), "eval_every"),
        ];
        for (options, field) in cases {
            match options.validate() {
                Err(CoreError::InvalidConfig { message }) => {
                    assert!(message.contains(field), "`{message}` should name {field}");
                }
                other => panic!("expected InvalidConfig for {field}, got {other:?}"),
            }
        }
        assert!(TrainOptions::default().validate().is_ok());
        assert!(TrainOptions::fast_test().validate().is_ok());
    }

    #[test]
    fn display_matches_label_and_parse_roundtrips() {
        for algorithm in [
            Algorithm::BpFp32,
            Algorithm::BpInt8,
            Algorithm::BpUi8,
            Algorithm::BpGdai8,
            Algorithm::FfInt8 { lookahead: true },
            Algorithm::FfInt8 { lookahead: false },
            Algorithm::FfFp32 { lookahead: true },
            Algorithm::FfFp32 { lookahead: false },
        ] {
            assert_eq!(format!("{algorithm}"), algorithm.label());
            assert_eq!(Algorithm::parse(&algorithm.label()).unwrap(), algorithm);
        }
        // Flag-friendly forms.
        assert_eq!(Algorithm::parse("bp_gdai8").unwrap(), Algorithm::BpGdai8);
        assert_eq!(
            Algorithm::parse(" ff-int8-nola ").unwrap(),
            Algorithm::FfInt8 { lookahead: false }
        );
        assert_eq!(
            "FF-FP32".parse::<Algorithm>().unwrap(),
            Algorithm::FfFp32 { lookahead: true }
        );
        assert!(Algorithm::parse("FF-INT4").is_err());
        assert!(matches!(
            Algorithm::parse(""),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn lookahead_query() {
        assert!(Algorithm::FfInt8 { lookahead: true }.has_lookahead());
        assert!(!Algorithm::FfInt8 { lookahead: false }.has_lookahead());
        assert!(!Algorithm::BpGdai8.has_lookahead());
    }
}
