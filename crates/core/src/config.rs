//! Training configuration shared by all algorithms.

use serde::{Deserialize, Serialize};

/// Numeric precision of the training arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Precision {
    /// 32-bit floating point.
    #[default]
    Fp32,
    /// Symmetric INT8 with stochastic gradient rounding.
    Int8,
}

/// The training algorithms evaluated in the paper's Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Standard backpropagation in FP32 (baseline).
    BpFp32,
    /// Backpropagation with gradients directly quantized to INT8.
    BpInt8,
    /// Unified INT8 training (UI8, Zhu et al. 2020): direction-sensitive
    /// gradient clipping plus deviation-counteractive learning-rate scaling.
    BpUi8,
    /// Gradient-distribution-aware INT8 training (GDAI8, Wang & Kang 2023).
    BpGdai8,
    /// The paper's contribution: Forward-Forward training with INT8 MACs.
    FfInt8 {
        /// Enables the look-ahead scheme (Section IV-C, Algorithm 1).
        lookahead: bool,
    },
    /// Forward-Forward training in FP32 (ablation of the quantization).
    FfFp32 {
        /// Enables the look-ahead scheme.
        lookahead: bool,
    },
}

impl Algorithm {
    /// Short identifier used in reports (`"FF-INT8"`, `"BP-GDAI8"`, ...).
    pub fn label(&self) -> String {
        match self {
            Algorithm::BpFp32 => "BP-FP32".to_string(),
            Algorithm::BpInt8 => "BP-INT8".to_string(),
            Algorithm::BpUi8 => "BP-UI8".to_string(),
            Algorithm::BpGdai8 => "BP-GDAI8".to_string(),
            Algorithm::FfInt8 { lookahead } => {
                if *lookahead {
                    "FF-INT8".to_string()
                } else {
                    "FF-INT8 (no look-ahead)".to_string()
                }
            }
            Algorithm::FfFp32 { lookahead } => {
                if *lookahead {
                    "FF-FP32".to_string()
                } else {
                    "FF-FP32 (no look-ahead)".to_string()
                }
            }
        }
    }

    /// `true` for the Forward-Forward family.
    pub fn is_forward_forward(&self) -> bool {
        matches!(self, Algorithm::FfInt8 { .. } | Algorithm::FfFp32 { .. })
    }

    /// `true` when weight gradients (and, for FF, activations) are INT8.
    pub fn is_int8(&self) -> bool {
        matches!(
            self,
            Algorithm::BpInt8 | Algorithm::BpUi8 | Algorithm::BpGdai8 | Algorithm::FfInt8 { .. }
        )
    }

    /// The five algorithms compared in the paper's Table V, in table order.
    pub fn table5_lineup() -> Vec<Algorithm> {
        vec![
            Algorithm::BpFp32,
            Algorithm::BpInt8,
            Algorithm::BpUi8,
            Algorithm::BpGdai8,
            Algorithm::FfInt8 { lookahead: true },
        ]
    }
}

/// Hyperparameters shared by every trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Number of training epochs.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 32).
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Goodness threshold θ in the FF losses (paper: 2.0).
    pub theta: f32,
    /// Initial λ of the look-ahead loss (paper: 0.0).
    pub lambda_init: f32,
    /// Per-epoch increment of λ (paper: 0.001).
    pub lambda_step: f32,
    /// Upper bound on λ.
    pub lambda_max: f32,
    /// Evaluate test accuracy every `eval_every` epochs (1 = every epoch).
    pub eval_every: usize,
    /// Cap on the number of test samples scored per evaluation (goodness
    /// scoring runs one forward pass per candidate label).
    pub max_eval_samples: usize,
    /// RNG seed controlling shuffling, negative-label sampling and stochastic
    /// rounding.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 30,
            batch_size: 32,
            learning_rate: 0.02,
            momentum: 0.9,
            theta: 2.0,
            lambda_init: 0.0,
            lambda_step: 0.001,
            lambda_max: 0.05,
            eval_every: 1,
            max_eval_samples: 512,
            seed: 42,
        }
    }
}

impl TrainOptions {
    /// A very small configuration for unit tests and doc examples.
    pub fn fast_test() -> Self {
        TrainOptions {
            epochs: 3,
            batch_size: 32,
            learning_rate: 0.05,
            momentum: 0.9,
            eval_every: 1,
            max_eval_samples: 64,
            ..TrainOptions::default()
        }
    }

    /// Overrides the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Overrides the learning rate.
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Overrides the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The look-ahead coefficient λ at a given epoch: starts at
    /// `lambda_init` and grows by `lambda_step` per epoch, capped at
    /// `lambda_max` (paper Section V-A3).
    pub fn lambda_at_epoch(&self, epoch: usize) -> f32 {
        (self.lambda_init + self.lambda_step * epoch as f32).min(self.lambda_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = Algorithm::table5_lineup()
            .iter()
            .map(|a| a.label())
            .collect();
        assert_eq!(labels.len(), 5);
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), 5);
        assert_eq!(labels[0], "BP-FP32");
        assert_eq!(labels[4], "FF-INT8");
    }

    #[test]
    fn algorithm_queries() {
        assert!(Algorithm::FfInt8 { lookahead: true }.is_forward_forward());
        assert!(!Algorithm::BpGdai8.is_forward_forward());
        assert!(Algorithm::BpInt8.is_int8());
        assert!(!Algorithm::BpFp32.is_int8());
        assert!(Algorithm::FfInt8 { lookahead: false }
            .label()
            .contains("no look-ahead"));
        assert_eq!(Algorithm::FfFp32 { lookahead: true }.label(), "FF-FP32");
        assert!(Algorithm::FfFp32 { lookahead: false }
            .label()
            .contains("no look-ahead"));
    }

    #[test]
    fn lambda_schedule_matches_paper() {
        let opt = TrainOptions::default();
        assert_eq!(opt.lambda_at_epoch(0), 0.0);
        assert!((opt.lambda_at_epoch(10) - 0.01).abs() < 1e-6);
        // capped
        assert_eq!(opt.lambda_at_epoch(1000), opt.lambda_max);
    }

    #[test]
    fn builders_override_fields() {
        let opt = TrainOptions::default()
            .with_epochs(5)
            .with_learning_rate(0.1)
            .with_batch_size(8)
            .with_seed(7);
        assert_eq!(opt.epochs, 5);
        assert_eq!(opt.learning_rate, 0.1);
        assert_eq!(opt.batch_size, 8);
        assert_eq!(opt.seed, 7);
        assert_eq!(TrainOptions::default().batch_size, 32);
    }
}
