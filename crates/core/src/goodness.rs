//! Goodness functions and the Forward-Forward losses (paper Eq. 1–2).

use ff_tensor::Tensor;

/// Which side of the Forward-Forward objective a batch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FfLossKind {
    /// Positive samples: goodness should rise above the threshold θ.
    Positive,
    /// Negative samples: goodness should fall below the threshold θ.
    Negative,
}

/// Per-sample goodness of a layer-activation matrix `[batch, features]`
/// (spatial activations are flattened per sample).
///
/// The paper defines goodness as the sum of squared neural activities
/// (Section III); as in Hinton's reference implementation the value used for
/// training is normalised by the layer width (mean of squares) so that the
/// threshold θ = 2.0 is meaningful independently of how many units a layer
/// has. [`goodness_sum`] exposes the unnormalised variant.
///
/// # Examples
///
/// ```
/// use ff_core::goodness;
/// use ff_tensor::Tensor;
///
/// let y = Tensor::from_vec(&[2, 2], vec![1.0, 3.0, 0.0, 2.0]).unwrap();
/// assert_eq!(goodness(&y), vec![5.0, 2.0]);
/// ```
pub fn goodness(output: &Tensor) -> Vec<f32> {
    let width = output.cols().max(1) as f32;
    output
        .sum_squares_rows()
        .into_iter()
        .map(|g| g / width)
        .collect()
}

/// Per-sample goodness as the raw sum of squared activities `G = Σ y²`
/// (the formulation written in the paper's Section III).
///
/// # Examples
///
/// ```
/// use ff_core::goodness_sum;
/// use ff_tensor::Tensor;
///
/// let y = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 0.0, 0.0, 0.0, 3.0]).unwrap();
/// assert_eq!(goodness_sum(&y), vec![5.0, 9.0]);
/// ```
pub fn goodness_sum(output: &Tensor) -> Vec<f32> {
    output.sum_squares_rows()
}

/// Numerically stable `softplus(x) = ln(1 + eˣ)`.
fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        (1.0 + x.exp()).ln()
    }
}

/// Numerically stable logistic sigmoid.
fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// The Forward-Forward loss of one batch (paper Eq. 1 for positive samples,
/// Eq. 2 for negative samples), returned together with `∂L/∂G` for each
/// sample.
///
/// * positive: `L = softplus(-(G − θ))`, `∂L/∂G = −σ(−(G − θ))`
/// * negative: `L = softplus(G − θ)`,    `∂L/∂G = σ(G − θ)`
///
/// The loss is averaged over the batch and the per-sample gradients are
/// already divided by the batch size.
pub fn ff_loss(goodness_values: &[f32], theta: f32, kind: FfLossKind) -> (f32, Vec<f32>) {
    ff_loss_scaled(goodness_values, theta, kind, goodness_values.len())
}

/// [`ff_loss`] with an explicit normalisation divisor.
///
/// This is the sharded form of the FF loss: when a batch of `divisor`
/// samples is processed as several contiguous row shards (see
/// [`crate::TrainOptions::grad_shards`] and [`crate::shard`]), each shard
/// passes its *own* goodness values but the *full batch's* row count as
/// `divisor`, so summing the per-shard losses and gradients over all shards
/// reproduces the whole-batch mean objective — the per-shard quantities are
/// partial sums of the batch mean, not means of the shard. With
/// `divisor == goodness_values.len()` this is exactly [`ff_loss`].
pub fn ff_loss_scaled(
    goodness_values: &[f32],
    theta: f32,
    kind: FfLossKind,
    divisor: usize,
) -> (f32, Vec<f32>) {
    let n = divisor.max(1) as f32;
    let mut loss = 0.0f32;
    let mut grad = Vec::with_capacity(goodness_values.len());
    for &g in goodness_values {
        let margin = g - theta;
        match kind {
            FfLossKind::Positive => {
                loss += softplus(-margin);
                grad.push(-sigmoid(-margin) / n);
            }
            FfLossKind::Negative => {
                loss += softplus(margin);
                grad.push(sigmoid(margin) / n);
            }
        }
    }
    (loss / n, grad)
}

/// Converts per-sample `∂L/∂G` values into the gradient w.r.t. the layer
/// output for the width-normalised [`goodness`]:
/// `∂L/∂y = ∂L/∂G · 2y / width`, row by row.
///
/// # Panics
///
/// Panics when `grad_goodness.len()` differs from the number of rows.
pub fn goodness_gradient(output: &Tensor, grad_goodness: &[f32]) -> Tensor {
    assert_eq!(
        output.rows(),
        grad_goodness.len(),
        "one goodness gradient per sample required"
    );
    let mut grad = output.clone();
    let cols = output.cols();
    let width = cols.max(1) as f32;
    for (i, &g) in grad_goodness.iter().enumerate() {
        for v in grad.data_mut()[i * cols..(i + 1) * cols].iter_mut() {
            *v *= 2.0 * g / width;
        }
    }
    grad
}

/// Accumulates per-candidate-label goodness scores for FF-native
/// classification.
///
/// The Forward-Forward classifier tries every candidate label embedding and
/// picks, per sample, the label whose forward pass accumulated the highest
/// total goodness across all trainable units. This accumulator is the shared
/// half of that sweep: [`crate::FfTrainer::predict`] feeds it one candidate
/// at a time during training-time evaluation, while `ff-serve`'s frozen
/// models feed it from a single batched forward pass over **all** candidate
/// overlays at once. Scores are added in layer order either way, so both
/// paths perform the identical sequence of `f32` additions per
/// (sample, candidate) cell.
///
/// # Examples
///
/// ```
/// use ff_core::GoodnessSweep;
///
/// let mut sweep = GoodnessSweep::new(2, 3);
/// sweep.accumulate(0, &[1.0, 5.0]);
/// sweep.accumulate(2, &[9.0, 2.0]);
/// assert_eq!(sweep.predictions(), vec![2, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct GoodnessSweep {
    rows: usize,
    num_classes: usize,
    /// Row-major `[rows, num_classes]` accumulated goodness.
    scores: Vec<f32>,
}

impl GoodnessSweep {
    /// Creates a zero-initialised sweep over `rows` samples and
    /// `num_classes` candidate labels.
    pub fn new(rows: usize, num_classes: usize) -> Self {
        GoodnessSweep {
            rows,
            num_classes,
            scores: vec![0.0; rows * num_classes],
        }
    }

    /// Number of samples.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of candidate labels.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Adds one layer's per-sample goodness for candidate label `candidate`.
    ///
    /// # Panics
    ///
    /// Panics when `candidate` is out of range or `per_sample` does not hold
    /// one value per row.
    pub fn accumulate(&mut self, candidate: usize, per_sample: &[f32]) {
        assert!(
            candidate < self.num_classes,
            "candidate {candidate} out of range for {} classes",
            self.num_classes
        );
        assert_eq!(
            per_sample.len(),
            self.rows,
            "one goodness value per sample required"
        );
        for (row, &g) in per_sample.iter().enumerate() {
            self.scores[row * self.num_classes + candidate] += g;
        }
    }

    /// Adds a single (sample, candidate) goodness contribution.
    ///
    /// # Panics
    ///
    /// Panics when `row` or `candidate` is out of range.
    pub fn add(&mut self, row: usize, candidate: usize, goodness: f32) {
        assert!(row < self.rows && candidate < self.num_classes);
        self.scores[row * self.num_classes + candidate] += goodness;
    }

    /// The accumulated per-candidate scores of one sample.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range.
    pub fn scores(&self, row: usize) -> &[f32] {
        &self.scores[row * self.num_classes..(row + 1) * self.num_classes]
    }

    /// Per-sample argmax over candidates (first maximum wins on ties,
    /// matching the trainer's historical behaviour).
    pub fn predictions(&self) -> Vec<usize> {
        self.scores
            .chunks(self.num_classes.max(1))
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodness_is_mean_of_squares() {
        let y = Tensor::from_vec(&[2, 2], vec![3.0, 4.0, 0.0, 0.0]).unwrap();
        assert_eq!(goodness(&y), vec![12.5, 0.0]);
        assert_eq!(goodness_sum(&y), vec![25.0, 0.0]);
    }

    #[test]
    fn goodness_gradient_matches_goodness_finite_difference() {
        let y = Tensor::from_vec(&[1, 3], vec![0.5, -1.0, 2.0]).unwrap();
        // L = G (i.e. dL/dG = 1): gradient should equal dG/dy = 2y/width.
        let grad = goodness_gradient(&y, &[1.0]);
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut yp = y.clone();
            yp.data_mut()[j] += eps;
            let mut ym = y.clone();
            ym.data_mut()[j] -= eps;
            let numeric = (goodness(&yp)[0] - goodness(&ym)[0]) / (2.0 * eps);
            assert!((grad.data()[j] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn positive_loss_decreases_with_goodness() {
        let (low, _) = ff_loss(&[0.0], 2.0, FfLossKind::Positive);
        let (high, _) = ff_loss(&[10.0], 2.0, FfLossKind::Positive);
        assert!(high < low);
    }

    #[test]
    fn negative_loss_increases_with_goodness() {
        let (low, _) = ff_loss(&[0.0], 2.0, FfLossKind::Negative);
        let (high, _) = ff_loss(&[10.0], 2.0, FfLossKind::Negative);
        assert!(high > low);
    }

    #[test]
    fn gradients_have_correct_sign() {
        let (_, gp) = ff_loss(&[1.0, 5.0], 2.0, FfLossKind::Positive);
        assert!(
            gp.iter().all(|&g| g < 0.0),
            "positive pass pushes goodness up"
        );
        let (_, gn) = ff_loss(&[1.0, 5.0], 2.0, FfLossKind::Negative);
        assert!(
            gn.iter().all(|&g| g > 0.0),
            "negative pass pushes goodness down"
        );
    }

    #[test]
    fn loss_gradient_matches_finite_difference() {
        let theta = 2.0;
        for &kind in &[FfLossKind::Positive, FfLossKind::Negative] {
            for &g in &[0.5f32, 2.0, 4.0] {
                let (_, grad) = ff_loss(&[g], theta, kind);
                let eps = 1e-3;
                let (lp, _) = ff_loss(&[g + eps], theta, kind);
                let (lm, _) = ff_loss(&[g - eps], theta, kind);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (grad[0] - numeric).abs() < 1e-3,
                    "kind {kind:?} g {g}: {} vs {numeric}",
                    grad[0]
                );
            }
        }
    }

    #[test]
    fn extreme_goodness_is_numerically_stable() {
        let (loss, grad) = ff_loss(&[1e6], 2.0, FfLossKind::Negative);
        assert!(loss.is_finite());
        assert!(grad[0].is_finite());
        let (loss, grad) = ff_loss(&[1e6], 2.0, FfLossKind::Positive);
        assert!(loss.is_finite() && loss >= 0.0);
        assert!(grad[0].abs() < 1e-3);
    }

    #[test]
    fn goodness_gradient_scales_rows() {
        let y = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let grad = goodness_gradient(&y, &[0.5, -1.0]);
        assert_eq!(grad.data(), &[0.5, 1.0, -3.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "one goodness gradient per sample")]
    fn goodness_gradient_checks_length() {
        goodness_gradient(&Tensor::ones(&[2, 2]), &[1.0]);
    }

    #[test]
    fn batch_loss_is_mean() {
        let (l1, _) = ff_loss(&[3.0], 2.0, FfLossKind::Positive);
        let (l2, _) = ff_loss(&[3.0, 3.0, 3.0], 2.0, FfLossKind::Positive);
        assert!((l1 - l2).abs() < 1e-6);
    }

    #[test]
    fn sweep_accumulates_across_layers_and_picks_argmax() {
        let mut sweep = GoodnessSweep::new(2, 3);
        assert_eq!(sweep.rows(), 2);
        assert_eq!(sweep.num_classes(), 3);
        // Two "layers" contribute to candidate 1.
        sweep.accumulate(1, &[1.0, 0.5]);
        sweep.accumulate(1, &[2.0, 0.25]);
        sweep.add(0, 2, 2.5);
        assert_eq!(sweep.scores(0), &[0.0, 3.0, 2.5]);
        assert_eq!(sweep.predictions(), vec![1, 1]);
    }

    #[test]
    fn sweep_ties_resolve_to_first_candidate() {
        let mut sweep = GoodnessSweep::new(1, 4);
        sweep.accumulate(1, &[7.0]);
        sweep.accumulate(3, &[7.0]);
        assert_eq!(sweep.predictions(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "one goodness value per sample")]
    fn sweep_checks_sample_count() {
        GoodnessSweep::new(3, 2).accumulate(0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sweep_checks_candidate_range() {
        GoodnessSweep::new(1, 2).accumulate(5, &[1.0]);
    }
}
