use std::fmt;

use ff_codec::CodecError;
use ff_nn::NnError;
use ff_tensor::TensorError;

/// Error type for training operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A layer/loss/optimizer operation failed.
    Nn(NnError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// The training configuration or dataset is inconsistent with the model.
    InvalidConfig {
        /// Human-readable description of the violated expectation.
        message: String,
    },
    /// An `FF8C` checkpoint artifact is malformed (bad magic, unsupported
    /// version, truncation, structural corruption).
    Checkpoint(CodecError),
    /// A checkpoint was loaded successfully but does not match the network
    /// or dataset it is being resumed onto.
    CheckpointMismatch {
        /// What disagrees between the checkpoint and the resume target.
        message: String,
    },
    /// A checkpoint file could not be read or written.
    Io {
        /// The underlying I/O failure, rendered as text (keeps `CoreError`
        /// `Clone + PartialEq`).
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            CoreError::Checkpoint(e) => write!(f, "checkpoint artifact error: {e}"),
            CoreError::CheckpointMismatch { message } => {
                write!(f, "checkpoint mismatch: {message}")
            }
            CoreError::Io { message } => write!(f, "checkpoint I/O error: {message}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            CoreError::Checkpoint(e) => Some(e),
            CoreError::InvalidConfig { .. }
            | CoreError::CheckpointMismatch { .. }
            | CoreError::Io { .. } => None,
        }
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> Self {
        CoreError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: CoreError = TensorError::InvalidParameter {
            message: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("tensor error"));
        assert!(e.source().is_some());
        let n: CoreError = NnError::MissingForwardState { layer: "dense" }.into();
        assert!(n.to_string().contains("network error"));
        let c = CoreError::InvalidConfig {
            message: "bad".into(),
        };
        assert!(c.to_string().contains("bad"));
        assert!(c.source().is_none());
    }
}
