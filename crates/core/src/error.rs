use std::fmt;

use ff_nn::NnError;
use ff_tensor::TensorError;

/// Error type for training operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A layer/loss/optimizer operation failed.
    Nn(NnError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// The training configuration or dataset is inconsistent with the model.
    InvalidConfig {
        /// Human-readable description of the violated expectation.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            CoreError::InvalidConfig { .. } => None,
        }
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: CoreError = TensorError::InvalidParameter {
            message: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("tensor error"));
        assert!(e.source().is_some());
        let n: CoreError = NnError::MissingForwardState { layer: "dense" }.into();
        assert!(n.to_string().contains("network error"));
        let c = CoreError::InvalidConfig {
            message: "bad".into(),
        };
        assert!(c.to_string().contains("bad"));
        assert!(c.source().is_none());
    }
}
