//! The ff-dist determinism contract, end to end: pipeline-parallel and
//! data-parallel training must be **bit-identical** to the sequential
//! [`FfTrainer`] run from the same seed — across stage splits, worker
//! counts, checkpoint/resume boundaries and worker death.

use ff_core::checkpoint::{load_bytes, save_bytes};
use ff_core::{Algorithm, Precision, SessionStatus, TrainOptions, TrainSession};
use ff_data::{synthetic_mnist, Dataset, SyntheticConfig};
use ff_dist::protocol::{read_msg, write_msg, TrainMsg};
use ff_dist::{Coordinator, CoordinatorConfig, DistError, PipelineSession, Worker};
use ff_models::small_mlp;
use ff_net::fault::{FaultPlan, FaultyStream};
use ff_nn::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpStream;
use std::time::Duration;

fn tiny_dataset() -> (Dataset, Dataset) {
    synthetic_mnist(&SyntheticConfig {
        train_size: 64,
        test_size: 16,
        noise_std: 0.2,
        max_shift: 0,
        seed: 17,
    })
}

fn tiny_net(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    small_mlp(784, &[16, 16], 10, &mut rng)
}

fn tiny_options(epochs: usize) -> TrainOptions {
    TrainOptions {
        epochs,
        batch_size: 32,
        max_eval_samples: 16,
        ..TrainOptions::fast_test()
    }
}

/// Every parameter, as exact bit patterns.
fn weight_bits(net: &mut Sequential) -> Vec<Vec<u32>> {
    net.params_mut()
        .iter()
        .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Runs the sequential reference trainer to completion.
fn sequential_run(
    precision: Precision,
    options: &TrainOptions,
    train_set: &Dataset,
    test_set: &Dataset,
) -> (ff_metrics::TrainingHistory, Vec<Vec<u32>>) {
    let algorithm = match precision {
        Precision::Int8 => Algorithm::FfInt8 { lookahead: false },
        Precision::Fp32 => Algorithm::FfFp32 { lookahead: false },
    };
    let mut net = tiny_net(1);
    let history = {
        TrainSession::new(&mut net, train_set, test_set, algorithm, options)
            .unwrap()
            .run()
            .unwrap()
    };
    (history, weight_bits(&mut net))
}

#[test]
fn pipeline_matches_sequential_across_splits_and_precisions() {
    let (train_set, test_set) = tiny_dataset();
    let options = tiny_options(2);
    for precision in [Precision::Int8, Precision::Fp32] {
        let (reference_history, reference_bits) =
            sequential_run(precision, &options, &train_set, &test_set);
        for split in [vec![3], vec![1, 2], vec![2, 1], vec![1, 1, 1]] {
            let mut net = tiny_net(1);
            let history = {
                let mut session = PipelineSession::new(
                    &mut net, &train_set, &test_set, precision, &options, &split,
                )
                .unwrap();
                session.run().unwrap().clone()
            };
            assert!(
                history.same_trajectory(&reference_history),
                "{precision:?} split {split:?}: pipeline history diverged from sequential"
            );
            assert_eq!(
                weight_bits(&mut net),
                reference_bits,
                "{precision:?} split {split:?}: pipeline weights diverged from sequential"
            );
        }
    }
}

#[test]
fn pipeline_checkpoint_resumes_sequentially_and_vice_versa() {
    let (train_set, test_set) = tiny_dataset();
    let options = tiny_options(3);
    let (reference_history, reference_bits) =
        sequential_run(Precision::Int8, &options, &train_set, &test_set);

    // Pipeline runs 3 of the 6 total batches (mid-epoch 1), checkpoints
    // through a byte roundtrip, and a *sequential* session finishes the run.
    let mut net = tiny_net(1);
    let checkpoint = {
        let mut session = PipelineSession::new(
            &mut net,
            &train_set,
            &test_set,
            Precision::Int8,
            &options,
            &[1, 2],
        )
        .unwrap();
        assert_eq!(session.run_steps(3).unwrap(), 3);
        session.checkpoint()
    };
    let checkpoint = load_bytes(&save_bytes(&checkpoint)).unwrap();
    let mut resumed_net = tiny_net(99); // overwritten by the checkpoint
    let history = {
        TrainSession::resume(&mut resumed_net, &train_set, &test_set, &checkpoint)
            .unwrap()
            .run()
            .unwrap()
    };
    assert!(history.same_trajectory(&reference_history));
    assert_eq!(weight_bits(&mut resumed_net), reference_bits);

    // And the other direction: a sequential mid-epoch checkpoint finishes
    // under the pipeline.
    let mut net = tiny_net(1);
    let checkpoint = {
        let mut session = TrainSession::new(
            &mut net,
            &train_set,
            &test_set,
            Algorithm::FfInt8 { lookahead: false },
            &options,
        )
        .unwrap();
        for _ in 0..3 {
            session.step().unwrap();
        }
        session.checkpoint()
    };
    let checkpoint = load_bytes(&save_bytes(&checkpoint)).unwrap();
    let mut resumed_net = tiny_net(99);
    let history = {
        let mut session = PipelineSession::resume(
            &mut resumed_net,
            &train_set,
            &test_set,
            &checkpoint,
            &[2, 1],
        )
        .unwrap();
        session.run().unwrap().clone()
    };
    assert!(history.same_trajectory(&reference_history));
    assert_eq!(weight_bits(&mut resumed_net), reference_bits);
}

#[test]
fn data_parallel_two_workers_matches_sequential() {
    let (train_set, test_set) = tiny_dataset();
    let options = TrainOptions {
        grad_shards: 2,
        ..tiny_options(2)
    };
    let (reference_history, reference_bits) =
        sequential_run(Precision::Int8, &options, &train_set, &test_set);

    let mut coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).unwrap();
    let addr = coordinator.addr();
    let workers: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                let mut replica = tiny_net(1000 + i); // overwritten by ParamSync
                Worker::connect(addr, "", &mut replica)
            })
        })
        .collect();
    while coordinator.worker_count() < 2 {
        std::thread::sleep(Duration::from_millis(5));
    }

    let trainer = coordinator
        .trainer(Precision::Int8, false, options.clone())
        .unwrap();
    let mut net = tiny_net(1);
    let history = {
        TrainSession::with_trainer(&mut net, &train_set, &test_set, trainer)
            .unwrap()
            .run()
            .unwrap()
    };
    coordinator.shutdown();
    let mut shards_remote = 0;
    for handle in workers {
        let report = handle.join().unwrap().unwrap();
        shards_remote += report.shards_computed;
    }

    assert!(
        history.same_trajectory(&reference_history),
        "data-parallel history diverged from sequential"
    );
    assert_eq!(
        weight_bits(&mut net),
        reference_bits,
        "data-parallel weights diverged from sequential"
    );
    assert!(
        shards_remote > 0,
        "the cluster never computed a shard remotely — the test proved nothing"
    );
}

#[test]
fn data_parallel_survives_worker_death_and_resumes_mid_epoch() {
    let (train_set, test_set) = tiny_dataset();
    let options = TrainOptions {
        grad_shards: 2,
        ..tiny_options(2)
    };
    let (reference_history, reference_bits) =
        sequential_run(Precision::Int8, &options, &train_set, &test_set);

    let mut coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).unwrap();
    let addr = coordinator.addr();
    // One healthy worker, one whose transport is hard-cut mid-service by
    // the chaos plan — like a peer dying between frames.
    let healthy = std::thread::spawn(move || {
        let mut replica = tiny_net(1000);
        Worker::connect(addr, "", &mut replica)
    });
    let doomed = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut chaotic = FaultyStream::new(
            stream,
            FaultPlan {
                cut_at_op: Some(9),
                ..FaultPlan::benign(7)
            },
        );
        let mut replica = tiny_net(1001);
        Worker::run(&mut chaotic, "", &mut replica)
    });
    while coordinator.worker_count() < 2 {
        std::thread::sleep(Duration::from_millis(5));
    }

    let trainer = coordinator
        .trainer(Precision::Int8, false, options.clone())
        .unwrap();
    let mut net = tiny_net(1);
    // Train 3 of the 4 total batches (mid-epoch 1) with the cluster — the
    // doomed worker dies along the way and its shards get recomputed —
    // then checkpoint and finish sequentially.
    let checkpoint = {
        let mut session =
            TrainSession::with_trainer(&mut net, &train_set, &test_set, trainer).unwrap();
        let mut batches = 0;
        while batches < 3 {
            match session.step().unwrap() {
                SessionStatus::Running | SessionStatus::EpochFinished { .. } => batches += 1,
                other => panic!("session ended early at batch {batches}: {other:?}"),
            }
        }
        session.checkpoint()
    };
    coordinator.shutdown();
    healthy.join().unwrap().unwrap();
    doomed.join().unwrap().unwrap();

    let checkpoint = load_bytes(&save_bytes(&checkpoint)).unwrap();
    let mut resumed_net = tiny_net(99);
    let history = {
        TrainSession::resume(&mut resumed_net, &train_set, &test_set, &checkpoint)
            .unwrap()
            .run()
            .unwrap()
    };
    assert!(
        history.same_trajectory(&reference_history),
        "crashing a worker mid-epoch changed the trajectory"
    );
    assert_eq!(
        weight_bits(&mut resumed_net),
        reference_bits,
        "crashing a worker mid-epoch changed the weights"
    );
}

#[test]
fn join_token_is_enforced() {
    let mut coordinator = Coordinator::bind(
        "127.0.0.1:0",
        CoordinatorConfig {
            token: Some("right".to_string()),
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let addr = coordinator.addr();

    let mut replica = tiny_net(3);
    let rejected = Worker::connect(addr, "wrong", &mut replica);
    assert!(
        matches!(rejected, Err(DistError::Protocol { .. })),
        "a bad token must be rejected, got {rejected:?}"
    );
    assert_eq!(coordinator.worker_count(), 0);
    coordinator.shutdown();
}

#[test]
fn checkpoint_pull_and_event_stream_over_the_wire() {
    let mut coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).unwrap();
    let addr = coordinator.addr();

    // No checkpoint published yet: a typed error, not a hang.
    let mut puller = TcpStream::connect(addr).unwrap();
    write_msg(&mut puller, &TrainMsg::PullCheckpoint).unwrap();
    assert!(matches!(
        read_msg(&mut puller).unwrap(),
        TrainMsg::Error { .. }
    ));

    // Publish a (stand-in) artifact and pull it back verbatim.
    coordinator.publish_checkpoint(vec![1, 2, 3, 4, 5]);
    let mut puller = TcpStream::connect(addr).unwrap();
    write_msg(&mut puller, &TrainMsg::PullCheckpoint).unwrap();
    match read_msg(&mut puller).unwrap() {
        TrainMsg::CheckpointReply { bytes } => assert_eq!(bytes, vec![1, 2, 3, 4, 5]),
        other => panic!("expected CheckpointReply, got {other:?}"),
    }

    // Subscribe, then receive a broadcast training event, typed.
    let mut observer = TcpStream::connect(addr).unwrap();
    write_msg(&mut observer, &TrainMsg::Subscribe).unwrap();
    let event = ff_core::TrainEvent::EpochStart {
        epoch: 3,
        lambda: 0.5,
    };
    // The subscriber registers asynchronously; retry until the broadcast
    // lands on it.
    observer
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let mut received = None;
    for _ in 0..50 {
        coordinator.broadcast_event(&event);
        match read_msg(&mut observer) {
            Ok(TrainMsg::Event { event }) => {
                received = Some(event);
                break;
            }
            Ok(other) => panic!("expected Event, got {other:?}"),
            Err(_) => continue,
        }
    }
    assert_eq!(received, Some(event));
    coordinator.shutdown();
}
