//! Property tests for the distributed determinism contract and the `FF8D`
//! decoder's panic-freedom.
//!
//! The socketed 2-worker parity run and the chaos (worker-death) cases live
//! in `parity.rs`; here the *parameter space* gets swept — RNG seeds, stage
//! splits, shard counts, worker counts — asserting the one invariant
//! everything in this crate hangs off: distributed execution is
//! bit-identical to the sequential trainer.
//!
//! Training cases are expensive (each runs two full trainings), so the two
//! sweeps drive the proptest strategies through an explicit seeded
//! [`TestRng`] over a handful of cases instead of the `proptest!` macro's
//! fixed 64; the cheap decoder-fuzz properties use the macro as usual.

use ff_core::{Algorithm, Precision, TrainOptions, TrainSession};
use ff_data::{synthetic_mnist, Dataset, SyntheticConfig};
use ff_dist::protocol::{
    decode_msg, decode_msg_versioned, encode_msg, encode_msg_at, sample_msgs, TrainMsg,
    MIN_TRAIN_PROTOCOL_VERSION, TRAIN_PROTOCOL_VERSION,
};
use ff_dist::{Coordinator, CoordinatorConfig, DistError, PipelineSession, Worker};
use ff_models::small_mlp;
use ff_nn::Sequential;
use proptest::prelude::*;
use proptest::test_runner::{base_seed, TestRng};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn tiny_dataset() -> (Dataset, Dataset) {
    synthetic_mnist(&SyntheticConfig {
        train_size: 48,
        test_size: 16,
        noise_std: 0.2,
        max_shift: 0,
        seed: 23,
    })
}

fn tiny_net(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    small_mlp(784, &[8, 8], 10, &mut rng)
}

fn tiny_options(seed: u64, grad_shards: usize) -> TrainOptions {
    TrainOptions {
        epochs: 1,
        batch_size: 16,
        max_eval_samples: 16,
        seed,
        grad_shards,
        ..TrainOptions::fast_test()
    }
}

fn weight_bits(net: &mut Sequential) -> Vec<Vec<u32>> {
    net.params_mut()
        .iter()
        .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn sequential_bits(
    options: &TrainOptions,
    train_set: &Dataset,
    test_set: &Dataset,
) -> Vec<Vec<u32>> {
    let mut net = tiny_net(1);
    TrainSession::new(
        &mut net,
        train_set,
        test_set,
        Algorithm::FfInt8 { lookahead: false },
        options,
    )
    .unwrap()
    .run()
    .unwrap();
    weight_bits(&mut net)
}

/// Pipeline weights are bit-identical to sequential for random RNG seeds
/// and every contiguous stage split of the 3-layer net.
#[test]
fn pipeline_is_bit_exact_across_seeds_and_splits() {
    let splits: [&[usize]; 4] = [&[3], &[1, 2], &[2, 1], &[1, 1, 1]];
    let (train_set, test_set) = tiny_dataset();
    let mut rng = TestRng::new(base_seed("pipeline_is_bit_exact_across_seeds_and_splits"));
    for _case in 0..4 {
        let seed = (0u64..1000).generate(&mut rng);
        let options = tiny_options(seed, 1);
        let reference = sequential_bits(&options, &train_set, &test_set);
        for split in splits {
            let mut net = tiny_net(1);
            let mut session = PipelineSession::new(
                &mut net,
                &train_set,
                &test_set,
                Precision::Int8,
                &options,
                split,
            )
            .unwrap();
            session.run().unwrap();
            drop(session);
            assert_eq!(
                weight_bits(&mut net),
                reference,
                "seed {seed} split {split:?}: pipeline diverged from sequential"
            );
        }
    }
}

/// A cluster of 0, 1 or 2 live workers produces bit-identical weights to
/// the sequential `grad_shards = W` run for random seeds — zero workers
/// exercises the all-local fallback, one worker the single-peer path, two
/// the round-robin split.
#[test]
fn data_parallel_is_bit_exact_across_seeds_and_worker_counts() {
    let mut rng = TestRng::new(base_seed(
        "data_parallel_is_bit_exact_across_seeds_and_worker_counts",
    ));
    let (train_set, test_set) = tiny_dataset();
    for worker_count in 0usize..3 {
        let seed = (0u64..1000).generate(&mut rng);
        let grad_shards = (1usize..4).generate(&mut rng);
        let options = tiny_options(seed, grad_shards);
        let reference = sequential_bits(&options, &train_set, &test_set);

        let mut coordinator =
            Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).unwrap();
        let addr = coordinator.addr();
        let workers: Vec<_> = (0..worker_count)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut replica = tiny_net(2000 + i as u64);
                    Worker::connect(addr, "", &mut replica)
                })
            })
            .collect();
        while coordinator.worker_count() < worker_count {
            std::thread::sleep(Duration::from_millis(2));
        }

        let trainer = coordinator
            .trainer(Precision::Int8, false, options)
            .unwrap();
        let mut net = tiny_net(1);
        TrainSession::with_trainer(&mut net, &train_set, &test_set, trainer)
            .unwrap()
            .run()
            .unwrap();
        coordinator.shutdown();
        for handle in workers {
            handle.join().unwrap().unwrap();
        }
        assert_eq!(
            weight_bits(&mut net),
            reference,
            "seed {seed}, {worker_count} workers, {grad_shards} shards: \
             data-parallel diverged from sequential"
        );
    }
}

/// The sample messages `version` can encode (the trace kinds are v2+).
fn encodable_at(version: u16) -> Vec<TrainMsg> {
    sample_msgs()
        .into_iter()
        .filter(|msg| {
            version >= 2
                || !matches!(
                    msg,
                    TrainMsg::TraceDump { .. } | TrainMsg::TraceDumpReply { .. }
                )
        })
        .collect()
}

/// Truncating any sample frame at ANY offset, at every supported encoding
/// version, is a typed error — never a panic, never a bogus decode. The
/// exhaustive sweep (rather than sampled fractions) pins the v2 trace
/// fields: `ShardStamps`, the span-carrying `TraceDumpReply`, and the
/// `SubmitBatch` trace id all sit at fixed offsets a sampler could skip.
#[test]
fn every_truncation_of_every_versioned_frame_is_rejected() {
    for version in MIN_TRAIN_PROTOCOL_VERSION..=TRAIN_PROTOCOL_VERSION {
        for msg in encodable_at(version) {
            let bytes = encode_msg_at(&msg, version);
            for keep in 0..bytes.len() {
                assert!(
                    decode_msg(&bytes[..keep]).is_err(),
                    "v{version} frame decoded from a {keep}-byte prefix of {} bytes",
                    bytes.len()
                );
            }
        }
    }
}

proptest! {
    // Arbitrary bytes never panic the decoder — they decode or return a
    // typed error.
    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(
        len in 0usize..512,
        fill in proptest::collection::vec(0u8..=255, 512),
    ) {
        let _ = decode_msg(&fill[..len]);
    }

    // Bit-flipped valid frames never panic the decoder either (they land
    // deeper in the payload parsers than random bytes do).
    #[test]
    fn decoder_never_panics_on_corrupted_valid_frames(
        pick in 0usize..15,
        position_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let msgs = sample_msgs();
        let mut bytes = encode_msg(&msgs[pick % msgs.len()]);
        let len = bytes.len();
        let position = ((len as f64) * position_fraction) as usize % len;
        bytes[position] ^= flip;
        match decode_msg(&bytes) {
            // Flips landing in value payloads legitimately decode to a
            // different message; anything structural must be a typed error.
            Ok(_) | Err(DistError::Protocol { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    // Truncating any frame at any point is a typed error, never a panic
    // or a bogus decode.
    #[test]
    fn decoder_rejects_every_truncation(
        pick in 0usize..15,
        keep_fraction in 0.0f64..1.0,
    ) {
        let msgs = sample_msgs();
        let bytes = encode_msg(&msgs[pick % msgs.len()]);
        let keep = ((bytes.len() as f64) * keep_fraction) as usize % bytes.len();
        prop_assert!(decode_msg(&bytes[..keep]).is_err());
    }

    // The re-encoding of any decoded sample message is byte-identical —
    // the codec has one canonical form.
    #[test]
    fn decoded_messages_reencode_canonically(pick in 0usize..15) {
        let msgs = sample_msgs();
        let bytes = encode_msg(&msgs[pick % msgs.len()]);
        let decoded: TrainMsg = decode_msg(&bytes).unwrap();
        prop_assert_eq!(&encode_msg(&decoded), &bytes);
    }

    // The legacy v1 encoding has its own canonical form (no trace fields)
    // and its frames fuzz just as clean: a decoded v1 frame re-encodes to
    // the exact bytes, and a bit-flipped v1 frame either decodes to some
    // other message or fails with a typed error — never a panic.
    #[test]
    fn v1_frames_reencode_canonically_and_survive_flips(
        pick in 0usize..15,
        position_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let msgs = encodable_at(1);
        let bytes = encode_msg_at(&msgs[pick % msgs.len()], 1);
        let (decoded, version) = decode_msg_versioned(&bytes).unwrap();
        prop_assert_eq!(version, 1);
        prop_assert_eq!(&encode_msg_at(&decoded, 1), &bytes);
        let mut corrupt = bytes;
        let len = corrupt.len();
        let position = ((len as f64) * position_fraction) as usize % len;
        corrupt[position] ^= flip;
        match decode_msg(&corrupt) {
            Ok(_) | Err(DistError::Protocol { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }
}
