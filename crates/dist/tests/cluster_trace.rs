//! End-to-end cluster observability: a capture-all data-parallel run must
//! produce one wire-dumpable [`ClusterSpan`] per training step with every
//! coordinator phase and worker stamp present and monotonic, the per-kind
//! wire accounting must add up against the protocol's known frame counts,
//! and none of it may perturb the determinism contract — the traced run's
//! weights stay bit-identical to the sequential reference.

use ff_core::{Algorithm, Precision, TrainOptions, TrainSession};
use ff_data::{synthetic_mnist, Dataset, SyntheticConfig};
use ff_dist::protocol::{read_msg, write_msg, TrainMsg};
use ff_dist::{pull_cluster_traces, Coordinator, CoordinatorConfig, PipelineSession, Worker};
use ff_models::small_mlp;
use ff_nn::Sequential;
use ff_trace::{ClusterFlightRecorder, ClusterSpan, MetricsRegistry, TraceSettings};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpStream;
use std::time::{Duration, Instant};

const STEPS: u64 = 4; // 64 samples / batch 32 = 2 batches/epoch, 2 epochs

fn tiny_dataset() -> (Dataset, Dataset) {
    synthetic_mnist(&SyntheticConfig {
        train_size: 64,
        test_size: 16,
        noise_std: 0.2,
        max_shift: 0,
        seed: 17,
    })
}

fn tiny_net(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    small_mlp(784, &[16, 16], 10, &mut rng)
}

fn tiny_options() -> TrainOptions {
    TrainOptions {
        epochs: 2,
        batch_size: 32,
        max_eval_samples: 16,
        grad_shards: 2,
        ..TrainOptions::fast_test()
    }
}

/// Waits (bounded) for `name` to reach `want`, then returns the value read.
///
/// The coordinator bumps its error/wire counters on its own connection
/// thread after the reply bytes hit the socket, so a client that has just
/// observed the reply may race the increment by a few microseconds.
fn settled_counter(registry: &MetricsRegistry, name: &str, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let got = registry.counter(name).get();
        if got >= want || Instant::now() >= deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn weight_bits(net: &mut Sequential) -> Vec<Vec<u32>> {
    net.params_mut()
        .iter()
        .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn sequential_bits(options: &TrainOptions, train: &Dataset, test: &Dataset) -> Vec<Vec<u32>> {
    let mut net = tiny_net(1);
    TrainSession::new(
        &mut net,
        train,
        test,
        Algorithm::FfInt8 { lookahead: false },
        options,
    )
    .unwrap()
    .run()
    .unwrap();
    weight_bits(&mut net)
}

/// Deterministic capture-all tracing: every step sampled, ids replayable.
fn capture_all() -> TraceSettings {
    TraceSettings {
        capacity: 64,
        sample_per_sec: u32::MAX,
        seed: 0xC1A5,
        ..TraceSettings::default()
    }
}

/// Runs a 2-worker data-parallel training to completion and returns the
/// trained weights plus the wire-pulled trace dump, leaving the registry
/// populated for wire-accounting assertions.
fn traced_cluster_run(
    registry: &MetricsRegistry,
    worker_versions: [u16; 2],
) -> (Vec<Vec<u32>>, u64, Vec<ClusterSpan>) {
    let (train_set, test_set) = tiny_dataset();
    let options = tiny_options();
    let mut coordinator = Coordinator::bind(
        "127.0.0.1:0",
        CoordinatorConfig {
            metrics: Some(registry.clone()),
            trace: capture_all(),
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let addr = coordinator.addr();
    let workers: Vec<_> = worker_versions
        .into_iter()
        .enumerate()
        .map(|(i, version)| {
            std::thread::spawn(move || {
                let mut replica = tiny_net(1000 + i as u64);
                Worker::connect_at(addr, "", &mut replica, version)
            })
        })
        .collect();
    while coordinator.worker_count() < 2 {
        std::thread::sleep(Duration::from_millis(5));
    }

    let trainer = coordinator
        .trainer(Precision::Int8, false, options)
        .unwrap();
    let mut net = tiny_net(1);
    TrainSession::with_trainer(&mut net, &train_set, &test_set, trainer)
        .unwrap()
        .run()
        .unwrap();

    // Dump over the wire while the cluster is still up, and check the
    // local accessor agrees with what crossed the socket.
    let (dropped, spans) = pull_cluster_traces(addr, 0).unwrap();
    assert_eq!(spans, coordinator.cluster_traces(0));
    assert_eq!(dropped, coordinator.cluster_traces_dropped());

    coordinator.shutdown();
    for handle in workers {
        handle.join().unwrap().unwrap();
    }
    (weight_bits(&mut net), dropped, spans)
}

#[test]
fn capture_all_run_spans_every_step_and_stays_bit_exact() {
    let (train_set, test_set) = tiny_dataset();
    let reference_bits = sequential_bits(&tiny_options(), &train_set, &test_set);

    let registry = MetricsRegistry::new();
    let (bits, dropped, spans) = traced_cluster_run(&registry, [2, 2]);
    assert_eq!(
        bits, reference_bits,
        "tracing must not perturb the determinism contract"
    );

    // One complete, monotonic span per training step, in step order.
    assert_eq!(dropped, 0, "uncontended run must not drop spans");
    assert_eq!(spans.len(), STEPS as usize, "one span per step");
    for (expected_step, span) in spans.iter().enumerate() {
        assert_eq!(span.step, expected_step as u64);
        assert_ne!(span.trace_id, 0);
        assert!(span.is_complete(), "incomplete span: {span:?}");
        assert!(span.is_monotonic(), "non-monotonic span: {span:?}");
        assert_eq!(span.shards.len(), 2, "grad_shards = 2");
        assert!(
            span.has_worker_stamps(),
            "v2 workers must stamp decode/compute/encode: {span:?}"
        );
        for shard in &span.shards {
            if shard.worker_id.is_some() {
                assert!(shard.dispatched_ns > 0, "remote shard never dispatched");
            }
        }
    }
    // Trace ids are a pure function of (seed, step): a second recorder
    // with the same settings replays them.
    let replay = ClusterFlightRecorder::new(capture_all());
    for span in &spans {
        assert_eq!(span.trace_id, replay.trace_id(span.step));
    }

    // Wire accounting adds up against the protocol's known frame counts.
    let frames = |kind: &str| registry.counter(&format!("dist.wire.{kind}.frames")).get();
    let bytes = |kind: &str| registry.counter(&format!("dist.wire.{kind}.bytes")).get();
    assert_eq!(frames("join"), 2);
    assert_eq!(frames("join_ack"), 2);
    assert_eq!(
        frames("param_sync"),
        STEPS * 2,
        "one sync per worker per step"
    );
    assert_eq!(frames("submit_batch"), STEPS * 2, "two shards per step");
    assert_eq!(frames("shard_result"), STEPS * 2);
    assert_eq!(frames("trace_dump"), 1);
    assert_eq!(frames("trace_dump_reply"), 1);
    assert_eq!(frames("shutdown"), 2);
    assert_eq!(frames("error"), 0);

    // The ParamSync byte share is measurable and physically plausible: each
    // sync carries every parameter as f32, to each worker, every step.
    let param_floats: u64 = tiny_net(1)
        .params_mut()
        .iter()
        .map(|p| p.value.data().len() as u64)
        .sum();
    let sync_bytes = bytes("param_sync");
    assert!(
        sync_bytes >= STEPS * 2 * param_floats * 4,
        "param_sync accounted {sync_bytes} bytes for {param_floats} parameters"
    );
    let kinds = TrainMsg::kind_names();
    let total: u64 = kinds.iter().map(|kind| bytes(kind)).sum();
    let share = sync_bytes as f64 / total as f64;
    assert!(
        (0.05..1.0).contains(&share),
        "param_sync share {share:.3} of {total} wire bytes is implausible"
    );

    // No worker died, so nothing was recomputed and nothing was dropped.
    assert_eq!(
        registry.counter("dist.coord.recompute.worker_death").get(),
        0
    );
    assert_eq!(registry.counter("dist.coord.trace.dropped").get(), 0);
    assert_eq!(registry.counter("dist.coord.traces_pulled").get(), 1);
}

#[test]
fn v1_worker_interop_is_bit_exact_and_merely_stamp_free() {
    let (train_set, test_set) = tiny_dataset();
    let reference_bits = sequential_bits(&tiny_options(), &train_set, &test_set);

    let registry = MetricsRegistry::new();
    let (bits, _, spans) = traced_cluster_run(&registry, [1, 2]);
    assert_eq!(
        bits, reference_bits,
        "a v1 worker must train bit-identically to the v2 cluster"
    );
    assert_eq!(spans.len(), STEPS as usize);

    // The v1 worker's shards complete and stay monotonic — they simply
    // carry no worker-side stamps, while the v2 worker's shards carry all
    // three. Both workers computed something across the run.
    let mut stamped = 0;
    let mut stampless = 0;
    for span in &spans {
        assert!(
            span.is_complete() && span.is_monotonic(),
            "bad span: {span:?}"
        );
        for shard in span.shards.iter().filter(|s| s.worker_id.is_some()) {
            if shard.has_worker_stamps() {
                stamped += 1;
            } else {
                assert_eq!(
                    (shard.decoded_ns, shard.computed_ns, shard.encoded_ns),
                    (0, 0, 0),
                    "a pre-trace worker must leave stamps at the neutral zero"
                );
                stampless += 1;
            }
        }
    }
    assert!(stamped > 0, "the v2 worker never stamped a shard");
    assert!(stampless > 0, "the v1 worker never served a shard");
}

#[test]
fn rejected_joins_and_malformed_hellos_bump_error_counters() {
    let registry = MetricsRegistry::new();
    let mut coordinator = Coordinator::bind(
        "127.0.0.1:0",
        CoordinatorConfig {
            token: Some("right".to_string()),
            metrics: Some(registry.clone()),
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let addr = coordinator.addr();

    let mut replica = tiny_net(3);
    assert!(Worker::connect(addr, "wrong", &mut replica).is_err());
    assert_eq!(
        settled_counter(&registry, "dist.coord.errors.bad_token", 1),
        1
    );

    // A non-hello first frame is answered with a typed UnexpectedHello.
    let mut stream = TcpStream::connect(addr).unwrap();
    write_msg(&mut stream, &TrainMsg::Leave).unwrap();
    match read_msg(&mut stream).unwrap() {
        TrainMsg::Error { message, .. } => assert!(message.contains("expected Join")),
        other => panic!("expected a typed error, got {other:?}"),
    }
    assert_eq!(
        settled_counter(&registry, "dist.coord.errors.unexpected_hello", 1),
        1
    );
    assert_eq!(registry.counter("dist.coord.errors.bad_token").get(), 1);
    assert_eq!(settled_counter(&registry, "dist.wire.error.frames", 2), 2);
    coordinator.shutdown();
}

#[test]
fn pipeline_stages_publish_compute_and_blocked_histograms() {
    let (train_set, test_set) = tiny_dataset();
    let options = TrainOptions {
        grad_shards: 1, // row sharding belongs to the data-parallel tier
        ..tiny_options()
    };
    let registry = MetricsRegistry::new();
    let mut net = tiny_net(1);
    {
        let mut session = PipelineSession::new(
            &mut net,
            &train_set,
            &test_set,
            Precision::Int8,
            &options,
            &[1, 2],
        )
        .unwrap();
        session.set_metrics(registry.clone());
        session.run().unwrap();
    }
    let text = registry.expose();
    for stage in 0..2 {
        for surface in ["compute_ns", "send_blocked_ns", "recv_blocked_ns"] {
            let name = format!("dist.pipeline.stage.{stage}.{surface}");
            assert!(
                text.contains(&format!("{name} histogram count ")),
                "missing {name} in:\n{text}"
            );
        }
        // Every batch's compute and upstream wait was recorded on every
        // stage (stage 0's upstream is the driver's feed channel).
        let count = |surface: &str| {
            registry
                .histogram(&format!("dist.pipeline.stage.{stage}.{surface}"))
                .histogram()
                .count()
        };
        assert_eq!(count("compute_ns"), STEPS, "stage {stage} missed a batch");
        assert_eq!(
            count("recv_blocked_ns"),
            STEPS,
            "stage {stage} missed a wait"
        );
    }
    // Only stages with a downstream link record send stalls; the final
    // stage has no forward channel, so its histogram stays empty.
    assert_eq!(
        registry
            .histogram("dist.pipeline.stage.0.send_blocked_ns")
            .histogram()
            .count(),
        STEPS
    );
    assert_eq!(
        registry
            .histogram("dist.pipeline.stage.1.send_blocked_ns")
            .histogram()
            .count(),
        0
    );
}
