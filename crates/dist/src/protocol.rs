//! The `FF8D` distributed-training wire protocol.
//!
//! One frame = a `u32` little-endian byte length followed by an `FF8D`
//! artifact built with the shared [`ff_codec`] writer: 4 magic bytes, a
//! `u16` version, a reserved flags word, then a single length-prefixed
//! record whose first byte is the message kind. Everything rides the same
//! panic-free codec as the `FF8C`/`FF8S`/`FF8P` formats — malformed input
//! maps to a typed error, never a panic, and the fuzz suite asserts it.
//!
//! Message flow:
//!
//! - workers: `Join` → `JoinAck`, then a stream of `ParamSync` +
//!   `SubmitBatch` from the coordinator answered by `ShardResult`s, ended
//!   by `Leave` (worker-initiated) or `Shutdown` (coordinator-initiated);
//! - observers: `Subscribe`, then a stream of typed [`TrainEvent`] frames;
//! - checkpoint pullers: `PullCheckpoint` → `CheckpointReply` carrying a
//!   complete `FF8C` artifact (or `Error` when none is published yet).

use crate::{DistError, Result};
use ff_codec::{Reader, Writer};
use ff_core::shard::{ShardGrads, ShardTask};
use ff_core::{EvalSplit, Precision, StepSpans, TrainEvent};
use ff_tensor::Tensor;
use std::io::{Read, Write};

/// Magic bytes of every `FF8D` frame.
pub const TRAIN_MAGIC: [u8; 4] = *b"FF8D";

/// Current `FF8D` protocol version.
pub const TRAIN_PROTOCOL_VERSION: u16 = 1;

/// Upper bound on one frame's encoded size (64 MiB) — enough for a full
/// parameter sync of any model this workspace trains, small enough that a
/// hostile length prefix cannot drive a huge allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Upper bound on decoded string lengths (tokens, error messages).
const MAX_STRING: usize = 4096;

/// Upper bound on tensor rank accepted off the wire.
const MAX_DIMS: usize = 8;

/// Message kind tags (the first byte of every frame's record).
mod kind {
    pub const JOIN: u8 = 1;
    pub const JOIN_ACK: u8 = 2;
    pub const PARAM_SYNC: u8 = 3;
    pub const SUBMIT_BATCH: u8 = 4;
    pub const SHARD_RESULT: u8 = 5;
    pub const EVENT: u8 = 6;
    pub const PULL_CHECKPOINT: u8 = 7;
    pub const CHECKPOINT_REPLY: u8 = 8;
    pub const SUBSCRIBE: u8 = 9;
    pub const LEAVE: u8 = 10;
    pub const SHUTDOWN: u8 = 11;
    pub const ERROR: u8 = 12;
}

/// One `FF8D` message.
#[derive(Debug, Clone)]
pub enum TrainMsg {
    /// A worker announces itself, presenting the cluster token (empty when
    /// the coordinator requires none).
    Join {
        /// Shared-secret cluster token.
        token: String,
    },
    /// The coordinator accepts a worker and assigns its id.
    JoinAck {
        /// The worker's id for the rest of the connection.
        worker_id: u64,
    },
    /// Full parameter sync: the worker overwrites its replica with these
    /// tensors (in [`ff_nn::Sequential::params_mut`] order) before the
    /// batch of the same `version` runs.
    ParamSync {
        /// The global step these parameters belong to.
        version: u64,
        /// Every trainable parameter tensor, in network order.
        params: Vec<Tensor>,
    },
    /// One shard of one training batch for the worker to compute.
    SubmitBatch {
        /// The global step this shard belongs to (matches `ParamSync`).
        step: u64,
        /// The canonical shard task ([`ff_core::shard::compute_shard`]).
        task: ShardTask,
    },
    /// A worker returns one shard's gradients.
    ShardResult {
        /// The global step the shard belongs to.
        step: u64,
        /// Which shard of the batch this is.
        shard_index: u64,
        /// The shard's loss partials and gradient tensors.
        grads: ShardGrads,
    },
    /// A typed training event streamed to subscribers.
    Event {
        /// The event, verbatim from the training session.
        event: TrainEvent,
    },
    /// Requests the latest published checkpoint.
    PullCheckpoint,
    /// Carries a complete `FF8C` checkpoint artifact.
    CheckpointReply {
        /// The artifact bytes ([`ff_core::checkpoint::load_bytes`] reads
        /// them).
        bytes: Vec<u8>,
    },
    /// Registers this connection as a training-event observer.
    Subscribe,
    /// A worker leaves the cluster cleanly.
    Leave,
    /// The coordinator tells a worker to exit.
    Shutdown,
    /// A typed error reply (bad token, no checkpoint yet, ...).
    Error {
        /// What went wrong.
        message: String,
    },
}

fn put_tensor(r: &mut ff_codec::RecordWriter, t: &Tensor) {
    let shape = t.shape();
    r.put_u32(shape.len() as u32);
    for &d in shape {
        r.put_u64(d as u64);
    }
    for &v in t.data() {
        r.put_f32(v);
    }
}

fn get_tensor(r: &mut Reader<'_>) -> Result<Tensor> {
    let rank = r.get_u32("tensor rank")? as usize;
    if rank > MAX_DIMS {
        return Err(DistError::Protocol {
            message: format!("tensor rank {rank} exceeds limit {MAX_DIMS}"),
        });
    }
    r.ensure_fits(rank, 8, "tensor shape")?;
    let mut shape = Vec::with_capacity(rank);
    let mut count: usize = 1;
    for _ in 0..rank {
        let d = r.get_u64("tensor dim")? as usize;
        count = count.checked_mul(d).ok_or_else(|| DistError::Protocol {
            message: "tensor element count overflows".to_string(),
        })?;
        shape.push(d);
    }
    r.ensure_fits(count, 4, "tensor data")?;
    let mut data = Vec::with_capacity(count);
    for _ in 0..count {
        data.push(r.get_f32("tensor element")?);
    }
    Tensor::from_vec(&shape, data).map_err(|e| DistError::Protocol {
        message: format!("tensor reassembly failed: {e}"),
    })
}

fn put_precision(r: &mut ff_codec::RecordWriter, p: Precision) {
    r.put_u8(match p {
        Precision::Fp32 => 0,
        Precision::Int8 => 1,
    });
}

fn get_precision(r: &mut Reader<'_>) -> Result<Precision> {
    match r.get_u8("precision")? {
        0 => Ok(Precision::Fp32),
        1 => Ok(Precision::Int8),
        other => Err(DistError::Protocol {
            message: format!("unknown precision tag {other}"),
        }),
    }
}

fn put_event(r: &mut ff_codec::RecordWriter, event: &TrainEvent) {
    match event {
        TrainEvent::EpochStart { epoch, lambda } => {
            r.put_u8(1);
            r.put_u64(*epoch as u64);
            r.put_f32(*lambda);
        }
        TrainEvent::LambdaChanged { epoch, lambda } => {
            r.put_u8(2);
            r.put_u64(*epoch as u64);
            r.put_f32(*lambda);
        }
        TrainEvent::StepEnd {
            epoch,
            step_in_epoch,
            global_step,
            loss,
            spans,
        } => {
            r.put_u8(3);
            r.put_u64(*epoch as u64);
            r.put_u64(*step_in_epoch as u64);
            r.put_u64(*global_step);
            r.put_f32(*loss);
            r.put_u64(spans.quantize_ns);
            r.put_u64(spans.forward_ns);
            r.put_u64(spans.update_ns);
        }
        TrainEvent::Eval {
            epoch,
            split,
            accuracy,
        } => {
            r.put_u8(4);
            r.put_u64(*epoch as u64);
            r.put_u8(match split {
                EvalSplit::Train => 0,
                EvalSplit::Test => 1,
            });
            r.put_f32(*accuracy);
        }
        TrainEvent::EpochEnd {
            epoch,
            mean_loss,
            train_accuracy,
            test_accuracy,
            seconds,
        } => {
            r.put_u8(5);
            r.put_u64(*epoch as u64);
            r.put_f32(*mean_loss);
            r.put_f32(*train_accuracy);
            match test_accuracy {
                Some(acc) => {
                    r.put_u8(1);
                    r.put_f32(*acc);
                }
                None => r.put_u8(0),
            }
            r.put_f64(*seconds);
        }
    }
}

fn get_event(r: &mut Reader<'_>) -> Result<TrainEvent> {
    match r.get_u8("event tag")? {
        1 => Ok(TrainEvent::EpochStart {
            epoch: r.get_u64("epoch")? as usize,
            lambda: r.get_f32("lambda")?,
        }),
        2 => Ok(TrainEvent::LambdaChanged {
            epoch: r.get_u64("epoch")? as usize,
            lambda: r.get_f32("lambda")?,
        }),
        3 => Ok(TrainEvent::StepEnd {
            epoch: r.get_u64("epoch")? as usize,
            step_in_epoch: r.get_u64("step in epoch")? as usize,
            global_step: r.get_u64("global step")?,
            loss: r.get_f32("loss")?,
            spans: StepSpans {
                quantize_ns: r.get_u64("quantize ns")?,
                forward_ns: r.get_u64("forward ns")?,
                update_ns: r.get_u64("update ns")?,
            },
        }),
        4 => {
            let epoch = r.get_u64("epoch")? as usize;
            let split = match r.get_u8("split")? {
                0 => EvalSplit::Train,
                1 => EvalSplit::Test,
                other => {
                    return Err(DistError::Protocol {
                        message: format!("unknown eval split tag {other}"),
                    })
                }
            };
            Ok(TrainEvent::Eval {
                epoch,
                split,
                accuracy: r.get_f32("accuracy")?,
            })
        }
        5 => {
            let epoch = r.get_u64("epoch")? as usize;
            let mean_loss = r.get_f32("mean loss")?;
            let train_accuracy = r.get_f32("train accuracy")?;
            let test_accuracy = match r.get_u8("test accuracy flag")? {
                0 => None,
                1 => Some(r.get_f32("test accuracy")?),
                other => {
                    return Err(DistError::Protocol {
                        message: format!("bad option flag {other}"),
                    })
                }
            };
            Ok(TrainEvent::EpochEnd {
                epoch,
                mean_loss,
                train_accuracy,
                test_accuracy,
                seconds: r.get_f64("seconds")?,
            })
        }
        other => Err(DistError::Protocol {
            message: format!("unknown event tag {other}"),
        }),
    }
}

/// Encodes one message into a standalone `FF8D` artifact (no length
/// prefix; [`write_msg`] adds it).
pub fn encode_msg(msg: &TrainMsg) -> Vec<u8> {
    let mut w = Writer::new(&TRAIN_MAGIC, TRAIN_PROTOCOL_VERSION);
    w.record(|r| match msg {
        TrainMsg::Join { token } => {
            r.put_u8(kind::JOIN);
            r.put_string(token);
        }
        TrainMsg::JoinAck { worker_id } => {
            r.put_u8(kind::JOIN_ACK);
            r.put_u64(*worker_id);
        }
        TrainMsg::ParamSync { version, params } => {
            r.put_u8(kind::PARAM_SYNC);
            r.put_u64(*version);
            r.put_u32(params.len() as u32);
            for t in params {
                put_tensor(r, t);
            }
        }
        TrainMsg::SubmitBatch { step, task } => {
            r.put_u8(kind::SUBMIT_BATCH);
            r.put_u64(*step);
            put_tensor(r, &task.pos);
            put_tensor(r, &task.neg);
            r.put_u64(task.pos_seed);
            r.put_u64(task.neg_seed);
            r.put_u64(task.shard_index as u64);
            r.put_u64(task.layer_count as u64);
            r.put_u64(task.loss_divisor as u64);
            r.put_f32(task.theta);
            r.put_f32(task.lambda);
            put_precision(r, task.precision);
        }
        TrainMsg::ShardResult {
            step,
            shard_index,
            grads,
        } => {
            r.put_u8(kind::SHARD_RESULT);
            r.put_u64(*step);
            r.put_u64(*shard_index);
            r.put_f32(grads.loss_pos);
            r.put_f32(grads.loss_neg);
            r.put_u32(grads.grads.len() as u32);
            for t in &grads.grads {
                put_tensor(r, t);
            }
        }
        TrainMsg::Event { event } => {
            r.put_u8(kind::EVENT);
            put_event(r, event);
        }
        TrainMsg::PullCheckpoint => r.put_u8(kind::PULL_CHECKPOINT),
        TrainMsg::CheckpointReply { bytes } => {
            r.put_u8(kind::CHECKPOINT_REPLY);
            r.put_u32(bytes.len() as u32);
            r.put_slice(bytes);
        }
        TrainMsg::Subscribe => r.put_u8(kind::SUBSCRIBE),
        TrainMsg::Leave => r.put_u8(kind::LEAVE),
        TrainMsg::Shutdown => r.put_u8(kind::SHUTDOWN),
        TrainMsg::Error { message } => {
            r.put_u8(kind::ERROR);
            r.put_string(message);
        }
    });
    w.into_vec()
}

/// Decodes one `FF8D` artifact. Panic-free: every malformed input maps to
/// [`DistError::Protocol`].
///
/// # Errors
///
/// [`DistError::Protocol`] on bad magic/version, truncation, unknown tags,
/// out-of-range lengths or trailing bytes.
pub fn decode_msg(bytes: &[u8]) -> Result<TrainMsg> {
    let (mut reader, _) = Reader::with_versions(
        bytes,
        &TRAIN_MAGIC,
        TRAIN_PROTOCOL_VERSION..=TRAIN_PROTOCOL_VERSION,
    )?;
    let mut r = reader.record("message")?;
    let msg = match r.get_u8("message kind")? {
        kind::JOIN => TrainMsg::Join {
            token: r.get_string(MAX_STRING, "token")?,
        },
        kind::JOIN_ACK => TrainMsg::JoinAck {
            worker_id: r.get_u64("worker id")?,
        },
        kind::PARAM_SYNC => {
            let version = r.get_u64("param version")?;
            let count = r.get_u32("param count")? as usize;
            r.ensure_fits(count, 4, "param tensors")?;
            let mut params = Vec::with_capacity(count);
            for _ in 0..count {
                params.push(get_tensor(&mut r)?);
            }
            TrainMsg::ParamSync { version, params }
        }
        kind::SUBMIT_BATCH => {
            let step = r.get_u64("step")?;
            let pos = get_tensor(&mut r)?;
            let neg = get_tensor(&mut r)?;
            let pos_seed = r.get_u64("positive pass seed")?;
            let neg_seed = r.get_u64("negative pass seed")?;
            let shard_index = r.get_u64("shard index")? as usize;
            let layer_count = r.get_u64("layer count")? as usize;
            let loss_divisor = r.get_u64("loss divisor")? as usize;
            let theta = r.get_f32("theta")?;
            let lambda = r.get_f32("lambda")?;
            let precision = get_precision(&mut r)?;
            TrainMsg::SubmitBatch {
                step,
                task: ShardTask {
                    pos,
                    neg,
                    pos_seed,
                    neg_seed,
                    shard_index,
                    layer_count,
                    loss_divisor,
                    theta,
                    lambda,
                    precision,
                },
            }
        }
        kind::SHARD_RESULT => {
            let step = r.get_u64("step")?;
            let shard_index = r.get_u64("shard index")?;
            let loss_pos = r.get_f32("positive loss")?;
            let loss_neg = r.get_f32("negative loss")?;
            let count = r.get_u32("grad count")? as usize;
            r.ensure_fits(count, 4, "grad tensors")?;
            let mut grads = Vec::with_capacity(count);
            for _ in 0..count {
                grads.push(get_tensor(&mut r)?);
            }
            TrainMsg::ShardResult {
                step,
                shard_index,
                grads: ShardGrads {
                    loss_pos,
                    loss_neg,
                    grads,
                },
            }
        }
        kind::EVENT => TrainMsg::Event {
            event: get_event(&mut r)?,
        },
        kind::PULL_CHECKPOINT => TrainMsg::PullCheckpoint,
        kind::CHECKPOINT_REPLY => {
            let len = r.get_u32("checkpoint length")? as usize;
            r.ensure_fits(len, 1, "checkpoint bytes")?;
            let mut bytes = vec![0u8; len];
            r.get_slice(&mut bytes, "checkpoint bytes")?;
            TrainMsg::CheckpointReply { bytes }
        }
        kind::SUBSCRIBE => TrainMsg::Subscribe,
        kind::LEAVE => TrainMsg::Leave,
        kind::SHUTDOWN => TrainMsg::Shutdown,
        kind::ERROR => TrainMsg::Error {
            message: r.get_string(MAX_STRING, "error message")?,
        },
        other => {
            return Err(DistError::Protocol {
                message: format!("unknown message kind {other}"),
            })
        }
    };
    r.finish("message")?;
    reader.finish("frame")?;
    Ok(msg)
}

/// Writes one length-prefixed `FF8D` frame.
///
/// # Errors
///
/// [`DistError::Protocol`] when the encoded frame exceeds
/// [`MAX_FRAME_BYTES`] (checked before anything is written, so the stream
/// stays synchronized); socket errors as [`DistError::Io`].
pub fn write_msg(writer: &mut impl Write, msg: &TrainMsg) -> Result<()> {
    let bytes = encode_msg(msg);
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(DistError::Protocol {
            message: format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit",
                bytes.len()
            ),
        });
    }
    writer.write_all(&(bytes.len() as u32).to_le_bytes())?;
    writer.write_all(&bytes)?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed `FF8D` frame.
///
/// # Errors
///
/// [`DistError::Io`] on EOF or socket errors, [`DistError::Protocol`] on an
/// oversized length prefix or a malformed payload.
pub fn read_msg(reader: &mut impl Read) -> Result<TrainMsg> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(DistError::Protocol {
            message: format!(
                "declared frame length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"
            ),
        });
    }
    let mut buf = vec![0u8; len];
    reader.read_exact(&mut buf)?;
    decode_msg(&buf)
}

/// Every message kind with representative payloads — shared by the unit
/// and fuzz suites so new kinds are automatically covered.
pub fn sample_msgs() -> Vec<TrainMsg> {
    let tensor = Tensor::from_vec(&[2, 2], vec![0.5, -1.0, 2.0, 0.25]).expect("literal tensor");
    vec![
        TrainMsg::Join {
            token: "cluster-secret".to_string(),
        },
        TrainMsg::JoinAck { worker_id: 7 },
        TrainMsg::ParamSync {
            version: 42,
            params: vec![tensor.clone(), Tensor::zeros(&[3])],
        },
        TrainMsg::SubmitBatch {
            step: 42,
            task: ShardTask {
                pos: tensor.clone(),
                neg: tensor.clone(),
                pos_seed: 1,
                neg_seed: 2,
                shard_index: 1,
                layer_count: 3,
                loss_divisor: 32,
                theta: 2.0,
                lambda: 0.25,
                precision: Precision::Int8,
            },
        },
        TrainMsg::ShardResult {
            step: 42,
            shard_index: 1,
            grads: ShardGrads {
                loss_pos: 0.5,
                loss_neg: 0.25,
                grads: vec![tensor],
            },
        },
        TrainMsg::Event {
            event: TrainEvent::StepEnd {
                epoch: 1,
                step_in_epoch: 2,
                global_step: 3,
                loss: 0.5,
                spans: StepSpans {
                    quantize_ns: 10,
                    forward_ns: 20,
                    update_ns: 30,
                },
            },
        },
        TrainMsg::Event {
            event: TrainEvent::EpochEnd {
                epoch: 1,
                mean_loss: 0.5,
                train_accuracy: 0.9,
                test_accuracy: Some(0.8),
                seconds: 1.5,
            },
        },
        TrainMsg::PullCheckpoint,
        TrainMsg::CheckpointReply {
            bytes: vec![1, 2, 3, 4],
        },
        TrainMsg::Subscribe,
        TrainMsg::Leave,
        TrainMsg::Shutdown,
        TrainMsg::Error {
            message: "no checkpoint published yet".to_string(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_kind_roundtrips() {
        for msg in sample_msgs() {
            let bytes = encode_msg(&msg);
            let decoded = decode_msg(&bytes).expect("decode what we encoded");
            // Structural equality via re-encoding (tensors carry no
            // PartialEq across the shard structs).
            assert_eq!(encode_msg(&decoded), bytes);
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for msg in sample_msgs() {
            let bytes = encode_msg(&msg);
            for len in 0..bytes.len() {
                assert!(
                    decode_msg(&bytes[..len]).is_err(),
                    "a {len}-byte prefix must not decode"
                );
            }
        }
    }

    #[test]
    fn frame_io_roundtrips_over_a_buffer() {
        let mut wire = Vec::new();
        for msg in sample_msgs() {
            write_msg(&mut wire, &msg).unwrap();
        }
        let mut cursor = &wire[..];
        for msg in sample_msgs() {
            let decoded = read_msg(&mut cursor).unwrap();
            assert_eq!(encode_msg(&decoded), encode_msg(&msg));
        }
        assert!(read_msg(&mut cursor).is_err(), "EOF must be a typed error");
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            read_msg(&mut &wire[..]),
            Err(DistError::Protocol { .. })
        ));
    }
}
