//! The `FF8D` distributed-training wire protocol.
//!
//! One frame = a `u32` little-endian byte length followed by an `FF8D`
//! artifact built with the shared [`ff_codec`] writer: 4 magic bytes, a
//! `u16` version, a reserved flags word, then a single length-prefixed
//! record whose first byte is the message kind. Everything rides the same
//! panic-free codec as the `FF8C`/`FF8S`/`FF8P` formats — malformed input
//! maps to a typed error, never a panic, and the fuzz suite asserts it.
//!
//! Message flow:
//!
//! - workers: `Join` → `JoinAck`, then a stream of `ParamSync` +
//!   `SubmitBatch` from the coordinator answered by `ShardResult`s, ended
//!   by `Leave` (worker-initiated) or `Shutdown` (coordinator-initiated);
//! - observers: `Subscribe`, then a stream of typed [`TrainEvent`] frames;
//! - checkpoint pullers: `PullCheckpoint` → `CheckpointReply` carrying a
//!   complete `FF8C` artifact (or `Error` when none is published yet);
//! - trace pullers: `TraceDump` → `TraceDumpReply` carrying the
//!   coordinator's recent [`ClusterSpan`]s (protocol v2+).
//!
//! # Version compatibility (v1 → v2)
//!
//! v2 adds cluster-trace context with the same discipline the `FF8P`
//! protocol used for its v1→v3 growth: new fields are **appended** to
//! existing record layouts and gated on the frame's version
//! (`SubmitBatch` gains a trailing `trace_id`; `ShardResult` gains
//! `trace_id` + worker-side decode/compute/encode stamps; `Error` gains a
//! machine-readable code), and brand-new kinds (`TraceDump`,
//! `TraceDumpReply`) require v2 headers outright. The decoder accepts
//! [`MIN_TRAIN_PROTOCOL_VERSION`]`..=`[`TRAIN_PROTOCOL_VERSION`]; v1
//! frames decode with neutral defaults (zero trace id, zero stamps,
//! [`ErrorCode::Unspecified`]). Encoding at a peer's declared version
//! ([`encode_msg_at`]) drops the newer fields, so a v2 coordinator speaks
//! byte-exact v1 to old workers — the interop tests assert training stays
//! bit-identical either way.

use crate::{DistError, Result};
use ff_codec::{Reader, Writer};
use ff_core::shard::{ShardGrads, ShardTask};
use ff_core::{EvalSplit, Precision, StepSpans, TrainEvent};
use ff_tensor::Tensor;
use ff_trace::{ClusterSpan, ShardSpan};
use std::io::{Read, Write};

/// Magic bytes of every `FF8D` frame.
pub const TRAIN_MAGIC: [u8; 4] = *b"FF8D";

/// Current `FF8D` protocol version.
pub const TRAIN_PROTOCOL_VERSION: u16 = 2;

/// Oldest `FF8D` protocol version still accepted and emittable.
pub const MIN_TRAIN_PROTOCOL_VERSION: u16 = 1;

/// Upper bound on one frame's encoded size (64 MiB) — enough for a full
/// parameter sync of any model this workspace trains, small enough that a
/// hostile length prefix cannot drive a huge allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Upper bound on decoded string lengths (tokens, error messages).
const MAX_STRING: usize = 4096;

/// Upper bound on tensor rank accepted off the wire.
const MAX_DIMS: usize = 8;

/// Message kind tags (the first byte of every frame's record).
mod kind {
    pub const JOIN: u8 = 1;
    pub const JOIN_ACK: u8 = 2;
    pub const PARAM_SYNC: u8 = 3;
    pub const SUBMIT_BATCH: u8 = 4;
    pub const SHARD_RESULT: u8 = 5;
    pub const EVENT: u8 = 6;
    pub const PULL_CHECKPOINT: u8 = 7;
    pub const CHECKPOINT_REPLY: u8 = 8;
    pub const SUBSCRIBE: u8 = 9;
    pub const LEAVE: u8 = 10;
    pub const SHUTDOWN: u8 = 11;
    pub const ERROR: u8 = 12;
    pub const TRACE_DUMP: u8 = 13;
    pub const TRACE_DUMP_REPLY: u8 = 14;
}

/// Number of message kinds — sizes the per-kind wire counters.
pub const KIND_COUNT: usize = 14;

/// A machine-readable reason on [`TrainMsg::Error`] frames (v2+), so the
/// coordinator can count rejections per cause instead of one aggregate.
/// v1 frames (and unknown future tags) decode as
/// [`ErrorCode::Unspecified`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorCode {
    /// No specific code (v1 peers, or genuinely uncategorized).
    #[default]
    Unspecified,
    /// The presented cluster token did not match.
    BadToken,
    /// `PullCheckpoint` before any checkpoint was published.
    NoCheckpoint,
    /// A connection opened with a frame that is not a valid hello.
    UnexpectedHello,
}

impl ErrorCode {
    /// The wire tag.
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Unspecified => 0,
            ErrorCode::BadToken => 1,
            ErrorCode::NoCheckpoint => 2,
            ErrorCode::UnexpectedHello => 3,
        }
    }

    /// Decodes a wire tag; unknown tags (from a newer peer) degrade to
    /// [`ErrorCode::Unspecified`] rather than failing the frame.
    fn from_u8(tag: u8) -> Self {
        match tag {
            1 => ErrorCode::BadToken,
            2 => ErrorCode::NoCheckpoint,
            3 => ErrorCode::UnexpectedHello,
            _ => ErrorCode::Unspecified,
        }
    }

    /// Stable snake_case name — the `<code>` in the coordinator's
    /// `dist.coord.errors.<code>` counters.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Unspecified => "unspecified",
            ErrorCode::BadToken => "bad_token",
            ErrorCode::NoCheckpoint => "no_checkpoint",
            ErrorCode::UnexpectedHello => "unexpected_hello",
        }
    }

    /// Every code, for pre-minting one counter per cause.
    pub fn all() -> [ErrorCode; 4] {
        [
            ErrorCode::Unspecified,
            ErrorCode::BadToken,
            ErrorCode::NoCheckpoint,
            ErrorCode::UnexpectedHello,
        ]
    }
}

/// Worker-side trace stamps riding on a v2 `ShardResult`: nanosecond
/// offsets on the **worker's** clock, measured from the moment the task
/// bytes were received — monotonic by construction, no clock sync needed.
/// All-zero for v1 workers or unsampled steps ([`ShardStamps::default`]
/// is the neutral wire value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStamps {
    /// The step's cluster trace id, echoed from `SubmitBatch` (`0` when
    /// the step was not sampled).
    pub trace_id: u64,
    /// Task frame decoded.
    pub decoded_ns: u64,
    /// Shard gradients computed.
    pub computed_ns: u64,
    /// Result frame encoded, ready to write.
    pub encoded_ns: u64,
}

/// One `FF8D` message.
#[derive(Debug, Clone)]
pub enum TrainMsg {
    /// A worker announces itself, presenting the cluster token (empty when
    /// the coordinator requires none).
    Join {
        /// Shared-secret cluster token.
        token: String,
    },
    /// The coordinator accepts a worker and assigns its id.
    JoinAck {
        /// The worker's id for the rest of the connection.
        worker_id: u64,
    },
    /// Full parameter sync: the worker overwrites its replica with these
    /// tensors (in [`ff_nn::Sequential::params_mut`] order) before the
    /// batch of the same `version` runs.
    ParamSync {
        /// The global step these parameters belong to.
        version: u64,
        /// Every trainable parameter tensor, in network order.
        params: Vec<Tensor>,
    },
    /// One shard of one training batch for the worker to compute.
    SubmitBatch {
        /// The global step this shard belongs to (matches `ParamSync`).
        step: u64,
        /// The canonical shard task ([`ff_core::shard::compute_shard`]).
        task: ShardTask,
        /// The step's cluster trace id (v2+; `0` = step not sampled, and
        /// the neutral default decoded from v1 frames).
        trace_id: u64,
    },
    /// A worker returns one shard's gradients.
    ShardResult {
        /// The global step the shard belongs to.
        step: u64,
        /// Which shard of the batch this is.
        shard_index: u64,
        /// The shard's loss partials and gradient tensors.
        grads: ShardGrads,
        /// Worker-side trace stamps (v2+; all-zero from v1 workers).
        stamps: ShardStamps,
    },
    /// A typed training event streamed to subscribers.
    Event {
        /// The event, verbatim from the training session.
        event: TrainEvent,
    },
    /// Requests the latest published checkpoint.
    PullCheckpoint,
    /// Carries a complete `FF8C` checkpoint artifact.
    CheckpointReply {
        /// The artifact bytes ([`ff_core::checkpoint::load_bytes`] reads
        /// them).
        bytes: Vec<u8>,
    },
    /// Registers this connection as a training-event observer.
    Subscribe,
    /// A worker leaves the cluster cleanly.
    Leave,
    /// The coordinator tells a worker to exit.
    Shutdown,
    /// A typed error reply (bad token, no checkpoint yet, ...).
    Error {
        /// Machine-readable cause (v2+; [`ErrorCode::Unspecified`] from
        /// v1 peers).
        code: ErrorCode,
        /// What went wrong, human-readable.
        message: String,
    },
    /// Requests the coordinator's recent cluster-step spans (v2+).
    TraceDump {
        /// Maximum number of spans to return; `0` = everything retained.
        max: u32,
    },
    /// Carries the coordinator's recent [`ClusterSpan`]s (v2+).
    TraceDumpReply {
        /// Spans lost to ring contention or capacity zero.
        dropped: u64,
        /// Most recent spans in commit (chronological) order.
        spans: Vec<ClusterSpan>,
    },
}

impl TrainMsg {
    /// Zero-based kind index, aligned with [`TrainMsg::kind_names`] —
    /// what the per-kind wire counters are indexed by.
    pub fn kind_index(&self) -> usize {
        match self {
            TrainMsg::Join { .. } => 0,
            TrainMsg::JoinAck { .. } => 1,
            TrainMsg::ParamSync { .. } => 2,
            TrainMsg::SubmitBatch { .. } => 3,
            TrainMsg::ShardResult { .. } => 4,
            TrainMsg::Event { .. } => 5,
            TrainMsg::PullCheckpoint => 6,
            TrainMsg::CheckpointReply { .. } => 7,
            TrainMsg::Subscribe => 8,
            TrainMsg::Leave => 9,
            TrainMsg::Shutdown => 10,
            TrainMsg::Error { .. } => 11,
            TrainMsg::TraceDump { .. } => 12,
            TrainMsg::TraceDumpReply { .. } => 13,
        }
    }

    /// Stable snake_case kind name — the `<kind>` in `dist.wire.<kind>.*`
    /// metric names.
    pub fn kind_name(&self) -> &'static str {
        Self::kind_names()[self.kind_index()]
    }

    /// Every kind name, indexed by [`TrainMsg::kind_index`].
    pub fn kind_names() -> [&'static str; KIND_COUNT] {
        [
            "join",
            "join_ack",
            "param_sync",
            "submit_batch",
            "shard_result",
            "event",
            "pull_checkpoint",
            "checkpoint_reply",
            "subscribe",
            "leave",
            "shutdown",
            "error",
            "trace_dump",
            "trace_dump_reply",
        ]
    }
}

fn put_tensor(r: &mut ff_codec::RecordWriter, t: &Tensor) {
    let shape = t.shape();
    r.put_u32(shape.len() as u32);
    for &d in shape {
        r.put_u64(d as u64);
    }
    for &v in t.data() {
        r.put_f32(v);
    }
}

fn get_tensor(r: &mut Reader<'_>) -> Result<Tensor> {
    let rank = r.get_u32("tensor rank")? as usize;
    if rank > MAX_DIMS {
        return Err(DistError::Protocol {
            message: format!("tensor rank {rank} exceeds limit {MAX_DIMS}"),
        });
    }
    r.ensure_fits(rank, 8, "tensor shape")?;
    let mut shape = Vec::with_capacity(rank);
    let mut count: usize = 1;
    for _ in 0..rank {
        let d = r.get_u64("tensor dim")? as usize;
        count = count.checked_mul(d).ok_or_else(|| DistError::Protocol {
            message: "tensor element count overflows".to_string(),
        })?;
        shape.push(d);
    }
    r.ensure_fits(count, 4, "tensor data")?;
    let mut data = Vec::with_capacity(count);
    for _ in 0..count {
        data.push(r.get_f32("tensor element")?);
    }
    Tensor::from_vec(&shape, data).map_err(|e| DistError::Protocol {
        message: format!("tensor reassembly failed: {e}"),
    })
}

fn put_precision(r: &mut ff_codec::RecordWriter, p: Precision) {
    r.put_u8(match p {
        Precision::Fp32 => 0,
        Precision::Int8 => 1,
    });
}

fn get_precision(r: &mut Reader<'_>) -> Result<Precision> {
    match r.get_u8("precision")? {
        0 => Ok(Precision::Fp32),
        1 => Ok(Precision::Int8),
        other => Err(DistError::Protocol {
            message: format!("unknown precision tag {other}"),
        }),
    }
}

fn put_event(r: &mut ff_codec::RecordWriter, event: &TrainEvent) {
    match event {
        TrainEvent::EpochStart { epoch, lambda } => {
            r.put_u8(1);
            r.put_u64(*epoch as u64);
            r.put_f32(*lambda);
        }
        TrainEvent::LambdaChanged { epoch, lambda } => {
            r.put_u8(2);
            r.put_u64(*epoch as u64);
            r.put_f32(*lambda);
        }
        TrainEvent::StepEnd {
            epoch,
            step_in_epoch,
            global_step,
            loss,
            spans,
        } => {
            r.put_u8(3);
            r.put_u64(*epoch as u64);
            r.put_u64(*step_in_epoch as u64);
            r.put_u64(*global_step);
            r.put_f32(*loss);
            r.put_u64(spans.quantize_ns);
            r.put_u64(spans.forward_ns);
            r.put_u64(spans.update_ns);
        }
        TrainEvent::Eval {
            epoch,
            split,
            accuracy,
        } => {
            r.put_u8(4);
            r.put_u64(*epoch as u64);
            r.put_u8(match split {
                EvalSplit::Train => 0,
                EvalSplit::Test => 1,
            });
            r.put_f32(*accuracy);
        }
        TrainEvent::EpochEnd {
            epoch,
            mean_loss,
            train_accuracy,
            test_accuracy,
            seconds,
        } => {
            r.put_u8(5);
            r.put_u64(*epoch as u64);
            r.put_f32(*mean_loss);
            r.put_f32(*train_accuracy);
            match test_accuracy {
                Some(acc) => {
                    r.put_u8(1);
                    r.put_f32(*acc);
                }
                None => r.put_u8(0),
            }
            r.put_f64(*seconds);
        }
    }
}

fn get_event(r: &mut Reader<'_>) -> Result<TrainEvent> {
    match r.get_u8("event tag")? {
        1 => Ok(TrainEvent::EpochStart {
            epoch: r.get_u64("epoch")? as usize,
            lambda: r.get_f32("lambda")?,
        }),
        2 => Ok(TrainEvent::LambdaChanged {
            epoch: r.get_u64("epoch")? as usize,
            lambda: r.get_f32("lambda")?,
        }),
        3 => Ok(TrainEvent::StepEnd {
            epoch: r.get_u64("epoch")? as usize,
            step_in_epoch: r.get_u64("step in epoch")? as usize,
            global_step: r.get_u64("global step")?,
            loss: r.get_f32("loss")?,
            spans: StepSpans {
                quantize_ns: r.get_u64("quantize ns")?,
                forward_ns: r.get_u64("forward ns")?,
                update_ns: r.get_u64("update ns")?,
            },
        }),
        4 => {
            let epoch = r.get_u64("epoch")? as usize;
            let split = match r.get_u8("split")? {
                0 => EvalSplit::Train,
                1 => EvalSplit::Test,
                other => {
                    return Err(DistError::Protocol {
                        message: format!("unknown eval split tag {other}"),
                    })
                }
            };
            Ok(TrainEvent::Eval {
                epoch,
                split,
                accuracy: r.get_f32("accuracy")?,
            })
        }
        5 => {
            let epoch = r.get_u64("epoch")? as usize;
            let mean_loss = r.get_f32("mean loss")?;
            let train_accuracy = r.get_f32("train accuracy")?;
            let test_accuracy = match r.get_u8("test accuracy flag")? {
                0 => None,
                1 => Some(r.get_f32("test accuracy")?),
                other => {
                    return Err(DistError::Protocol {
                        message: format!("bad option flag {other}"),
                    })
                }
            };
            Ok(TrainEvent::EpochEnd {
                epoch,
                mean_loss,
                train_accuracy,
                test_accuracy,
                seconds: r.get_f64("seconds")?,
            })
        }
        other => Err(DistError::Protocol {
            message: format!("unknown event tag {other}"),
        }),
    }
}

fn put_span(r: &mut ff_codec::RecordWriter, span: &ClusterSpan) {
    r.put_u64(span.step);
    r.put_u64(span.trace_id);
    r.put_u64(span.prepare_done_ns);
    r.put_u64(span.sync_done_ns);
    r.put_u64(span.dispatch_done_ns);
    r.put_u64(span.collect_done_ns);
    r.put_u64(span.reduce_done_ns);
    r.put_u64(span.apply_done_ns);
    r.put_u32(span.shards.len() as u32);
    for shard in &span.shards {
        r.put_u64(shard.shard_index);
        match shard.worker_id {
            Some(id) => {
                r.put_u8(1);
                r.put_u64(id);
            }
            None => r.put_u8(0),
        }
        r.put_u64(shard.dispatched_ns);
        r.put_u64(shard.completed_ns);
        r.put_u64(shard.decoded_ns);
        r.put_u64(shard.computed_ns);
        r.put_u64(shard.encoded_ns);
    }
}

fn get_span(r: &mut Reader<'_>) -> Result<ClusterSpan> {
    let mut span = ClusterSpan {
        step: r.get_u64("span step")?,
        trace_id: r.get_u64("span trace id")?,
        prepare_done_ns: r.get_u64("prepare done ns")?,
        sync_done_ns: r.get_u64("sync done ns")?,
        dispatch_done_ns: r.get_u64("dispatch done ns")?,
        collect_done_ns: r.get_u64("collect done ns")?,
        reduce_done_ns: r.get_u64("reduce done ns")?,
        apply_done_ns: r.get_u64("apply done ns")?,
        shards: Vec::new(),
    };
    let count = r.get_u32("shard span count")? as usize;
    // 8 (index) + 1 (owner flag) + 5 × 8 (stamps) minimum per shard.
    r.ensure_fits(count, 49, "shard spans")?;
    span.shards.reserve(count);
    for _ in 0..count {
        let shard_index = r.get_u64("shard index")?;
        let worker_id = match r.get_u8("shard owner flag")? {
            0 => None,
            1 => Some(r.get_u64("shard worker id")?),
            other => {
                return Err(DistError::Protocol {
                    message: format!("bad shard owner flag {other}"),
                })
            }
        };
        span.shards.push(ShardSpan {
            shard_index,
            worker_id,
            dispatched_ns: r.get_u64("shard dispatched ns")?,
            completed_ns: r.get_u64("shard completed ns")?,
            decoded_ns: r.get_u64("shard decoded ns")?,
            computed_ns: r.get_u64("shard computed ns")?,
            encoded_ns: r.get_u64("shard encoded ns")?,
        });
    }
    Ok(span)
}

/// Encodes one message into a standalone `FF8D` artifact at the current
/// protocol version (no length prefix; [`write_msg`] adds it).
pub fn encode_msg(msg: &TrainMsg) -> Vec<u8> {
    encode_msg_at(msg, TRAIN_PROTOCOL_VERSION)
}

/// Encodes one message at a specific protocol version — how the
/// coordinator speaks byte-exact v1 to old workers. Version-gated fields
/// are simply dropped when encoding at v1.
///
/// # Panics
///
/// When `version` is outside
/// [`MIN_TRAIN_PROTOCOL_VERSION`]`..=`[`TRAIN_PROTOCOL_VERSION`], or when
/// asked to encode a v2-only kind (`TraceDump`/`TraceDumpReply`) at v1 —
/// both are caller bugs, not wire conditions: versions come from our own
/// negotiation (already clamped), and trace frames are only ever sent to
/// v2 peers.
pub fn encode_msg_at(msg: &TrainMsg, version: u16) -> Vec<u8> {
    assert!(
        (MIN_TRAIN_PROTOCOL_VERSION..=TRAIN_PROTOCOL_VERSION).contains(&version),
        "unsupported FF8D encode version {version}"
    );
    let v2 = version >= 2;
    let mut w = Writer::new(&TRAIN_MAGIC, version);
    w.record(|r| match msg {
        TrainMsg::Join { token } => {
            r.put_u8(kind::JOIN);
            r.put_string(token);
        }
        TrainMsg::JoinAck { worker_id } => {
            r.put_u8(kind::JOIN_ACK);
            r.put_u64(*worker_id);
        }
        TrainMsg::ParamSync { version, params } => {
            r.put_u8(kind::PARAM_SYNC);
            r.put_u64(*version);
            r.put_u32(params.len() as u32);
            for t in params {
                put_tensor(r, t);
            }
        }
        TrainMsg::SubmitBatch {
            step,
            task,
            trace_id,
        } => {
            r.put_u8(kind::SUBMIT_BATCH);
            r.put_u64(*step);
            put_tensor(r, &task.pos);
            put_tensor(r, &task.neg);
            r.put_u64(task.pos_seed);
            r.put_u64(task.neg_seed);
            r.put_u64(task.shard_index as u64);
            r.put_u64(task.layer_count as u64);
            r.put_u64(task.loss_divisor as u64);
            r.put_f32(task.theta);
            r.put_f32(task.lambda);
            put_precision(r, task.precision);
            if v2 {
                r.put_u64(*trace_id);
            }
        }
        TrainMsg::ShardResult {
            step,
            shard_index,
            grads,
            stamps,
        } => {
            r.put_u8(kind::SHARD_RESULT);
            r.put_u64(*step);
            r.put_u64(*shard_index);
            r.put_f32(grads.loss_pos);
            r.put_f32(grads.loss_neg);
            r.put_u32(grads.grads.len() as u32);
            for t in &grads.grads {
                put_tensor(r, t);
            }
            if v2 {
                // `encoded_ns` is deliberately the final field of the
                // artifact so `stamp_shard_result_encoded_ns` can patch it
                // after the encode clock stops.
                r.put_u64(stamps.trace_id);
                r.put_u64(stamps.decoded_ns);
                r.put_u64(stamps.computed_ns);
                r.put_u64(stamps.encoded_ns);
            }
        }
        TrainMsg::Event { event } => {
            r.put_u8(kind::EVENT);
            put_event(r, event);
        }
        TrainMsg::PullCheckpoint => r.put_u8(kind::PULL_CHECKPOINT),
        TrainMsg::CheckpointReply { bytes } => {
            r.put_u8(kind::CHECKPOINT_REPLY);
            r.put_u32(bytes.len() as u32);
            r.put_slice(bytes);
        }
        TrainMsg::Subscribe => r.put_u8(kind::SUBSCRIBE),
        TrainMsg::Leave => r.put_u8(kind::LEAVE),
        TrainMsg::Shutdown => r.put_u8(kind::SHUTDOWN),
        TrainMsg::Error { code, message } => {
            r.put_u8(kind::ERROR);
            r.put_string(message);
            if v2 {
                r.put_u8(code.to_u8());
            }
        }
        TrainMsg::TraceDump { max } => {
            assert!(v2, "TraceDump requires FF8D protocol version >= 2");
            r.put_u8(kind::TRACE_DUMP);
            r.put_u32(*max);
        }
        TrainMsg::TraceDumpReply { dropped, spans } => {
            assert!(v2, "TraceDumpReply requires FF8D protocol version >= 2");
            r.put_u8(kind::TRACE_DUMP_REPLY);
            r.put_u64(*dropped);
            r.put_u32(spans.len() as u32);
            for span in spans {
                put_span(r, span);
            }
        }
    });
    w.into_vec()
}

/// Overwrites the trailing `encoded_ns` stamp of an encoded **v2**
/// `ShardResult` artifact in place.
///
/// The encode clock cannot include its own final read any other way: the
/// worker encodes with a zero placeholder, stops the clock, then patches
/// the measurement into the last 8 bytes. The `FF8D` codec carries no
/// checksum or footer, so the patched artifact is exactly what
/// [`encode_msg_at`] would have produced with the final value — canonical
/// re-encoding holds, as the protocol tests assert.
pub fn stamp_shard_result_encoded_ns(bytes: &mut [u8], encoded_ns: u64) {
    let len = bytes.len();
    assert!(len >= 8, "not an encoded v2 ShardResult");
    bytes[len - 8..].copy_from_slice(&encoded_ns.to_le_bytes());
}

/// Decodes one `FF8D` artifact. Panic-free: every malformed input maps to
/// [`DistError::Protocol`].
///
/// # Errors
///
/// [`DistError::Protocol`] on bad magic/version, truncation, unknown tags,
/// out-of-range lengths or trailing bytes.
pub fn decode_msg(bytes: &[u8]) -> Result<TrainMsg> {
    decode_msg_versioned(bytes).map(|(msg, _)| msg)
}

/// Like [`decode_msg`], but also returns the frame's protocol version —
/// how the coordinator learns what each peer speaks from its hello frame.
///
/// # Errors
///
/// See [`decode_msg`].
pub fn decode_msg_versioned(bytes: &[u8]) -> Result<(TrainMsg, u16)> {
    let (mut reader, version) = Reader::with_versions(
        bytes,
        &TRAIN_MAGIC,
        MIN_TRAIN_PROTOCOL_VERSION..=TRAIN_PROTOCOL_VERSION,
    )?;
    let v2 = version >= 2;
    let mut r = reader.record("message")?;
    let msg = match r.get_u8("message kind")? {
        kind::JOIN => TrainMsg::Join {
            token: r.get_string(MAX_STRING, "token")?,
        },
        kind::JOIN_ACK => TrainMsg::JoinAck {
            worker_id: r.get_u64("worker id")?,
        },
        kind::PARAM_SYNC => {
            let version = r.get_u64("param version")?;
            let count = r.get_u32("param count")? as usize;
            r.ensure_fits(count, 4, "param tensors")?;
            let mut params = Vec::with_capacity(count);
            for _ in 0..count {
                params.push(get_tensor(&mut r)?);
            }
            TrainMsg::ParamSync { version, params }
        }
        kind::SUBMIT_BATCH => {
            let step = r.get_u64("step")?;
            let pos = get_tensor(&mut r)?;
            let neg = get_tensor(&mut r)?;
            let pos_seed = r.get_u64("positive pass seed")?;
            let neg_seed = r.get_u64("negative pass seed")?;
            let shard_index = r.get_u64("shard index")? as usize;
            let layer_count = r.get_u64("layer count")? as usize;
            let loss_divisor = r.get_u64("loss divisor")? as usize;
            let theta = r.get_f32("theta")?;
            let lambda = r.get_f32("lambda")?;
            let precision = get_precision(&mut r)?;
            let trace_id = if v2 { r.get_u64("trace id")? } else { 0 };
            TrainMsg::SubmitBatch {
                step,
                task: ShardTask {
                    pos,
                    neg,
                    pos_seed,
                    neg_seed,
                    shard_index,
                    layer_count,
                    loss_divisor,
                    theta,
                    lambda,
                    precision,
                },
                trace_id,
            }
        }
        kind::SHARD_RESULT => {
            let step = r.get_u64("step")?;
            let shard_index = r.get_u64("shard index")?;
            let loss_pos = r.get_f32("positive loss")?;
            let loss_neg = r.get_f32("negative loss")?;
            let count = r.get_u32("grad count")? as usize;
            r.ensure_fits(count, 4, "grad tensors")?;
            let mut grads = Vec::with_capacity(count);
            for _ in 0..count {
                grads.push(get_tensor(&mut r)?);
            }
            let stamps = if v2 {
                ShardStamps {
                    trace_id: r.get_u64("result trace id")?,
                    decoded_ns: r.get_u64("decoded ns")?,
                    computed_ns: r.get_u64("computed ns")?,
                    encoded_ns: r.get_u64("encoded ns")?,
                }
            } else {
                ShardStamps::default()
            };
            TrainMsg::ShardResult {
                step,
                shard_index,
                grads: ShardGrads {
                    loss_pos,
                    loss_neg,
                    grads,
                },
                stamps,
            }
        }
        kind::EVENT => TrainMsg::Event {
            event: get_event(&mut r)?,
        },
        kind::PULL_CHECKPOINT => TrainMsg::PullCheckpoint,
        kind::CHECKPOINT_REPLY => {
            let len = r.get_u32("checkpoint length")? as usize;
            r.ensure_fits(len, 1, "checkpoint bytes")?;
            let mut bytes = vec![0u8; len];
            r.get_slice(&mut bytes, "checkpoint bytes")?;
            TrainMsg::CheckpointReply { bytes }
        }
        kind::SUBSCRIBE => TrainMsg::Subscribe,
        kind::LEAVE => TrainMsg::Leave,
        kind::SHUTDOWN => TrainMsg::Shutdown,
        kind::ERROR => {
            let message = r.get_string(MAX_STRING, "error message")?;
            let code = if v2 {
                ErrorCode::from_u8(r.get_u8("error code")?)
            } else {
                ErrorCode::Unspecified
            };
            TrainMsg::Error { code, message }
        }
        kind::TRACE_DUMP if v2 => TrainMsg::TraceDump {
            max: r.get_u32("trace dump max")?,
        },
        kind::TRACE_DUMP_REPLY if v2 => {
            let dropped = r.get_u64("dropped spans")?;
            let count = r.get_u32("span count")? as usize;
            // 8 × u64 + u32 shard count minimum per span.
            r.ensure_fits(count, 68, "cluster spans")?;
            let mut spans = Vec::with_capacity(count);
            for _ in 0..count {
                spans.push(get_span(&mut r)?);
            }
            TrainMsg::TraceDumpReply { dropped, spans }
        }
        other => {
            return Err(DistError::Protocol {
                message: format!("unknown message kind {other} at protocol version {version}"),
            })
        }
    };
    r.finish("message")?;
    reader.finish("frame")?;
    Ok((msg, version))
}

/// Writes one length-prefixed `FF8D` frame.
///
/// # Errors
///
/// [`DistError::Protocol`] when the encoded frame exceeds
/// [`MAX_FRAME_BYTES`] (checked before anything is written, so the stream
/// stays synchronized); socket errors as [`DistError::Io`].
pub fn write_msg(writer: &mut impl Write, msg: &TrainMsg) -> Result<()> {
    write_msg_at(writer, msg, TRAIN_PROTOCOL_VERSION).map(|_| ())
}

/// Writes one length-prefixed `FF8D` frame encoded at `version`, returning
/// the wire bytes written (payload + 4-byte prefix) — what the per-kind
/// byte counters record.
///
/// # Errors
///
/// See [`write_msg`].
///
/// # Panics
///
/// On the [`encode_msg_at`] version-contract violations.
pub fn write_msg_at(writer: &mut impl Write, msg: &TrainMsg, version: u16) -> Result<usize> {
    write_msg_bytes(writer, &encode_msg_at(msg, version))
}

/// Writes pre-encoded `FF8D` artifact bytes as one length-prefixed frame,
/// returning the wire bytes written — how a worker ships a `ShardResult`
/// it already encoded (and stamped), and how the coordinator reuses one
/// `ParamSync` encoding across same-version workers.
///
/// # Errors
///
/// See [`write_msg`].
pub fn write_msg_bytes(writer: &mut impl Write, bytes: &[u8]) -> Result<usize> {
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(DistError::Protocol {
            message: format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit",
                bytes.len()
            ),
        });
    }
    writer.write_all(&(bytes.len() as u32).to_le_bytes())?;
    writer.write_all(bytes)?;
    writer.flush()?;
    Ok(bytes.len() + 4)
}

/// Reads one length-prefixed `FF8D` frame.
///
/// # Errors
///
/// [`DistError::Io`] on EOF or socket errors, [`DistError::Protocol`] on an
/// oversized length prefix or a malformed payload.
pub fn read_msg(reader: &mut impl Read) -> Result<TrainMsg> {
    decode_msg(&read_msg_bytes(reader)?)
}

/// Like [`read_msg`], but also returns the frame's protocol version.
///
/// # Errors
///
/// See [`read_msg`].
pub fn read_msg_versioned(reader: &mut impl Read) -> Result<(TrainMsg, u16)> {
    decode_msg_versioned(&read_msg_bytes(reader)?)
}

/// Reads one length-prefixed frame's raw artifact bytes without decoding —
/// so a caller can time the decode separately (the worker's `decoded_ns`
/// stamp) or account wire bytes before parsing.
///
/// # Errors
///
/// [`DistError::Io`] on EOF or socket errors, [`DistError::Protocol`] on
/// an oversized length prefix.
pub fn read_msg_bytes(reader: &mut impl Read) -> Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(DistError::Protocol {
            message: format!(
                "declared frame length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"
            ),
        });
    }
    let mut buf = vec![0u8; len];
    reader.read_exact(&mut buf)?;
    Ok(buf)
}

/// Every message kind with representative payloads — shared by the unit
/// and fuzz suites so new kinds are automatically covered.
pub fn sample_msgs() -> Vec<TrainMsg> {
    let tensor = Tensor::from_vec(&[2, 2], vec![0.5, -1.0, 2.0, 0.25]).expect("literal tensor");
    vec![
        TrainMsg::Join {
            token: "cluster-secret".to_string(),
        },
        TrainMsg::JoinAck { worker_id: 7 },
        TrainMsg::ParamSync {
            version: 42,
            params: vec![tensor.clone(), Tensor::zeros(&[3])],
        },
        TrainMsg::SubmitBatch {
            step: 42,
            task: ShardTask {
                pos: tensor.clone(),
                neg: tensor.clone(),
                pos_seed: 1,
                neg_seed: 2,
                shard_index: 1,
                layer_count: 3,
                loss_divisor: 32,
                theta: 2.0,
                lambda: 0.25,
                precision: Precision::Int8,
            },
            trace_id: 0x00C0_FFEE,
        },
        TrainMsg::ShardResult {
            step: 42,
            shard_index: 1,
            grads: ShardGrads {
                loss_pos: 0.5,
                loss_neg: 0.25,
                grads: vec![tensor],
            },
            stamps: ShardStamps {
                trace_id: 0x00C0_FFEE,
                decoded_ns: 1_200,
                computed_ns: 940_000,
                encoded_ns: 951_000,
            },
        },
        TrainMsg::Event {
            event: TrainEvent::StepEnd {
                epoch: 1,
                step_in_epoch: 2,
                global_step: 3,
                loss: 0.5,
                spans: StepSpans {
                    quantize_ns: 10,
                    forward_ns: 20,
                    update_ns: 30,
                },
            },
        },
        TrainMsg::Event {
            event: TrainEvent::EpochEnd {
                epoch: 1,
                mean_loss: 0.5,
                train_accuracy: 0.9,
                test_accuracy: Some(0.8),
                seconds: 1.5,
            },
        },
        TrainMsg::PullCheckpoint,
        TrainMsg::CheckpointReply {
            bytes: vec![1, 2, 3, 4],
        },
        TrainMsg::Subscribe,
        TrainMsg::Leave,
        TrainMsg::Shutdown,
        TrainMsg::Error {
            code: ErrorCode::NoCheckpoint,
            message: "no checkpoint published yet".to_string(),
        },
        TrainMsg::TraceDump { max: 16 },
        TrainMsg::TraceDumpReply {
            dropped: 2,
            spans: vec![ClusterSpan {
                step: 7,
                trace_id: 0x00C0_FFEE,
                prepare_done_ns: 100,
                sync_done_ns: 300,
                dispatch_done_ns: 450,
                collect_done_ns: 2_000,
                reduce_done_ns: 2_400,
                apply_done_ns: 2_600,
                shards: vec![
                    ShardSpan {
                        shard_index: 0,
                        worker_id: Some(3),
                        dispatched_ns: 400,
                        completed_ns: 1_900,
                        decoded_ns: 50,
                        computed_ns: 1_200,
                        encoded_ns: 1_300,
                    },
                    ShardSpan {
                        shard_index: 1,
                        worker_id: None,
                        dispatched_ns: 0,
                        completed_ns: 2_300,
                        decoded_ns: 0,
                        computed_ns: 0,
                        encoded_ns: 0,
                    },
                ],
            }],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_kind_roundtrips() {
        for msg in sample_msgs() {
            let bytes = encode_msg(&msg);
            let decoded = decode_msg(&bytes).expect("decode what we encoded");
            // Structural equality via re-encoding (tensors carry no
            // PartialEq across the shard structs).
            assert_eq!(encode_msg(&decoded), bytes);
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for msg in sample_msgs() {
            let bytes = encode_msg(&msg);
            for len in 0..bytes.len() {
                assert!(
                    decode_msg(&bytes[..len]).is_err(),
                    "a {len}-byte prefix must not decode"
                );
            }
        }
    }

    #[test]
    fn frame_io_roundtrips_over_a_buffer() {
        let mut wire = Vec::new();
        for msg in sample_msgs() {
            write_msg(&mut wire, &msg).unwrap();
        }
        let mut cursor = &wire[..];
        for msg in sample_msgs() {
            let decoded = read_msg(&mut cursor).unwrap();
            assert_eq!(encode_msg(&decoded), encode_msg(&msg));
        }
        assert!(read_msg(&mut cursor).is_err(), "EOF must be a typed error");
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            read_msg(&mut &wire[..]),
            Err(DistError::Protocol { .. })
        ));
    }

    /// The kinds a v1 peer can express — everything except the trace-dump
    /// pair.
    fn v1_expressible(msg: &TrainMsg) -> bool {
        !matches!(
            msg,
            TrainMsg::TraceDump { .. } | TrainMsg::TraceDumpReply { .. }
        )
    }

    #[test]
    fn v1_encoding_roundtrips_with_neutral_defaults() {
        for msg in sample_msgs().iter().filter(|m| v1_expressible(m)) {
            let bytes = encode_msg_at(msg, 1);
            let (decoded, version) = decode_msg_versioned(&bytes).expect("v1 decodes");
            assert_eq!(version, 1);
            assert_eq!(
                encode_msg_at(&decoded, 1),
                bytes,
                "v1 re-encode is canonical"
            );
            match decoded {
                TrainMsg::SubmitBatch { trace_id, .. } => assert_eq!(trace_id, 0),
                TrainMsg::ShardResult { stamps, .. } => {
                    assert_eq!(stamps, ShardStamps::default());
                }
                TrainMsg::Error { code, .. } => assert_eq!(code, ErrorCode::Unspecified),
                _ => {}
            }
            // Every strict v1 prefix fails, same as v2.
            for len in 0..bytes.len() {
                assert!(decode_msg(&bytes[..len]).is_err());
            }
        }
    }

    #[test]
    fn trace_kinds_require_v2_headers() {
        for msg in sample_msgs().iter().filter(|m| !v1_expressible(m)) {
            let mut bytes = encode_msg_at(msg, 2);
            bytes[4..6].copy_from_slice(&1u16.to_le_bytes());
            assert!(
                matches!(decode_msg(&bytes), Err(DistError::Protocol { .. })),
                "a v1-headered trace frame must be rejected"
            );
        }
    }

    #[test]
    fn stamped_encoded_ns_patch_is_canonical() {
        let msg = TrainMsg::ShardResult {
            step: 9,
            shard_index: 0,
            grads: ShardGrads {
                loss_pos: 1.0,
                loss_neg: 2.0,
                grads: vec![Tensor::zeros(&[2, 3])],
            },
            stamps: ShardStamps {
                trace_id: 77,
                decoded_ns: 10,
                computed_ns: 20,
                encoded_ns: 0, // placeholder, patched below
            },
        };
        let mut bytes = encode_msg(&msg);
        stamp_shard_result_encoded_ns(&mut bytes, 123_456);
        let decoded = decode_msg(&bytes).expect("patched frame decodes");
        match &decoded {
            TrainMsg::ShardResult { stamps, .. } => {
                assert_eq!(stamps.encoded_ns, 123_456);
                assert_eq!(stamps.trace_id, 77);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        assert_eq!(
            encode_msg(&decoded),
            bytes,
            "the patched artifact is exactly the canonical encoding"
        );
    }

    #[test]
    fn kind_names_align_with_kind_indices() {
        let msgs = sample_msgs();
        // sample_msgs carries two Event samples; dedupe by index.
        let mut seen = [false; KIND_COUNT];
        for msg in &msgs {
            let index = msg.kind_index();
            assert_eq!(TrainMsg::kind_names()[index], msg.kind_name());
            seen[index] = true;
        }
        assert!(seen.iter().all(|&s| s), "sample_msgs covers every kind");
    }

    #[test]
    fn error_codes_roundtrip_and_name_stably() {
        for code in ErrorCode::all() {
            assert_eq!(ErrorCode::from_u8(code.to_u8()), code);
            let msg = TrainMsg::Error {
                code,
                message: "x".into(),
            };
            match decode_msg(&encode_msg(&msg)).unwrap() {
                TrainMsg::Error { code: decoded, .. } => assert_eq!(decoded, code),
                other => panic!("wrong kind: {other:?}"),
            }
        }
        // Unknown future tags degrade instead of failing the frame.
        assert_eq!(ErrorCode::from_u8(200), ErrorCode::Unspecified);
        assert_eq!(ErrorCode::BadToken.name(), "bad_token");
    }
}
