//! The distributed-training error type.

use ff_core::CoreError;

/// Errors produced by the distributed training stack.
#[derive(Debug)]
pub enum DistError {
    /// An error from the core training machinery (layers, tensors,
    /// checkpoints, configuration).
    Core(CoreError),
    /// A malformed or out-of-contract `FF8D` protocol frame.
    Protocol {
        /// Human-readable description of the violation.
        message: String,
    },
    /// A socket or file operation failed.
    Io {
        /// Human-readable description including the operation.
        message: String,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Core(e) => write!(f, "core error: {e}"),
            DistError::Protocol { message } => write!(f, "protocol error: {message}"),
            DistError::Io { message } => write!(f, "io error: {message}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for DistError {
    fn from(e: CoreError) -> Self {
        DistError::Core(e)
    }
}

impl From<ff_codec::CodecError> for DistError {
    fn from(e: ff_codec::CodecError) -> Self {
        DistError::Protocol {
            message: e.to_string(),
        }
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io {
            message: e.to_string(),
        }
    }
}
