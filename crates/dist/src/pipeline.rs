//! In-process layer-pipeline parallelism for Forward-Forward training.
//!
//! # Why FF pipelines *exactly*
//!
//! Backpropagation pipelines are approximate or stall-prone because the
//! backward pass crosses every stage boundary. Forward-Forward without
//! look-ahead has no such coupling: each layer's update depends only on its
//! own forward activations and its own goodness loss. Cut the network into
//! contiguous stages and the only inter-stage traffic is the *forward*
//! activation stream — so stage `k` can train batch `b+1` while stage `k+1`
//! is still training batch `b`, and **no value in the computation changes**:
//!
//! - per layer, the operation sequence (positive forward, positive
//!   backward, negative forward, negative backward, optimizer step) and
//!   every operand are exactly the sequential trainer's
//!   ([`ff_core::shard::ff_stage_pass`]);
//! - each layer's rounding stream is derived from its *global* layer index,
//!   identical to the sequential derivation;
//! - each stage steps its own layers after each batch, so the parameters a
//!   batch sees at stage `k` are exactly the post-previous-batch parameters
//!   the sequential run produces;
//! - stage loss partials are folded in ascending stage order, reproducing
//!   the sequential left-to-right loss fold bit-for-bit.
//!
//! The result: [`PipelineSession`] is **bit-identical** to the sequential
//! [`FfTrainer`] driven by [`ff_core::TrainSession`] from the same seed —
//! a property the `ff-dist` test suite asserts on weights, histories and
//! checkpoint round-trips.
//!
//! # Examples
//!
//! ```
//! use ff_core::{Precision, TrainOptions};
//! use ff_data::{synthetic_mnist, SyntheticConfig};
//! use ff_dist::PipelineSession;
//! use ff_models::small_mlp;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), ff_dist::DistError> {
//! let (train_set, test_set) = synthetic_mnist(&SyntheticConfig::small());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = small_mlp(784, &[32, 32], 10, &mut rng);
//! let options = TrainOptions::fast_test();
//! let mut session = PipelineSession::new(
//!     &mut net,
//!     &train_set,
//!     &test_set,
//!     Precision::Int8,
//!     &options,
//!     &[1, 2], // layer 0 | layers 1-2 (two hiddens + the class head = 3)
//! )?;
//! let history = session.run()?;
//! assert_eq!(history.len(), options.epochs);
//! # Ok(())
//! # }
//! ```

use crate::{DistError, Result};
use ff_core::checkpoint::{Checkpoint, EpochProgress};
use ff_core::shard::{ff_stage_pass, step_layers, PassMode};
use ff_core::{
    first_layer_is_dense, Algorithm, CoreError, FfLossKind, FfTrainer, Precision, TrainOptions,
    TrainerCore,
};
use ff_data::Dataset;
use ff_metrics::TrainingHistory;
use ff_nn::{Layer, Sequential};
use ff_tensor::Tensor;
use ff_trace::{MetricsRegistry, SharedHistogram};
use rand::seq::SliceRandom;
use std::sync::mpsc;
use std::time::Instant;

/// How many batches may queue between adjacent stages. Small and fixed:
/// enough to keep stages busy, bounded so a slow stage exerts backpressure
/// instead of ballooning activation memory.
const STAGE_QUEUE_DEPTH: usize = 2;

/// One batch's traffic between stages: the positive/negative activations
/// entering the next stage plus the pass context every stage shares.
struct StageItem {
    /// Position of the batch within this `run_batches` call.
    batch: usize,
    pos: Tensor,
    neg: Tensor,
    pos_pass: PassMode,
    neg_pass: PassMode,
    /// Full-batch row count (the loss divisor).
    divisor: usize,
}

/// Progress bookkeeping of the epoch currently being trained — mirrors the
/// sequential session's accumulator exactly so checkpoints interchange.
struct EpochState {
    order: Vec<usize>,
    next: usize,
    loss_sum: f32,
    batch_count: usize,
    correct: usize,
    seen: usize,
    elapsed_before: f64,
    started: Instant,
}

/// A pipeline-parallel Forward-Forward training session.
///
/// Drop-in alternative to [`ff_core::TrainSession`] for FF **without
/// look-ahead** (the λ relay crosses stage boundaries, so the constructor
/// rejects `grad_shards != 1`; look-ahead is unavailable by construction).
/// Checkpoints produced by [`PipelineSession::checkpoint`] are ordinary
/// `FF8C` artifacts: a sequential session can resume them and vice versa,
/// bit-exactly.
///
/// See the [module docs](self) for the exactness argument.
pub struct PipelineSession<'a> {
    net: &'a mut Sequential,
    train_set: &'a Dataset,
    test_set: &'a Dataset,
    options: TrainOptions,
    trainer: FfTrainer,
    /// Layer count of each stage, in network order.
    stage_sizes: Vec<usize>,
    history: TrainingHistory,
    /// Index of the epoch the next batch belongs to.
    epoch: usize,
    global_step: u64,
    current: Option<EpochState>,
    metrics: Option<MetricsRegistry>,
}

impl std::fmt::Debug for PipelineSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineSession")
            .field("stage_sizes", &self.stage_sizes)
            .field("epoch", &self.epoch)
            .field("global_step", &self.global_step)
            .finish()
    }
}

impl<'a> PipelineSession<'a> {
    /// Creates a pipeline session cutting `net` into contiguous stages of
    /// `stage_sizes` layers (in order; sizes must be positive and sum to
    /// the layer count).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] (wrapped) when the options fail
    /// validation, request `grad_shards != 1`, the training set is empty,
    /// or the stage split does not tile the network.
    pub fn new(
        net: &'a mut Sequential,
        train_set: &'a Dataset,
        test_set: &'a Dataset,
        precision: Precision,
        options: &TrainOptions,
        stage_sizes: &[usize],
    ) -> Result<Self> {
        options.validate().map_err(DistError::Core)?;
        if options.grad_shards != 1 {
            return Err(invalid(format!(
                "pipeline parallelism requires grad_shards = 1 (got {}); \
                 row sharding belongs to the data-parallel coordinator",
                options.grad_shards
            )));
        }
        if train_set.is_empty() {
            return Err(invalid("training set is empty".to_string()));
        }
        if stage_sizes.is_empty() {
            return Err(invalid(
                "stage split must name at least one stage".to_string(),
            ));
        }
        if stage_sizes.contains(&0) {
            return Err(invalid(
                "every pipeline stage needs at least one layer".to_string(),
            ));
        }
        let total: usize = stage_sizes.iter().sum();
        if total != net.len() {
            return Err(invalid(format!(
                "stage split covers {total} layers but the network has {}",
                net.len()
            )));
        }
        // Look-ahead is structurally unavailable: the trainer is built
        // without it, so λ is 0 for every epoch.
        let trainer = FfTrainer::new(precision, false, options.clone());
        let history = TrainingHistory::new(trainer.algorithm().label());
        Ok(PipelineSession {
            net,
            train_set,
            test_set,
            options: options.clone(),
            trainer,
            stage_sizes: stage_sizes.to_vec(),
            history,
            epoch: 0,
            global_step: 0,
            current: None,
            metrics: None,
        })
    }

    /// Publishes per-stage utilisation into `registry`:
    /// `dist.pipeline.batches` (batches trained),
    /// `dist.pipeline.stage<k>.busy_ns` (per-stage compute totals), and
    /// per-batch histograms `dist.pipeline.stage.<k>.compute_ns` /
    /// `.send_blocked_ns` / `.recv_blocked_ns` that attribute each stage's
    /// wall time to training versus waiting on its neighbours — the
    /// bubble-diagnosis signal a busy-time total cannot give.
    pub fn set_metrics(&mut self, registry: MetricsRegistry) {
        self.metrics = Some(registry);
    }

    /// The session's hyperparameters.
    pub fn options(&self) -> &TrainOptions {
        &self.options
    }

    /// Layer count of each pipeline stage, in network order.
    pub fn stage_sizes(&self) -> &[usize] {
        &self.stage_sizes
    }

    /// Index of the epoch the next batch belongs to.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Mini-batches trained so far across the whole run.
    pub fn global_step(&self) -> u64 {
        self.global_step
    }

    /// The per-epoch history recorded so far.
    pub fn history(&self) -> &TrainingHistory {
        &self.history
    }

    /// `true` once every configured epoch has trained.
    pub fn is_finished(&self) -> bool {
        self.epoch >= self.options.epochs
    }

    /// Evaluates test-set accuracy with the trainer's evaluator (advances
    /// the RNG stream in INT8 mode, exactly like the sequential session).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn eval(&mut self) -> Result<f32> {
        self.trainer
            .evaluate(self.net, self.test_set)
            .map_err(DistError::Core)
    }

    /// Starts the next epoch: shuffles the sample order through the trainer
    /// RNG — the same single stochastic stream the sequential session uses.
    fn begin_epoch(&mut self) {
        let mut order: Vec<usize> = (0..self.train_set.len()).collect();
        order.shuffle(self.trainer.rng_mut());
        self.current = Some(EpochState {
            order,
            next: 0,
            loss_sum: 0.0,
            batch_count: 0,
            correct: 0,
            seen: 0,
            elapsed_before: 0.0,
            started: Instant::now(),
        });
    }

    /// Trains up to `max_batches` mini-batches through the pipeline and
    /// returns how many ran. Stops early at epoch boundaries (finalising
    /// the epoch) and at the end of the run.
    ///
    /// # Errors
    ///
    /// Propagates layer/tensor errors. After an error the session's state
    /// is indeterminate (some stages may have stepped); do not checkpoint.
    pub fn run_steps(&mut self, max_batches: usize) -> Result<usize> {
        let mut done = 0;
        while done < max_batches && !self.is_finished() {
            if self.current.is_none() {
                self.begin_epoch();
            }
            let (remaining, batch) = {
                let state = self.current.as_ref().expect("epoch state just ensured");
                let left = state.order.len().saturating_sub(state.next);
                (left.div_ceil(self.options.batch_size.max(1)), left)
            };
            if remaining == 0 || batch == 0 {
                self.finish_epoch()?;
                continue;
            }
            let count = remaining.min(max_batches - done);
            self.run_batches(count)?;
            done += count;
            let epoch_done = {
                let state = self.current.as_ref().expect("epoch state exists");
                state.next >= state.order.len()
            };
            if epoch_done {
                self.finish_epoch()?;
            }
        }
        Ok(done)
    }

    /// Steps until the current epoch finishes.
    ///
    /// # Errors
    ///
    /// Propagates the first error.
    pub fn run_epoch(&mut self) -> Result<()> {
        if self.is_finished() {
            return Ok(());
        }
        if self.current.is_none() {
            self.begin_epoch();
        }
        let remaining = {
            let state = self.current.as_ref().expect("epoch state just ensured");
            let left = state.order.len().saturating_sub(state.next);
            left.div_ceil(self.options.batch_size.max(1))
        };
        if remaining > 0 {
            self.run_batches(remaining)?;
        }
        self.finish_epoch()
    }

    /// Trains every remaining epoch and returns the recorded history.
    ///
    /// # Errors
    ///
    /// Propagates the first error.
    pub fn run(&mut self) -> Result<&TrainingHistory> {
        while !self.is_finished() {
            self.run_epoch()?;
        }
        Ok(&self.history)
    }

    /// Pushes `count` batches through the stage pipeline. The driver (this
    /// thread) prepares batches in strict order — so every RNG draw happens
    /// in the sequential order — while stage threads train layer slices
    /// concurrently.
    fn run_batches(&mut self, count: usize) -> Result<()> {
        let stage_count = self.stage_sizes.len();
        let layer_count: usize = self.stage_sizes.iter().sum();
        self.trainer.ensure_optimizers(layer_count);
        // Stage threads need the optimizers split in lockstep with the layer
        // slices; take the list out and restore it after the scope so
        // checkpoint export always sees the full list.
        let mut optimizers = std::mem::take(self.trainer.optimizers_mut());
        // Gradients are already zero (construction, step_layers, resume all
        // leave them zero); zeroing again is an idempotent safety net.
        self.net.zero_grad();
        let first_is_dense = first_layer_is_dense(self.net);
        let theta = self.options.theta;
        let precision = self.trainer.precision();
        let num_classes = self.train_set.num_classes();
        let batch_size = self.options.batch_size.max(1);
        let stage_sizes = self.stage_sizes.clone();
        let telemetry: Vec<Option<StageTelemetry>> = (0..stage_count)
            .map(|stage| {
                self.metrics
                    .as_ref()
                    .map(|metrics| StageTelemetry::new(metrics, stage))
            })
            .collect();
        let train_set = self.train_set;
        let trainer = &mut self.trainer;
        let state = self.current.as_ref().expect("run_batches without epoch");
        let order = &state.order;
        let start0 = state.next;

        let layers = self.net.layers_mut();
        type ScopeOut = (Vec<u64>, usize, Vec<f32>, usize);
        let scope_result: std::result::Result<ScopeOut, CoreError> = std::thread::scope(|scope| {
            // Channels: driver -> stage 0 -> stage 1 -> ... plus one
            // unbounded results channel back to the driver.
            let mut item_txs = Vec::with_capacity(stage_count);
            let mut item_rxs = Vec::with_capacity(stage_count);
            for _ in 0..stage_count {
                let (tx, rx) = mpsc::sync_channel::<StageItem>(STAGE_QUEUE_DEPTH);
                item_txs.push(tx);
                item_rxs.push(rx);
            }
            let driver_tx = item_txs.remove(0);
            let (result_tx, result_rx) = mpsc::channel::<(usize, usize, f32, f32)>();

            let mut handles = Vec::with_capacity(stage_count);
            let mut rx_iter = item_rxs.into_iter();
            let mut fwd_iter = item_txs.into_iter();
            let mut remaining_layers = layers;
            let mut remaining_opts = optimizers.as_mut_slice();
            let mut first_layer_index = 0usize;
            for (stage_idx, &size) in stage_sizes.iter().enumerate() {
                let (stage_layers, rest) = remaining_layers.split_at_mut(size);
                remaining_layers = rest;
                let (stage_opts, rest) = remaining_opts.split_at_mut(size);
                remaining_opts = rest;
                let rx = rx_iter.next().expect("one receiver per stage");
                let forward = if stage_idx + 1 < stage_count {
                    Some(fwd_iter.next().expect("one forward sender per link"))
                } else {
                    None
                };
                let results = result_tx.clone();
                let first = first_layer_index;
                first_layer_index += size;
                let stage_telemetry = telemetry[stage_idx].clone();
                handles.push(scope.spawn(move || {
                    stage_loop(
                        stage_layers,
                        stage_opts,
                        first,
                        stage_idx,
                        theta,
                        rx,
                        forward,
                        results,
                        stage_telemetry,
                    )
                }));
            }
            drop(result_tx);

            // Driver: prepare and feed batches in strict order.
            let mut sent = 0usize;
            let mut cursor = start0;
            let mut driver_error: Option<CoreError> = None;
            for b in 0..count {
                if cursor >= order.len() {
                    break;
                }
                let end = (cursor + batch_size).min(order.len());
                let chunk = &order[cursor..end];
                let item = (|| -> std::result::Result<StageItem, CoreError> {
                    let images = train_set.images().select_rows(chunk)?;
                    let labels: Vec<usize> = chunk.iter().map(|&i| train_set.labels()[i]).collect();
                    let prepared =
                        trainer.prepare_batch(&images, &labels, num_classes, first_is_dense)?;
                    let divisor = prepared.pos.rows();
                    Ok(StageItem {
                        batch: b,
                        pos: prepared.pos,
                        neg: prepared.neg,
                        pos_pass: PassMode::from_seed(precision, prepared.pos_seed),
                        neg_pass: PassMode::from_seed(precision, prepared.neg_seed),
                        divisor,
                    })
                })();
                let item = match item {
                    Ok(item) => item,
                    Err(e) => {
                        driver_error = Some(e);
                        break;
                    }
                };
                if driver_tx.send(item).is_err() {
                    // A stage died; its error surfaces at join below.
                    break;
                }
                sent += 1;
                cursor = end;
            }
            drop(driver_tx);

            // Collect per-(batch, stage) loss partials until every stage
            // thread has exited and dropped its sender.
            let mut pos_parts = vec![vec![0.0f32; stage_count]; sent];
            let mut neg_parts = vec![vec![0.0f32; stage_count]; sent];
            let mut got = vec![0usize; sent];
            for (batch, stage, lp, ln) in result_rx.iter() {
                if batch < sent {
                    pos_parts[batch][stage] = lp;
                    neg_parts[batch][stage] = ln;
                    got[batch] += 1;
                }
            }
            let mut busy = Vec::with_capacity(stage_count);
            for handle in handles {
                match handle.join() {
                    Ok(Ok(ns)) => busy.push(ns),
                    Ok(Err(e)) => return Err(e),
                    Err(_) => {
                        return Err(CoreError::InvalidConfig {
                            message: "a pipeline stage thread panicked".to_string(),
                        })
                    }
                }
            }
            if let Some(e) = driver_error {
                return Err(e);
            }
            if got.iter().any(|&g| g != stage_count) {
                return Err(CoreError::InvalidConfig {
                    message: "pipeline lost a batch result (internal error)".to_string(),
                });
            }
            // Fold stage partials in ascending stage order: positive
            // partials first, then negative — exactly the sequential
            // trainer's `loss_pos + loss_neg` with its left-to-right
            // per-layer accumulation.
            let mut losses = Vec::with_capacity(sent);
            for b in 0..sent {
                let mut pos = 0.0f32;
                let mut neg = 0.0f32;
                for s in 0..stage_count {
                    pos += pos_parts[b][s];
                    neg += neg_parts[b][s];
                }
                losses.push(pos + neg);
            }
            Ok((busy, sent, losses, cursor))
        });

        *self.trainer.optimizers_mut() = optimizers;
        let (busy, sent, losses, cursor) = scope_result.map_err(DistError::Core)?;

        let state = self.current.as_mut().expect("epoch state exists");
        state.next = cursor;
        state.batch_count += sent;
        for loss in losses {
            state.loss_sum += loss;
        }
        self.global_step += sent as u64;
        if let Some(metrics) = &self.metrics {
            metrics.counter("dist.pipeline.batches").add(sent as u64);
            for (stage, ns) in busy.iter().enumerate() {
                metrics
                    .counter(&format!("dist.pipeline.stage{stage}.busy_ns"))
                    .add(*ns);
            }
        }
        Ok(())
    }

    /// Finishes the current epoch — evaluation cadence, history record —
    /// mirroring the sequential session field for field.
    fn finish_epoch(&mut self) -> Result<()> {
        let state = self.current.take().expect("finish_epoch without epoch");
        let epoch = self.epoch;
        let mean_loss = state.loss_sum / state.batch_count.max(1) as f32;
        let evaluate_now = epoch.is_multiple_of(self.options.eval_every.max(1))
            || epoch + 1 == self.options.epochs;
        let (train_accuracy, test_accuracy) = if evaluate_now {
            let train_accuracy = self
                .trainer
                .evaluate(self.net, self.train_set)
                .map_err(DistError::Core)?;
            let test_accuracy = self
                .trainer
                .evaluate(self.net, self.test_set)
                .map_err(DistError::Core)?;
            (train_accuracy, Some(test_accuracy))
        } else {
            (0.0, None)
        };
        let seconds = state.elapsed_before + state.started.elapsed().as_secs_f64();
        self.history
            .record_timed(epoch, mean_loss, train_accuracy, test_accuracy, seconds);
        self.epoch += 1;
        Ok(())
    }

    /// Captures the complete training state into a standard `FF8C`
    /// [`Checkpoint`] — interchangeable with the sequential session's: a
    /// [`ff_core::TrainSession`] can resume it (and continue bit-exactly
    /// on one thread), and [`PipelineSession::resume`] accepts sequential
    /// checkpoints.
    pub fn checkpoint(&mut self) -> Checkpoint {
        let progress = self.current.as_ref().map(|state| EpochProgress {
            order: state.order.clone(),
            next: state.next,
            loss_sum: state.loss_sum,
            batch_count: state.batch_count as u64,
            correct: state.correct as u64,
            seen: state.seen as u64,
            elapsed_seconds: state.elapsed_before + state.started.elapsed().as_secs_f64(),
        });
        let params = self
            .net
            .params_mut()
            .iter()
            .map(|p| p.value.clone())
            .collect();
        Checkpoint {
            algorithm: self.trainer.algorithm(),
            options: self.options.clone(),
            epoch: self.epoch as u64,
            global_step: self.global_step,
            trainer: self.trainer.export_state(),
            history: self.history.clone(),
            params,
            progress,
        }
    }

    /// Rebuilds a pipeline session from a [`Checkpoint`] (taken by either a
    /// pipeline or a sequential session) and continues bit-exactly.
    ///
    /// # Errors
    ///
    /// Rejects checkpoints of algorithms the pipeline cannot train
    /// (look-ahead, backpropagation, `grad_shards != 1`) and propagates the
    /// usual shape/geometry mismatches.
    pub fn resume(
        net: &'a mut Sequential,
        train_set: &'a Dataset,
        test_set: &'a Dataset,
        checkpoint: &Checkpoint,
        stage_sizes: &[usize],
    ) -> Result<Self> {
        let precision = match checkpoint.algorithm {
            Algorithm::FfInt8 { lookahead: false } => Precision::Int8,
            Algorithm::FfFp32 { lookahead: false } => Precision::Fp32,
            other => {
                return Err(invalid(format!(
                    "pipeline training supports FF without look-ahead only \
                     (checkpoint algorithm is {})",
                    other.label()
                )))
            }
        };
        let mut session = Self::new(
            net,
            train_set,
            test_set,
            precision,
            &checkpoint.options,
            stage_sizes,
        )?;
        session
            .trainer
            .import_state(&checkpoint.trainer, session.net)
            .map_err(DistError::Core)?;
        checkpoint
            .restore_params(session.net)
            .map_err(DistError::Core)?;
        session.history = checkpoint.history.clone();
        session.epoch = checkpoint.epoch as usize;
        session.global_step = checkpoint.global_step;
        if let Some(progress) = &checkpoint.progress {
            session.current = Some(session.restore_progress(progress)?);
        }
        Ok(session)
    }

    /// Validates and rehydrates a mid-epoch [`EpochProgress`] — the same
    /// permutation/cursor checks the sequential session applies.
    fn restore_progress(&self, progress: &EpochProgress) -> Result<EpochState> {
        let n = self.train_set.len();
        if progress.order.len() != n {
            return Err(mismatch(format!(
                "checkpoint epoch order covers {} samples but the training set has {n}",
                progress.order.len()
            )));
        }
        let mut seen = vec![false; n];
        for &index in &progress.order {
            if index >= n || seen[index] {
                return Err(mismatch(format!(
                    "checkpoint epoch order is not a permutation of 0..{n} \
                     (offending index {index})"
                )));
            }
            seen[index] = true;
        }
        if progress.next > n {
            return Err(mismatch(format!(
                "checkpoint epoch cursor {} is past the training set length {n}",
                progress.next
            )));
        }
        Ok(EpochState {
            order: progress.order.clone(),
            next: progress.next,
            loss_sum: progress.loss_sum,
            batch_count: progress.batch_count as usize,
            correct: progress.correct as usize,
            seen: progress.seen as usize,
            elapsed_before: progress.elapsed_seconds,
            started: Instant::now(),
        })
    }
}

/// Per-stage pipeline histograms: where each stage's wall time goes, batch
/// by batch. `compute` is the training work itself; `recv_blocked` is time
/// starved waiting on the upstream stage (or the driver); `send_blocked`
/// is time stalled against the bounded forward queue's backpressure.
#[derive(Clone)]
struct StageTelemetry {
    compute: SharedHistogram,
    send_blocked: SharedHistogram,
    recv_blocked: SharedHistogram,
}

impl StageTelemetry {
    fn new(metrics: &MetricsRegistry, stage: usize) -> Self {
        StageTelemetry {
            compute: metrics.histogram(&format!("dist.pipeline.stage.{stage}.compute_ns")),
            send_blocked: metrics
                .histogram(&format!("dist.pipeline.stage.{stage}.send_blocked_ns")),
            recv_blocked: metrics
                .histogram(&format!("dist.pipeline.stage.{stage}.recv_blocked_ns")),
        }
    }
}

/// One stage thread's life: drain the inbound channel, train this stage's
/// layer slice on each batch (positive pass, negative pass, step), report
/// the loss partials and forward the outgoing activations. Returns the
/// stage's total compute time in nanoseconds.
#[allow(clippy::too_many_arguments)]
fn stage_loop(
    layers: &mut [Box<dyn Layer>],
    optimizers: &mut [ff_core::AnyOptimizer],
    first_layer_index: usize,
    stage_idx: usize,
    theta: f32,
    rx: mpsc::Receiver<StageItem>,
    forward: Option<mpsc::SyncSender<StageItem>>,
    results: mpsc::Sender<(usize, usize, f32, f32)>,
    telemetry: Option<StageTelemetry>,
) -> std::result::Result<u64, CoreError> {
    let mut busy_ns = 0u64;
    loop {
        let wait_start = Instant::now();
        let Ok(item) = rx.recv() else {
            // Upstream closed: the run is over; the final wait is not an
            // upstream stall, so it goes unrecorded.
            break;
        };
        if let Some(t) = &telemetry {
            t.recv_blocked.record_ns(saturating_ns(wait_start));
        }
        let started = Instant::now();
        let (loss_pos, pos_out) = ff_stage_pass(
            layers,
            first_layer_index,
            &item.pos,
            FfLossKind::Positive,
            theta,
            item.pos_pass,
            item.divisor,
        )?;
        let (loss_neg, neg_out) = ff_stage_pass(
            layers,
            first_layer_index,
            &item.neg,
            FfLossKind::Negative,
            theta,
            item.neg_pass,
            item.divisor,
        )?;
        step_layers(layers, optimizers);
        let compute_ns = saturating_ns(started);
        busy_ns = busy_ns.saturating_add(compute_ns);
        if let Some(t) = &telemetry {
            t.compute.record_ns(compute_ns);
        }
        let _ = results.send((item.batch, stage_idx, loss_pos, loss_neg));
        if let Some(tx) = &forward {
            let onward = StageItem {
                batch: item.batch,
                pos: pos_out,
                neg: neg_out,
                pos_pass: item.pos_pass,
                neg_pass: item.neg_pass,
                divisor: item.divisor,
            };
            let send_start = Instant::now();
            if tx.send(onward).is_err() {
                // Downstream died; stop consuming so backpressure unwinds.
                break;
            }
            if let Some(t) = &telemetry {
                t.send_blocked.record_ns(saturating_ns(send_start));
            }
        }
    }
    Ok(busy_ns)
}

fn saturating_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

fn invalid(message: String) -> DistError {
    DistError::Core(CoreError::InvalidConfig { message })
}

fn mismatch(message: String) -> DistError {
    DistError::Core(CoreError::CheckpointMismatch { message })
}
