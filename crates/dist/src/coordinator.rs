//! The data-parallel training coordinator and its [`DistTrainer`].
//!
//! The [`Coordinator`] owns a TCP listener whose accept thread classifies
//! each connection by its first frame: `Join` makes it a worker (a reader
//! thread pumps its `ShardResult`s into the trainer's pulse channel),
//! `Subscribe` makes it a training-event observer, `PullCheckpoint` serves
//! the latest published `FF8C` artifact and hangs up.
//!
//! [`DistTrainer`] is a [`TrainerCore`]: drop it into
//! [`ff_core::TrainSession`] and the session logic (shuffling, epochs,
//! checkpoints, events) is untouched. Each step it prepares the batch with
//! the wrapped sequential [`FfTrainer`] (so the RNG stream is the
//! sequential stream), cuts it into the canonical shard tasks, farms the
//! tasks round-robin over live workers, and reduces gradients **in
//! ascending shard order** regardless of arrival order. Any shard a worker
//! fails to return — death, hang, or never having been dispatched because
//! no workers are connected — is recomputed locally with the same pure
//! [`compute_shard`], so the resulting weights are bit-identical to the
//! sequential `grad_shards = W` run no matter how the cluster behaves.

use crate::protocol::{read_msg, write_msg, TrainMsg};
use crate::{DistError, Result};
use ff_core::shard::{compute_shard, reduce_shard_grads, shard_tasks, ShardGrads};
use ff_core::{
    first_layer_is_dense, Algorithm, FfTrainer, Precision, StepSpans, StepStats, TrainEvent,
    TrainOptions, TrainerCore, TrainerState,
};
use ff_data::{Batch, Dataset};
use ff_nn::Sequential;
use ff_tensor::Tensor;
use ff_trace::MetricsRegistry;
use rand::rngs::StdRng;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the accept thread waits for a connection's classifying first
/// frame before giving up on it.
const HELLO_TIMEOUT: Duration = Duration::from_secs(5);

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Shared-secret token workers must present in `Join`; `None` accepts
    /// any token.
    pub token: Option<String>,
    /// How long one step waits for outstanding remote shards before
    /// recomputing them locally. Purely a latency/throughput trade-off —
    /// the weights are identical either way.
    pub shard_timeout: Duration,
    /// Metrics registry for coordinator counters (`dist.coord.*`).
    pub metrics: Option<MetricsRegistry>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            token: None,
            shard_timeout: Duration::from_secs(5),
            metrics: None,
        }
    }
}

/// One joined worker: its id, the write half (shared between the trainer's
/// dispatch and shutdown), and a liveness flag flipped by whichever side
/// sees the connection fail first.
#[derive(Debug)]
struct WorkerLink {
    id: u64,
    stream: Mutex<TcpStream>,
    alive: AtomicBool,
}

/// What worker reader threads report to the trainer.
enum Pulse {
    /// A worker returned one shard's gradients.
    Result {
        step: u64,
        shard_index: usize,
        grads: ShardGrads,
    },
    /// A worker's connection ended (its unreturned shards need local
    /// recompute).
    Down { worker_id: u64 },
}

#[derive(Debug)]
struct Shared {
    config: CoordinatorConfig,
    workers: Mutex<Vec<Arc<WorkerLink>>>,
    subscribers: Mutex<Vec<TcpStream>>,
    checkpoint: Mutex<Option<Vec<u8>>>,
    shutdown: AtomicBool,
}

impl Shared {
    fn count(&self, name: &str, delta: u64) {
        if let Some(metrics) = &self.config.metrics {
            metrics.counter(name).add(delta);
        }
    }
}

/// The serving half of the data-parallel tier. See the module docs.
#[derive(Debug)]
pub struct Coordinator {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    pulses: Option<mpsc::Receiver<Pulse>>,
}

impl Coordinator {
    /// Binds the cluster listener and starts the accept thread.
    ///
    /// # Errors
    ///
    /// [`DistError::Io`] when the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs, config: CoordinatorConfig) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            workers: Mutex::new(Vec::new()),
            subscribers: Mutex::new(Vec::new()),
            checkpoint: Mutex::new(None),
            shutdown: AtomicBool::new(false),
        });
        let (pulse_tx, pulse_rx) = mpsc::channel();
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("ff-dist-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared, pulse_tx))
            .map_err(|e| DistError::Io {
                message: format!("spawning the accept thread failed: {e}"),
            })?;
        Ok(Coordinator {
            addr,
            shared,
            accept: Some(accept),
            pulses: Some(pulse_rx),
        })
    }

    /// The bound listener address (use for workers when binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many workers are currently joined and believed alive.
    pub fn worker_count(&self) -> usize {
        self.shared
            .workers
            .lock()
            .map(|w| w.iter().filter(|l| l.alive.load(Ordering::SeqCst)).count())
            .unwrap_or(0)
    }

    /// Publishes a checkpoint artifact; subsequent `PullCheckpoint`
    /// requests receive these bytes.
    pub fn publish_checkpoint(&self, bytes: Vec<u8>) {
        if let Ok(mut slot) = self.shared.checkpoint.lock() {
            *slot = Some(bytes);
        }
        self.shared.count("dist.coord.checkpoints_published", 1);
    }

    /// Streams one typed training event to every subscriber, dropping
    /// subscribers whose connection has gone away.
    pub fn broadcast_event(&self, event: &TrainEvent) {
        let msg = TrainMsg::Event {
            event: event.clone(),
        };
        if let Ok(mut subs) = self.shared.subscribers.lock() {
            subs.retain_mut(|stream| write_msg(stream, &msg).is_ok());
        }
        self.shared.count("dist.coord.events_broadcast", 1);
    }

    /// Builds the cluster's trainer. Callable once — the trainer owns the
    /// result channel the worker readers feed.
    ///
    /// With zero workers connected the trainer degrades to the sequential
    /// sharded step (every shard computed locally) — same weights, no
    /// cluster required.
    ///
    /// # Errors
    ///
    /// [`DistError::Core`] on invalid options; [`DistError::Protocol`] on a
    /// second call.
    pub fn trainer(
        &mut self,
        precision: Precision,
        lookahead: bool,
        options: TrainOptions,
    ) -> Result<DistTrainer> {
        options.validate()?;
        let pulses = self.pulses.take().ok_or_else(|| DistError::Protocol {
            message: "this coordinator's trainer was already taken".to_string(),
        })?;
        Ok(DistTrainer {
            inner: FfTrainer::new(precision, lookahead, options),
            shared: Arc::clone(&self.shared),
            pulses,
            next_step: 0,
        })
    }

    /// Stops the cluster: tells every worker to shut down, closes
    /// subscriber connections, and joins the accept thread.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Ok(mut workers) = self.shared.workers.lock() {
            for link in workers.drain(..) {
                link.alive.store(false, Ordering::SeqCst);
                if let Ok(mut stream) = link.stream.lock() {
                    let _ = write_msg(&mut *stream, &TrainMsg::Shutdown);
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }
        if let Ok(mut subs) = self.shared.subscribers.lock() {
            subs.clear();
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, pulse_tx: mpsc::Sender<Pulse>) {
    let next_worker_id = AtomicU64::new(0);
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        handle_hello(stream, &shared, &pulse_tx, &next_worker_id);
    }
}

/// Classifies a fresh connection by its first frame.
fn handle_hello(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    pulse_tx: &mpsc::Sender<Pulse>,
    next_worker_id: &AtomicU64,
) {
    let _ = stream.set_read_timeout(Some(HELLO_TIMEOUT));
    let Ok(hello) = read_msg(&mut stream) else {
        return;
    };
    let _ = stream.set_read_timeout(None);
    match hello {
        TrainMsg::Join { token } => {
            if let Some(expected) = &shared.config.token {
                if &token != expected {
                    let _ = write_msg(
                        &mut stream,
                        &TrainMsg::Error {
                            message: "join rejected: bad cluster token".to_string(),
                        },
                    );
                    return;
                }
            }
            let id = next_worker_id.fetch_add(1, Ordering::Relaxed);
            if write_msg(&mut stream, &TrainMsg::JoinAck { worker_id: id }).is_err() {
                return;
            }
            let Ok(read_half) = stream.try_clone() else {
                return;
            };
            let link = Arc::new(WorkerLink {
                id,
                stream: Mutex::new(stream),
                alive: AtomicBool::new(true),
            });
            if let Ok(mut workers) = shared.workers.lock() {
                workers.push(Arc::clone(&link));
            }
            shared.count("dist.coord.workers_joined", 1);
            let reader_shared = Arc::clone(shared);
            let tx = pulse_tx.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("ff-dist-worker-{id}"))
                .spawn(move || worker_reader(read_half, link, reader_shared, tx));
            if spawned.is_err() {
                // Could not watch the worker; forget it rather than hand it
                // work whose results nobody would collect.
                if let Ok(mut workers) = shared.workers.lock() {
                    workers.retain(|w| w.id != id);
                }
            }
        }
        TrainMsg::Subscribe => {
            if let Ok(mut subs) = shared.subscribers.lock() {
                subs.push(stream);
            }
            shared.count("dist.coord.subscribers_joined", 1);
        }
        TrainMsg::PullCheckpoint => {
            let reply = match shared.checkpoint.lock().ok().and_then(|slot| slot.clone()) {
                Some(bytes) => TrainMsg::CheckpointReply { bytes },
                None => TrainMsg::Error {
                    message: "no checkpoint published yet".to_string(),
                },
            };
            let _ = write_msg(&mut stream, &reply);
            shared.count("dist.coord.checkpoints_pulled", 1);
        }
        _ => {
            let _ = write_msg(
                &mut stream,
                &TrainMsg::Error {
                    message: "expected Join, Subscribe or PullCheckpoint".to_string(),
                },
            );
        }
    }
}

/// Pumps one worker's results into the pulse channel until its connection
/// ends, then reports it down.
fn worker_reader(
    mut stream: TcpStream,
    link: Arc<WorkerLink>,
    shared: Arc<Shared>,
    tx: mpsc::Sender<Pulse>,
) {
    loop {
        match read_msg(&mut stream) {
            Ok(TrainMsg::ShardResult {
                step,
                shard_index,
                grads,
            }) => {
                let _ = tx.send(Pulse::Result {
                    step,
                    shard_index: shard_index as usize,
                    grads,
                });
            }
            Ok(TrainMsg::Leave) | Err(_) => break,
            Ok(_) => continue,
        }
    }
    link.alive.store(false, Ordering::SeqCst);
    if let Ok(mut workers) = shared.workers.lock() {
        workers.retain(|w| w.id != link.id);
    }
    shared.count("dist.coord.workers_lost", 1);
    let _ = tx.send(Pulse::Down { worker_id: link.id });
}

/// A [`TrainerCore`] that runs the canonical sharded FF step across the
/// cluster. See the module docs for the determinism argument.
pub struct DistTrainer {
    inner: FfTrainer,
    shared: Arc<Shared>,
    pulses: mpsc::Receiver<Pulse>,
    next_step: u64,
}

impl std::fmt::Debug for DistTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistTrainer")
            .field("next_step", &self.next_step)
            .finish_non_exhaustive()
    }
}

impl DistTrainer {
    /// The wrapped sequential trainer (for evaluation helpers).
    pub fn inner_mut(&mut self) -> &mut FfTrainer {
        &mut self.inner
    }

    /// Dispatches tasks round-robin over live workers. Returns, per shard,
    /// the id of the worker that accepted it (`None` = compute locally).
    fn dispatch(
        &mut self,
        net: &mut Sequential,
        step: u64,
        tasks: &[ff_core::shard::ShardTask],
    ) -> Vec<Option<u64>> {
        let mut assignment: Vec<Option<u64>> = vec![None; tasks.len()];
        let live: Vec<Arc<WorkerLink>> = self
            .shared
            .workers
            .lock()
            .map(|w| {
                w.iter()
                    .filter(|l| l.alive.load(Ordering::SeqCst))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        if live.is_empty() || tasks.is_empty() {
            return assignment;
        }
        let params: Vec<Tensor> = net.params_mut().iter().map(|p| p.value.clone()).collect();
        let sync = TrainMsg::ParamSync {
            version: step,
            params,
        };
        let mut synced: Vec<Arc<WorkerLink>> = Vec::new();
        for link in live {
            let ok = link
                .stream
                .lock()
                .map(|mut s| write_msg(&mut *s, &sync).is_ok())
                .unwrap_or(false);
            if ok {
                synced.push(link);
            } else {
                link.alive.store(false, Ordering::SeqCst);
            }
        }
        if synced.is_empty() {
            return assignment;
        }
        for (index, task) in tasks.iter().enumerate() {
            let link = &synced[index % synced.len()];
            if !link.alive.load(Ordering::SeqCst) {
                continue;
            }
            let msg = TrainMsg::SubmitBatch {
                step,
                task: task.clone(),
            };
            let ok = link
                .stream
                .lock()
                .map(|mut s| write_msg(&mut *s, &msg).is_ok())
                .unwrap_or(false);
            if ok {
                assignment[index] = Some(link.id);
            } else {
                link.alive.store(false, Ordering::SeqCst);
            }
        }
        assignment
    }

    /// Collects dispatched shard results until all arrive, their workers
    /// die, or the shard timeout elapses. Stale results from earlier steps
    /// are discarded by the step tag.
    fn collect(
        &mut self,
        step: u64,
        assignment: &mut [Option<u64>],
        slots: &mut [Option<ShardGrads>],
    ) {
        let deadline = Instant::now() + self.shared.config.shard_timeout;
        loop {
            let pending = assignment
                .iter()
                .zip(slots.iter())
                .any(|(owner, slot)| owner.is_some() && slot.is_none());
            if !pending {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.pulses.recv_timeout(deadline - now) {
                Ok(Pulse::Result {
                    step: result_step,
                    shard_index,
                    grads,
                }) => {
                    if result_step == step
                        && shard_index < slots.len()
                        && assignment[shard_index].is_some()
                        && slots[shard_index].is_none()
                    {
                        slots[shard_index] = Some(grads);
                    }
                }
                Ok(Pulse::Down { worker_id }) => {
                    for (owner, slot) in assignment.iter_mut().zip(slots.iter()) {
                        if *owner == Some(worker_id) && slot.is_none() {
                            *owner = None;
                        }
                    }
                }
                Err(_) => break,
            }
        }
    }
}

impl TrainerCore for DistTrainer {
    fn algorithm(&self) -> Algorithm {
        self.inner.algorithm()
    }

    fn options(&self) -> &TrainOptions {
        self.inner.options()
    }

    fn step_batch(
        &mut self,
        net: &mut Sequential,
        batch: &Batch,
        num_classes: usize,
        lambda: f32,
    ) -> ff_core::Result<StepStats> {
        let prep_start = Instant::now();
        let first_is_dense = first_layer_is_dense(net);
        let prepared =
            self.inner
                .prepare_batch(&batch.images, &batch.labels, num_classes, first_is_dense)?;
        let quantize_ns = saturating_elapsed_ns(prep_start);
        let shards = self.inner.options().grad_shards.max(1);
        let theta = self.inner.options().theta;
        let tasks = shard_tasks(
            &prepared,
            shards,
            net.len(),
            theta,
            lambda,
            self.inner.precision(),
        )?;
        let step = self.next_step;
        self.next_step += 1;

        let forward_start = Instant::now();
        let mut assignment = self.dispatch(net, step, &tasks);
        let mut slots: Vec<Option<ShardGrads>> = (0..tasks.len()).map(|_| None).collect();
        self.collect(step, &mut assignment, &mut slots);

        // Order-fixed reduction with local recompute of anything missing.
        // `compute_shard` is a pure function of (parameters, task), and the
        // parameters a live worker saw are exactly the parameters this net
        // holds right now (the step has not been applied yet), so a locally
        // recomputed shard is bit-identical to the remote one it replaces.
        let mut remote = 0u64;
        let mut local = 0u64;
        let mut reduced: Option<ShardGrads> = None;
        for (index, task) in tasks.iter().enumerate() {
            let grads = match slots[index].take() {
                Some(grads) => {
                    remote += 1;
                    grads
                }
                None => {
                    local += 1;
                    compute_shard(net, task)?
                }
            };
            reduce_shard_grads(&mut reduced, &grads)?;
        }
        let forward_ns = saturating_elapsed_ns(forward_start);

        let update_start = Instant::now();
        let loss = match reduced {
            Some(result) => {
                self.inner.apply_reduced_grads(net, &result.grads)?;
                result.loss_pos + result.loss_neg
            }
            None => 0.0,
        };
        self.shared.count("dist.coord.steps", 1);
        self.shared.count("dist.coord.shards_remote", remote);
        self.shared.count("dist.coord.shards_local", local);
        Ok(StepStats {
            loss,
            correct: 0,
            seen: 0,
            spans: StepSpans {
                quantize_ns,
                forward_ns,
                update_ns: saturating_elapsed_ns(update_start),
            },
        })
    }

    fn evaluate(&mut self, net: &mut Sequential, dataset: &Dataset) -> ff_core::Result<f32> {
        self.inner.evaluate(net, dataset)
    }

    fn tracks_running_accuracy(&self) -> bool {
        false
    }

    fn rng_mut(&mut self) -> &mut StdRng {
        self.inner.rng_mut()
    }

    fn export_state(&self) -> TrainerState {
        self.inner.export_state()
    }

    fn import_state(&mut self, state: &TrainerState, net: &mut Sequential) -> ff_core::Result<()> {
        self.inner.import_state(state, net)
    }
}

fn saturating_elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u64::MAX as u128) as u64
}
