//! The data-parallel training coordinator and its [`DistTrainer`].
//!
//! The [`Coordinator`] owns a TCP listener whose accept thread classifies
//! each connection by its first frame: `Join` makes it a worker (a reader
//! thread pumps its `ShardResult`s into the trainer's pulse channel),
//! `Subscribe` makes it a training-event observer, `PullCheckpoint` serves
//! the latest published `FF8C` artifact and hangs up.
//!
//! [`DistTrainer`] is a [`TrainerCore`]: drop it into
//! [`ff_core::TrainSession`] and the session logic (shuffling, epochs,
//! checkpoints, events) is untouched. Each step it prepares the batch with
//! the wrapped sequential [`FfTrainer`] (so the RNG stream is the
//! sequential stream), cuts it into the canonical shard tasks, farms the
//! tasks round-robin over live workers, and reduces gradients **in
//! ascending shard order** regardless of arrival order. Any shard a worker
//! fails to return — death, hang, or never having been dispatched because
//! no workers are connected — is recomputed locally with the same pure
//! [`compute_shard`], so the resulting weights are bit-identical to the
//! sequential `grad_shards = W` run no matter how the cluster behaves.

use crate::protocol::{
    decode_msg_versioned, encode_msg_at, read_msg, read_msg_bytes, write_msg, write_msg_at,
    write_msg_bytes, ErrorCode, ShardStamps, TrainMsg, KIND_COUNT, TRAIN_PROTOCOL_VERSION,
};
use crate::{DistError, Result};
use ff_core::shard::{compute_shard, reduce_shard_grads, shard_tasks, ShardGrads};
use ff_core::{
    first_layer_is_dense, Algorithm, FfTrainer, Precision, StepSpans, StepStats, TrainEvent,
    TrainOptions, TrainerCore, TrainerState,
};
use ff_data::{Batch, Dataset};
use ff_metrics::Counter;
use ff_nn::Sequential;
use ff_tensor::Tensor;
use ff_trace::{ClusterFlightRecorder, ClusterSpan, MetricsRegistry, ShardSpan, TraceSettings};
use rand::rngs::StdRng;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the accept thread waits for a connection's classifying first
/// frame before giving up on it.
const HELLO_TIMEOUT: Duration = Duration::from_secs(5);

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Shared-secret token workers must present in `Join`; `None` accepts
    /// any token.
    pub token: Option<String>,
    /// How long one step waits for outstanding remote shards before
    /// recomputing them locally. Purely a latency/throughput trade-off —
    /// the weights are identical either way.
    pub shard_timeout: Duration,
    /// Metrics registry for coordinator counters (`dist.coord.*`) and
    /// per-kind wire accounting (`dist.wire.*`).
    pub metrics: Option<MetricsRegistry>,
    /// Cluster-trace sampling and ring capacity. Disabled by default —
    /// when off, `trace_id` is always 0 and steps carry no span at all.
    pub trace: TraceSettings,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            token: None,
            shard_timeout: Duration::from_secs(5),
            metrics: None,
            trace: TraceSettings::disabled(),
        }
    }
}

/// One joined worker: its id, the write half (shared between the trainer's
/// dispatch and shutdown), and a liveness flag flipped by whichever side
/// sees the connection fail first.
#[derive(Debug)]
struct WorkerLink {
    id: u64,
    stream: Mutex<TcpStream>,
    alive: AtomicBool,
    /// The FF8D version every frame to/from this worker is encoded at:
    /// `min(worker's Join version, TRAIN_PROTOCOL_VERSION)`. A v1 worker
    /// trains bit-identically — it just carries no trace fields.
    version: u16,
}

/// What worker reader threads report to the trainer.
enum Pulse {
    /// A worker returned one shard's gradients.
    Result {
        step: u64,
        shard_index: usize,
        grads: ShardGrads,
        stamps: ShardStamps,
    },
    /// A worker's connection ended (its unreturned shards need local
    /// recompute).
    Down { worker_id: u64 },
}

/// Pre-minted per-kind frame/byte counters for the FF8D transport.
///
/// Indexed by [`TrainMsg::kind_index`], so a hot-path account is two
/// atomic adds with no registry lock or name formatting. Counters exist
/// (and stay coherent) even with no registry configured; registration
/// under `dist.wire.<kind>.{frames,bytes}` happens only when one is.
#[derive(Debug)]
struct WireCounters {
    frames: Vec<Counter>,
    bytes: Vec<Counter>,
}

impl WireCounters {
    fn new(metrics: Option<&MetricsRegistry>) -> Self {
        let mut frames = Vec::with_capacity(KIND_COUNT);
        let mut bytes = Vec::with_capacity(KIND_COUNT);
        for name in TrainMsg::kind_names() {
            let f = Counter::new();
            let b = Counter::new();
            if let Some(metrics) = metrics {
                metrics.register_counter(&format!("dist.wire.{name}.frames"), f.clone());
                metrics.register_counter(&format!("dist.wire.{name}.bytes"), b.clone());
            }
            frames.push(f);
            bytes.push(b);
        }
        WireCounters { frames, bytes }
    }

    /// Accounts one frame of `kind_index` whose full wire footprint
    /// (length prefix included) was `wire_bytes`.
    fn account(&self, kind_index: usize, wire_bytes: u64) {
        self.frames[kind_index].inc();
        self.bytes[kind_index].add(wire_bytes);
    }
}

#[derive(Debug)]
struct Shared {
    config: CoordinatorConfig,
    workers: Mutex<Vec<Arc<WorkerLink>>>,
    subscribers: Mutex<Vec<(TcpStream, u16)>>,
    checkpoint: Mutex<Option<Vec<u8>>>,
    shutdown: AtomicBool,
    cluster: ClusterFlightRecorder,
    wire: WireCounters,
    /// Per-[`ErrorCode`] counters, parallel to [`ErrorCode::all`].
    errors: Vec<Counter>,
}

impl Shared {
    fn count(&self, name: &str, delta: u64) {
        if let Some(metrics) = &self.config.metrics {
            metrics.counter(name).add(delta);
        }
    }

    /// Writes `msg` at `version` and accounts the frame under its kind.
    fn wire_write(&self, stream: &mut TcpStream, msg: &TrainMsg, version: u16) -> Result<()> {
        let n = write_msg_at(stream, msg, version)?;
        self.wire.account(msg.kind_index(), n as u64);
        Ok(())
    }

    /// Sends a coded [`TrainMsg::Error`] reply (best effort) and bumps its
    /// `dist.coord.errors.<code>` counter.
    fn send_error(&self, stream: &mut TcpStream, version: u16, code: ErrorCode, message: &str) {
        let _ = self.wire_write(
            stream,
            &TrainMsg::Error {
                code,
                message: message.to_string(),
            },
            version,
        );
        if let Some(slot) = ErrorCode::all().iter().position(|c| *c == code) {
            self.errors[slot].inc();
        }
    }
}

/// The serving half of the data-parallel tier. See the module docs.
#[derive(Debug)]
pub struct Coordinator {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    pulses: Option<mpsc::Receiver<Pulse>>,
}

impl Coordinator {
    /// Binds the cluster listener and starts the accept thread.
    ///
    /// # Errors
    ///
    /// [`DistError::Io`] when the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs, config: CoordinatorConfig) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let cluster = ClusterFlightRecorder::new(config.trace);
        let wire = WireCounters::new(config.metrics.as_ref());
        let errors: Vec<Counter> = ErrorCode::all()
            .iter()
            .map(|code| {
                let counter = Counter::new();
                if let Some(metrics) = &config.metrics {
                    metrics.register_counter(
                        &format!("dist.coord.errors.{}", code.name()),
                        counter.clone(),
                    );
                }
                counter
            })
            .collect();
        if let Some(metrics) = &config.metrics {
            metrics.register_counter("dist.coord.trace.dropped", cluster.dropped_counter());
        }
        let shared = Arc::new(Shared {
            config,
            workers: Mutex::new(Vec::new()),
            subscribers: Mutex::new(Vec::new()),
            checkpoint: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            cluster,
            wire,
            errors,
        });
        let (pulse_tx, pulse_rx) = mpsc::channel();
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("ff-dist-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared, pulse_tx))
            .map_err(|e| DistError::Io {
                message: format!("spawning the accept thread failed: {e}"),
            })?;
        Ok(Coordinator {
            addr,
            shared,
            accept: Some(accept),
            pulses: Some(pulse_rx),
        })
    }

    /// The bound listener address (use for workers when binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many workers are currently joined and believed alive.
    pub fn worker_count(&self) -> usize {
        self.shared
            .workers
            .lock()
            .map(|w| w.iter().filter(|l| l.alive.load(Ordering::SeqCst)).count())
            .unwrap_or(0)
    }

    /// Publishes a checkpoint artifact; subsequent `PullCheckpoint`
    /// requests receive these bytes.
    pub fn publish_checkpoint(&self, bytes: Vec<u8>) {
        if let Ok(mut slot) = self.shared.checkpoint.lock() {
            *slot = Some(bytes);
        }
        self.shared.count("dist.coord.checkpoints_published", 1);
    }

    /// Streams one typed training event to every subscriber, dropping
    /// subscribers whose connection has gone away.
    pub fn broadcast_event(&self, event: &TrainEvent) {
        let msg = TrainMsg::Event {
            event: event.clone(),
        };
        let kind_index = msg.kind_index();
        // Encode once per distinct subscriber version, not per subscriber.
        let mut encoded: Vec<(u16, Vec<u8>)> = Vec::new();
        if let Ok(mut subs) = self.shared.subscribers.lock() {
            subs.retain_mut(|(stream, version)| {
                if !encoded.iter().any(|(v, _)| v == version) {
                    encoded.push((*version, encode_msg_at(&msg, *version)));
                }
                let bytes = &encoded
                    .iter()
                    .find(|(v, _)| v == version)
                    .expect("cached")
                    .1;
                match write_msg_bytes(stream, bytes) {
                    Ok(n) => {
                        self.shared.wire.account(kind_index, n as u64);
                        true
                    }
                    Err(_) => false,
                }
            });
        }
        self.shared.count("dist.coord.events_broadcast", 1);
    }

    /// The most recent committed [`ClusterSpan`]s (newest last), straight
    /// from the coordinator-side ring. `max == 0` returns everything
    /// retained. The wire `TraceDump` request serves the same data to
    /// remote pullers; this accessor is for in-process harnesses.
    pub fn cluster_traces(&self, max: usize) -> Vec<ClusterSpan> {
        self.shared.cluster.recent(max)
    }

    /// How many spans the cluster trace ring has dropped under commit
    /// contention or zero capacity.
    pub fn cluster_traces_dropped(&self) -> u64 {
        self.shared.cluster.dropped()
    }

    /// Builds the cluster's trainer. Callable once — the trainer owns the
    /// result channel the worker readers feed.
    ///
    /// With zero workers connected the trainer degrades to the sequential
    /// sharded step (every shard computed locally) — same weights, no
    /// cluster required.
    ///
    /// # Errors
    ///
    /// [`DistError::Core`] on invalid options; [`DistError::Protocol`] on a
    /// second call.
    pub fn trainer(
        &mut self,
        precision: Precision,
        lookahead: bool,
        options: TrainOptions,
    ) -> Result<DistTrainer> {
        options.validate()?;
        let pulses = self.pulses.take().ok_or_else(|| DistError::Protocol {
            message: "this coordinator's trainer was already taken".to_string(),
        })?;
        Ok(DistTrainer {
            inner: FfTrainer::new(precision, lookahead, options),
            shared: Arc::clone(&self.shared),
            pulses,
            next_step: 0,
        })
    }

    /// Stops the cluster: tells every worker to shut down, closes
    /// subscriber connections, and joins the accept thread.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Ok(mut workers) = self.shared.workers.lock() {
            for link in workers.drain(..) {
                link.alive.store(false, Ordering::SeqCst);
                if let Ok(mut stream) = link.stream.lock() {
                    let _ = self
                        .shared
                        .wire_write(&mut stream, &TrainMsg::Shutdown, link.version);
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }
        if let Ok(mut subs) = self.shared.subscribers.lock() {
            subs.clear();
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, pulse_tx: mpsc::Sender<Pulse>) {
    let next_worker_id = AtomicU64::new(0);
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        handle_hello(stream, &shared, &pulse_tx, &next_worker_id);
    }
}

/// Classifies a fresh connection by its first frame.
///
/// The first frame also fixes the connection's FF8D version: the peer's
/// declared header version, clamped to [`TRAIN_PROTOCOL_VERSION`]. Every
/// reply (and every later frame the trainer sends a worker) is encoded at
/// that version, so a v1 peer never sees bytes it cannot decode.
fn handle_hello(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    pulse_tx: &mpsc::Sender<Pulse>,
    next_worker_id: &AtomicU64,
) {
    let _ = stream.set_read_timeout(Some(HELLO_TIMEOUT));
    let Ok(bytes) = read_msg_bytes(&mut stream) else {
        return;
    };
    let Ok((hello, peer_version)) = decode_msg_versioned(&bytes) else {
        return;
    };
    shared
        .wire
        .account(hello.kind_index(), bytes.len() as u64 + 4);
    let version = peer_version.min(TRAIN_PROTOCOL_VERSION);
    let _ = stream.set_read_timeout(None);
    match hello {
        TrainMsg::Join { token } => {
            if let Some(expected) = &shared.config.token {
                if &token != expected {
                    shared.send_error(
                        &mut stream,
                        version,
                        ErrorCode::BadToken,
                        "join rejected: bad cluster token",
                    );
                    return;
                }
            }
            let id = next_worker_id.fetch_add(1, Ordering::Relaxed);
            if shared
                .wire_write(&mut stream, &TrainMsg::JoinAck { worker_id: id }, version)
                .is_err()
            {
                return;
            }
            let Ok(read_half) = stream.try_clone() else {
                return;
            };
            let link = Arc::new(WorkerLink {
                id,
                stream: Mutex::new(stream),
                alive: AtomicBool::new(true),
                version,
            });
            if let Ok(mut workers) = shared.workers.lock() {
                workers.push(Arc::clone(&link));
            }
            shared.count("dist.coord.workers_joined", 1);
            let reader_shared = Arc::clone(shared);
            let tx = pulse_tx.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("ff-dist-worker-{id}"))
                .spawn(move || worker_reader(read_half, link, reader_shared, tx));
            if spawned.is_err() {
                // Could not watch the worker; forget it rather than hand it
                // work whose results nobody would collect.
                if let Ok(mut workers) = shared.workers.lock() {
                    workers.retain(|w| w.id != id);
                }
            }
        }
        TrainMsg::Subscribe => {
            if let Ok(mut subs) = shared.subscribers.lock() {
                subs.push((stream, version));
            }
            shared.count("dist.coord.subscribers_joined", 1);
        }
        TrainMsg::PullCheckpoint => {
            match shared.checkpoint.lock().ok().and_then(|slot| slot.clone()) {
                Some(bytes) => {
                    let _ = shared.wire_write(
                        &mut stream,
                        &TrainMsg::CheckpointReply { bytes },
                        version,
                    );
                }
                None => shared.send_error(
                    &mut stream,
                    version,
                    ErrorCode::NoCheckpoint,
                    "no checkpoint published yet",
                ),
            }
            shared.count("dist.coord.checkpoints_pulled", 1);
        }
        // Only decodable from a v2 header, so `version` is ≥ 2 here and
        // the reply's trace kinds are always expressible.
        TrainMsg::TraceDump { max } => {
            let reply = TrainMsg::TraceDumpReply {
                dropped: shared.cluster.dropped(),
                spans: shared.cluster.recent(max as usize),
            };
            let _ = shared.wire_write(&mut stream, &reply, version);
            shared.count("dist.coord.traces_pulled", 1);
        }
        _ => {
            shared.send_error(
                &mut stream,
                version,
                ErrorCode::UnexpectedHello,
                "expected Join, Subscribe, PullCheckpoint or TraceDump",
            );
        }
    }
}

/// Pumps one worker's results into the pulse channel until its connection
/// ends, then reports it down.
fn worker_reader(
    mut stream: TcpStream,
    link: Arc<WorkerLink>,
    shared: Arc<Shared>,
    tx: mpsc::Sender<Pulse>,
) {
    while let Ok(bytes) = read_msg_bytes(&mut stream) {
        let msg = match decode_msg_versioned(&bytes) {
            Ok((msg, _version)) => {
                shared
                    .wire
                    .account(msg.kind_index(), bytes.len() as u64 + 4);
                msg
            }
            Err(_) => break,
        };
        match msg {
            TrainMsg::ShardResult {
                step,
                shard_index,
                grads,
                stamps,
            } => {
                let _ = tx.send(Pulse::Result {
                    step,
                    shard_index: shard_index as usize,
                    grads,
                    stamps,
                });
            }
            TrainMsg::Leave => break,
            _ => continue,
        }
    }
    link.alive.store(false, Ordering::SeqCst);
    if let Ok(mut workers) = shared.workers.lock() {
        workers.retain(|w| w.id != link.id);
    }
    shared.count("dist.coord.workers_lost", 1);
    let _ = tx.send(Pulse::Down { worker_id: link.id });
}

/// A [`TrainerCore`] that runs the canonical sharded FF step across the
/// cluster. See the module docs for the determinism argument.
pub struct DistTrainer {
    inner: FfTrainer,
    shared: Arc<Shared>,
    pulses: mpsc::Receiver<Pulse>,
    next_step: u64,
}

impl std::fmt::Debug for DistTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistTrainer")
            .field("next_step", &self.next_step)
            .finish_non_exhaustive()
    }
}

impl DistTrainer {
    /// The wrapped sequential trainer (for evaluation helpers).
    pub fn inner_mut(&mut self) -> &mut FfTrainer {
        &mut self.inner
    }

    /// Dispatches tasks round-robin over live workers. Returns, per shard,
    /// the id of the worker that accepted it (`None` = compute locally).
    ///
    /// When `span` is present, stamps `sync_done_ns` / `dispatch_done_ns`
    /// and each dispatched shard's `dispatched_ns` + `worker_id`, all
    /// relative to `step_start`.
    fn dispatch(
        &mut self,
        net: &mut Sequential,
        step: u64,
        tasks: &[ff_core::shard::ShardTask],
        trace_id: u64,
        span: &mut Option<ClusterSpan>,
        step_start: Instant,
    ) -> Vec<Option<u64>> {
        let mut assignment: Vec<Option<u64>> = vec![None; tasks.len()];
        let live: Vec<Arc<WorkerLink>> = self
            .shared
            .workers
            .lock()
            .map(|w| {
                w.iter()
                    .filter(|l| l.alive.load(Ordering::SeqCst))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        let mut synced: Vec<Arc<WorkerLink>> = Vec::new();
        if !live.is_empty() && !tasks.is_empty() {
            let params: Vec<Tensor> = net.params_mut().iter().map(|p| p.value.clone()).collect();
            let sync = TrainMsg::ParamSync {
                version: step,
                params,
            };
            let sync_kind = sync.kind_index();
            // ParamSync dominates cluster bytes; encode it once per
            // distinct worker version, not once per worker.
            let mut encoded: Vec<(u16, Vec<u8>)> = Vec::new();
            for link in live {
                if !encoded.iter().any(|(v, _)| *v == link.version) {
                    encoded.push((link.version, encode_msg_at(&sync, link.version)));
                }
                let bytes = &encoded
                    .iter()
                    .find(|(v, _)| *v == link.version)
                    .expect("cached")
                    .1;
                let wrote = link
                    .stream
                    .lock()
                    .map(|mut s| write_msg_bytes(&mut *s, bytes))
                    .unwrap_or(Err(DistError::Protocol {
                        message: "worker stream lock poisoned".to_string(),
                    }));
                match wrote {
                    Ok(n) => {
                        self.shared.wire.account(sync_kind, n as u64);
                        synced.push(link);
                    }
                    Err(_) => link.alive.store(false, Ordering::SeqCst),
                }
            }
        }
        if let Some(span) = span.as_mut() {
            span.sync_done_ns = saturating_elapsed_ns(step_start);
        }
        if !synced.is_empty() {
            for (index, task) in tasks.iter().enumerate() {
                let link = &synced[index % synced.len()];
                if !link.alive.load(Ordering::SeqCst) {
                    continue;
                }
                let msg = TrainMsg::SubmitBatch {
                    step,
                    task: task.clone(),
                    trace_id,
                };
                let ok = link
                    .stream
                    .lock()
                    .map(|mut s| self.shared.wire_write(&mut s, &msg, link.version).is_ok())
                    .unwrap_or(false);
                if ok {
                    assignment[index] = Some(link.id);
                    if let Some(span) = span.as_mut() {
                        span.shards[index].worker_id = Some(link.id);
                        span.shards[index].dispatched_ns = saturating_elapsed_ns(step_start);
                    }
                } else {
                    link.alive.store(false, Ordering::SeqCst);
                }
            }
        }
        if let Some(span) = span.as_mut() {
            span.dispatch_done_ns = saturating_elapsed_ns(step_start);
        }
        assignment
    }

    /// Collects dispatched shard results until all arrive, their workers
    /// die, or the shard timeout elapses. Stale results from earlier steps
    /// are discarded by the step tag.
    ///
    /// When `span` is present, each accepted result stamps its shard's
    /// `completed_ns` (relative to `step_start`) and copies the worker's
    /// own decode/compute/encode stamps.
    fn collect(
        &mut self,
        step: u64,
        assignment: &mut [Option<u64>],
        slots: &mut [Option<ShardGrads>],
        span: &mut Option<ClusterSpan>,
        step_start: Instant,
    ) {
        let deadline = Instant::now() + self.shared.config.shard_timeout;
        loop {
            let pending = assignment
                .iter()
                .zip(slots.iter())
                .any(|(owner, slot)| owner.is_some() && slot.is_none());
            if !pending {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.pulses.recv_timeout(deadline - now) {
                Ok(Pulse::Result {
                    step: result_step,
                    shard_index,
                    grads,
                    stamps,
                }) => {
                    if result_step == step
                        && shard_index < slots.len()
                        && assignment[shard_index].is_some()
                        && slots[shard_index].is_none()
                    {
                        slots[shard_index] = Some(grads);
                        if let Some(span) = span.as_mut() {
                            let shard = &mut span.shards[shard_index];
                            shard.completed_ns = saturating_elapsed_ns(step_start);
                            shard.decoded_ns = stamps.decoded_ns;
                            shard.computed_ns = stamps.computed_ns;
                            shard.encoded_ns = stamps.encoded_ns;
                        }
                    }
                }
                Ok(Pulse::Down { worker_id }) => {
                    let mut orphaned = 0u64;
                    for (owner, slot) in assignment.iter_mut().zip(slots.iter()) {
                        if *owner == Some(worker_id) && slot.is_none() {
                            *owner = None;
                            orphaned += 1;
                        }
                    }
                    if orphaned > 0 {
                        self.shared
                            .count("dist.coord.recompute.worker_death", orphaned);
                    }
                }
                Err(_) => break,
            }
        }
    }
}

impl TrainerCore for DistTrainer {
    fn algorithm(&self) -> Algorithm {
        self.inner.algorithm()
    }

    fn options(&self) -> &TrainOptions {
        self.inner.options()
    }

    fn step_batch(
        &mut self,
        net: &mut Sequential,
        batch: &Batch,
        num_classes: usize,
        lambda: f32,
    ) -> ff_core::Result<StepStats> {
        let prep_start = Instant::now();
        let first_is_dense = first_layer_is_dense(net);
        let prepared =
            self.inner
                .prepare_batch(&batch.images, &batch.labels, num_classes, first_is_dense)?;
        let quantize_ns = saturating_elapsed_ns(prep_start);
        let shards = self.inner.options().grad_shards.max(1);
        let theta = self.inner.options().theta;
        let tasks = shard_tasks(
            &prepared,
            shards,
            net.len(),
            theta,
            lambda,
            self.inner.precision(),
        )?;
        let step = self.next_step;
        self.next_step += 1;

        // Open the step's cluster span (if this step is sampled). All
        // span stamps are nanoseconds since `prep_start`, so phase
        // windows and shard intervals share one clock.
        let trace_id = self.shared.cluster.trace_id(step);
        let mut span = (trace_id != 0).then(|| ClusterSpan {
            step,
            trace_id,
            shards: (0..tasks.len())
                .map(|i| ShardSpan {
                    shard_index: i as u64,
                    ..ShardSpan::default()
                })
                .collect(),
            ..ClusterSpan::default()
        });
        if let Some(span) = span.as_mut() {
            span.prepare_done_ns = saturating_elapsed_ns(prep_start);
        }

        let forward_start = Instant::now();
        let mut assignment = self.dispatch(net, step, &tasks, trace_id, &mut span, prep_start);
        let mut slots: Vec<Option<ShardGrads>> = (0..tasks.len()).map(|_| None).collect();
        self.collect(step, &mut assignment, &mut slots, &mut span, prep_start);
        if let Some(span) = span.as_mut() {
            span.collect_done_ns = saturating_elapsed_ns(prep_start);
        }

        // Order-fixed reduction with local recompute of anything missing.
        // `compute_shard` is a pure function of (parameters, task), and the
        // parameters a live worker saw are exactly the parameters this net
        // holds right now (the step has not been applied yet), so a locally
        // recomputed shard is bit-identical to the remote one it replaces.
        let mut remote = 0u64;
        let mut local = 0u64;
        let mut reduced: Option<ShardGrads> = None;
        for (index, task) in tasks.iter().enumerate() {
            let grads = match slots[index].take() {
                Some(grads) => {
                    remote += 1;
                    grads
                }
                None => {
                    local += 1;
                    let grads = compute_shard(net, task)?;
                    if let Some(span) = span.as_mut() {
                        // Locally recomputed: the shard is ours now, even
                        // if it was dispatched first (dispatched_ns then
                        // records the wasted send). Worker stamps stay 0.
                        let shard = &mut span.shards[index];
                        shard.worker_id = None;
                        shard.completed_ns = saturating_elapsed_ns(prep_start);
                    }
                    grads
                }
            };
            reduce_shard_grads(&mut reduced, &grads)?;
        }
        if let Some(span) = span.as_mut() {
            span.reduce_done_ns = saturating_elapsed_ns(prep_start);
        }
        let forward_ns = saturating_elapsed_ns(forward_start);

        let update_start = Instant::now();
        let loss = match reduced {
            Some(result) => {
                self.inner.apply_reduced_grads(net, &result.grads)?;
                result.loss_pos + result.loss_neg
            }
            None => 0.0,
        };
        if let Some(mut span) = span {
            span.apply_done_ns = saturating_elapsed_ns(prep_start);
            self.shared.cluster.commit(span);
        }
        self.shared.count("dist.coord.steps", 1);
        self.shared.count("dist.coord.shards_remote", remote);
        self.shared.count("dist.coord.shards_local", local);
        Ok(StepStats {
            loss,
            correct: 0,
            seen: 0,
            spans: StepSpans {
                quantize_ns,
                forward_ns,
                update_ns: saturating_elapsed_ns(update_start),
            },
        })
    }

    fn evaluate(&mut self, net: &mut Sequential, dataset: &Dataset) -> ff_core::Result<f32> {
        self.inner.evaluate(net, dataset)
    }

    fn tracks_running_accuracy(&self) -> bool {
        false
    }

    fn rng_mut(&mut self) -> &mut StdRng {
        self.inner.rng_mut()
    }

    fn export_state(&self) -> TrainerState {
        self.inner.export_state()
    }

    fn import_state(&mut self, state: &TrainerState, net: &mut Sequential) -> ff_core::Result<()> {
        self.inner.import_state(state, net)
    }
}

/// Pulls the coordinator's recent [`ClusterSpan`]s over the wire.
///
/// One-shot connection, like checkpoint pulling: connect, send
/// `TraceDump { max }` (`max == 0` asks for everything retained), read the
/// `TraceDumpReply`, hang up. Returns `(dropped, spans)` — the ring's
/// drop count plus the spans oldest-first.
///
/// # Errors
///
/// [`DistError::Io`] on connection failure; [`DistError::Protocol`] when
/// the peer replies with an error or an unexpected kind (e.g. a v1
/// coordinator that predates cluster tracing).
pub fn pull_cluster_traces(addr: impl ToSocketAddrs, max: u32) -> Result<(u64, Vec<ClusterSpan>)> {
    let mut stream = TcpStream::connect(addr)?;
    write_msg(&mut stream, &TrainMsg::TraceDump { max })?;
    match read_msg(&mut stream)? {
        TrainMsg::TraceDumpReply { dropped, spans } => Ok((dropped, spans)),
        TrainMsg::Error { message, .. } => Err(DistError::Protocol { message }),
        other => Err(DistError::Protocol {
            message: format!("unexpected reply to TraceDump: {other:?}"),
        }),
    }
}

fn saturating_elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u64::MAX as u128) as u64
}
