//! The data-parallel training worker.
//!
//! A worker joins a [`crate::Coordinator`], then serves a loop of
//! `ParamSync` (overwrite the local parameter replica) and `SubmitBatch`
//! (evaluate [`compute_shard`] — a pure function of the synced parameters
//! and the task) answered with `ShardResult` frames. Because every shard's
//! rounding streams are derived from seeds carried *in the task*, a shard
//! computed here is bit-identical to the same shard computed on the
//! coordinator or on any other worker — which is what lets the coordinator
//! treat worker death as a scheduling event rather than a correctness
//! event.

use crate::protocol::{
    decode_msg_versioned, encode_msg_at, read_msg_bytes, stamp_shard_result_encoded_ns,
    write_msg_bytes, ShardStamps, TrainMsg, TRAIN_PROTOCOL_VERSION,
};
use crate::{DistError, Result};
use ff_core::shard::compute_shard;
use ff_nn::Sequential;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Instant;

/// What a worker did before its connection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerReport {
    /// The id the coordinator assigned at join.
    pub worker_id: u64,
    /// How many shard tasks this worker computed and returned.
    pub shards_computed: u64,
    /// How many full parameter syncs it applied.
    pub params_synced: u64,
}

/// A data-parallel training worker (stateless; the model replica is the
/// caller's).
#[derive(Debug, Clone, Copy, Default)]
pub struct Worker;

impl Worker {
    /// Connects to a coordinator and serves shard tasks until the
    /// coordinator shuts the cluster down (or the connection drops).
    ///
    /// `net` must have the same architecture as the coordinator's model;
    /// its parameter *values* are irrelevant — the first `ParamSync`
    /// overwrites them.
    ///
    /// # Errors
    ///
    /// Connection setup errors as [`DistError::Io`]; join rejection and
    /// malformed frames as [`DistError::Protocol`]; shard math errors as
    /// [`DistError::Core`].
    pub fn connect(
        addr: impl ToSocketAddrs,
        token: &str,
        net: &mut Sequential,
    ) -> Result<WorkerReport> {
        Self::connect_at(addr, token, net, TRAIN_PROTOCOL_VERSION)
    }

    /// Like [`Worker::connect`], but speaking a pinned FF8D `version` —
    /// the interop escape hatch for joining from (or emulating) an older
    /// deployment. A v1 worker trains bit-identically; it just returns
    /// `ShardResult`s with no trace stamps.
    ///
    /// # Panics
    ///
    /// If `version` is outside the supported range (caller bug).
    pub fn connect_at(
        addr: impl ToSocketAddrs,
        token: &str,
        net: &mut Sequential,
        version: u16,
    ) -> Result<WorkerReport> {
        let mut stream = TcpStream::connect(addr)?;
        Self::run_at(&mut stream, token, net, version)
    }

    /// Runs the worker loop over an already-established stream.
    ///
    /// Generic over `Read + Write` so tests can interpose
    /// `ff_net::FaultyStream` (or any in-memory transport) between worker
    /// and coordinator. A connection loss mid-service returns `Ok` with the
    /// report so far — the coordinator recomputes whatever this worker
    /// still owed, and "my socket died" is not a worker-side failure.
    ///
    /// # Errors
    ///
    /// Same as [`Worker::connect`], minus connection setup.
    pub fn run<S: Read + Write>(
        stream: &mut S,
        token: &str,
        net: &mut Sequential,
    ) -> Result<WorkerReport> {
        Self::run_at(stream, token, net, TRAIN_PROTOCOL_VERSION)
    }

    /// [`Worker::run`] at a pinned FF8D `version` (see
    /// [`Worker::connect_at`]).
    ///
    /// Every `ShardResult` carries the worker-local decode/compute/encode
    /// stamps (at v2+; v1 frames simply omit them): one clock starts when
    /// the frame's bytes are fully read, and `encoded_ns` is patched into
    /// the already-encoded reply so the stamp covers the encode itself.
    ///
    /// # Errors
    ///
    /// Same as [`Worker::connect`], minus connection setup.
    ///
    /// # Panics
    ///
    /// If `version` is outside the supported range (caller bug).
    pub fn run_at<S: Read + Write>(
        stream: &mut S,
        token: &str,
        net: &mut Sequential,
        version: u16,
    ) -> Result<WorkerReport> {
        let join = TrainMsg::Join {
            token: token.to_string(),
        };
        write_msg_bytes(stream, &encode_msg_at(&join, version))?;
        let (ack, _) = decode_msg_versioned(&read_msg_bytes(stream)?)?;
        let worker_id = match ack {
            TrainMsg::JoinAck { worker_id } => worker_id,
            TrainMsg::Error { message, .. } => {
                return Err(DistError::Protocol {
                    message: format!("coordinator rejected join: {message}"),
                })
            }
            other => {
                return Err(DistError::Protocol {
                    message: format!("expected JoinAck, got {other:?}"),
                })
            }
        };
        let mut report = WorkerReport {
            worker_id,
            ..WorkerReport::default()
        };
        loop {
            let bytes = match read_msg_bytes(stream) {
                Ok(bytes) => bytes,
                // A dropped socket ends service; the coordinator's reader
                // thread notices the same break and reassigns.
                Err(DistError::Io { .. }) => return Ok(report),
                Err(e) => return Err(e),
            };
            // One clock per frame: decoded/computed/encoded stamps are
            // cumulative offsets from the moment the bytes were in hand.
            let clock = Instant::now();
            let msg = match decode_msg_versioned(&bytes) {
                Ok((msg, _frame_version)) => msg,
                Err(e) => return Err(e),
            };
            match msg {
                TrainMsg::ParamSync { params, .. } => {
                    apply_param_sync(net, &params)?;
                    report.params_synced += 1;
                }
                TrainMsg::SubmitBatch {
                    step,
                    task,
                    trace_id,
                } => {
                    let decoded_ns = elapsed_ns(clock);
                    let shard_index = task.shard_index as u64;
                    let grads = compute_shard(net, &task)?;
                    let computed_ns = elapsed_ns(clock);
                    let reply = TrainMsg::ShardResult {
                        step,
                        shard_index,
                        grads,
                        stamps: ShardStamps {
                            trace_id,
                            decoded_ns,
                            computed_ns,
                            encoded_ns: 0, // patched below, post-encode
                        },
                    };
                    let mut out = encode_msg_at(&reply, version);
                    if version >= 2 {
                        stamp_shard_result_encoded_ns(&mut out, elapsed_ns(clock));
                    }
                    if write_msg_bytes(stream, &out).is_err() {
                        return Ok(report);
                    }
                    report.shards_computed += 1;
                }
                TrainMsg::Shutdown | TrainMsg::Leave => return Ok(report),
                // Unknown-but-well-formed traffic is ignored so protocol
                // growth does not strand old workers.
                _ => continue,
            }
        }
    }
}

/// Nanoseconds since `start`, floored at 1 so a stamped phase is always
/// distinguishable from the neutral "never stamped" zero even on coarse
/// clocks.
fn elapsed_ns(start: Instant) -> u64 {
    (start.elapsed().as_nanos().min(u64::MAX as u128) as u64).max(1)
}

/// Overwrites `net`'s parameters with a synced replica, bumping each
/// parameter's version so cached packed INT8 weight plans requantize.
fn apply_param_sync(net: &mut Sequential, params: &[ff_tensor::Tensor]) -> Result<()> {
    let mut targets = net.params_mut();
    if targets.len() != params.len() {
        return Err(DistError::Protocol {
            message: format!(
                "parameter sync carries {} tensors but the local replica has {}",
                params.len(),
                targets.len()
            ),
        });
    }
    for (target, incoming) in targets.iter_mut().zip(params) {
        if target.value.shape() != incoming.shape() {
            return Err(DistError::Protocol {
                message: format!(
                    "parameter sync shape {:?} does not match local shape {:?}",
                    incoming.shape(),
                    target.value.shape()
                ),
            });
        }
        *target.value = incoming.clone();
        target.mark_updated();
    }
    Ok(())
}
