//! The data-parallel training worker.
//!
//! A worker joins a [`crate::Coordinator`], then serves a loop of
//! `ParamSync` (overwrite the local parameter replica) and `SubmitBatch`
//! (evaluate [`compute_shard`] — a pure function of the synced parameters
//! and the task) answered with `ShardResult` frames. Because every shard's
//! rounding streams are derived from seeds carried *in the task*, a shard
//! computed here is bit-identical to the same shard computed on the
//! coordinator or on any other worker — which is what lets the coordinator
//! treat worker death as a scheduling event rather than a correctness
//! event.

use crate::protocol::{read_msg, write_msg, TrainMsg};
use crate::{DistError, Result};
use ff_core::shard::compute_shard;
use ff_nn::Sequential;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// What a worker did before its connection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerReport {
    /// The id the coordinator assigned at join.
    pub worker_id: u64,
    /// How many shard tasks this worker computed and returned.
    pub shards_computed: u64,
    /// How many full parameter syncs it applied.
    pub params_synced: u64,
}

/// A data-parallel training worker (stateless; the model replica is the
/// caller's).
#[derive(Debug, Clone, Copy, Default)]
pub struct Worker;

impl Worker {
    /// Connects to a coordinator and serves shard tasks until the
    /// coordinator shuts the cluster down (or the connection drops).
    ///
    /// `net` must have the same architecture as the coordinator's model;
    /// its parameter *values* are irrelevant — the first `ParamSync`
    /// overwrites them.
    ///
    /// # Errors
    ///
    /// Connection setup errors as [`DistError::Io`]; join rejection and
    /// malformed frames as [`DistError::Protocol`]; shard math errors as
    /// [`DistError::Core`].
    pub fn connect(
        addr: impl ToSocketAddrs,
        token: &str,
        net: &mut Sequential,
    ) -> Result<WorkerReport> {
        let mut stream = TcpStream::connect(addr)?;
        Self::run(&mut stream, token, net)
    }

    /// Runs the worker loop over an already-established stream.
    ///
    /// Generic over `Read + Write` so tests can interpose
    /// `ff_net::FaultyStream` (or any in-memory transport) between worker
    /// and coordinator. A connection loss mid-service returns `Ok` with the
    /// report so far — the coordinator recomputes whatever this worker
    /// still owed, and "my socket died" is not a worker-side failure.
    ///
    /// # Errors
    ///
    /// Same as [`Worker::connect`], minus connection setup.
    pub fn run<S: Read + Write>(
        stream: &mut S,
        token: &str,
        net: &mut Sequential,
    ) -> Result<WorkerReport> {
        write_msg(
            stream,
            &TrainMsg::Join {
                token: token.to_string(),
            },
        )?;
        let worker_id = match read_msg(stream)? {
            TrainMsg::JoinAck { worker_id } => worker_id,
            TrainMsg::Error { message } => {
                return Err(DistError::Protocol {
                    message: format!("coordinator rejected join: {message}"),
                })
            }
            other => {
                return Err(DistError::Protocol {
                    message: format!("expected JoinAck, got {other:?}"),
                })
            }
        };
        let mut report = WorkerReport {
            worker_id,
            ..WorkerReport::default()
        };
        loop {
            match read_msg(stream) {
                Ok(TrainMsg::ParamSync { params, .. }) => {
                    apply_param_sync(net, &params)?;
                    report.params_synced += 1;
                }
                Ok(TrainMsg::SubmitBatch { step, task }) => {
                    let shard_index = task.shard_index as u64;
                    let grads = compute_shard(net, &task)?;
                    if write_msg(
                        stream,
                        &TrainMsg::ShardResult {
                            step,
                            shard_index,
                            grads,
                        },
                    )
                    .is_err()
                    {
                        return Ok(report);
                    }
                    report.shards_computed += 1;
                }
                Ok(TrainMsg::Shutdown) | Ok(TrainMsg::Leave) => return Ok(report),
                // Unknown-but-well-formed traffic is ignored so protocol
                // growth does not strand old workers.
                Ok(_) => continue,
                // A dropped socket ends service; the coordinator's reader
                // thread notices the same break and reassigns.
                Err(DistError::Io { .. }) => return Ok(report),
                Err(e) => return Err(e),
            }
        }
    }
}

/// Overwrites `net`'s parameters with a synced replica, bumping each
/// parameter's version so cached packed INT8 weight plans requantize.
fn apply_param_sync(net: &mut Sequential, params: &[ff_tensor::Tensor]) -> Result<()> {
    let mut targets = net.params_mut();
    if targets.len() != params.len() {
        return Err(DistError::Protocol {
            message: format!(
                "parameter sync carries {} tensors but the local replica has {}",
                params.len(),
                targets.len()
            ),
        });
    }
    for (target, incoming) in targets.iter_mut().zip(params) {
        if target.value.shape() != incoming.shape() {
            return Err(DistError::Protocol {
                message: format!(
                    "parameter sync shape {:?} does not match local shape {:?}",
                    incoming.shape(),
                    target.value.shape()
                ),
            });
        }
        *target.value = incoming.clone();
        target.mark_updated();
    }
    Ok(())
}
