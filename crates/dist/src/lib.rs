//! # ff-dist
//!
//! Distributed Forward-Forward training over the workspace's determinism
//! contract: every distributed execution is **bit-identical** to the
//! sequential [`ff_core::FfTrainer`] run from the same seed and options.
//!
//! Two tiers, both built on the canonical step decomposition in
//! [`ff_core::shard`]:
//!
//! - **Layer-pipeline parallelism** ([`PipelineSession`]): each contiguous
//!   stage of FF layers trains on its own thread, activations flow through
//!   bounded channels, and — because Forward-Forward without look-ahead has
//!   *no backward pass across layers* — the pipelined run reproduces the
//!   sequential λ = 0 run bit-for-bit, including `FF8C` checkpoint/resume
//!   interchangeable with [`ff_core::TrainSession`].
//! - **A data-parallel training service** (the `FF8D` protocol in
//!   [`protocol`], the [`coordinator`] and the [`worker`]): a coordinator
//!   cuts each prepared batch into row shards, farms them to TCP workers,
//!   reduces gradients in **fixed shard order**, and recomputes the shards
//!   of a crashed worker locally — so worker death changes wall-clock time,
//!   never the resulting weights.
//!
//! Both tiers are observable end to end: each sampled training step opens
//! an [`ff_trace::ClusterSpan`] whose trace id rides the `FF8D` frames to
//! workers and back (coordinator phase stamps plus worker-local
//! decode/compute/encode stamps in one record, pullable over the wire with
//! [`pull_cluster_traces`]), the transport counts every frame and byte per
//! message kind (`dist.wire.*`), and pipeline stages publish
//! compute/blocked histograms (`dist.pipeline.stage.<k>.*`).
//!
//! See `ARCHITECTURE.md` ("Distributed training") for why Forward-Forward
//! makes both tiers exact rather than approximate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
mod error;
pub mod pipeline;
pub mod protocol;
pub mod worker;

pub use coordinator::{pull_cluster_traces, Coordinator, CoordinatorConfig, DistTrainer};
pub use error::DistError;
pub use pipeline::PipelineSession;
pub use worker::Worker;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DistError>;
