//! # ff-metrics
//!
//! Training histories, accuracy helpers, plain-text table/series formatting,
//! the bounded-memory latency histogram and the shared atomic event
//! [`Counter`] used by the FF-INT8 experiments, benchmarks and the
//! `ff-serve`/`ff-net` stats endpoints.
//!
//! # Examples
//!
//! ```
//! use ff_metrics::TrainingHistory;
//!
//! let mut history = TrainingHistory::new("ff-int8");
//! history.record(0, 2.3, 0.11, Some(0.10));
//! history.record(1, 1.1, 0.55, Some(0.52));
//! assert_eq!(history.best_test_accuracy(), Some(0.52));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod gauge;
mod history;
mod latency;
mod table;

pub use counter::Counter;
pub use gauge::Gauge;
pub use history::{accuracy, EpochRecord, TrainingHistory};
pub use latency::{LatencyHistogram, LatencySummary};
pub use table::{format_series, format_table};
