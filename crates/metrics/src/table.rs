//! Plain-text table and series formatting for experiment output.

/// Formats a table with a header row, padding each column to its widest cell.
///
/// # Examples
///
/// ```
/// let out = ff_metrics::format_table(
///     &["Model", "Acc (%)"],
///     &[vec!["MLP".to_string(), "94.3".to_string()]],
/// );
/// assert!(out.contains("MLP"));
/// assert!(out.lines().count() >= 3);
/// ```
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!(" {cell:w$} |", w = w));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&"-".repeat(w + 2));
        sep.push('|');
    }
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats an `(x, y)` series as aligned two-column text, used for the
/// accuracy-vs-epoch figures.
///
/// # Examples
///
/// ```
/// let s = ff_metrics::format_series("epoch", "accuracy", &[(0, 0.1), (10, 0.9)]);
/// assert!(s.contains("epoch"));
/// assert!(s.lines().count() == 3);
/// ```
pub fn format_series(x_label: &str, y_label: &str, series: &[(usize, f32)]) -> String {
    let mut out = format!("{x_label:>8}  {y_label}\n");
    for (x, y) in series {
        out.push_str(&format!("{x:>8}  {y:.4}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_pads_columns() {
        let out = format_table(
            &["A", "Long header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines same width
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }

    #[test]
    fn table_handles_short_rows() {
        let out = format_table(&["A", "B"], &[vec!["only".into()]]);
        assert!(out.contains("only"));
    }

    #[test]
    fn series_lists_every_point() {
        let s = format_series("epoch", "acc", &[(1, 0.5), (2, 0.6), (3, 0.7)]);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("0.7000"));
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        assert!(format_table(&["A"], &[]).contains('A'));
        assert_eq!(format_series("x", "y", &[]).lines().count(), 1);
    }
}
