//! Per-epoch training records.

use serde::{Deserialize, Serialize};

/// Classification accuracy of `predictions` against `labels`, in `[0, 1]`.
///
/// # Panics
///
/// Panics when the two slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(ff_metrics::accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
/// ```
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions and labels must have equal length"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / predictions.len() as f32
}

/// One epoch of training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Training-set accuracy in `[0, 1]`.
    pub train_accuracy: f32,
    /// Held-out test accuracy, when evaluated this epoch.
    pub test_accuracy: Option<f32>,
    /// Wall-clock seconds the epoch took (training steps + evaluation).
    /// `0.0` when the producer did not measure time.
    ///
    /// Timing is *measurement metadata*: determinism comparisons such as
    /// [`TrainingHistory::same_trajectory`] deliberately ignore it, because
    /// two bit-identical training runs still take different wall-clock time.
    pub seconds: f64,
}

/// The full loss/accuracy trajectory of one training run.
///
/// Used to regenerate the accuracy-vs-epoch figures of the paper (Fig. 2 and
/// Fig. 6) and the accuracy column of Table V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TrainingHistory {
    /// Human-readable name of the algorithm/model that produced the run.
    pub name: String,
    records: Vec<EpochRecord>,
}

impl TrainingHistory {
    /// Creates an empty history labelled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TrainingHistory {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Appends one epoch record without timing information.
    pub fn record(
        &mut self,
        epoch: usize,
        train_loss: f32,
        train_accuracy: f32,
        test_accuracy: Option<f32>,
    ) {
        self.record_timed(epoch, train_loss, train_accuracy, test_accuracy, 0.0);
    }

    /// Appends one epoch record with its measured wall-clock duration.
    pub fn record_timed(
        &mut self,
        epoch: usize,
        train_loss: f32,
        train_accuracy: f32,
        test_accuracy: Option<f32>,
        seconds: f64,
    ) {
        self.records.push(EpochRecord {
            epoch,
            train_loss,
            train_accuracy,
            test_accuracy,
            seconds,
        });
    }

    /// All epoch records in order.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no epochs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The final epoch's training loss.
    pub fn final_loss(&self) -> Option<f32> {
        self.records.last().map(|r| r.train_loss)
    }

    /// The final epoch's test accuracy (or train accuracy when no test
    /// evaluation was recorded).
    pub fn final_accuracy(&self) -> Option<f32> {
        self.records
            .last()
            .map(|r| r.test_accuracy.unwrap_or(r.train_accuracy))
    }

    /// Best test accuracy seen across all epochs.
    pub fn best_test_accuracy(&self) -> Option<f32> {
        self.records
            .iter()
            .filter_map(|r| r.test_accuracy)
            .fold(None, |best, acc| {
                Some(best.map_or(acc, |b: f32| b.max(acc)))
            })
    }

    /// First epoch whose test accuracy reaches `threshold`, if any.
    ///
    /// This is the convergence-speed metric used to compare FF-INT8 with and
    /// without look-ahead (paper Fig. 6: ~130 vs ~180 epochs).
    pub fn epochs_to_reach(&self, threshold: f32) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.test_accuracy.unwrap_or(0.0) >= threshold)
            .map(|r| r.epoch)
    }

    /// `true` when the training loss diverged (grew by more than `factor`
    /// relative to the first epoch or became non-finite) — the behaviour the
    /// paper observes for naive INT8 backpropagation in Fig. 2.
    pub fn diverged(&self, factor: f32) -> bool {
        let Some(first) = self.records.first() else {
            return false;
        };
        self.records
            .iter()
            .any(|r| !r.train_loss.is_finite() || r.train_loss > first.train_loss * factor)
    }

    /// The per-epoch test-accuracy series (epochs without evaluation are
    /// skipped).
    pub fn test_accuracy_series(&self) -> Vec<(usize, f32)> {
        self.records
            .iter()
            .filter_map(|r| r.test_accuracy.map(|a| (r.epoch, a)))
            .collect()
    }

    /// Total measured wall-clock seconds across all recorded epochs.
    pub fn total_seconds(&self) -> f64 {
        self.records.iter().map(|r| r.seconds).sum()
    }

    /// `true` when two histories describe the **same training trajectory**:
    /// same name and, per epoch, bit-identical loss and accuracy values
    /// (`f32::to_bits` comparison, so `NaN == NaN` and `-0.0 != 0.0`).
    ///
    /// Wall-clock [`EpochRecord::seconds`] is ignored — it is measurement
    /// metadata, not part of the trajectory. This is the comparison the
    /// checkpoint/resume determinism guarantees are stated in: a run resumed
    /// from an `FF8C` checkpoint must satisfy `same_trajectory` against the
    /// uninterrupted run (plain `==` would fail on timing alone).
    pub fn same_trajectory(&self, other: &TrainingHistory) -> bool {
        self.name == other.name
            && self.records.len() == other.records.len()
            && self.records.iter().zip(&other.records).all(|(a, b)| {
                a.epoch == b.epoch
                    && a.train_loss.to_bits() == b.train_loss.to_bits()
                    && a.train_accuracy.to_bits() == b.train_accuracy.to_bits()
                    && a.test_accuracy.map(f32::to_bits) == b.test_accuracy.map(f32::to_bits)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_history() -> TrainingHistory {
        let mut h = TrainingHistory::new("test");
        h.record(0, 2.0, 0.2, Some(0.18));
        h.record(1, 1.0, 0.5, None);
        h.record(2, 0.5, 0.8, Some(0.75));
        h.record(3, 0.4, 0.85, Some(0.83));
        h
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0, 1, 2, 3], &[0, 1, 0, 3]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn accuracy_panics_on_length_mismatch() {
        accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn final_and_best_metrics() {
        let h = sample_history();
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
        assert_eq!(h.final_loss(), Some(0.4));
        assert_eq!(h.final_accuracy(), Some(0.83));
        assert_eq!(h.best_test_accuracy(), Some(0.83));
    }

    #[test]
    fn final_accuracy_falls_back_to_train() {
        let mut h = TrainingHistory::new("x");
        h.record(0, 1.0, 0.4, None);
        assert_eq!(h.final_accuracy(), Some(0.4));
        assert_eq!(h.best_test_accuracy(), None);
    }

    #[test]
    fn epochs_to_reach_threshold() {
        let h = sample_history();
        assert_eq!(h.epochs_to_reach(0.7), Some(2));
        assert_eq!(h.epochs_to_reach(0.9), None);
    }

    #[test]
    fn divergence_detection() {
        let mut h = TrainingHistory::new("diverging");
        h.record(0, 1.0, 0.3, None);
        h.record(1, 100.0, 0.1, None);
        assert!(h.diverged(10.0));
        assert!(!sample_history().diverged(10.0));
        assert!(!TrainingHistory::new("empty").diverged(10.0));
        let mut nan = TrainingHistory::new("nan");
        nan.record(0, f32::NAN, 0.0, None);
        assert!(nan.diverged(10.0));
    }

    #[test]
    fn accuracy_series_skips_missing() {
        let h = sample_history();
        assert_eq!(
            h.test_accuracy_series(),
            vec![(0, 0.18), (2, 0.75), (3, 0.83)]
        );
    }

    #[test]
    fn timed_records_accumulate_seconds() {
        let mut h = TrainingHistory::new("timed");
        h.record_timed(0, 1.0, 0.5, None, 1.25);
        h.record_timed(1, 0.9, 0.6, Some(0.55), 0.75);
        h.record(2, 0.8, 0.7, None); // untimed → 0.0 s
        assert_eq!(h.total_seconds(), 2.0);
        assert_eq!(h.records()[0].seconds, 1.25);
        assert_eq!(h.records()[2].seconds, 0.0);
    }

    #[test]
    fn same_trajectory_ignores_timing_only() {
        let mut a = TrainingHistory::new("run");
        let mut b = TrainingHistory::new("run");
        a.record_timed(0, 1.0, 0.5, Some(0.4), 10.0);
        b.record_timed(0, 1.0, 0.5, Some(0.4), 99.0);
        assert!(a.same_trajectory(&b), "timing must not break equality");
        assert_ne!(a, b, "plain equality still sees the timing");

        let mut c = TrainingHistory::new("run");
        c.record_timed(0, 1.0, 0.5, Some(0.40001), 10.0);
        assert!(!a.same_trajectory(&c), "accuracy drift must be detected");
        let mut d = TrainingHistory::new("other");
        d.record_timed(0, 1.0, 0.5, Some(0.4), 10.0);
        assert!(!a.same_trajectory(&d), "name mismatch must be detected");
        let mut nan_a = TrainingHistory::new("n");
        let mut nan_b = TrainingHistory::new("n");
        nan_a.record(0, f32::NAN, 0.0, None);
        nan_b.record(0, f32::NAN, 0.0, None);
        assert!(nan_a.same_trajectory(&nan_b), "bitwise: NaN equals NaN");
    }
}
