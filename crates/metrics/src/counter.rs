//! Shared atomic event counters.
//!
//! Serving stacks count discrete events — requests shed on an expired
//! deadline, admissions rejected under overload, client-side retries — from
//! many threads at once. [`Counter`] is the minimal primitive for that: a
//! cloneable handle onto one shared `u64` that any thread can bump without
//! locking. Snapshots ([`Counter::get`]) are monotonic but not synchronized
//! with other counters; callers that need a consistent multi-counter view
//! read them under their own lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cloneable, thread-safe event counter.
///
/// Clones share the same underlying count — handing a clone to another
/// subsystem (the `ff-net` admission gate feeding `ff-serve` statistics,
/// for example) lets both sides observe one number.
///
/// # Examples
///
/// ```
/// use ff_metrics::Counter;
///
/// let shed = Counter::new();
/// let writer = shed.clone();
/// writer.inc();
/// writer.add(2);
/// assert_eq!(shed.get(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_count() {
        let counter = Counter::new();
        assert_eq!(counter.get(), 0);
        let clone = counter.clone();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = clone.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 400);
        counter.add(10);
        assert_eq!(clone.get(), 410);
    }
}
