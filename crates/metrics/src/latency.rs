//! A bounded-memory latency histogram with quantile queries.
//!
//! Serving engines need per-request latency percentiles (p50/p95/p99) that
//! can be recorded on the hot path and read at any time without storing one
//! sample per request. [`LatencyHistogram`] uses HdrHistogram-style
//! **log-linear buckets**: durations are bucketed by their power-of-two tier
//! and 16 linear sub-buckets within each tier, giving a fixed ≈1 KiB
//! footprint and a worst-case quantile error of one sub-bucket (≈6 % of the
//! value), which is far below the run-to-run noise of wall-clock latency.
//!
//! Histograms are mergeable, so per-worker histograms can be combined into a
//! server-wide view without cross-thread contention.

use std::time::Duration;

/// Sub-buckets per power-of-two tier: values within a tier resolve to
/// 1/16th of the tier width.
const SUBS: usize = 16;

/// Bucket count: nanosecond values up to 2⁶³ map into tiers `4..=63`, each
/// with [`SUBS`] sub-buckets, after the 16 exact single-nanosecond buckets.
const BUCKETS: usize = (64 - 4) * SUBS + SUBS;

/// Maps a nanosecond value to its bucket index.
///
/// Values below 16 ns get exact buckets; larger values use the top four
/// bits below the leading bit as the linear sub-index.
fn bucket_index(ns: u64) -> usize {
    if ns < SUBS as u64 {
        return ns as usize;
    }
    let tier = 63 - ns.leading_zeros() as u64; // ≥ 4 here
    let sub = (ns >> (tier - 4)) & (SUBS as u64 - 1);
    ((tier - 3) * SUBS as u64 + sub) as usize
}

/// Upper bound (inclusive) of a bucket, used as the conservative quantile
/// estimate.
fn bucket_upper_ns(index: usize) -> u64 {
    if index < SUBS {
        return index as u64;
    }
    let tier = (index / SUBS) as u64 + 3;
    let sub = (index % SUBS) as u64;
    // Lower bound of the next sub-bucket, minus one; saturating so the very
    // top tier (only reachable via absurd `record_ns` inputs) cannot wrap.
    (1u64 << tier)
        .saturating_add((sub + 1) << (tier - 4))
        .saturating_sub(1)
}

/// A fixed-size log-linear histogram of durations.
///
/// # Examples
///
/// ```
/// use ff_metrics::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut hist = LatencyHistogram::new();
/// for micros in [100u64, 200, 300, 400, 10_000] {
///     hist.record(Duration::from_micros(micros));
/// }
/// assert_eq!(hist.count(), 5);
/// let p50 = hist.quantile(0.5);
/// assert!(p50 >= Duration::from_micros(180) && p50 <= Duration::from_micros(320));
/// assert!(hist.max() == Duration::from_micros(10_000));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.record_ns(ns);
    }

    /// Records one latency given in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean of all recorded durations (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.count as u128) as u64)
    }

    /// Exact smallest recorded duration (zero when empty).
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.min_ns)
    }

    /// Exact largest recorded duration (zero when empty).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// containing that rank — conservative to within one sub-bucket (≈6 %).
    ///
    /// Returns zero when empty; `q ≥ 1.0` returns the exact maximum.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        if q >= 1.0 {
            return self.max();
        }
        let rank = ((q.max(0.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report beyond the exact observed extremes.
                return Duration::from_nanos(
                    bucket_upper_ns(index).clamp(self.min_ns, self.max_ns),
                );
            }
        }
        self.max()
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Adds every sample of `other` into `self` (per-worker histograms fold
    /// into a server-wide one).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The histogram of samples recorded since `baseline`, where `baseline`
    /// is an earlier clone of this histogram (per-bucket saturating
    /// subtraction; count and sum are exact).
    ///
    /// The exact min/max of the *interval* are not recoverable from a
    /// subtraction, so they are re-estimated as the bounds of the first and
    /// last occupied diff buckets — the same one-sub-bucket precision the
    /// quantiles already have. Windowed metric views use this to turn
    /// lifetime histograms into per-window ones.
    ///
    /// # Examples
    ///
    /// ```
    /// use ff_metrics::LatencyHistogram;
    /// use std::time::Duration;
    ///
    /// let mut hist = LatencyHistogram::new();
    /// hist.record(Duration::from_micros(10));
    /// let baseline = hist.clone();
    /// hist.record(Duration::from_micros(500));
    /// let diff = hist.diff_since(&baseline);
    /// assert_eq!(diff.count(), 1);
    /// assert!(diff.min() >= Duration::from_micros(450));
    /// ```
    pub fn diff_since(&self, baseline: &LatencyHistogram) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for (o, (&now, &base)) in out
            .counts
            .iter_mut()
            .zip(self.counts.iter().zip(&baseline.counts))
        {
            *o = now.saturating_sub(base);
        }
        out.count = self.count.saturating_sub(baseline.count);
        out.sum_ns = self.sum_ns.saturating_sub(baseline.sum_ns);
        let first = out.counts.iter().position(|&c| c > 0);
        let last = out.counts.iter().rposition(|&c| c > 0);
        if let (Some(first), Some(last)) = (first, last) {
            out.min_ns = if first == 0 {
                0
            } else {
                bucket_upper_ns(first - 1).saturating_add(1)
            };
            out.max_ns = bucket_upper_ns(last);
        }
        out
    }

    /// A copyable snapshot of the headline statistics.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean: self.mean(),
            p50: self.p50(),
            p95: self.p95(),
            p99: self.p99(),
            max: self.max(),
        }
    }
}

/// Headline latency statistics extracted from a [`LatencyHistogram`].
///
/// # Examples
///
/// ```
/// use ff_metrics::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut hist = LatencyHistogram::new();
/// hist.record(Duration::from_millis(2));
/// let s = hist.summary();
/// assert_eq!(s.count, 1);
/// assert!(s.to_string().contains("p99"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Exact maximum.
    pub max: Duration,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:?} p50={:?} p95={:?} p99={:?} max={:?}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let hist = LatencyHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.mean(), Duration::ZERO);
        assert_eq!(hist.min(), Duration::ZERO);
        assert_eq!(hist.max(), Duration::ZERO);
        assert_eq!(hist.p99(), Duration::ZERO);
    }

    #[test]
    fn bucket_index_is_monotonic_and_in_range() {
        // Walk an increasing sequence of nanosecond values covering every
        // tier and sub-bucket; indices must never decrease or overflow.
        let mut values: Vec<u64> = (0..16).collect();
        for shift in 4..63u32 {
            let base = 1u64 << shift;
            for sub in 0..16u64 {
                values.push(base + sub * (base >> 4));
            }
        }
        values.push(u64::MAX);
        let mut last = 0usize;
        for &ns in &values {
            let idx = bucket_index(ns);
            assert!(idx < BUCKETS, "ns={ns} idx={idx}");
            assert!(idx >= last, "index must not decrease: ns={ns}");
            last = idx;
        }
    }

    #[test]
    fn bucket_upper_bound_brackets_every_value() {
        for ns in (0u64..100_000).step_by(37) {
            let idx = bucket_index(ns);
            assert!(bucket_upper_ns(idx) >= ns, "upper({idx}) < {ns}");
            if idx > 0 {
                assert!(bucket_upper_ns(idx - 1) < ns.max(1), "value below bucket");
            }
        }
    }

    #[test]
    fn quantiles_are_within_one_sub_bucket() {
        let mut hist = LatencyHistogram::new();
        // 1..=1000 µs uniformly.
        for us in 1..=1000u64 {
            hist.record(Duration::from_micros(us));
        }
        assert_eq!(hist.count(), 1000);
        let p50 = hist.quantile(0.5).as_nanos() as f64;
        assert!((p50 / 500_000.0 - 1.0).abs() < 0.07, "p50={p50}");
        let p95 = hist.quantile(0.95).as_nanos() as f64;
        assert!((p95 / 950_000.0 - 1.0).abs() < 0.07, "p95={p95}");
        assert_eq!(hist.max(), Duration::from_micros(1000));
        assert_eq!(hist.min(), Duration::from_micros(1));
        let mean = hist.mean().as_nanos();
        assert_eq!(mean, 500_500); // exact: (1..=1000).sum() / 1000 µs
    }

    #[test]
    fn quantile_never_exceeds_observed_extremes() {
        let mut hist = LatencyHistogram::new();
        hist.record_ns(1_000_003);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(hist.quantile(q), Duration::from_nanos(1_000_003));
        }
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        b.record(Duration::from_micros(2000));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Duration::from_micros(10));
        assert_eq!(a.max(), Duration::from_micros(2000));
        let summary = a.summary();
        assert_eq!(summary.count, 3);
        assert!(summary.p50 <= summary.p95 && summary.p95 <= summary.p99);
        assert!(summary.to_string().contains("n=3"));
    }

    #[test]
    fn diff_since_isolates_the_interval() {
        let mut hist = LatencyHistogram::new();
        for us in 1..=100u64 {
            hist.record(Duration::from_micros(us));
        }
        let baseline = hist.clone();
        for us in 500..=600u64 {
            hist.record(Duration::from_micros(us));
        }
        let diff = hist.diff_since(&baseline);
        assert_eq!(diff.count(), 101);
        // Interval extremes are bucket bounds around the true 500..=600 µs.
        assert!(
            diff.min() >= Duration::from_micros(450),
            "min={:?}",
            diff.min()
        );
        assert!(
            diff.max() <= Duration::from_micros(700),
            "max={:?}",
            diff.max()
        );
        let p50 = diff.p50().as_nanos() as f64;
        assert!((p50 / 550_000.0 - 1.0).abs() < 0.1, "p50={p50}");
        // Empty interval: everything zero.
        let none = hist.diff_since(&hist.clone());
        assert!(none.is_empty());
        assert_eq!(none.max(), Duration::ZERO);
    }

    #[test]
    fn tiny_durations_use_exact_buckets() {
        let mut hist = LatencyHistogram::new();
        for ns in 0..16u64 {
            hist.record_ns(ns);
        }
        assert_eq!(hist.quantile(1.0), Duration::from_nanos(15));
        assert_eq!(hist.min(), Duration::ZERO);
    }
}
