//! Shared atomic last-value gauges.
//!
//! Where a [`crate::Counter`] accumulates events, a [`Gauge`] tracks the
//! *current* value of something that moves both ways or is replaced
//! wholesale — the version of the model a registry entry currently serves,
//! a queue depth, a config knob. Clones share one cell, so the subsystem
//! that owns the value and the stats endpoint that reports it observe the
//! same number without coordination.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cloneable, thread-safe last-value gauge.
///
/// # Examples
///
/// ```
/// use ff_metrics::Gauge;
///
/// let version = Gauge::new();
/// let writer = version.clone();
/// writer.set(3);
/// assert_eq!(version.get(), 3);
/// assert_eq!(writer.bump(), 4);
/// assert_eq!(version.get(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Release);
    }

    /// Adds one and returns the new value — an atomic "next version"
    /// for swap-style updates.
    pub fn bump(&self) -> u64 {
        self.0.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Raises the gauge to `value` if it is larger than the current value —
    /// an atomic high-water mark (the largest batch a server has executed,
    /// the deepest queue observed). Concurrent calls never lose the maximum.
    pub fn max_of(&self, value: u64) {
        self.0.fetch_max(value, Ordering::AcqRel);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_value() {
        let gauge = Gauge::new();
        let clone = gauge.clone();
        clone.set(7);
        assert_eq!(gauge.get(), 7);
        assert_eq!(gauge.bump(), 8);
        assert_eq!(clone.get(), 8);
    }

    #[test]
    fn max_of_is_a_high_water_mark() {
        let gauge = Gauge::new();
        gauge.max_of(5);
        gauge.max_of(3);
        assert_eq!(gauge.get(), 5);
        std::thread::scope(|scope| {
            for offset in 0..4u64 {
                let g = gauge.clone();
                scope.spawn(move || {
                    for v in 0..100 {
                        g.max_of(v * 4 + offset);
                    }
                });
            }
        });
        assert_eq!(gauge.get(), 99 * 4 + 3);
    }

    #[test]
    fn concurrent_bumps_never_lose_updates() {
        let gauge = Gauge::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let g = gauge.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        g.bump();
                    }
                });
            }
        });
        assert_eq!(gauge.get(), 400);
    }
}
