//! Property-based tests for the quantization crate.
//!
//! The GEMM properties are the contract of the packed engine: INT32
//! accumulation is order-independent, so for **any** shape — including
//! degenerate `m = 1` / `k = 1` and sizes that are not multiples of the
//! `MR`/`NR`/`MC`/`KC`/`NC` tiles — the blocked, packed, multi-threaded
//! kernels must match the naive triple-loop oracles in
//! `ff_quant::gemm::reference` **bit-exactly**.

use ff_quant::gemm::reference;
use ff_quant::{
    compute_scale, int8_gemm, int8_matmul, int8_matmul_a_bt, int8_matmul_a_bt_fused,
    int8_matmul_a_bt_planned, int8_matmul_a_bt_shared_rows, int8_matmul_at_b,
    int8_matmul_at_b_planned, int8_matmul_planned, GemmVariant, QGemmPlan, QuantConfig,
    QuantTensor, Rounding, RowQuantTensor, SharedGemmPlan,
};
use ff_tensor::{linalg, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_quant(shape: &[usize], seed: u64) -> QuantTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = ff_tensor::init::uniform(shape, -1.0, 1.0, &mut rng);
    QuantTensor::quantize_with_rng(&t, QuantConfig::new(Rounding::Nearest), &mut rng)
}

fn tensor_strategy(max_len: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_len)
        .prop_flat_map(|n| proptest::collection::vec(-100.0f32..100.0, n))
        .prop_map(|data| {
            let n = data.len();
            Tensor::from_vec(&[n], data).expect("shape")
        })
}

proptest! {
    #[test]
    fn nearest_roundtrip_error_within_half_step(t in tensor_strategy(64)) {
        let mut rng = StdRng::seed_from_u64(0);
        let q = QuantTensor::quantize_with_rng(&t, QuantConfig::new(Rounding::Nearest), &mut rng);
        let back = q.dequantize();
        for (a, b) in t.data().iter().zip(back.data()) {
            prop_assert!((a - b).abs() <= q.scale() / 2.0 + 1e-5);
        }
    }

    #[test]
    fn stochastic_roundtrip_error_within_one_step(t in tensor_strategy(64), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = QuantTensor::quantize_with_rng(&t, QuantConfig::new(Rounding::Stochastic), &mut rng);
        let back = q.dequantize();
        for (a, b) in t.data().iter().zip(back.data()) {
            prop_assert!((a - b).abs() <= q.scale() + 1e-5);
        }
    }

    #[test]
    fn codes_stay_in_symmetric_range(t in tensor_strategy(64), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = QuantTensor::quantize_with_rng(&t, QuantConfig::new(Rounding::Stochastic), &mut rng);
        for &c in q.codes() {
            prop_assert!((-127..=127).contains(&(c as i32)));
        }
    }

    #[test]
    fn scale_is_monotonic_in_max_abs(a in 0.0f32..1e6, b in 0.0f32..1e6) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(compute_scale(lo) <= compute_scale(hi));
    }

    #[test]
    fn quantized_matmul_tracks_fp32(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = ff_tensor::init::uniform(&[6, 10], -1.0, 1.0, &mut rng);
        let b = ff_tensor::init::uniform(&[10, 5], -1.0, 1.0, &mut rng);
        let exact = linalg::matmul(&a, &b).unwrap();
        let qa = QuantTensor::quantize_with_rng(&a, QuantConfig::default(), &mut rng);
        let qb = QuantTensor::quantize_with_rng(&b, QuantConfig::default(), &mut rng);
        let approx = int8_matmul(&qa, &qb).unwrap();
        let rel = exact.sub(&approx).unwrap().frobenius_norm() / (exact.frobenius_norm() + 1e-6);
        prop_assert!(rel < 0.1, "relative error {rel}");
    }

    #[test]
    fn dequantize_of_zero_tensor_is_zero(len in 1usize..64) {
        let t = Tensor::zeros(&[len]);
        let q = QuantTensor::quantize(&t, Rounding::Nearest);
        prop_assert!(q.dequantize().max_abs() == 0.0);
    }

    // ---- packed engine vs naive reference oracles -------------------------

    #[test]
    fn packed_ab_matches_reference_bit_exactly(
        m in 1usize..48, k in 1usize..48, n in 1usize..48, seed in 0u64..1000
    ) {
        let qa = random_quant(&[m, k], seed);
        let qb = random_quant(&[k, n], seed ^ 0xABCD);
        let packed = int8_matmul(&qa, &qb).unwrap();
        let naive = reference::int8_matmul(&qa, &qb).unwrap();
        prop_assert_eq!(packed.data(), naive.data());
    }

    #[test]
    fn packed_a_bt_matches_reference_bit_exactly(
        m in 1usize..48, k in 1usize..48, n in 1usize..48, seed in 0u64..1000
    ) {
        let qa = random_quant(&[m, k], seed);
        let qbt = random_quant(&[n, k], seed ^ 0xBEEF);
        let packed = int8_matmul_a_bt(&qa, &qbt).unwrap();
        let naive = reference::int8_matmul_a_bt(&qa, &qbt).unwrap();
        prop_assert_eq!(packed.data(), naive.data());
    }

    #[test]
    fn packed_at_b_matches_reference_bit_exactly(
        m in 1usize..48, k in 1usize..48, n in 1usize..48, seed in 0u64..1000
    ) {
        let qat = random_quant(&[k, m], seed);
        let qb = random_quant(&[k, n], seed ^ 0xF00D);
        let packed = int8_matmul_at_b(&qat, &qb).unwrap();
        let naive = reference::int8_matmul_at_b(&qat, &qb).unwrap();
        prop_assert_eq!(packed.data(), naive.data());
    }

    #[test]
    fn packed_kernels_cross_tile_boundaries_exactly(
        m_extra in 0usize..20, k_extra in 0usize..20, n_extra in 0usize..20, seed in 0u64..100
    ) {
        // Straddle the micro-tile (MR = 2, NR = 64) and row-block (MC = 64)
        // boundaries: m ∈ [56, 76) crosses MC and several MR strips, n ∈
        // [56, 76) crosses the first NR strip edge, and odd k values
        // exercise the padded half-pair.
        let (m, k, n) = (56 + m_extra, 120 + k_extra, 56 + n_extra);
        let qa = random_quant(&[m, k], seed);
        let qb = random_quant(&[k, n], seed ^ 0x51DE);
        let packed = int8_matmul(&qa, &qb).unwrap();
        let naive = reference::int8_matmul(&qa, &qb).unwrap();
        prop_assert_eq!(packed.data(), naive.data());
    }

    #[test]
    fn explicit_thread_counts_match_reference(threads in 1usize..=8, seed in 0u64..200) {
        // n = 70 crosses the NR = 64 strip edge; m = 33 is odd so the last
        // thread panel is a partial MR strip.
        let qa = random_quant(&[33, 70], seed);
        let qbt = random_quant(&[27, 70], seed ^ 0x7EAD);
        let (packed, mask) =
            int8_gemm(GemmVariant::ABt, &qa, &qbt, None, false, Some(threads)).unwrap();
        prop_assert!(mask.is_none());
        let naive = reference::int8_matmul_a_bt(&qa, &qbt).unwrap();
        prop_assert_eq!(packed.data(), naive.data());
    }

    #[test]
    fn deep_and_wide_shapes_cross_kc_nc_blocks_exactly(seed in 0u64..6) {
        // k = 300 > KC = 256 exercises the accumulating (non-overwrite)
        // depth-block path of the staging buffer; n = 300 > NC = 256
        // exercises the per-NC-block epilogue offsets. All three variants.
        let (m, k, n) = (21, 300, 300);
        let qa = random_quant(&[m, k], seed);
        let qb = random_quant(&[k, n], seed ^ 0xD00F);
        let packed = int8_matmul(&qa, &qb).unwrap();
        let naive = reference::int8_matmul(&qa, &qb).unwrap();
        prop_assert_eq!(packed.data(), naive.data());

        let qbt = random_quant(&[n, k], seed ^ 0x1CED);
        let packed = int8_matmul_a_bt(&qa, &qbt).unwrap();
        let naive = reference::int8_matmul_a_bt(&qa, &qbt).unwrap();
        prop_assert_eq!(packed.data(), naive.data());

        let qat = random_quant(&[k, m], seed ^ 0xFEED);
        let packed = int8_matmul_at_b(&qat, &qb).unwrap();
        let naive = reference::int8_matmul_at_b(&qat, &qb).unwrap();
        prop_assert_eq!(packed.data(), naive.data());
    }

    // ---- cached plans vs per-call quantize+pack ---------------------------

    #[test]
    fn planned_a_bt_is_bit_exact_with_uncached_for_arbitrary_shapes(
        m in 1usize..48, k in 1usize..48, n in 1usize..48, seed in 0u64..1000
    ) {
        // The weight-plan contract: a cached, pre-packed B operand must give
        // the same bits as packing the same codes on every call — for any
        // shape, and on every reuse of the plan.
        let qa = random_quant(&[m, k], seed);
        let qw = random_quant(&[n, k], seed ^ 0x9A7E);
        let uncached = int8_matmul_a_bt(&qa, &qw).unwrap();
        let mut plan = QGemmPlan::from_quant(qw, 0).unwrap();
        for _reuse in 0..2 {
            let (planned, _) = int8_matmul_a_bt_planned(&qa, &mut plan, None, false).unwrap();
            prop_assert_eq!(planned.data(), uncached.data());
        }
    }

    #[test]
    fn planned_at_b_is_bit_exact_with_uncached_for_arbitrary_shapes(
        batch in 1usize..48, out in 1usize..48, inp in 1usize..48, seed in 0u64..1000
    ) {
        // The input-plan contract used by the backward gW GEMM: gYᵀ · X with
        // X served from a cached plan matches the per-call path bit-exactly,
        // including on the second (look-ahead) backward.
        let q_grad = random_quant(&[batch, out], seed);
        let q_input = random_quant(&[batch, inp], seed ^ 0x1A5B);
        let uncached = int8_matmul_at_b(&q_grad, &q_input).unwrap();
        let mut plan = QGemmPlan::from_quant(q_input, 0).unwrap();
        for _reuse in 0..2 {
            let planned = int8_matmul_at_b_planned(&q_grad, &mut plan).unwrap();
            prop_assert_eq!(planned.data(), uncached.data());
        }
    }

    #[test]
    fn planned_ab_is_bit_exact_with_uncached_for_arbitrary_shapes(
        m in 1usize..32, k in 1usize..32, n in 1usize..32, seed in 0u64..500
    ) {
        let qa = random_quant(&[m, k], seed);
        let qb = random_quant(&[k, n], seed ^ 0xC0DE);
        let uncached = int8_matmul(&qa, &qb).unwrap();
        let mut plan = QGemmPlan::from_quant(qb, 0).unwrap();
        let planned = int8_matmul_planned(&qa, &mut plan).unwrap();
        prop_assert_eq!(planned.data(), uncached.data());
    }

    #[test]
    fn planned_fused_epilogue_is_bit_exact_with_uncached(
        m in 1usize..32, k in 1usize..32, n in 1usize..32, seed in 0u64..500
    ) {
        let qa = random_quant(&[m, k], seed);
        let qw = random_quant(&[n, k], seed ^ 0xFA5E);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let bias = ff_tensor::init::uniform(&[n], -0.5, 0.5, &mut rng);
        let (uncached, mask_u) = int8_matmul_a_bt_fused(&qa, &qw, Some(&bias), true).unwrap();
        let mut plan = QGemmPlan::from_quant(qw, 0).unwrap();
        let (planned, mask_p) =
            int8_matmul_a_bt_planned(&qa, &mut plan, Some(&bias), true).unwrap();
        prop_assert_eq!(planned.data(), uncached.data());
        let (mask_p, mask_u) = (mask_p.unwrap(), mask_u.unwrap());
        prop_assert_eq!(mask_p.data(), mask_u.data());
    }

    // ---- shared (inference) plans and per-row scales ----------------------

    #[test]
    fn shared_rows_gemm_is_batching_invariant_for_arbitrary_shapes(
        m in 1usize..24, k in 1usize..48, n in 1usize..48, seed in 0u64..500, relu_bit in 0u64..2
    ) {
        // The micro-batcher's correctness contract: each output row of a
        // batched per-row-quantized GEMM equals the single-row GEMM of that
        // row alone, for any shape, with and without the fused ReLU.
        let relu = relu_bit == 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let w = ff_tensor::init::uniform(&[n, k], -1.0, 1.0, &mut rng);
        let x = ff_tensor::init::uniform(&[m, k], -3.0, 3.0, &mut rng);
        let bias = ff_tensor::init::uniform(&[n], -0.5, 0.5, &mut rng);
        let plan = SharedGemmPlan::from_tensor(&w).unwrap();
        let q_batch = RowQuantTensor::quantize(&x).unwrap();
        let batched =
            int8_matmul_a_bt_shared_rows(&q_batch, &plan, Some(&bias), relu, None).unwrap();
        for i in 0..m {
            let row = x.slice_rows(i, i + 1).unwrap();
            let q_row = RowQuantTensor::quantize(&row).unwrap();
            let single =
                int8_matmul_a_bt_shared_rows(&q_row, &plan, Some(&bias), relu, None).unwrap();
            prop_assert_eq!(single.data(), batched.row(i));
        }
    }

    #[test]
    fn shared_rows_gemm_matches_rowwise_reference(
        m in 1usize..16, k in 1usize..40, n in 1usize..40, seed in 0u64..500
    ) {
        // Against the naive oracle: row i must equal the per-tensor reference
        // GEMM of row i alone (for one row, per-row and per-tensor
        // quantization coincide).
        let mut rng = StdRng::seed_from_u64(seed);
        let w = ff_tensor::init::uniform(&[n, k], -1.0, 1.0, &mut rng);
        let x = ff_tensor::init::uniform(&[m, k], -2.0, 2.0, &mut rng);
        let plan = SharedGemmPlan::from_tensor(&w).unwrap();
        let q_batch = RowQuantTensor::quantize(&x).unwrap();
        let batched = int8_matmul_a_bt_shared_rows(&q_batch, &plan, None, false, None).unwrap();
        let qw = QuantTensor::quantize(&w, Rounding::Nearest);
        for i in 0..m {
            let row = x.slice_rows(i, i + 1).unwrap();
            let q_row = QuantTensor::quantize(&row, Rounding::Nearest);
            let reference = reference::int8_matmul_a_bt(&q_row, &qw).unwrap();
            prop_assert_eq!(reference.data(), batched.row(i));
        }
    }

    #[test]
    fn shared_rows_gemm_is_thread_count_invariant(threads in 1usize..=8, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = ff_tensor::init::uniform(&[27, 70], -1.0, 1.0, &mut rng);
        let x = ff_tensor::init::uniform(&[33, 70], -1.0, 1.0, &mut rng);
        let plan = SharedGemmPlan::from_tensor(&w).unwrap();
        let q = RowQuantTensor::quantize(&x).unwrap();
        let serial = int8_matmul_a_bt_shared_rows(&q, &plan, None, true, Some(1)).unwrap();
        let threaded = int8_matmul_a_bt_shared_rows(&q, &plan, None, true, Some(threads)).unwrap();
        prop_assert_eq!(serial.data(), threaded.data());
    }

    #[test]
    fn fused_epilogue_matches_separate_passes(
        m in 1usize..32, k in 1usize..32, n in 1usize..32, seed in 0u64..500
    ) {
        let qa = random_quant(&[m, k], seed);
        let qbt = random_quant(&[n, k], seed ^ 0xCAFE);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB1A5);
        let bias = ff_tensor::init::uniform(&[n], -0.5, 0.5, &mut rng);
        let (fused, mask) = int8_matmul_a_bt_fused(&qa, &qbt, Some(&bias), true).unwrap();
        let mask = mask.unwrap();
        let separate = reference::int8_matmul_a_bt(&qa, &qbt)
            .unwrap()
            .add_row_broadcast(&bias)
            .unwrap();
        for ((&f, &s), &mk) in fused.data().iter().zip(separate.data()).zip(mask.data()) {
            if s > 0.0 {
                prop_assert!(f == s, "fused {f} != separate {s}");
                prop_assert!(mk == 1.0);
            } else {
                prop_assert!(f == 0.0, "negative lane not clamped: {f}");
                prop_assert!(mk == 0.0);
            }
        }
    }
}
