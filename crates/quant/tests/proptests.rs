//! Property-based tests for the quantization crate.

use ff_quant::{compute_scale, int8_matmul, QuantConfig, QuantTensor, Rounding};
use ff_tensor::{linalg, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensor_strategy(max_len: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_len)
        .prop_flat_map(|n| proptest::collection::vec(-100.0f32..100.0, n))
        .prop_map(|data| {
            let n = data.len();
            Tensor::from_vec(&[n], data).expect("shape")
        })
}

proptest! {
    #[test]
    fn nearest_roundtrip_error_within_half_step(t in tensor_strategy(64)) {
        let mut rng = StdRng::seed_from_u64(0);
        let q = QuantTensor::quantize_with_rng(&t, QuantConfig::new(Rounding::Nearest), &mut rng);
        let back = q.dequantize();
        for (a, b) in t.data().iter().zip(back.data()) {
            prop_assert!((a - b).abs() <= q.scale() / 2.0 + 1e-5);
        }
    }

    #[test]
    fn stochastic_roundtrip_error_within_one_step(t in tensor_strategy(64), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = QuantTensor::quantize_with_rng(&t, QuantConfig::new(Rounding::Stochastic), &mut rng);
        let back = q.dequantize();
        for (a, b) in t.data().iter().zip(back.data()) {
            prop_assert!((a - b).abs() <= q.scale() + 1e-5);
        }
    }

    #[test]
    fn codes_stay_in_symmetric_range(t in tensor_strategy(64), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = QuantTensor::quantize_with_rng(&t, QuantConfig::new(Rounding::Stochastic), &mut rng);
        for &c in q.codes() {
            prop_assert!((-127..=127).contains(&(c as i32)));
        }
    }

    #[test]
    fn scale_is_monotonic_in_max_abs(a in 0.0f32..1e6, b in 0.0f32..1e6) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(compute_scale(lo) <= compute_scale(hi));
    }

    #[test]
    fn quantized_matmul_tracks_fp32(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = ff_tensor::init::uniform(&[6, 10], -1.0, 1.0, &mut rng);
        let b = ff_tensor::init::uniform(&[10, 5], -1.0, 1.0, &mut rng);
        let exact = linalg::matmul(&a, &b).unwrap();
        let qa = QuantTensor::quantize_with_rng(&a, QuantConfig::default(), &mut rng);
        let qb = QuantTensor::quantize_with_rng(&b, QuantConfig::default(), &mut rng);
        let approx = int8_matmul(&qa, &qb).unwrap();
        let rel = exact.sub(&approx).unwrap().frobenius_norm() / (exact.frobenius_norm() + 1e-6);
        prop_assert!(rel < 0.1, "relative error {rel}");
    }

    #[test]
    fn dequantize_of_zero_tensor_is_zero(len in 1usize..64) {
        let t = Tensor::zeros(&[len]);
        let q = QuantTensor::quantize(&t, Rounding::Nearest);
        prop_assert!(q.dequantize().max_abs() == 0.0);
    }
}
