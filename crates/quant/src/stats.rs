//! Gradient-distribution statistics (paper Section IV-A and Fig. 3).
//!
//! The FF-INT8 paper motivates layer-local training by showing that the
//! first-layer gradient distribution becomes sharper (heavier-tailed, more
//! mass near zero) as networks get deeper, which makes direct per-tensor INT8
//! quantization lossy. [`GradientHistogram`] and [`DistributionStats`]
//! reproduce those measurements.

use ff_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A fixed-width histogram over a tensor's values.
///
/// # Examples
///
/// ```
/// use ff_quant::stats::GradientHistogram;
/// use ff_tensor::Tensor;
///
/// let g = Tensor::from_slice(&[4], &[-1.0, -0.1, 0.1, 1.0]).unwrap();
/// let hist = GradientHistogram::from_tensor(&g, 4);
/// assert_eq!(hist.counts().iter().sum::<usize>(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientHistogram {
    lo: f32,
    hi: f32,
    counts: Vec<usize>,
}

impl GradientHistogram {
    /// Builds a histogram with `bins` equal-width bins spanning the tensor's
    /// symmetric range `[-max_abs, max_abs]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn from_tensor(tensor: &Tensor, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        let max_abs = tensor.max_abs().max(f32::MIN_POSITIVE);
        let lo = -max_abs;
        let hi = max_abs;
        let width = (hi - lo) / bins as f32;
        let mut counts = vec![0usize; bins];
        for &v in tensor.data() {
            let idx = (((v - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        GradientHistogram { lo, hi, counts }
    }

    /// Lower edge of the histogram range.
    pub fn lo(&self) -> f32 {
        self.lo
    }

    /// Upper edge of the histogram range.
    pub fn hi(&self) -> f32 {
        self.hi
    }

    /// Per-bin element counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Fraction of all elements that fall into the central `central_bins`
    /// bins — the paper's "most gradients gather in a small range" measure.
    pub fn central_mass(&self, central_bins: usize) -> f32 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let n = self.counts.len();
        let central = central_bins.min(n);
        let start = (n - central) / 2;
        let mass: usize = self.counts[start..start + central].iter().sum();
        mass as f32 / total as f32
    }

    /// Renders a simple ASCII sparkline of the histogram, used by the Fig. 3
    /// experiment binary.
    pub fn to_sparkline(&self) -> String {
        const LEVELS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        self.counts
            .iter()
            .map(|&c| {
                let level = (c * (LEVELS.len() - 1) + max / 2) / max;
                LEVELS[level]
            })
            .collect()
    }
}

/// Summary statistics of a gradient tensor's distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionStats {
    /// Arithmetic mean.
    pub mean: f32,
    /// Standard deviation.
    pub std: f32,
    /// Largest absolute value (the extreme that dominates the SUQ scale).
    pub max_abs: f32,
    /// Excess kurtosis; large values indicate a sharp peak with heavy tails.
    pub kurtosis: f32,
    /// Fraction of values whose magnitude is below `max_abs / 127` — these
    /// collapse to zero under direct INT8 quantization.
    pub underflow_fraction: f32,
}

impl DistributionStats {
    /// Computes the statistics of a tensor (typically a weight-gradient).
    pub fn from_tensor(tensor: &Tensor) -> Self {
        let n = tensor.len().max(1) as f32;
        let mean = tensor.mean();
        let var = tensor
            .data()
            .iter()
            .map(|x| (x - mean).powi(2))
            .sum::<f32>()
            / n;
        let std = var.sqrt();
        let max_abs = tensor.max_abs();
        let kurtosis = if var > 0.0 {
            tensor
                .data()
                .iter()
                .map(|x| ((x - mean) / std).powi(4))
                .sum::<f32>()
                / n
                - 3.0
        } else {
            0.0
        };
        let threshold = max_abs / 127.0;
        let underflow = tensor
            .data()
            .iter()
            .filter(|x| x.abs() < threshold && **x != 0.0)
            .count() as f32
            / n;
        DistributionStats {
            mean,
            std,
            max_abs,
            kurtosis,
            underflow_fraction: underflow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn histogram_counts_all_elements() {
        let t = Tensor::from_slice(&[6], &[-3.0, -1.0, 0.0, 0.5, 1.0, 3.0]).unwrap();
        let h = GradientHistogram::from_tensor(&t, 6);
        assert_eq!(h.counts().iter().sum::<usize>(), 6);
        assert_eq!(h.lo(), -3.0);
        assert_eq!(h.hi(), 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        GradientHistogram::from_tensor(&Tensor::ones(&[3]), 0);
    }

    #[test]
    fn central_mass_detects_sharp_distribution() {
        let mut rng = StdRng::seed_from_u64(0);
        // sharp: tiny values plus one outlier
        let mut sharp = init::randn(&[1000], 0.0, 0.001, &mut rng).into_vec();
        sharp.push(1.0);
        let sharp = Tensor::from_vec(&[1001], sharp).unwrap();
        let flat = init::uniform(&[1001], -1.0, 1.0, &mut rng);
        let hs = GradientHistogram::from_tensor(&sharp, 21);
        let hf = GradientHistogram::from_tensor(&flat, 21);
        assert!(hs.central_mass(3) > hf.central_mass(3));
    }

    #[test]
    fn sparkline_has_one_char_per_bin() {
        let t = Tensor::from_slice(&[4], &[-1.0, 0.0, 0.0, 1.0]).unwrap();
        let h = GradientHistogram::from_tensor(&t, 8);
        assert_eq!(h.to_sparkline().chars().count(), 8);
    }

    #[test]
    fn stats_of_gaussian() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = init::randn(&[20_000], 0.0, 0.5, &mut rng);
        let s = DistributionStats::from_tensor(&t);
        assert!(s.mean.abs() < 0.02);
        assert!((s.std - 0.5).abs() < 0.02);
        assert!(
            s.kurtosis.abs() < 0.3,
            "gaussian excess kurtosis ~0, got {}",
            s.kurtosis
        );
    }

    #[test]
    fn heavy_tailed_distribution_has_high_kurtosis_and_underflow() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut data = init::randn(&[5000], 0.0, 0.001, &mut rng).into_vec();
        data.push(5.0);
        data.push(-5.0);
        let t = Tensor::from_vec(&[5002], data).unwrap();
        let s = DistributionStats::from_tensor(&t);
        assert!(s.kurtosis > 10.0);
        assert!(s.underflow_fraction > 0.9);
    }

    #[test]
    fn constant_tensor_has_zero_kurtosis() {
        let s = DistributionStats::from_tensor(&Tensor::full(&[16], 2.0));
        assert_eq!(s.kurtosis, 0.0);
        assert_eq!(s.std, 0.0);
    }
}
