//! The [`QuantTensor`] container: INT8 codes plus a per-tensor scale, and
//! the per-row variant [`RowQuantTensor`] used by batching-invariant
//! inference.

use crate::suq::{compute_scale, quantize_slice, QuantConfig, Rounding, QMAX, QMIN};
use crate::Result;
use ff_tensor::{Tensor, TensorError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An INT8-quantized tensor with symmetric per-tensor scale.
///
/// `real_value ≈ code · scale`. Shapes follow the same row-major conventions
/// as [`ff_tensor::Tensor`].
///
/// # Examples
///
/// ```
/// use ff_quant::{QuantTensor, Rounding};
/// use ff_tensor::Tensor;
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let w = Tensor::from_vec(&[2, 2], vec![0.1, -0.2, 0.3, -0.4])?;
/// let q = QuantTensor::quantize(&w, Rounding::Nearest);
/// assert_eq!(q.shape(), &[2, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantTensor {
    shape: Vec<usize>,
    codes: Vec<i8>,
    scale: f32,
}

impl QuantTensor {
    /// Quantizes a real tensor with the per-tensor max-abs scale.
    ///
    /// Plain [`Rounding::Stochastic`] uses the thread-local RNG; for
    /// reproducible experiments prefer [`QuantTensor::quantize_with_rng`] or
    /// a [`Rounding::StochasticSeeded`] mode (which is deterministic through
    /// any entry point).
    pub fn quantize(tensor: &Tensor, rounding: Rounding) -> Self {
        Self::quantize_seeded(tensor, rounding, 0)
    }

    /// Quantizes with the RNG the rounding mode itself dictates.
    ///
    /// [`Rounding::StochasticSeeded`] builds a [`rand::rngs::StdRng`] from
    /// the carried seed mixed with `site_salt`, so the result is a pure
    /// function of `(tensor, rounding, site_salt)` — the property that makes
    /// INT8 training checkpoints resumable bit-exactly. Distinct call sites
    /// (e.g. a layer's forward input vs. its backward gradient) pass
    /// distinct salts so their rounding streams are decorrelated.
    /// [`Rounding::Nearest`] ignores the salt entirely, and plain
    /// [`Rounding::Stochastic`] keeps its historical thread-local draws.
    pub fn quantize_seeded(tensor: &Tensor, rounding: Rounding, site_salt: u64) -> Self {
        match rounding.derive(site_salt) {
            Rounding::StochasticSeeded(seed) => {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                Self::quantize_with_rng(tensor, QuantConfig::new(Rounding::Stochastic), &mut rng)
            }
            other => {
                let mut rng = rand::thread_rng();
                Self::quantize_with_rng(tensor, QuantConfig::new(other), &mut rng)
            }
        }
    }

    /// Quantizes with an explicit configuration (rounding mode and optional
    /// clipping threshold) and RNG.
    pub fn quantize_with_rng<R: Rng + ?Sized>(
        tensor: &Tensor,
        config: QuantConfig,
        rng: &mut R,
    ) -> Self {
        let clip = config.clip.unwrap_or_else(|| tensor.max_abs());
        let scale = compute_scale(clip);
        let clipped: Vec<f32> = tensor.data().iter().map(|v| v.clamp(-clip, clip)).collect();
        let codes = quantize_slice(&clipped, scale, config.rounding, rng);
        QuantTensor {
            shape: tensor.shape().to_vec(),
            codes,
            scale,
        }
    }

    /// Builds a quantized tensor directly from codes and a scale.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] when `codes.len()` does
    /// not match the shape.
    pub fn from_codes(shape: &[usize], codes: Vec<i8>, scale: f32) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if codes.len() != expected {
            return Err(TensorError::ElementCountMismatch {
                shape: shape.to_vec(),
                provided: codes.len(),
            });
        }
        Ok(QuantTensor {
            shape: shape.to_vec(),
            codes,
            scale,
        })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The INT8 codes.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// The symmetric per-tensor scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Memory footprint of the codes in bytes (one byte per element).
    pub fn byte_size(&self) -> usize {
        self.codes.len()
    }

    /// Reconstructs the real-valued tensor `codes · scale`.
    pub fn dequantize(&self) -> Tensor {
        let data: Vec<f32> = self.codes.iter().map(|&c| c as f32 * self.scale).collect();
        Tensor::from_vec(&self.shape, data).expect("dequantize preserves element count")
    }

    /// Mean squared error introduced by quantizing `original` into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn quantization_mse(&self, original: &Tensor) -> Result<f32> {
        if original.shape() != self.shape.as_slice() {
            return Err(TensorError::ShapeMismatch {
                left: original.shape().to_vec(),
                right: self.shape.clone(),
                op: "quantization_mse",
            });
        }
        let deq = self.dequantize();
        let mse = original
            .data()
            .iter()
            .zip(deq.data())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / original.len().max(1) as f32;
        Ok(mse)
    }

    /// Fraction of elements whose code underflowed to zero even though the
    /// original value was non-zero.
    ///
    /// This is the quantity that explains why sharp gradient distributions
    /// (paper Fig. 3) break naive INT8 backpropagation: most small gradients
    /// collapse to exactly zero.
    pub fn underflow_fraction(&self, original: &Tensor) -> f32 {
        let mut zeroed = 0usize;
        let mut nonzero = 0usize;
        for (&code, &orig) in self.codes.iter().zip(original.data()) {
            if orig != 0.0 {
                nonzero += 1;
                if code == 0 {
                    zeroed += 1;
                }
            }
        }
        if nonzero == 0 {
            0.0
        } else {
            zeroed as f32 / nonzero as f32
        }
    }
}

/// A rank-2 tensor quantized to INT8 with one symmetric scale **per row**.
///
/// The per-tensor [`QuantTensor`] couples every sample in a batch through a
/// single shared scale, so the quantized codes of one row depend on which
/// other rows happen to share the batch. Per-row quantization removes that
/// coupling: row `i`'s codes and scale are a pure function of row `i` alone,
/// which is what makes micro-batched inference (`ff-serve`) **bit-exact**
/// regardless of how concurrent requests are coalesced into batches.
///
/// Rounding is always deterministic nearest (the mode the paper uses for
/// activations), so quantization itself is reproducible.
///
/// # Examples
///
/// ```
/// use ff_quant::RowQuantTensor;
/// use ff_tensor::Tensor;
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let x = Tensor::from_vec(&[2, 3], vec![1.0, -0.5, 0.25, 100.0, 50.0, -25.0])?;
/// let q = RowQuantTensor::quantize(&x)?;
/// // Each row uses its own max-abs scale, so the small first row is not
/// // crushed by the large second row.
/// assert!(q.scales()[0] < q.scales()[1]);
/// assert_eq!(q.codes()[0], 127); // row max quantizes to QMAX
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RowQuantTensor {
    rows: usize,
    cols: usize,
    codes: Vec<i8>,
    scales: Vec<f32>,
}

impl RowQuantTensor {
    /// Quantizes a rank-2 tensor row by row with nearest rounding and one
    /// max-abs symmetric scale per row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when `tensor` is not rank 2.
    pub fn quantize(tensor: &Tensor) -> Result<Self> {
        if tensor.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: tensor.ndim(),
                op: "RowQuantTensor",
            });
        }
        let rows = tensor.shape()[0];
        let cols = tensor.shape()[1];
        let mut codes = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for i in 0..rows {
            let row = tensor.row(i);
            let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = compute_scale(max_abs);
            codes.extend(row.iter().map(|&v| {
                // Same arithmetic as `quantize_value` with `Rounding::Nearest`,
                // inlined so no RNG has to be threaded through.
                (v / scale).round().clamp(QMIN as f32, QMAX as f32) as i8
            }));
            scales.push(scale);
        }
        Ok(RowQuantTensor {
            rows,
            cols,
            codes,
            scales,
        })
    }

    /// Number of rows (samples).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The row-major INT8 codes.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// One symmetric scale per row.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstructs the real-valued tensor `codes[i, j] · scales[i]`.
    pub fn dequantize(&self) -> Tensor {
        let data: Vec<f32> = self
            .codes
            .chunks(self.cols.max(1))
            .zip(&self.scales)
            .flat_map(|(row, &s)| row.iter().map(move |&c| c as f32 * s))
            .collect();
        Tensor::from_vec(&[self.rows, self.cols], data).expect("dequantize preserves element count")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn roundtrip_error_bounded_by_half_scale() {
        let t = Tensor::from_vec(&[2, 3], vec![0.9, -0.5, 0.1, -0.01, 0.77, -0.33]).unwrap();
        let q = QuantTensor::quantize_with_rng(&t, QuantConfig::default(), &mut rng());
        let back = q.dequantize();
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= q.scale() / 2.0 + 1e-6);
        }
    }

    #[test]
    fn from_codes_validates_length() {
        assert!(QuantTensor::from_codes(&[2, 2], vec![1, 2, 3], 0.1).is_err());
        let q = QuantTensor::from_codes(&[2, 2], vec![1, 2, 3, 4], 0.5).unwrap();
        assert_eq!(q.dequantize().data(), &[0.5, 1.0, 1.5, 2.0]);
        assert_eq!(q.byte_size(), 4);
        assert!(!q.is_empty());
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn clipping_limits_scale() {
        let t = Tensor::from_vec(&[4], vec![100.0, 0.1, -0.2, 0.05]).unwrap();
        let unclipped = QuantTensor::quantize_with_rng(&t, QuantConfig::default(), &mut rng());
        let clipped = QuantTensor::quantize_with_rng(
            &t,
            QuantConfig::default().with_clip(Some(0.5)),
            &mut rng(),
        );
        assert!(clipped.scale() < unclipped.scale());
        // small values are preserved much better under clipping
        let small_err_clipped = (clipped.dequantize().data()[1] - 0.1).abs();
        let small_err_unclipped = (unclipped.dequantize().data()[1] - 0.1).abs();
        assert!(small_err_clipped < small_err_unclipped);
    }

    #[test]
    fn underflow_fraction_detects_collapsed_gradients() {
        // One huge outlier forces a large scale; everything else quantizes to 0.
        let mut data = vec![1e-4f32; 99];
        data.push(10.0);
        let t = Tensor::from_vec(&[100], data).unwrap();
        let q = QuantTensor::quantize_with_rng(&t, QuantConfig::default(), &mut rng());
        assert!(q.underflow_fraction(&t) > 0.9);
    }

    #[test]
    fn quantization_mse_checks_shape() {
        let t = Tensor::ones(&[2, 2]);
        let q = QuantTensor::quantize_with_rng(&t, QuantConfig::default(), &mut rng());
        assert!(q.quantization_mse(&Tensor::ones(&[4])).is_err());
        assert!(q.quantization_mse(&t).unwrap() < 1e-4);
    }

    #[test]
    fn thread_rng_constructor_works() {
        let t = Tensor::from_vec(&[3], vec![0.5, -0.5, 0.25]).unwrap();
        let q = QuantTensor::quantize(&t, Rounding::Stochastic);
        assert_eq!(q.shape(), &[3]);
    }

    #[test]
    fn seeded_stochastic_rounding_is_deterministic() {
        // Values sitting between grid points, so rounding direction is
        // genuinely random.
        let t = Tensor::from_vec(&[64], (0..64).map(|i| 0.013 * i as f32).collect()).unwrap();
        let mode = Rounding::StochasticSeeded(42);
        let a = QuantTensor::quantize_seeded(&t, mode, 1);
        let b = QuantTensor::quantize_seeded(&t, mode, 1);
        assert_eq!(a.codes(), b.codes(), "same seed + salt → same codes");
        // A different site salt (or seed) produces a different stream.
        let c = QuantTensor::quantize_seeded(&t, mode, 2);
        let d = QuantTensor::quantize_seeded(&t, Rounding::StochasticSeeded(43), 1);
        assert!(a.codes() != c.codes() || a.codes() != d.codes());
        // Still a valid stochastic rounding: codes stay on adjacent grid
        // points of the nearest quantization.
        let nearest = QuantTensor::quantize_seeded(&t, Rounding::Nearest, 0);
        for (s, n) in a.codes().iter().zip(nearest.codes()) {
            assert!((*s as i16 - *n as i16).abs() <= 1);
        }
    }

    #[test]
    fn rounding_derive_mixes_seed_and_salt() {
        let base = Rounding::StochasticSeeded(7);
        assert_ne!(base.derive(0), base.derive(1));
        assert_eq!(base.derive(3), base.derive(3));
        assert_eq!(Rounding::Nearest.derive(9), Rounding::Nearest);
        assert_eq!(Rounding::Stochastic.derive(9), Rounding::Stochastic);
        assert!(base.is_stochastic());
        assert!(Rounding::Stochastic.is_stochastic());
        assert!(!Rounding::Nearest.is_stochastic());
    }

    #[test]
    fn row_quant_rejects_non_rank2() {
        assert!(RowQuantTensor::quantize(&Tensor::ones(&[4])).is_err());
        assert!(RowQuantTensor::quantize(&Tensor::ones(&[2, 2, 2])).is_err());
    }

    #[test]
    fn row_quant_is_independent_per_row() {
        // A row's codes must not change when it is batched with other rows —
        // the property micro-batched serving relies on.
        let a = Tensor::from_vec(&[1, 4], vec![0.1, -0.05, 0.02, 0.08]).unwrap();
        let b = Tensor::from_vec(&[1, 4], vec![50.0, -20.0, 10.0, 5.0]).unwrap();
        let stacked = a.concat_rows(&b).unwrap();
        let qa = RowQuantTensor::quantize(&a).unwrap();
        let qs = RowQuantTensor::quantize(&stacked).unwrap();
        assert_eq!(qa.codes(), &qs.codes()[..4]);
        assert_eq!(qa.scales()[0], qs.scales()[0]);
    }

    #[test]
    fn row_quant_roundtrip_error_bounded_per_row() {
        let t = Tensor::from_vec(&[2, 3], vec![0.9, -0.5, 0.1, 90.0, -50.0, 10.0]).unwrap();
        let q = RowQuantTensor::quantize(&t).unwrap();
        assert_eq!(q.rows(), 2);
        assert_eq!(q.cols(), 3);
        let back = q.dequantize();
        for i in 0..2 {
            for (a, b) in t.row(i).iter().zip(back.row(i)) {
                assert!((a - b).abs() <= q.scales()[i] / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn row_quant_matches_per_tensor_path_on_single_row() {
        // For a single row the per-row and per-tensor quantizers see the same
        // max-abs, so their codes must agree bit-exactly.
        let t = Tensor::from_vec(&[1, 5], vec![0.3, -0.9, 0.45, 0.0, 0.9]).unwrap();
        let per_row = RowQuantTensor::quantize(&t).unwrap();
        let per_tensor = QuantTensor::quantize_with_rng(&t, QuantConfig::default(), &mut rng());
        assert_eq!(per_row.codes(), per_tensor.codes());
        assert_eq!(per_row.scales()[0], per_tensor.scale());
    }

    #[test]
    fn row_quant_zero_row_stays_zero() {
        let t = Tensor::zeros(&[2, 3]);
        let q = RowQuantTensor::quantize(&t).unwrap();
        assert!(q.codes().iter().all(|&c| c == 0));
        assert!(q.scales().iter().all(|&s| s > 0.0));
    }
}
