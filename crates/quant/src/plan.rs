//! Cached packed-weight GEMM plans for the INT8 training hot path.
//!
//! # Why plans exist
//!
//! Every INT8 GEMM needs its operands quantized and repacked into the
//! engine's `i16` panel layout ([`crate::pack`]) — an `O(mk + kn)` tax per
//! call. For *activations* that tax is unavoidable (the data changes every
//! step), but a layer's *weight matrix* only changes when the optimizer
//! steps. The FF-INT8 dataflow (paper Fig. 4) keeps weights resident in INT8
//! precisely so per-step cost scales with the activations alone; a
//! [`QGemmPlan`] is the code-level realisation of that idea: quantize and
//! pack a tensor **once**, then reuse the panels across every
//! `int8_matmul_*` call until the underlying values change.
//!
//! # What a plan holds
//!
//! A [`QGemmPlan`] owns the quantized codes and per-tensor scale (a
//! [`QuantTensor`]) plus up to four lazily-built panel packings — one per
//! role the tensor can play in the three GEMM variants:
//!
//! | accessor                            | role                | variant(s)     |
//! |-------------------------------------|---------------------|----------------|
//! | [`QGemmPlan::packed_as_a`]          | `A`, stored `[m,k]` | `A·B`, `A·Bᵀ`  |
//! | [`QGemmPlan::packed_as_a_transposed`]| `A`, stored `[k,m]`| `Aᵀ·B`         |
//! | [`QGemmPlan::packed_as_b`]          | `B`, stored `[k,n]` | `A·B`, `Aᵀ·B`  |
//! | [`QGemmPlan::packed_as_b_transposed`]| `B`, stored `[n,k]`| `A·Bᵀ`         |
//!
//! Each packing is built on first use and cached for the plan's lifetime, so
//! a dense layer's weight plan pays the `[n,k]`-transposed B packing once
//! per optimizer step instead of once per forward, and an input plan built
//! during the forward pass serves both look-ahead backward calls without
//! repacking.
//!
//! # Invalidation
//!
//! Plans are immutable snapshots: they never observe later edits to the
//! tensor they were built from. Callers key a plan to the parameter state it
//! captured via the [`QGemmPlan::version`] tag — layers store a `u64`
//! parameter version that optimizers bump through
//! `ParamRefMut::version` on every step, and rebuild the plan iff the tag no
//! longer matches. Quantization uses deterministic nearest rounding, so a
//! rebuilt plan over unchanged weights is bit-identical and the cached path
//! always matches the uncached one exactly (enforced by the property tests
//! in `tests/proptests.rs`).
//!
//! # Examples
//!
//! A weight plan reused across forward calls (the dense-layer hot path):
//!
//! ```
//! use ff_quant::{int8_matmul_a_bt_planned, QGemmPlan, QuantTensor, Rounding};
//! use ff_tensor::Tensor;
//!
//! # fn main() -> Result<(), ff_tensor::TensorError> {
//! // Weights stored [out, in] = [2, 3], quantized and packed once.
//! let w = Tensor::from_vec(&[2, 3], vec![0.5, -0.25, 1.0, 0.75, -0.5, 0.25])?;
//! let mut plan = QGemmPlan::from_tensor(&w, 0)?;
//! // Two "steps" with different activations reuse the same packed panels.
//! for step in 0..2 {
//!     let x = Tensor::from_vec(&[1, 3], vec![1.0, step as f32, -1.0])?;
//!     let qx = QuantTensor::quantize(&x, Rounding::Nearest);
//!     let (y, _) = int8_matmul_a_bt_planned(&qx, &mut plan, None, false)?;
//!     assert_eq!(y.shape(), &[1, 2]);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! The planned path is bit-exact with the per-call path:
//!
//! ```
//! use ff_quant::{int8_matmul_a_bt, int8_matmul_a_bt_planned, QGemmPlan, QuantTensor, Rounding};
//! use ff_tensor::Tensor;
//!
//! # fn main() -> Result<(), ff_tensor::TensorError> {
//! let w = Tensor::from_vec(&[2, 4], vec![0.9, -0.1, 0.4, 0.2, -0.7, 0.3, 0.8, -0.6])?;
//! let x = Tensor::from_vec(&[3, 4], (0..12).map(|i| i as f32 / 6.0 - 1.0).collect())?;
//! let qw = QuantTensor::quantize(&w, Rounding::Nearest);
//! let qx = QuantTensor::quantize(&x, Rounding::Nearest);
//! let mut plan = QGemmPlan::from_quant(qw.clone(), 7)?;
//! let (planned, _) = int8_matmul_a_bt_planned(&qx, &mut plan, None, false)?;
//! let unplanned = int8_matmul_a_bt(&qx, &qw)?;
//! assert_eq!(planned.data(), unplanned.data());
//! # Ok(())
//! # }
//! ```

use crate::gemm::{int8_gemm_prepacked, int8_gemm_prepacked_rowscale};
use crate::pack::{PackSource, PackedA, PackedB};
use crate::{QuantTensor, Result, Rounding, RowQuantTensor};
use ff_tensor::{Tensor, TensorError};

/// A reusable GEMM operand: quantized codes, per-tensor scale, and cached
/// packed panels for every role the tensor can play in the INT8 engine.
///
/// See the [module docs](self) for the caching and invalidation contract.
#[derive(Debug, Clone)]
pub struct QGemmPlan {
    quant: QuantTensor,
    version: u64,
    packed_a: Option<PackedA>,
    packed_a_t: Option<PackedA>,
    packed_b: Option<PackedB>,
    packed_b_t: Option<PackedB>,
}

fn check_rank2(shape: &[usize]) -> Result<(usize, usize)> {
    if shape.len() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: shape.len(),
            op: "QGemmPlan",
        });
    }
    Ok((shape[0], shape[1]))
}

impl QGemmPlan {
    /// Quantizes a rank-2 tensor with deterministic nearest rounding and
    /// wraps it in an (initially unpacked) plan tagged with `version`.
    ///
    /// Nearest rounding makes the plan a pure function of the tensor values,
    /// so rebuilding over unchanged weights yields bit-identical panels.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when `tensor` is not rank 2.
    pub fn from_tensor(tensor: &Tensor, version: u64) -> Result<Self> {
        check_rank2(tensor.shape())?;
        Self::from_quant(QuantTensor::quantize(tensor, Rounding::Nearest), version)
    }

    /// Wraps an already-quantized rank-2 tensor in a plan tagged with
    /// `version` (used for activation plans, where the caller picked the
    /// rounding mode).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when `quant` is not rank 2.
    pub fn from_quant(quant: QuantTensor, version: u64) -> Result<Self> {
        check_rank2(quant.shape())?;
        Ok(QGemmPlan {
            quant,
            version,
            packed_a: None,
            packed_a_t: None,
            packed_b: None,
            packed_b_t: None,
        })
    }

    /// The parameter-version tag this plan was built against. Callers compare
    /// it to their current version counter to decide whether to rebuild.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The quantized tensor the plan wraps.
    pub fn quant(&self) -> &QuantTensor {
        &self.quant
    }

    /// The per-tensor symmetric scale of the quantized codes.
    pub fn scale(&self) -> f32 {
        self.quant.scale()
    }

    /// The stored (row-major) shape of the planned tensor.
    pub fn shape(&self) -> &[usize] {
        self.quant.shape()
    }

    /// Panels for the `A` role of `A·B` / `A·Bᵀ` (stored `[m, k]`), built on
    /// first use and cached.
    pub fn packed_as_a(&mut self) -> &PackedA {
        if self.packed_a.is_none() {
            let (m, k) = (self.quant.shape()[0], self.quant.shape()[1]);
            self.packed_a = Some(PackedA::pack(
                self.quant.codes(),
                m,
                k,
                PackSource::RowMajor,
            ));
        }
        self.packed_a.as_ref().expect("packed_a just built")
    }

    /// Panels for the `A` role of `Aᵀ·B` (stored `[k, m]`), built on first
    /// use and cached.
    pub fn packed_as_a_transposed(&mut self) -> &PackedA {
        if self.packed_a_t.is_none() {
            let (k, m) = (self.quant.shape()[0], self.quant.shape()[1]);
            self.packed_a_t = Some(PackedA::pack(
                self.quant.codes(),
                m,
                k,
                PackSource::Transposed,
            ));
        }
        self.packed_a_t.as_ref().expect("packed_a_t just built")
    }

    /// Panels for the `B` role of `A·B` / `Aᵀ·B` (stored `[k, n]`), built on
    /// first use and cached.
    pub fn packed_as_b(&mut self) -> &PackedB {
        if self.packed_b.is_none() {
            let (k, n) = (self.quant.shape()[0], self.quant.shape()[1]);
            self.packed_b = Some(PackedB::pack(
                self.quant.codes(),
                k,
                n,
                PackSource::RowMajor,
            ));
        }
        self.packed_b.as_ref().expect("packed_b just built")
    }

    /// Panels for the `B` role of `A·Bᵀ` (stored `[n, k]`), built on first
    /// use and cached. This is the packing a dense/conv layer's weight uses
    /// in the forward GEMM.
    pub fn packed_as_b_transposed(&mut self) -> &PackedB {
        if self.packed_b_t.is_none() {
            let (n, k) = (self.quant.shape()[0], self.quant.shape()[1]);
            self.packed_b_t = Some(PackedB::pack(
                self.quant.codes(),
                k,
                n,
                PackSource::Transposed,
            ));
        }
        self.packed_b_t.as_ref().expect("packed_b_t just built")
    }

    /// Bytes currently held by cached panels (diagnostics: each packed `i16`
    /// panel is roughly twice the size of the INT8 codes it covers, padded to
    /// tile boundaries).
    pub fn packed_bytes(&self) -> usize {
        let a = self.packed_a.as_ref().map_or(0, PackedA::byte_size);
        let at = self.packed_a_t.as_ref().map_or(0, PackedA::byte_size);
        let b = self.packed_b.as_ref().map_or(0, PackedB::byte_size);
        let bt = self.packed_b_t.as_ref().map_or(0, PackedB::byte_size);
        a + at + b + bt
    }
}

/// An immutable, thread-shareable (`Send + Sync`) packed-weight plan.
///
/// [`QGemmPlan`] is built for *training*: it is owned by one layer, its
/// panel packings build lazily behind `&mut self`, and it is invalidated and
/// rebuilt whenever the optimizer moves the weights. Inference has the
/// opposite profile — weights never change, but **many threads** need the
/// same packed panels concurrently. `SharedGemmPlan` serves that case: it
/// quantizes (deterministic nearest) and packs the weight's transposed-`B`
/// panels **eagerly at construction**, then exposes everything through
/// `&self`, so one plan wrapped in an `Arc` can feed every worker of a
/// serving engine through [`int8_matmul_a_bt_shared_rows`] with zero
/// synchronization.
///
/// Only the `A·Bᵀ` role is packed because that is the only GEMM inference
/// runs (`activations [m, k] × weightᵀ [n, k]`); training's other roles stay
/// on [`QGemmPlan`].
///
/// # Examples
///
/// ```
/// use ff_quant::{int8_matmul_a_bt_shared_rows, RowQuantTensor, SharedGemmPlan};
/// use ff_tensor::Tensor;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let w = Tensor::from_vec(&[2, 3], vec![0.5, -0.25, 1.0, 0.75, -0.5, 0.25])?;
/// let plan = Arc::new(SharedGemmPlan::from_tensor(&w)?);
/// // Any number of threads can now run GEMMs against `plan` concurrently.
/// let x = RowQuantTensor::quantize(&Tensor::from_vec(&[1, 3], vec![1.0, 0.5, -1.0])?)?;
/// let y = int8_matmul_a_bt_shared_rows(&x, &plan, None, false, None)?;
/// assert_eq!(y.shape(), &[1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedGemmPlan {
    quant: QuantTensor,
    packed_b_t: PackedB,
}

impl SharedGemmPlan {
    /// Quantizes a rank-2 weight tensor (stored `[n, k]`, deterministic
    /// nearest rounding) and packs its transposed-`B` panels eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when `tensor` is not rank 2.
    pub fn from_tensor(tensor: &Tensor) -> Result<Self> {
        check_rank2(tensor.shape())?;
        Self::from_quant(QuantTensor::quantize(tensor, Rounding::Nearest))
    }

    /// Wraps an already-quantized rank-2 tensor (e.g. codes loaded from a
    /// frozen model artifact), packing its transposed-`B` panels eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when `quant` is not rank 2.
    pub fn from_quant(quant: QuantTensor) -> Result<Self> {
        let (n, k) = check_rank2(quant.shape())?;
        let packed_b_t = PackedB::pack(quant.codes(), k, n, PackSource::Transposed);
        Ok(SharedGemmPlan { quant, packed_b_t })
    }

    /// The quantized tensor the plan wraps.
    pub fn quant(&self) -> &QuantTensor {
        &self.quant
    }

    /// The per-tensor symmetric scale of the quantized codes.
    pub fn scale(&self) -> f32 {
        self.quant.scale()
    }

    /// The stored (row-major) shape of the planned tensor, `[n, k]`.
    pub fn shape(&self) -> &[usize] {
        self.quant.shape()
    }

    /// The eagerly packed transposed-`B` panels (the `A·Bᵀ` role).
    pub fn packed_as_b_transposed(&self) -> &PackedB {
        &self.packed_b_t
    }

    /// Bytes held by the packed panels (diagnostics).
    pub fn packed_bytes(&self) -> usize {
        self.packed_b_t.byte_size()
    }
}

/// `a [m, k] × planᵀ` with a **per-row-quantized** activation batch against
/// an immutable shared weight plan — the inference GEMM.
///
/// Each output row `i` is dequantized with `a.scales()[i] · plan.scale()`,
/// so the result for a sample is a pure function of that sample and the
/// weights: batching any set of samples together produces bit-identical
/// rows (the foundation of `ff-serve`'s micro-batching correctness).
/// Bias/ReLU fuse into the epilogue; no gradient mask is produced.
///
/// `threads` behaves as in [`crate::int8_gemm`]: `None` picks automatically,
/// `Some(t)` forces `t` workers (serving engines pin this to `1` and get
/// their parallelism from concurrent worker threads instead).
///
/// # Errors
///
/// Returns rank/shape errors when `a` and the plan are not conformable or
/// `bias` is not a length-`n` vector.
pub fn int8_matmul_a_bt_shared_rows(
    a: &RowQuantTensor,
    plan: &SharedGemmPlan,
    bias: Option<&Tensor>,
    relu: bool,
    threads: Option<usize>,
) -> Result<Tensor> {
    if a.cols() != plan.shape()[1] {
        return Err(TensorError::ShapeMismatch {
            left: vec![a.rows(), a.cols()],
            right: plan.shape().to_vec(),
            op: "int8_matmul_a_bt_shared_rows",
        });
    }
    let packed_a = PackedA::pack(a.codes(), a.rows(), a.cols(), PackSource::RowMajor);
    int8_gemm_prepacked_rowscale(
        &packed_a,
        plan.packed_as_b_transposed(),
        a.scales(),
        plan.scale(),
        bias,
        relu,
        threads,
    )
}

fn check_operand_rank2(q: &QuantTensor, op: &'static str) -> Result<(usize, usize)> {
    if q.shape().len() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: q.shape().len(),
            op,
        });
    }
    Ok((q.shape()[0], q.shape()[1]))
}

/// `a [m, k] × planᵀ` where the plan wraps a `[n, k]` tensor — the planned
/// version of [`crate::int8_matmul_a_bt_fused`], used by dense/conv forward
/// passes with a cached weight plan.
///
/// `a` is packed per call (activations change every step); the plan's
/// transposed-`B` panels are reused across calls. Bias/ReLU fuse into the
/// dequantization epilogue exactly as in the unplanned entry point.
///
/// # Errors
///
/// Returns rank/shape errors when `a` and the plan are not conformable or
/// `bias` is not a length-`n` vector.
pub fn int8_matmul_a_bt_planned(
    a: &QuantTensor,
    plan: &mut QGemmPlan,
    bias: Option<&Tensor>,
    relu: bool,
) -> Result<(Tensor, Option<Tensor>)> {
    let (m, k) = check_operand_rank2(a, "int8_matmul_a_bt_planned")?;
    let (_, kb) = (plan.shape()[0], plan.shape()[1]);
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: plan.shape().to_vec(),
            op: "int8_matmul_a_bt_planned",
        });
    }
    let packed_a = PackedA::pack(a.codes(), m, k, PackSource::RowMajor);
    let scale = a.scale() * plan.scale();
    int8_gemm_prepacked(
        &packed_a,
        plan.packed_as_b_transposed(),
        scale,
        bias,
        relu,
        None,
    )
}

/// `aᵀ × plan` where `a` is stored `[k, m]` and the plan wraps a `[k, n]`
/// tensor — the planned version of [`crate::int8_matmul_at_b`], used for
/// weight gradients `gW = gYᵀ · X` with the forward pass's cached input plan.
///
/// `a` (the output gradient) is packed per call; the plan's row-major `B`
/// panels are built on the first backward call and reused by later ones —
/// the look-ahead scheme backpropagates through each layer twice per step,
/// so the second call gets the input packing for free.
///
/// # Errors
///
/// Returns rank/shape errors when the operands are not conformable.
pub fn int8_matmul_at_b_planned(a: &QuantTensor, plan: &mut QGemmPlan) -> Result<Tensor> {
    let (ka, m) = check_operand_rank2(a, "int8_matmul_at_b_planned")?;
    let kb = plan.shape()[0];
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: plan.shape().to_vec(),
            op: "int8_matmul_at_b_planned",
        });
    }
    let packed_a = PackedA::pack(a.codes(), m, ka, PackSource::Transposed);
    let scale = a.scale() * plan.scale();
    Ok(int8_gemm_prepacked(&packed_a, plan.packed_as_b(), scale, None, false, None)?.0)
}

/// `a [m, k] × plan` where the plan wraps a `[k, n]` tensor — the planned
/// version of [`crate::int8_matmul`].
///
/// # Errors
///
/// Returns rank/shape errors when the operands are not conformable.
pub fn int8_matmul_planned(a: &QuantTensor, plan: &mut QGemmPlan) -> Result<Tensor> {
    let (m, k) = check_operand_rank2(a, "int8_matmul_planned")?;
    let kb = plan.shape()[0];
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: plan.shape().to_vec(),
            op: "int8_matmul_planned",
        });
    }
    let packed_a = PackedA::pack(a.codes(), m, k, PackSource::RowMajor);
    let scale = a.scale() * plan.scale();
    Ok(int8_gemm_prepacked(&packed_a, plan.packed_as_b(), scale, None, false, None)?.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{int8_matmul, int8_matmul_a_bt_fused, int8_matmul_at_b, QuantConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_quant(shape: &[usize], seed: u64) -> QuantTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = ff_tensor::init::uniform(shape, -1.0, 1.0, &mut rng);
        QuantTensor::quantize_with_rng(&t, QuantConfig::new(Rounding::Nearest), &mut rng)
    }

    #[test]
    fn plan_rejects_non_rank2() {
        assert!(QGemmPlan::from_tensor(&Tensor::ones(&[4]), 0).is_err());
        let q = QuantTensor::from_codes(&[2, 2, 2], vec![0; 8], 0.1).unwrap();
        assert!(QGemmPlan::from_quant(q, 0).is_err());
    }

    #[test]
    fn plan_metadata_roundtrip() {
        let q = random_quant(&[3, 5], 1);
        let plan = QGemmPlan::from_quant(q.clone(), 42).unwrap();
        assert_eq!(plan.version(), 42);
        assert_eq!(plan.shape(), &[3, 5]);
        assert_eq!(plan.scale(), q.scale());
        assert_eq!(plan.quant().codes(), q.codes());
        assert_eq!(plan.packed_bytes(), 0, "no panels built yet");
    }

    #[test]
    fn packings_are_built_lazily_and_cached() {
        let mut plan = QGemmPlan::from_quant(random_quant(&[6, 10], 2), 0).unwrap();
        assert_eq!(plan.packed_bytes(), 0);
        let after_bt = {
            plan.packed_as_b_transposed();
            plan.packed_bytes()
        };
        assert!(after_bt > 0);
        // Re-requesting the same packing allocates nothing new.
        plan.packed_as_b_transposed();
        assert_eq!(plan.packed_bytes(), after_bt);
        // A different role adds its own panels.
        plan.packed_as_a();
        assert!(plan.packed_bytes() > after_bt);
    }

    #[test]
    fn planned_a_bt_matches_unplanned_with_fused_epilogue() {
        let qa = random_quant(&[9, 31], 3);
        let qw = random_quant(&[7, 31], 4);
        let bias = Tensor::from_vec(&[7], (0..7).map(|i| i as f32 / 3.0 - 1.0).collect()).unwrap();
        let (unplanned, mask_u) = int8_matmul_a_bt_fused(&qa, &qw, Some(&bias), true).unwrap();
        let mut plan = QGemmPlan::from_quant(qw, 0).unwrap();
        for _ in 0..2 {
            let (planned, mask_p) =
                int8_matmul_a_bt_planned(&qa, &mut plan, Some(&bias), true).unwrap();
            assert_eq!(planned.data(), unplanned.data());
            assert_eq!(
                mask_p.as_ref().unwrap().data(),
                mask_u.as_ref().unwrap().data()
            );
        }
    }

    #[test]
    fn planned_at_b_matches_unplanned() {
        let q_grad = random_quant(&[33, 70], 5);
        let q_input = random_quant(&[33, 27], 6);
        let unplanned = int8_matmul_at_b(&q_grad, &q_input).unwrap();
        let mut plan = QGemmPlan::from_quant(q_input, 0).unwrap();
        for _ in 0..2 {
            let planned = int8_matmul_at_b_planned(&q_grad, &mut plan).unwrap();
            assert_eq!(planned.data(), unplanned.data());
        }
    }

    #[test]
    fn planned_ab_matches_unplanned() {
        let qa = random_quant(&[5, 12], 7);
        let qb = random_quant(&[12, 9], 8);
        let unplanned = int8_matmul(&qa, &qb).unwrap();
        let mut plan = QGemmPlan::from_quant(qb, 0).unwrap();
        let planned = int8_matmul_planned(&qa, &mut plan).unwrap();
        assert_eq!(planned.data(), unplanned.data());
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let qa = random_quant(&[4, 8], 9);
        let mut plan_bad = QGemmPlan::from_quant(random_quant(&[3, 9], 10), 0).unwrap();
        assert!(int8_matmul_a_bt_planned(&qa, &mut plan_bad, None, false).is_err());
        assert!(int8_matmul_at_b_planned(&qa, &mut plan_bad).is_err());
        assert!(int8_matmul_planned(&qa, &mut plan_bad).is_err());
        let qv = QuantTensor::from_codes(&[4], vec![1; 4], 0.1).unwrap();
        let mut plan = QGemmPlan::from_quant(random_quant(&[8, 3], 11), 0).unwrap();
        assert!(int8_matmul_a_bt_planned(&qv, &mut plan, None, false).is_err());
    }

    #[test]
    fn shared_plan_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedGemmPlan>();
    }

    #[test]
    fn shared_plan_matches_mutable_plan_on_shared_scale_inputs() {
        // A single-row input has identical per-row and per-tensor scales, so
        // the shared (row-scale) path must agree bit-exactly with the
        // training-time planned path.
        let mut rng = StdRng::seed_from_u64(21);
        let w = ff_tensor::init::uniform(&[7, 13], -1.0, 1.0, &mut rng);
        let x = ff_tensor::init::uniform(&[1, 13], -1.0, 1.0, &mut rng);
        let bias = ff_tensor::init::uniform(&[7], -0.5, 0.5, &mut rng);
        let shared = SharedGemmPlan::from_tensor(&w).unwrap();
        let rows = RowQuantTensor::quantize(&x).unwrap();
        let got = int8_matmul_a_bt_shared_rows(&rows, &shared, Some(&bias), true, None).unwrap();
        let mut plan = QGemmPlan::from_tensor(&w, 0).unwrap();
        let qx = QuantTensor::quantize(&x, Rounding::Nearest);
        let (expect, _) = int8_matmul_a_bt_planned(&qx, &mut plan, Some(&bias), true).unwrap();
        assert_eq!(got.data(), expect.data());
    }

    #[test]
    fn shared_rows_results_are_batching_invariant() {
        // Row i of a batched GEMM must equal the single-row GEMM of row i:
        // the correctness foundation of micro-batched serving.
        let mut rng = StdRng::seed_from_u64(22);
        let w = ff_tensor::init::uniform(&[9, 17], -1.0, 1.0, &mut rng);
        let shared = SharedGemmPlan::from_tensor(&w).unwrap();
        let batch = ff_tensor::init::uniform(&[5, 17], -2.0, 2.0, &mut rng);
        let q_batch = RowQuantTensor::quantize(&batch).unwrap();
        let batched = int8_matmul_a_bt_shared_rows(&q_batch, &shared, None, false, None).unwrap();
        for i in 0..5 {
            let row = batch.slice_rows(i, i + 1).unwrap();
            let q_row = RowQuantTensor::quantize(&row).unwrap();
            let single = int8_matmul_a_bt_shared_rows(&q_row, &shared, None, false, None).unwrap();
            assert_eq!(single.data(), batched.row(i), "row {i}");
        }
    }

    #[test]
    fn shared_plan_metadata_and_errors() {
        let mut rng = StdRng::seed_from_u64(23);
        let w = ff_tensor::init::uniform(&[4, 6], -1.0, 1.0, &mut rng);
        let shared = SharedGemmPlan::from_tensor(&w).unwrap();
        assert_eq!(shared.shape(), &[4, 6]);
        assert!(shared.scale() > 0.0);
        assert!(shared.packed_bytes() > 0, "panels are packed eagerly");
        assert_eq!(shared.quant().shape(), &[4, 6]);
        assert!(SharedGemmPlan::from_tensor(&Tensor::ones(&[4])).is_err());
        // Mismatched activation width is rejected.
        let bad = RowQuantTensor::quantize(&Tensor::ones(&[2, 5])).unwrap();
        assert!(int8_matmul_a_bt_shared_rows(&bad, &shared, None, false, None).is_err());
        // Bad bias length is rejected.
        let ok = RowQuantTensor::quantize(&Tensor::ones(&[2, 6])).unwrap();
        assert!(
            int8_matmul_a_bt_shared_rows(&ok, &shared, Some(&Tensor::ones(&[3])), false, None)
                .is_err()
        );
    }

    #[test]
    fn from_tensor_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(12);
        let w = ff_tensor::init::uniform(&[5, 7], -1.0, 1.0, &mut rng);
        let p1 = QGemmPlan::from_tensor(&w, 0).unwrap();
        let p2 = QGemmPlan::from_tensor(&w, 1).unwrap();
        assert_eq!(p1.quant().codes(), p2.quant().codes());
        assert_eq!(p1.scale(), p2.scale());
    }
}
