//! Symmetric uniform quantization primitives.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Largest representable quantized magnitude (symmetric range `[-127, 127]`).
pub const QMAX: i8 = 127;
/// Smallest representable quantized value.
pub const QMIN: i8 = -127;

/// Rounding mode used when mapping real values onto the INT8 grid.
///
/// The FF-INT8 paper uses *stochastic* rounding for gradients (following
/// Gupta et al., 2015) because it is unbiased in expectation, and nearest
/// rounding for weights and activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Rounding {
    /// Round to the nearest grid point (ties away from zero).
    #[default]
    Nearest,
    /// Round up or down with probability proportional to the distance, so the
    /// expected quantized value equals the real value. Draws come from the
    /// RNG the call site supplies (the thread-local generator at the
    /// convenience entry points), so two runs are **not** reproducible.
    Stochastic,
    /// Stochastic rounding whose draws come from a generator seeded with the
    /// carried value, making the rounding a pure function of `(tensor,
    /// seed)`. Trainers that must be checkpointable derive one seed per
    /// quantization site from their own seeded RNG (see
    /// [`Rounding::derive`]), which is what makes INT8 training runs
    /// bit-exactly reproducible and resumable.
    StochasticSeeded(u64),
}

impl Rounding {
    /// `true` for either stochastic variant.
    pub fn is_stochastic(&self) -> bool {
        !matches!(self, Rounding::Nearest)
    }

    /// Derives a decorrelated seeded-stochastic mode from this one.
    ///
    /// For [`Rounding::StochasticSeeded`] the salt is mixed into the seed
    /// through a SplitMix64 finalizer, so per-layer / per-site streams are
    /// statistically independent; the other variants pass through
    /// unchanged (they carry no seed to vary).
    pub fn derive(self, salt: u64) -> Rounding {
        match self {
            Rounding::StochasticSeeded(seed) => {
                let mut z = seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(salt.wrapping_mul(0xA24B_AED4_963E_E407));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                Rounding::StochasticSeeded(z ^ (z >> 31))
            }
            other => other,
        }
    }
}

/// Configuration for a symmetric uniform quantizer.
///
/// # Examples
///
/// ```
/// use ff_quant::{QuantConfig, Rounding};
///
/// let cfg = QuantConfig::new(Rounding::Stochastic).with_clip(Some(1.0));
/// assert_eq!(cfg.clip, Some(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Rounding mode applied to every element.
    pub rounding: Rounding,
    /// Optional clipping threshold: values are clamped to `[-clip, clip]`
    /// before the scale is computed. `None` uses the tensor's max-abs.
    pub clip: Option<f32>,
}

impl QuantConfig {
    /// Creates a configuration with the given rounding mode and no clipping.
    pub fn new(rounding: Rounding) -> Self {
        QuantConfig {
            rounding,
            clip: None,
        }
    }

    /// Sets the clipping threshold.
    pub fn with_clip(mut self, clip: Option<f32>) -> Self {
        self.clip = clip;
        self
    }
}

/// Computes the symmetric per-tensor scale `s = max_abs / 127`.
///
/// A tiny floor keeps the scale strictly positive so that all-zero tensors
/// still round-trip.
///
/// # Examples
///
/// ```
/// let s = ff_quant::compute_scale(12.7);
/// assert!((s - 0.1).abs() < 1e-6);
/// ```
pub fn compute_scale(max_abs: f32) -> f32 {
    (max_abs / QMAX as f32)
        .max(f32::MIN_POSITIVE * 128.0)
        .max(1e-12)
}

/// Quantizes a single value given a scale.
///
/// Stochastic rounding draws from the supplied RNG; nearest rounding ignores
/// it.
pub fn quantize_value<R: Rng + ?Sized>(
    value: f32,
    scale: f32,
    rounding: Rounding,
    rng: &mut R,
) -> i8 {
    let x = value / scale;
    let rounded = match rounding {
        Rounding::Nearest => x.round(),
        // A seeded mode reaching this level draws from the supplied RNG just
        // like plain `Stochastic`: the seed was already consumed to build
        // that RNG (see `QuantTensor::quantize_seeded`).
        Rounding::Stochastic | Rounding::StochasticSeeded(_) => {
            let floor = x.floor();
            let frac = x - floor;
            if rng.gen::<f32>() < frac {
                floor + 1.0
            } else {
                floor
            }
        }
    };
    rounded.clamp(QMIN as f32, QMAX as f32) as i8
}

/// Converts a quantized value back to its real approximation.
pub fn dequantize_value(q: i8, scale: f32) -> f32 {
    q as f32 * scale
}

/// Quantizes an entire slice with one shared scale, returning the codes.
pub fn quantize_slice<R: Rng + ?Sized>(
    values: &[f32],
    scale: f32,
    rounding: Rounding,
    rng: &mut R,
) -> Vec<i8> {
    values
        .iter()
        .map(|&v| quantize_value(v, scale, rounding, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scale_is_max_abs_over_127() {
        assert!((compute_scale(127.0) - 1.0).abs() < 1e-6);
        assert!(compute_scale(0.0) > 0.0, "scale must stay positive");
    }

    #[test]
    fn nearest_rounding_roundtrip_error_bounded() {
        let mut rng = StdRng::seed_from_u64(0);
        let scale = compute_scale(2.0);
        for i in -200..=200 {
            let v = i as f32 / 100.0;
            let q = quantize_value(v, scale, Rounding::Nearest, &mut rng);
            let back = dequantize_value(q, scale);
            assert!((v - back).abs() <= scale / 2.0 + 1e-6, "v={v} back={back}");
        }
    }

    #[test]
    fn values_clamp_to_range() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(quantize_value(1e9, 1.0, Rounding::Nearest, &mut rng), QMAX);
        assert_eq!(quantize_value(-1e9, 1.0, Rounding::Nearest, &mut rng), QMIN);
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(123);
        let scale = 1.0;
        let v = 0.3;
        let n = 20_000;
        let sum: f64 = (0..n)
            .map(|_| quantize_value(v, scale, Rounding::Stochastic, &mut rng) as f64)
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn stochastic_rounding_only_adjacent_grid_points() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let q = quantize_value(2.4, 1.0, Rounding::Stochastic, &mut rng);
            assert!(q == 2 || q == 3);
        }
    }

    #[test]
    fn quantize_slice_uses_shared_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let values = [1.0, -2.0, 0.5];
        let scale = compute_scale(2.0);
        let codes = quantize_slice(&values, scale, Rounding::Nearest, &mut rng);
        assert_eq!(codes.len(), 3);
        assert_eq!(codes[1], QMIN);
    }

    #[test]
    fn config_builder() {
        let cfg = QuantConfig::new(Rounding::Stochastic).with_clip(Some(0.5));
        assert_eq!(cfg.rounding, Rounding::Stochastic);
        assert_eq!(cfg.clip, Some(0.5));
        assert_eq!(QuantConfig::default().rounding, Rounding::Nearest);
    }
}
