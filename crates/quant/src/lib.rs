//! # ff-quant
//!
//! Symmetric uniform quantization (SUQ) to INT8, stochastic rounding, the
//! packed/blocked/multi-threaded INT8 GEMM engine, and gradient-distribution
//! statistics.
//!
//! This crate implements the numerical substrate of the FF-INT8 paper
//! (Section IV-B): activations, weights and gradients are quantized with a
//! per-tensor symmetric scale `s = max|x| / 127`, optionally with stochastic
//! rounding (Gupta et al., 2015), and the MAC phase runs on `i8` inputs with
//! `i32` accumulators.
//!
//! The MAC phase is served by a single blocked micro-kernel shared by all
//! three GEMM variants (`A·B`, `A·Bᵀ`, `Aᵀ·B`): operands are repacked into
//! `i16` panels ([`pack`]), tiled `NC → KC → MC`, sharded across worker
//! threads by output row panels, and dequantized in a fused epilogue that
//! can also apply a bias and ReLU ([`int8_matmul_a_bt_fused`]). Operands
//! that persist across steps — layer weights above all — are quantized and
//! packed **once** into a cached [`QGemmPlan`] ([`plan`]) and fed to the
//! engine through [`gemm::int8_gemm_prepacked`], so per-step GEMM cost
//! scales with the activations only; the plan is rebuilt lazily when the
//! optimizer bumps the owning layer's parameter version. For inference,
//! the immutable [`SharedGemmPlan`] packs a weight's panels eagerly and is
//! `Sync`, and [`int8_matmul_a_bt_shared_rows`] runs it against a
//! **per-row-quantized** activation batch ([`RowQuantTensor`]) through the
//! per-row-scale epilogue — making results independent of how samples are
//! batched, the contract `ff-serve`'s micro-batcher is built on. The naive
//! triple-loop kernels survive as test oracles in [`gemm::reference`]; the
//! blocked engine — planned or not — matches them bit-exactly for every
//! shape. See [`gemm`] for the kernel design, [`pack`] for the panel
//! layout, and [`plan`] for the caching and invalidation contract.
//!
//! # Examples
//!
//! ```
//! use ff_quant::{QuantTensor, Rounding};
//! use ff_tensor::Tensor;
//!
//! # fn main() -> Result<(), ff_tensor::TensorError> {
//! let x = Tensor::from_vec(&[2, 2], vec![0.5, -1.0, 0.25, 1.0])?;
//! let q = QuantTensor::quantize(&x, Rounding::Nearest);
//! let back = q.dequantize();
//! for (a, b) in x.data().iter().zip(back.data()) {
//!     assert!((a - b).abs() <= q.scale() / 2.0 + 1e-6);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod qtensor;
mod suq;

pub mod gemm;
pub mod pack;
pub mod plan;
pub mod stats;

pub use gemm::{
    int8_gemm, int8_gemm_op_count, int8_gemm_prepacked, int8_gemm_prepacked_rowscale, int8_matmul,
    int8_matmul_a_bt, int8_matmul_a_bt_fused, int8_matmul_at_b, GemmVariant,
};
pub use plan::{
    int8_matmul_a_bt_planned, int8_matmul_a_bt_shared_rows, int8_matmul_at_b_planned,
    int8_matmul_planned, QGemmPlan, SharedGemmPlan,
};
pub use qtensor::{QuantTensor, RowQuantTensor};
pub use suq::{
    compute_scale, dequantize_value, quantize_slice, quantize_value, QuantConfig, Rounding, QMAX,
    QMIN,
};

/// Convenience result alias (errors are shared with `ff-tensor`).
pub type Result<T> = std::result::Result<T, ff_tensor::TensorError>;
