//! Panel packing for the blocked INT8 GEMM engine.
//!
//! The engine in [`crate::gemm`] computes `C[m, n] = Σ_p Â[i, p] · B̂[p, j]`
//! for all three kernel variants (`A·B`, `A·Bᵀ`, `Aᵀ·B`) by first repacking
//! both operands into contiguous `i16` panels.
//!
//! # Layout
//!
//! Depth is processed in **pairs** (`p2 = p / 2`) so the micro-kernel can
//! fold two multiply-adds into one `i16` lane operation (see
//! [`crate::gemm`]'s kernel notes). With `k2 = ⌈k / 2⌉`:
//!
//! - [`PackedA`] stores `Â` as strips of [`MR`] rows. Strip `s` is laid out
//!   `[k2][2][MR]`: element `(i, p)` lives at
//!   `s·k2·2·MR + (p/2)·2·MR + (p%2)·MR + (i − s·MR)`.
//! - [`PackedB`] stores `B̂` as strips of [`NR`] columns, laid out
//!   `[k2][2][NR]` the same way. One micro-kernel step therefore reads two
//!   adjacent full rows of a strip (`p` even, then `p` odd) as contiguous
//!   `i16` runs — ideal for vector loads.
//!
//! Rows/columns beyond the matrix edge — and the odd-`k` tail pair — are
//! zero-padded; zeros contribute nothing to an integer accumulator, which
//! keeps the blocked result bit-identical to the naive kernels.
//!
//! Both packers widen the INT8 codes to `i16` **at pack time**, so the
//! micro-kernel never widens in its innermost loop, and they record whether
//! any code equals `i8::MIN` (−128): the fast pairwise kernel's `i16` pair
//! sums can overflow only when **both** operands carry `−128` (the
//! symmetric quantizer never emits it), in which case the engine falls back
//! to a plain `i32` kernel (see [`PackedA::has_i8_min`]).
//!
//! Transposed variants are handled entirely here: packing `A` from a
//! `[k, m]` buffer (for `Aᵀ·B`) or `B̂` from an `[n, k]` buffer (for `A·Bᵀ`)
//! only changes the gather indices, after which the engine runs one single
//! micro-kernel for every variant.

/// Rows per A micro-panel (micro-kernel tile height).
pub const MR: usize = 2;

/// Columns per B micro-panel (micro-kernel tile width).
pub const NR: usize = 64;

/// Row-block size: rows of `C` accumulated per `i32` staging buffer pass.
pub const MC: usize = 64;

/// Depth-block size: `k` values processed per micro-kernel invocation
/// (always even, so it contains whole pairs).
pub const KC: usize = 256;

/// Column-block size: columns of `C` (and of the packed `B` panel) per
/// outermost block. Must be a multiple of [`NR`].
pub const NC: usize = 256;

/// How a packed operand's source buffer is laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackSource {
    /// The logical matrix equals the stored row-major matrix.
    RowMajor,
    /// The logical matrix is the transpose of the stored row-major matrix.
    Transposed,
}

/// Scans codes for `i8::MIN` separately from the copy loops so the packing
/// copies stay side-effect-free and auto-vectorize. The fold is branch-free
/// on purpose: an early-exit `any` compiles to a scalar loop, while this
/// min-reduction vectorizes.
fn contains_i8_min(codes: &[i8]) -> bool {
    codes.iter().fold(0i8, |lowest, &v| lowest.min(v)) == i8::MIN
}

/// `Â` widened to `i16` and repacked into [`MR`]-row, depth-paired strips.
#[derive(Debug, Clone)]
pub struct PackedA {
    /// Logical row count of `Â` (`m`).
    pub m: usize,
    /// Logical depth (`k`).
    pub k: usize,
    /// Padded pair count, `⌈k / 2⌉`.
    pub k2: usize,
    data: Vec<i16>,
    has_i8_min: bool,
}

impl PackedA {
    /// Packs the logical `m × k` matrix `Â`.
    ///
    /// With [`PackSource::RowMajor`], `codes` is `Â` stored `[m, k]`; with
    /// [`PackSource::Transposed`], `codes` is stored `[k, m]` and is packed
    /// as its transpose (the `Aᵀ·B` variant) without materialising it.
    pub fn pack(codes: &[i8], m: usize, k: usize, source: PackSource) -> Self {
        debug_assert_eq!(codes.len(), m * k);
        let strips = m.div_ceil(MR);
        let k2 = k.div_ceil(2);
        let mut data = vec![0i16; strips * k2 * 2 * MR];
        let has_i8_min = contains_i8_min(codes);
        match source {
            PackSource::RowMajor => {
                // Interleave whole MR-row groups pair-by-pair with forward
                // destination writes so the copy vectorizes as a shuffle.
                for s in 0..strips {
                    let rows = MR.min(m - s * MR);
                    let dst = &mut data[s * k2 * 2 * MR..(s + 1) * k2 * 2 * MR];
                    for ir in 0..rows {
                        let src_row = &codes[(s * MR + ir) * k..(s * MR + ir + 1) * k];
                        let mut chunks = src_row.chunks_exact(2);
                        for (p2, pair) in chunks.by_ref().enumerate() {
                            dst[p2 * 2 * MR + ir] = pair[0] as i16;
                            dst[p2 * 2 * MR + MR + ir] = pair[1] as i16;
                        }
                        if let [tail] = *chunks.remainder() {
                            dst[(k / 2) * 2 * MR + ir] = tail as i16;
                        }
                    }
                }
            }
            PackSource::Transposed => {
                for s in 0..strips {
                    let base = s * k2 * 2 * MR;
                    let rows = MR.min(m - s * MR);
                    for p in 0..k {
                        let src = &codes[p * m + s * MR..p * m + s * MR + rows];
                        let dst_base = base + (p / 2) * 2 * MR + (p % 2) * MR;
                        for (ir, &v) in src.iter().enumerate() {
                            data[dst_base + ir] = v as i16;
                        }
                    }
                }
            }
        }
        PackedA {
            m,
            k,
            k2,
            data,
            has_i8_min,
        }
    }

    /// `true` when any packed code was `i8::MIN` (−128), which rules out the
    /// pairwise `i16` micro-kernel.
    pub fn has_i8_min(&self) -> bool {
        self.has_i8_min
    }

    /// The `kc2 × 2 × MR` slab of strip `s` covering depth pairs
    /// `[pc2, pc2 + kc2)`.
    #[inline]
    pub fn strip_at(&self, s: usize, pc2: usize, kc2: usize) -> &[i16] {
        let base = s * self.k2 * 2 * MR + pc2 * 2 * MR;
        &self.data[base..base + kc2 * 2 * MR]
    }

    /// Bytes held by the packed panels (padded `i16` storage).
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<i16>()
    }
}

/// `B̂` widened to `i16` and repacked into [`NR`]-column, depth-paired
/// strips.
#[derive(Debug, Clone)]
pub struct PackedB {
    /// Logical depth (`k`).
    pub k: usize,
    /// Logical column count of `B̂` (`n`).
    pub n: usize,
    /// Padded pair count, `⌈k / 2⌉`.
    pub k2: usize,
    data: Vec<i16>,
    has_i8_min: bool,
}

impl PackedB {
    /// Packs the logical `k × n` matrix `B̂`.
    ///
    /// With [`PackSource::RowMajor`], `codes` is `B̂` stored `[k, n]`; with
    /// [`PackSource::Transposed`], `codes` is stored `[n, k]` and is packed
    /// as its transpose (the `A·Bᵀ` variant) without materialising it.
    pub fn pack(codes: &[i8], k: usize, n: usize, source: PackSource) -> Self {
        debug_assert_eq!(codes.len(), k * n);
        let strips = n.div_ceil(NR);
        let k2 = k.div_ceil(2);
        let mut data = vec![0i16; strips * k2 * 2 * NR];
        let has_i8_min = contains_i8_min(codes);
        match source {
            PackSource::RowMajor => {
                for t in 0..strips {
                    let base = t * k2 * 2 * NR;
                    let cols = NR.min(n - t * NR);
                    for p in 0..k {
                        let src = &codes[p * n + t * NR..p * n + t * NR + cols];
                        let dst = &mut data[base + (p / 2) * 2 * NR + (p % 2) * NR..][..cols];
                        for (d, &v) in dst.iter_mut().zip(src) {
                            *d = v as i16;
                        }
                    }
                }
            }
            PackSource::Transposed => {
                for t in 0..strips {
                    let base = t * k2 * 2 * NR;
                    let cols = NR.min(n - t * NR);
                    for jr in 0..cols {
                        let src_row = &codes[(t * NR + jr) * k..(t * NR + jr + 1) * k];
                        for (p, &v) in src_row.iter().enumerate() {
                            data[base + (p / 2) * 2 * NR + (p % 2) * NR + jr] = v as i16;
                        }
                    }
                }
            }
        }
        PackedB {
            k,
            n,
            k2,
            data,
            has_i8_min,
        }
    }

    /// `true` when any packed code was `i8::MIN` (−128), which rules out the
    /// pairwise `i16` micro-kernel.
    pub fn has_i8_min(&self) -> bool {
        self.has_i8_min
    }

    /// The `kc2 × 2 × NR` slab of strip `t` covering depth pairs
    /// `[pc2, pc2 + kc2)`.
    #[inline]
    pub fn strip_at(&self, t: usize, pc2: usize, kc2: usize) -> &[i16] {
        let base = t * self.k2 * 2 * NR + pc2 * 2 * NR;
        &self.data[base..base + kc2 * 2 * NR]
    }

    /// Bytes held by the packed panels (padded `i16` storage).
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<i16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_codes(len: usize) -> Vec<i8> {
        (0..len)
            .map(|i| (((i * 37 + 11) % 255) as i8).max(-127))
            .collect()
    }

    fn a_elem(packed: &PackedA, i: usize, p: usize) -> i16 {
        let slab = packed.strip_at(i / MR, p / 2, 1);
        slab[(p % 2) * MR + i % MR]
    }

    fn b_elem(packed: &PackedB, p: usize, j: usize) -> i16 {
        let slab = packed.strip_at(j / NR, p / 2, 1);
        slab[(p % 2) * NR + j % NR]
    }

    #[test]
    fn packed_a_row_major_roundtrip() {
        let (m, k) = (11, 5); // non-multiples of MR and of the pair size
        let codes = sample_codes(m * k);
        let packed = PackedA::pack(&codes, m, k, PackSource::RowMajor);
        for i in 0..m {
            for p in 0..k {
                assert_eq!(a_elem(&packed, i, p), codes[i * k + p] as i16, "({i}, {p})");
            }
        }
        // Padding rows and the odd-k tail half-pair are zero.
        let last = packed.strip_at(m / MR, 0, packed.k2);
        for p in 0..k {
            for ir in (m % MR)..MR {
                assert_eq!(last[(p / 2) * 2 * MR + (p % 2) * MR + ir], 0);
            }
        }
        if k % 2 == 1 {
            for i in 0..m {
                assert_eq!(
                    a_elem(&packed, i, k),
                    0,
                    "odd-k tail half-pair must be zero"
                );
            }
        }
    }

    #[test]
    fn packed_a_transposed_matches_row_major_of_transpose() {
        let (m, k) = (9, 7);
        // `stored` is [k, m]; logical A is its transpose [m, k].
        let stored = sample_codes(k * m);
        let mut logical = vec![0i8; m * k];
        for p in 0..k {
            for i in 0..m {
                logical[i * k + p] = stored[p * m + i];
            }
        }
        let via_transpose = PackedA::pack(&stored, m, k, PackSource::Transposed);
        let via_row_major = PackedA::pack(&logical, m, k, PackSource::RowMajor);
        assert_eq!(via_transpose.data, via_row_major.data);
    }

    #[test]
    fn packed_b_row_major_roundtrip() {
        let (k, n) = (7, 70); // non-multiples of the pair size and of NR
        let codes = sample_codes(k * n);
        let packed = PackedB::pack(&codes, k, n, PackSource::RowMajor);
        for p in 0..k {
            for j in 0..n {
                assert_eq!(b_elem(&packed, p, j), codes[p * n + j] as i16, "({p}, {j})");
            }
        }
    }

    #[test]
    fn packed_b_transposed_matches_row_major_of_transpose() {
        let (k, n) = (5, 66);
        // `stored` is [n, k]; logical B̂ is its transpose [k, n].
        let stored = sample_codes(n * k);
        let mut logical = vec![0i8; k * n];
        for j in 0..n {
            for p in 0..k {
                logical[p * n + j] = stored[j * k + p];
            }
        }
        let via_transpose = PackedB::pack(&stored, k, n, PackSource::Transposed);
        let via_row_major = PackedB::pack(&logical, k, n, PackSource::RowMajor);
        assert_eq!(via_transpose.data, via_row_major.data);
    }

    #[test]
    fn strip_at_pair_offsets_are_contiguous() {
        let (k, n) = (64, NR);
        let codes = sample_codes(k * n);
        let packed = PackedB::pack(&codes, k, n, PackSource::RowMajor);
        let full = packed.strip_at(0, 0, packed.k2);
        let tail = packed.strip_at(0, 8, packed.k2 - 8);
        assert_eq!(&full[8 * 2 * NR..], tail);
    }

    #[test]
    fn i8_min_detection() {
        let mut codes = sample_codes(4 * 4);
        assert!(!PackedA::pack(&codes, 4, 4, PackSource::RowMajor).has_i8_min());
        assert!(!PackedB::pack(&codes, 4, 4, PackSource::RowMajor).has_i8_min());
        codes[7] = i8::MIN;
        assert!(PackedA::pack(&codes, 4, 4, PackSource::RowMajor).has_i8_min());
        assert!(PackedB::pack(&codes, 4, 4, PackSource::Transposed).has_i8_min());
    }
}
