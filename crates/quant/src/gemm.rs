//! INT8 matrix multiplication with INT32 accumulation.
//!
//! This mirrors the MAC phase of the FF-INT8 dataflow (paper Fig. 4):
//! `i8 × i8 → i32` products accumulated in `i32`, dequantized once per output
//! element with the product of the two operand scales.

use crate::{QuantTensor, Result};
use ff_tensor::{Tensor, TensorError};

fn check_rank2(q: &QuantTensor, op: &'static str) -> Result<(usize, usize)> {
    if q.shape().len() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: q.shape().len(),
            op,
        });
    }
    Ok((q.shape()[0], q.shape()[1]))
}

/// Multiplies two quantized matrices `[m, k] × [k, n]`, accumulating in `i32`
/// and returning the dequantized `f32` result.
///
/// # Errors
///
/// Returns rank or shape errors when the operands are not conformable.
///
/// # Examples
///
/// ```
/// use ff_quant::{int8_matmul, QuantTensor, Rounding};
/// use ff_tensor::Tensor;
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let a = QuantTensor::quantize(&Tensor::from_vec(&[1, 2], vec![1.0, 2.0])?, Rounding::Nearest);
/// let b = QuantTensor::quantize(&Tensor::from_vec(&[2, 1], vec![0.5, 0.25])?, Rounding::Nearest);
/// let c = int8_matmul(&a, &b)?;
/// assert!((c.data()[0] - 1.0).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn int8_matmul(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
    let (m, ka) = check_rank2(a, "int8_matmul")?;
    let (kb, n) = check_rank2(b, "int8_matmul")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "int8_matmul",
        });
    }
    let mut acc = vec![0i32; m * n];
    let a_codes = a.codes();
    let b_codes = b.codes();
    for i in 0..m {
        let a_row = &a_codes[i * ka..(i + 1) * ka];
        let out_row = &mut acc[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0 {
                continue;
            }
            let a_ip = a_ip as i32;
            let b_row = &b_codes[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj as i32;
            }
        }
    }
    let scale = a.scale() * b.scale();
    let data: Vec<f32> = acc.into_iter().map(|v| v as f32 * scale).collect();
    Tensor::from_vec(&[m, n], data)
}

/// Multiplies `a [m, k]` by the transpose of `b [n, k]`, i.e. `a × bᵀ`,
/// accumulating in `i32` and dequantizing the result.
///
/// This is the kernel used by dense layers whose weights are stored
/// `[out, in]` and by the im2col convolution path.
///
/// # Errors
///
/// Returns rank or shape errors when the operands are not conformable.
pub fn int8_matmul_a_bt(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
    let (m, ka) = check_rank2(a, "int8_matmul_a_bt")?;
    let (n, kb) = check_rank2(b, "int8_matmul_a_bt")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "int8_matmul_a_bt",
        });
    }
    let a_codes = a.codes();
    let b_codes = b.codes();
    let mut out = vec![0.0f32; m * n];
    let scale = a.scale() * b.scale();
    for i in 0..m {
        let a_row = &a_codes[i * ka..(i + 1) * ka];
        for j in 0..n {
            let b_row = &b_codes[j * kb..(j + 1) * kb];
            let acc: i32 = a_row
                .iter()
                .zip(b_row)
                .map(|(&x, &y)| x as i32 * y as i32)
                .sum();
            out[i * n + j] = acc as f32 * scale;
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// Multiplies the transpose of `a [k, m]` by `b [k, n]`, i.e. `aᵀ × b`,
/// accumulating in `i32` and dequantizing the result.
///
/// This is the kernel used for weight gradients `gW = gYᵀ · A` where both the
/// output gradient and the cached input are INT8 (paper Fig. 4).
///
/// # Errors
///
/// Returns rank or shape errors when the operands are not conformable.
pub fn int8_matmul_at_b(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
    let (ka, m) = check_rank2(a, "int8_matmul_at_b")?;
    let (kb, n) = check_rank2(b, "int8_matmul_at_b")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "int8_matmul_at_b",
        });
    }
    let a_codes = a.codes();
    let b_codes = b.codes();
    let mut acc = vec![0i32; m * n];
    for p in 0..ka {
        let a_row = &a_codes[p * m..(p + 1) * m];
        let b_row = &b_codes[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0 {
                continue;
            }
            let a_pi = a_pi as i32;
            let out_row = &mut acc[i * n..(i + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_pi * b_pj as i32;
            }
        }
    }
    let scale = a.scale() * b.scale();
    let data: Vec<f32> = acc.into_iter().map(|v| v as f32 * scale).collect();
    Tensor::from_vec(&[m, n], data)
}

/// Counts the `i8` multiply and add operations performed by an
/// `[m, k] × [k, n]` INT8 GEMM, matching the accounting used in the paper's
/// Table IV (one MUL and one ADD per fused MAC).
pub fn int8_gemm_op_count(m: usize, k: usize, n: usize) -> (u64, u64) {
    let macs = (m * k * n) as u64;
    (macs, macs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QuantConfig, Rounding};
    use ff_tensor::linalg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quantize(t: &Tensor, seed: u64) -> QuantTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        QuantTensor::quantize_with_rng(t, QuantConfig::new(Rounding::Nearest), &mut rng)
    }

    #[test]
    fn int8_matmul_approximates_fp32_matmul() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = ff_tensor::init::uniform(&[8, 16], -1.0, 1.0, &mut rng);
        let b = ff_tensor::init::uniform(&[16, 4], -1.0, 1.0, &mut rng);
        let exact = linalg::matmul(&a, &b).unwrap();
        let approx = int8_matmul(&quantize(&a, 1), &quantize(&b, 2)).unwrap();
        let rel_err = exact.sub(&approx).unwrap().frobenius_norm() / exact.frobenius_norm();
        assert!(rel_err < 0.05, "relative error {rel_err}");
    }

    #[test]
    fn transposed_variant_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = ff_tensor::init::uniform(&[5, 7], -1.0, 1.0, &mut rng);
        let b = ff_tensor::init::uniform(&[3, 7], -1.0, 1.0, &mut rng);
        let qa = quantize(&a, 1);
        let qb = quantize(&b, 2);
        let direct = int8_matmul_a_bt(&qa, &qb).unwrap();
        let bt = linalg::transpose(&b).unwrap();
        let explicit = int8_matmul(&qa, &quantize(&bt, 2)).unwrap();
        let diff = direct.sub(&explicit).unwrap().max_abs();
        assert!(diff < 1e-2, "diff {diff}");
    }

    #[test]
    fn shape_errors_are_reported() {
        let a = quantize(&Tensor::ones(&[2, 3]), 0);
        let b = quantize(&Tensor::ones(&[4, 5]), 0);
        assert!(int8_matmul(&a, &b).is_err());
        assert!(int8_matmul_a_bt(&a, &b).is_err());
        let v = quantize(&Tensor::ones(&[3]), 0);
        assert!(int8_matmul(&v, &a).is_err());
    }

    #[test]
    fn at_b_variant_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = ff_tensor::init::uniform(&[6, 4], -1.0, 1.0, &mut rng);
        let b = ff_tensor::init::uniform(&[6, 5], -1.0, 1.0, &mut rng);
        let qa = quantize(&a, 1);
        let qb = quantize(&b, 2);
        let direct = int8_matmul_at_b(&qa, &qb).unwrap();
        let at = linalg::transpose(&a).unwrap();
        let explicit = int8_matmul(&quantize(&at, 1), &qb).unwrap();
        let diff = direct.sub(&explicit).unwrap().max_abs();
        assert!(diff < 2e-2, "diff {diff}");
        assert!(int8_matmul_at_b(&qa, &quantize(&Tensor::ones(&[3, 3]), 0)).is_err());
    }

    #[test]
    fn op_count_matches_mk_n() {
        let (mul, add) = int8_gemm_op_count(10, 20, 30);
        assert_eq!(mul, 6000);
        assert_eq!(add, 6000);
    }

    #[test]
    fn identity_quantized_matmul_is_near_exact() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 0.5, -0.5, 0.25]).unwrap();
        let id = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let out = int8_matmul(&quantize(&a, 1), &quantize(&id, 2)).unwrap();
        for (x, y) in out.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 0.02);
        }
    }
}
