//! Packed, blocked, multi-threaded INT8 GEMM with INT32 accumulation.
//!
//! This is the MAC phase of the FF-INT8 dataflow (paper Fig. 4): `i8 × i8 →
//! i32` products accumulated in `i32`, dequantized once per output element
//! with the product of the two operand scales.
//!
//! # Engine structure
//!
//! All three kernel variants route through **one** blocked micro-kernel:
//!
//! | entry point          | operands            | packing                          |
//! |----------------------|---------------------|----------------------------------|
//! | [`int8_matmul`]      | `A[m,k] · B[k,n]`   | `A` row-major, `B` row-major     |
//! | [`int8_matmul_a_bt`] | `A[m,k] · B[n,k]ᵀ`  | `A` row-major, `B` transposed    |
//! | [`int8_matmul_at_b`] | `A[k,m]ᵀ · B[k,n]`  | `A` transposed, `B` row-major    |
//!
//! Operands are repacked into contiguous `i16` panels ([`crate::pack`]):
//! `A` into [`crate::pack::MR`]-row strips, `B` into [`crate::pack::NR`]-column strips,
//! both with depth laid out in **pairs** and zero-padded at the edges. The
//! `int8_matmul_*` entry points pack both operands per call;
//! [`int8_gemm_prepacked`] accepts operands that are already in panel form,
//! which is how the plan cache ([`crate::plan`]) amortizes weight packing
//! across training steps. Either way the engine then runs the classic
//! three-level blocking ([`crate::pack::NC`] columns → [`crate::pack::KC`] depth →
//! [`crate::pack::MC`] rows) with an `MR × NR` register tile accumulated into a
//! per-thread `i32` staging buffer, and shards output row panels across
//! worker threads with [`ff_tensor::par::shard_rows`] above the parallel
//! threshold.
//!
//! # The pairwise `i16` micro-kernel
//!
//! Symmetric INT8 quantization emits codes in `[−127, 127]`
//! ([`crate::QMIN`]..=[`crate::QMAX`]), so a product of two codes is at most
//! `127² = 16129` and a **sum of two products** is at most `32258` — which
//! still fits in an `i16`. The hot kernel exploits this: for each depth
//! pair it computes `a₀·b₀ + a₁·b₁` entirely in `i16` lanes (compiling to
//! cheap 1-µop vector `i16` multiplies/adds, the same arithmetic shape as
//! x86's `pmaddwd`) and only then widens into the `i32` accumulator —
//! folding two MACs into roughly half the vector work of a widening `i32`
//! multiply. Tensors built via [`QuantTensor::from_codes`] may contain
//! `−128`; when **both** operands do, a pair sum can reach `2·(−128)² =
//! 32768` and overflow. Packing detects this
//! ([`crate::pack::PackedA::has_i8_min`]) and the engine falls back to a
//! plain `i32` kernel on the same layout, so results stay exact for every
//! input (a single `−128`-bearing operand is safe: `2·128·127 = 32512`
//! still fits).
//!
//! Integer addition is associative, so the blocked accumulation order is
//! **bit-identical** to the naive triple loop (the [`mod@reference`] kernels)
//! in both kernels, which the property tests in `tests/proptests.rs` assert
//! exactly.
//!
//! # Fused epilogue
//!
//! Dequantization (`acc · scale_a·scale_b`) happens in the epilogue while an
//! output tile is still cache-hot, optionally fused with a per-column bias
//! add and ReLU (+ gradient-mask capture) via [`int8_matmul_a_bt_fused`] —
//! the hook the dense/conv layers use to avoid separate bias/activation
//! passes over the output.

use crate::pack::{PackSource, PackedA, PackedB, KC, MC, MR, NC, NR};
use crate::{QuantTensor, Result};
use ff_tensor::par::{shard_rows, worker_count};
use ff_tensor::{Tensor, TensorError};

/// Which of the three GEMM shapes to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmVariant {
    /// `C = A · B` with `A [m, k]`, `B [k, n]`.
    AB,
    /// `C = A · Bᵀ` with `A [m, k]`, `B [n, k]` (dense/conv forward).
    ABt,
    /// `C = Aᵀ · B` with `A [k, m]`, `B [k, n]` (weight gradients).
    AtB,
}

fn check_rank2(q: &QuantTensor, op: &'static str) -> Result<(usize, usize)> {
    if q.shape().len() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: q.shape().len(),
            op,
        });
    }
    Ok((q.shape()[0], q.shape()[1]))
}

fn resolve_dims(
    variant: GemmVariant,
    a: &QuantTensor,
    b: &QuantTensor,
) -> Result<(usize, usize, usize)> {
    let op = match variant {
        GemmVariant::AB => "int8_matmul",
        GemmVariant::ABt => "int8_matmul_a_bt",
        GemmVariant::AtB => "int8_matmul_at_b",
    };
    let (a0, a1) = check_rank2(a, op)?;
    let (b0, b1) = check_rank2(b, op)?;
    let (m, ka, kb, n) = match variant {
        GemmVariant::AB => (a0, a1, b0, b1),
        GemmVariant::ABt => (a0, a1, b1, b0),
        GemmVariant::AtB => (a1, a0, b0, b1),
    };
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op,
        });
    }
    Ok((m, ka, n))
}

/// The full-control engine entry point: computes the requested variant with
/// an optional fused epilogue and an optional explicit thread count.
///
/// - `bias`: per-column bias (length `n`) added after dequantization.
/// - `relu`: clamp negatives to zero; the returned second tensor is the
///   gradient mask (`1.0` where the pre-activation was positive).
/// - `threads`: `None` picks automatically ([`ff_tensor::par::worker_count`]);
///   `Some(t)` forces `t` workers (benchmarks use this for thread sweeps).
///
/// # Errors
///
/// Returns rank/shape errors when the operands are not conformable or the
/// bias length is not `n`.
pub fn int8_gemm(
    variant: GemmVariant,
    a: &QuantTensor,
    b: &QuantTensor,
    bias: Option<&Tensor>,
    relu: bool,
    threads: Option<usize>,
) -> Result<(Tensor, Option<Tensor>)> {
    let (m, k, n) = resolve_dims(variant, a, b)?;
    let (packed_a, packed_b) = match variant {
        GemmVariant::AB => (
            PackedA::pack(a.codes(), m, k, PackSource::RowMajor),
            PackedB::pack(b.codes(), k, n, PackSource::RowMajor),
        ),
        GemmVariant::ABt => (
            PackedA::pack(a.codes(), m, k, PackSource::RowMajor),
            PackedB::pack(b.codes(), k, n, PackSource::Transposed),
        ),
        GemmVariant::AtB => (
            PackedA::pack(a.codes(), m, k, PackSource::Transposed),
            PackedB::pack(b.codes(), k, n, PackSource::RowMajor),
        ),
    };
    int8_gemm_prepacked(
        &packed_a,
        &packed_b,
        a.scale() * b.scale(),
        bias,
        relu,
        threads,
    )
}

/// The pre-packed engine entry point: runs the blocked kernel over operands
/// that are **already** in panel form, skipping the per-call `O(mk + kn)`
/// quantize-and-pack tax.
///
/// This is the primitive the plan cache ([`crate::plan`]) builds on: a
/// layer's weight is packed once per optimizer step and this function is
/// called with the cached panels every forward/backward. The logical GEMM
/// shape is recovered from the panels (`m` from `packed_a`, `n` from
/// `packed_b`); which of the three variants is computed was decided at pack
/// time by the [`PackSource`] the operands were packed with.
///
/// `scale` is the product of the two operands' quantization scales, applied
/// during the dequantization epilogue. `bias`, `relu` and `threads` behave
/// exactly as in [`int8_gemm`].
///
/// # Errors
///
/// Returns a shape error when the operands' packed depths disagree or the
/// bias length is not `n`.
pub fn int8_gemm_prepacked(
    packed_a: &PackedA,
    packed_b: &PackedB,
    scale: f32,
    bias: Option<&Tensor>,
    relu: bool,
    threads: Option<usize>,
) -> Result<(Tensor, Option<Tensor>)> {
    let epilogue = Epilogue {
        scale: ScaleSpec::Uniform(scale),
        bias,
        relu,
    };
    int8_gemm_prepacked_inner(packed_a, packed_b, &epilogue, relu, threads)
}

/// [`int8_gemm_prepacked`] with a **per-row** dequantization scale and no
/// gradient-mask output — the inference entry point.
///
/// Output row `i` is dequantized with `row_scales[i] * b_scale`, which is
/// what a per-row-quantized activation batch ([`crate::RowQuantTensor`])
/// against a shared per-tensor weight plan needs: every output row then
/// depends only on its own input row, so results are bit-identical no matter
/// how rows are batched together. `relu` clamps negatives in the epilogue;
/// no mask is produced because inference has no backward pass.
///
/// # Errors
///
/// Returns shape errors when the packed depths disagree, `row_scales` is not
/// one scale per output row, or the bias length is not `n`.
pub fn int8_gemm_prepacked_rowscale(
    packed_a: &PackedA,
    packed_b: &PackedB,
    row_scales: &[f32],
    b_scale: f32,
    bias: Option<&Tensor>,
    relu: bool,
    threads: Option<usize>,
) -> Result<Tensor> {
    if row_scales.len() != packed_a.m {
        return Err(TensorError::ShapeMismatch {
            left: vec![row_scales.len()],
            right: vec![packed_a.m],
            op: "int8_gemm_prepacked_rowscale row_scales",
        });
    }
    let epilogue = Epilogue {
        scale: ScaleSpec::PerRow {
            row_scales,
            b_scale,
        },
        bias,
        relu,
    };
    Ok(int8_gemm_prepacked_inner(packed_a, packed_b, &epilogue, false, threads)?.0)
}

fn int8_gemm_prepacked_inner(
    packed_a: &PackedA,
    packed_b: &PackedB,
    epilogue: &Epilogue<'_>,
    want_mask: bool,
    threads: Option<usize>,
) -> Result<(Tensor, Option<Tensor>)> {
    let (m, k, n) = (packed_a.m, packed_a.k, packed_b.n);
    if packed_a.k != packed_b.k {
        return Err(TensorError::ShapeMismatch {
            left: vec![m, packed_a.k],
            right: vec![packed_b.k, n],
            op: "int8_gemm_prepacked",
        });
    }
    if let Some(bias) = epilogue.bias {
        if bias.len() != n {
            return Err(TensorError::ShapeMismatch {
                left: bias.shape().to_vec(),
                right: vec![n],
                op: "int8_gemm bias",
            });
        }
    }
    let threads = threads.unwrap_or_else(|| worker_count(m * n * k, m.div_ceil(MR)));
    let mut out = vec![0.0f32; m * n];
    let mut mask = if want_mask {
        vec![0.0f32; m * n]
    } else {
        Vec::new()
    };
    let mask_slice = if want_mask { Some(&mut mask[..]) } else { None };
    shard_rows(
        &mut out,
        mask_slice,
        n.max(1),
        MR,
        threads,
        |first_row, panel, mut mask_panel| {
            gemm_worker(
                packed_a,
                packed_b,
                first_row,
                panel,
                mask_panel.as_deref_mut(),
                epilogue,
            );
        },
    )?;
    let out = Tensor::from_vec(&[m, n], out)?;
    let mask = if want_mask {
        Some(Tensor::from_vec(&[m, n], mask)?)
    } else {
        None
    };
    Ok((out, mask))
}

/// How the epilogue dequantizes `i32` accumulators into `f32` output.
#[derive(Debug, Clone, Copy)]
enum ScaleSpec<'a> {
    /// One scale for the whole output (product of two per-tensor scales).
    Uniform(f32),
    /// Per-output-row scales: row `i` uses `row_scales[i] * b_scale`
    /// (per-row-quantized `A` against a per-tensor-quantized `B`).
    PerRow { row_scales: &'a [f32], b_scale: f32 },
}

impl ScaleSpec<'_> {
    #[inline]
    fn for_row(&self, row: usize) -> f32 {
        match *self {
            ScaleSpec::Uniform(s) => s,
            ScaleSpec::PerRow {
                row_scales,
                b_scale,
            } => row_scales[row] * b_scale,
        }
    }
}

/// The fused post-GEMM pass: dequantization scale(s), optional per-column
/// bias, optional ReLU clamp.
#[derive(Debug, Clone, Copy)]
struct Epilogue<'a> {
    scale: ScaleSpec<'a>,
    bias: Option<&'a Tensor>,
    relu: bool,
}

/// Runs the blocked kernel for one thread's panel of output rows.
///
/// Loop nest (GotoBLAS-style): `jc` over [`NC`]-column blocks → `ic` over
/// [`MC`]-row blocks → `pc2` over [`KC`]-depth blocks (in pairs) →
/// `MR × NR` register tiles accumulated into an `i32` staging buffer,
/// followed by the dequantize(+bias+ReLU) epilogue over the finished block.
fn gemm_worker(
    packed_a: &PackedA,
    packed_b: &PackedB,
    first_row: usize,
    panel: &mut [f32],
    mut mask_panel: Option<&mut [f32]>,
    epilogue: &Epilogue<'_>,
) {
    let bias = epilogue.bias.map(Tensor::data);
    let n = packed_b.n;
    let k2 = packed_a.k2;
    if n == 0 {
        return;
    }
    // A pair sum can only overflow i16 when BOTH factors can be −128
    // (2·(−128)² = 32768; with one operand bounded by 127 the worst case is
    // 2·128·127 = 32512, still in range). −128 codes are only possible via
    // `from_codes`, so this almost always stays on the fast kernel.
    let pairwise = !(packed_a.has_i8_min() && packed_b.has_i8_min());
    let rows = panel.len() / n;
    debug_assert_eq!(first_row % MR, 0, "panels must be MR-aligned");
    let first_strip = first_row / MR;
    // i32 staging tile for one MC × NC block.
    let mut cbuf = vec![0i32; MC * NC];
    for jc in (0..n).step_by(NC) {
        let nc_real = NC.min(n - jc);
        let nc_pad = nc_real.div_ceil(NR) * NR;
        for ic in (0..rows).step_by(MC) {
            let mc_real = MC.min(rows - ic);
            let mc_pad = mc_real.div_ceil(MR) * MR;
            if k2 == 0 {
                cbuf[..mc_pad * nc_pad].fill(0);
            }
            for pc2 in (0..k2).step_by(KC / 2) {
                let kc2 = (KC / 2).min(k2 - pc2);
                // The first depth block overwrites the staging tile instead
                // of accumulating, which saves zero-filling `cbuf`.
                let overwrite = pc2 == 0;
                // GotoBLAS loop order: B strip outer, A strips inner, so one
                // `b_slab` stays cache-resident across every A strip of the
                // row block — the reuse that makes batched inference GEMMs
                // (several A strips, shared weights) scale past single-row
                // cost. Tile results are independent, so this ordering is
                // bit-identical to any other.
                for js in 0..nc_pad / NR {
                    let b_slab = packed_b.strip_at(jc / NR + js, pc2, kc2);
                    for is in 0..mc_pad / MR {
                        let a_slab = packed_a.strip_at(first_strip + (ic / MR) + is, pc2, kc2);
                        let c_tile = &mut cbuf[(is * MR) * nc_pad + js * NR..];
                        if pairwise {
                            micro_kernel_pairwise(a_slab, b_slab, kc2, c_tile, nc_pad, overwrite);
                        } else {
                            micro_kernel_i32(a_slab, b_slab, kc2, c_tile, nc_pad, overwrite);
                        }
                    }
                }
            }
            // Epilogue: dequantize the finished block while it is cache-hot,
            // fusing bias and ReLU(+mask) when requested.
            for r in 0..mc_real {
                let acc_row = &cbuf[r * nc_pad..r * nc_pad + nc_real];
                let row = ic + r;
                let scale = epilogue.scale.for_row(first_row + row);
                let out_row = &mut panel[row * n + jc..row * n + jc + nc_real];
                match bias {
                    Some(bias) => {
                        let bias_seg = &bias[jc..jc + nc_real];
                        for ((o, &acc), &bj) in out_row.iter_mut().zip(acc_row).zip(bias_seg) {
                            *o = acc as f32 * scale + bj;
                        }
                    }
                    None => {
                        for (o, &acc) in out_row.iter_mut().zip(acc_row) {
                            *o = acc as f32 * scale;
                        }
                    }
                }
                if epilogue.relu {
                    match mask_panel.as_deref_mut() {
                        Some(mask_panel) => {
                            let mask_row = &mut mask_panel[row * n + jc..row * n + jc + nc_real];
                            for (o, mk) in out_row.iter_mut().zip(mask_row) {
                                if *o > 0.0 {
                                    *mk = 1.0;
                                } else {
                                    *o = 0.0;
                                    *mk = 0.0;
                                }
                            }
                        }
                        None => {
                            // Same predicate as the mask path (`> 0.0`
                            // keeps, everything else — including −0.0 and
                            // NaN — becomes +0.0) so the two ReLU paths stay
                            // bit-identical for every input.
                            for o in out_row.iter_mut() {
                                *o = if *o > 0.0 { *o } else { 0.0 };
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The hot `MR × NR` micro-kernel shared by every variant: multiplies a
/// `kc2 × 2 × MR` A-slab against a `kc2 × 2 × NR` B-slab, folding each depth
/// pair into one `i16` lane sum (`a₀·b₀ + a₁·b₁ ≤ 2·127² = 32258`, which
/// cannot wrap for codes in `[−127, 127]`) before widening into the register
/// tile, which is added to the `i32` staging buffer once per invocation.
#[inline]
fn micro_kernel_pairwise(
    a_slab: &[i16],
    b_slab: &[i16],
    kc2: usize,
    c: &mut [i32],
    c_stride: usize,
    overwrite: bool,
) {
    let mut acc = [[0i32; NR]; MR];
    for p2 in 0..kc2 {
        let a_pair = &a_slab[p2 * 2 * MR..(p2 + 1) * 2 * MR];
        let b_even = &b_slab[p2 * 2 * NR..p2 * 2 * NR + NR];
        let b_odd = &b_slab[p2 * 2 * NR + NR..(p2 + 1) * 2 * NR];
        for (ir, acc_row) in acc.iter_mut().enumerate() {
            let a_even = a_pair[ir];
            let a_odd = a_pair[MR + ir];
            for ((acc_elem, &b0), &b1) in acc_row.iter_mut().zip(b_even).zip(b_odd) {
                // In-range codes make both wrapping ops exact; see above.
                let pair_sum = a_even.wrapping_mul(b0).wrapping_add(a_odd.wrapping_mul(b1));
                *acc_elem += pair_sum as i32;
            }
        }
    }
    store_tile(&acc, c, c_stride, overwrite);
}

/// Fallback micro-kernel with `i32` lane arithmetic, used when an operand
/// contains `i8::MIN` and the pairwise `i16` sums could wrap. Same slab
/// layout and same (order-independent) integer result.
#[inline]
fn micro_kernel_i32(
    a_slab: &[i16],
    b_slab: &[i16],
    kc2: usize,
    c: &mut [i32],
    c_stride: usize,
    overwrite: bool,
) {
    let mut acc = [[0i32; NR]; MR];
    for p2 in 0..kc2 {
        let a_pair = &a_slab[p2 * 2 * MR..(p2 + 1) * 2 * MR];
        let b_even = &b_slab[p2 * 2 * NR..p2 * 2 * NR + NR];
        let b_odd = &b_slab[p2 * 2 * NR + NR..(p2 + 1) * 2 * NR];
        for (ir, acc_row) in acc.iter_mut().enumerate() {
            let a_even = a_pair[ir] as i32;
            let a_odd = a_pair[MR + ir] as i32;
            for ((acc_elem, &b0), &b1) in acc_row.iter_mut().zip(b_even).zip(b_odd) {
                *acc_elem += a_even * b0 as i32 + a_odd * b1 as i32;
            }
        }
    }
    store_tile(&acc, c, c_stride, overwrite);
}

#[inline]
fn store_tile(acc: &[[i32; NR]; MR], c: &mut [i32], c_stride: usize, overwrite: bool) {
    for (ir, acc_row) in acc.iter().enumerate() {
        let c_row = &mut c[ir * c_stride..ir * c_stride + NR];
        if overwrite {
            c_row.copy_from_slice(acc_row);
        } else {
            for (c_elem, &a) in c_row.iter_mut().zip(acc_row) {
                *c_elem += a;
            }
        }
    }
}

/// Multiplies two quantized matrices `[m, k] × [k, n]`, accumulating in `i32`
/// and returning the dequantized `f32` result.
///
/// # Errors
///
/// Returns rank or shape errors when the operands are not conformable.
///
/// # Examples
///
/// ```
/// use ff_quant::{int8_matmul, QuantTensor, Rounding};
/// use ff_tensor::Tensor;
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let a = QuantTensor::quantize(&Tensor::from_vec(&[1, 2], vec![1.0, 2.0])?, Rounding::Nearest);
/// let b = QuantTensor::quantize(&Tensor::from_vec(&[2, 1], vec![0.5, 0.25])?, Rounding::Nearest);
/// let c = int8_matmul(&a, &b)?;
/// assert!((c.data()[0] - 1.0).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn int8_matmul(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
    Ok(int8_gemm(GemmVariant::AB, a, b, None, false, None)?.0)
}

/// Multiplies `a [m, k]` by the transpose of `b [n, k]`, i.e. `a × bᵀ`,
/// accumulating in `i32` and dequantizing the result.
///
/// This is the kernel used by dense layers whose weights are stored
/// `[out, in]` and by the im2col convolution path.
///
/// # Errors
///
/// Returns rank or shape errors when the operands are not conformable.
pub fn int8_matmul_a_bt(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
    Ok(int8_gemm(GemmVariant::ABt, a, b, None, false, None)?.0)
}

/// [`int8_matmul_a_bt`] with the fused epilogue: per-column `bias` added
/// after dequantization and an optional ReLU whose gradient mask is returned
/// alongside the output. This is the entry point the dense/conv forward
/// passes use so no separate bias/activation pass touches the output again.
///
/// # Errors
///
/// Returns rank/shape errors when operands are not conformable or `bias` is
/// not a length-`n` vector.
///
/// # Examples
///
/// ```
/// use ff_quant::{int8_matmul_a_bt_fused, QuantTensor, Rounding};
/// use ff_tensor::Tensor;
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let x = QuantTensor::quantize(&Tensor::from_vec(&[1, 2], vec![1.0, -1.0])?, Rounding::Nearest);
/// let w = QuantTensor::quantize(&Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0])?, Rounding::Nearest);
/// let bias = Tensor::from_vec(&[2], vec![0.0, 0.0])?;
/// let (y, mask) = int8_matmul_a_bt_fused(&x, &w, Some(&bias), true)?;
/// assert!(y.data()[1] == 0.0); // ReLU clamped the negative lane
/// assert_eq!(mask.unwrap().data()[1], 0.0);
/// # Ok(())
/// # }
/// ```
pub fn int8_matmul_a_bt_fused(
    a: &QuantTensor,
    b: &QuantTensor,
    bias: Option<&Tensor>,
    relu: bool,
) -> Result<(Tensor, Option<Tensor>)> {
    int8_gemm(GemmVariant::ABt, a, b, bias, relu, None)
}

/// Multiplies the transpose of `a [k, m]` by `b [k, n]`, i.e. `aᵀ × b`,
/// accumulating in `i32` and dequantizing the result.
///
/// This is the kernel used for weight gradients `gW = gYᵀ · A` where both the
/// output gradient and the cached input are INT8 (paper Fig. 4).
///
/// # Errors
///
/// Returns rank or shape errors when the operands are not conformable.
pub fn int8_matmul_at_b(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
    Ok(int8_gemm(GemmVariant::AtB, a, b, None, false, None)?.0)
}

/// Counts the `i8` multiply and add operations performed by an
/// `[m, k] × [k, n]` INT8 GEMM, matching the accounting used in the paper's
/// Table IV (one MUL and one ADD per fused MAC).
pub fn int8_gemm_op_count(m: usize, k: usize, n: usize) -> (u64, u64) {
    let macs = (m * k * n) as u64;
    (macs, macs)
}

pub mod reference {
    //! Naive single-threaded triple-loop kernels.
    //!
    //! These are the **test oracles** for the packed engine: integer
    //! accumulation is order-independent, so the blocked kernels must match
    //! them bit-exactly for every shape (asserted by the property tests and
    //! compared against in `bench_gemm`). They are not used on any hot path.

    use super::{check_rank2, resolve_dims, GemmVariant};
    use crate::{QuantTensor, Result};
    use ff_tensor::Tensor;

    /// Naive `A[m,k] · B[k,n]` with `i32` accumulation.
    ///
    /// # Errors
    ///
    /// Returns rank or shape errors when the operands are not conformable.
    pub fn int8_matmul(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
        let (m, k, n) = resolve_dims(GemmVariant::AB, a, b)?;
        let mut acc = vec![0i32; m * n];
        let a_codes = a.codes();
        let b_codes = b.codes();
        for i in 0..m {
            let a_row = &a_codes[i * k..(i + 1) * k];
            let out_row = &mut acc[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0 {
                    continue;
                }
                let a_ip = a_ip as i32;
                let b_row = &b_codes[p * n..(p + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b_pj as i32;
                }
            }
        }
        dequantize(acc, m, n, a.scale() * b.scale())
    }

    /// Naive `A[m,k] · B[n,k]ᵀ` with `i32` accumulation.
    ///
    /// # Errors
    ///
    /// Returns rank or shape errors when the operands are not conformable.
    pub fn int8_matmul_a_bt(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
        let (m, ka) = check_rank2(a, "int8_matmul_a_bt")?;
        let (_, k, n) = resolve_dims(GemmVariant::ABt, a, b)?;
        debug_assert_eq!(ka, k);
        let a_codes = a.codes();
        let b_codes = b.codes();
        let mut out = vec![0.0f32; m * n];
        let scale = a.scale() * b.scale();
        for i in 0..m {
            let a_row = &a_codes[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b_codes[j * k..(j + 1) * k];
                let acc: i32 = a_row
                    .iter()
                    .zip(b_row)
                    .map(|(&x, &y)| x as i32 * y as i32)
                    .sum();
                out[i * n + j] = acc as f32 * scale;
            }
        }
        Tensor::from_vec(&[m, n], out)
    }

    /// Naive `A[k,m]ᵀ · B[k,n]` with `i32` accumulation.
    ///
    /// # Errors
    ///
    /// Returns rank or shape errors when the operands are not conformable.
    pub fn int8_matmul_at_b(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
        let (m, k, n) = resolve_dims(GemmVariant::AtB, a, b)?;
        let a_codes = a.codes();
        let b_codes = b.codes();
        let mut acc = vec![0i32; m * n];
        for p in 0..k {
            let a_row = &a_codes[p * m..(p + 1) * m];
            let b_row = &b_codes[p * n..(p + 1) * n];
            for (i, &a_pi) in a_row.iter().enumerate() {
                if a_pi == 0 {
                    continue;
                }
                let a_pi = a_pi as i32;
                let out_row = &mut acc[i * n..(i + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                    *o += a_pi * b_pj as i32;
                }
            }
        }
        dequantize(acc, m, n, a.scale() * b.scale())
    }

    fn dequantize(acc: Vec<i32>, m: usize, n: usize, scale: f32) -> Result<Tensor> {
        let data: Vec<f32> = acc.into_iter().map(|v| v as f32 * scale).collect();
        Tensor::from_vec(&[m, n], data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QuantConfig, Rounding};
    use ff_tensor::linalg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quantize(t: &Tensor, seed: u64) -> QuantTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        QuantTensor::quantize_with_rng(t, QuantConfig::new(Rounding::Nearest), &mut rng)
    }

    fn random_quant(shape: &[usize], seed: u64) -> QuantTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = ff_tensor::init::uniform(shape, -1.0, 1.0, &mut rng);
        quantize(&t, seed)
    }

    #[test]
    fn int8_matmul_approximates_fp32_matmul() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = ff_tensor::init::uniform(&[8, 16], -1.0, 1.0, &mut rng);
        let b = ff_tensor::init::uniform(&[16, 4], -1.0, 1.0, &mut rng);
        let exact = linalg::matmul(&a, &b).unwrap();
        let approx = int8_matmul(&quantize(&a, 1), &quantize(&b, 2)).unwrap();
        let rel_err = exact.sub(&approx).unwrap().frobenius_norm() / exact.frobenius_norm();
        assert!(rel_err < 0.05, "relative error {rel_err}");
    }

    #[test]
    fn transposed_variant_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = ff_tensor::init::uniform(&[5, 7], -1.0, 1.0, &mut rng);
        let b = ff_tensor::init::uniform(&[3, 7], -1.0, 1.0, &mut rng);
        let qa = quantize(&a, 1);
        let qb = quantize(&b, 2);
        let direct = int8_matmul_a_bt(&qa, &qb).unwrap();
        let bt = linalg::transpose(&b).unwrap();
        let explicit = int8_matmul(&qa, &quantize(&bt, 2)).unwrap();
        let diff = direct.sub(&explicit).unwrap().max_abs();
        assert!(diff < 1e-2, "diff {diff}");
    }

    #[test]
    fn shape_errors_are_reported() {
        let a = quantize(&Tensor::ones(&[2, 3]), 0);
        let b = quantize(&Tensor::ones(&[4, 5]), 0);
        assert!(int8_matmul(&a, &b).is_err());
        assert!(int8_matmul_a_bt(&a, &b).is_err());
        let v = quantize(&Tensor::ones(&[3]), 0);
        assert!(int8_matmul(&v, &a).is_err());
    }

    #[test]
    fn at_b_variant_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = ff_tensor::init::uniform(&[6, 4], -1.0, 1.0, &mut rng);
        let b = ff_tensor::init::uniform(&[6, 5], -1.0, 1.0, &mut rng);
        let qa = quantize(&a, 1);
        let qb = quantize(&b, 2);
        let direct = int8_matmul_at_b(&qa, &qb).unwrap();
        let at = linalg::transpose(&a).unwrap();
        let explicit = int8_matmul(&quantize(&at, 1), &qb).unwrap();
        let diff = direct.sub(&explicit).unwrap().max_abs();
        assert!(diff < 2e-2, "diff {diff}");
        assert!(int8_matmul_at_b(&qa, &quantize(&Tensor::ones(&[3, 3]), 0)).is_err());
    }

    #[test]
    fn packed_engine_matches_reference_exactly() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (1, 17, 9),
            (8, 8, 8),
            (13, 33, 21),
            (70, 129, 65),
        ] {
            let qa = random_quant(&[m, k], (m * 1000 + k) as u64);
            let qb = random_quant(&[k, n], (k * 1000 + n) as u64);
            let packed = int8_matmul(&qa, &qb).unwrap();
            let naive = reference::int8_matmul(&qa, &qb).unwrap();
            assert_eq!(packed.data(), naive.data(), "AB shape ({m},{k},{n})");

            let qbt = random_quant(&[n, k], (n * 999 + k) as u64);
            let packed = int8_matmul_a_bt(&qa, &qbt).unwrap();
            let naive = reference::int8_matmul_a_bt(&qa, &qbt).unwrap();
            assert_eq!(packed.data(), naive.data(), "ABt shape ({m},{k},{n})");

            let qat = random_quant(&[k, m], (k * 998 + m) as u64);
            let packed = int8_matmul_at_b(&qat, &qb).unwrap();
            let naive = reference::int8_matmul_at_b(&qat, &qb).unwrap();
            assert_eq!(packed.data(), naive.data(), "AtB shape ({m},{k},{n})");
        }
    }

    #[test]
    fn explicit_thread_counts_are_exact() {
        let qa = random_quant(&[37, 65], 5);
        let qb = random_quant(&[29, 65], 6);
        let naive = reference::int8_matmul_a_bt(&qa, &qb).unwrap();
        for threads in [1, 2, 4, 8] {
            let (out, _) =
                int8_gemm(GemmVariant::ABt, &qa, &qb, None, false, Some(threads)).unwrap();
            assert_eq!(out.data(), naive.data(), "threads={threads}");
        }
    }

    #[test]
    fn fused_epilogue_matches_separate_passes() {
        let qa = random_quant(&[12, 31], 7);
        let qb = random_quant(&[9, 31], 8);
        let bias = Tensor::from_vec(&[9], (0..9).map(|i| i as f32 / 4.0 - 1.0).collect()).unwrap();
        let (fused, mask) = int8_matmul_a_bt_fused(&qa, &qb, Some(&bias), true).unwrap();
        let mask = mask.unwrap();
        let separate = reference::int8_matmul_a_bt(&qa, &qb)
            .unwrap()
            .add_row_broadcast(&bias)
            .unwrap();
        for ((&f, &s), &mk) in fused.data().iter().zip(separate.data()).zip(mask.data()) {
            if s > 0.0 {
                assert_eq!(f, s);
                assert_eq!(mk, 1.0);
            } else {
                assert_eq!(f, 0.0);
                assert_eq!(mk, 0.0);
            }
        }
        // Bias-only epilogue: no mask, negatives retained.
        let (biased, mask) = int8_matmul_a_bt_fused(&qa, &qb, Some(&bias), false).unwrap();
        assert!(mask.is_none());
        assert_eq!(biased.data(), separate.data());
        // Bad bias length.
        assert!(int8_matmul_a_bt_fused(&qa, &qb, Some(&Tensor::ones(&[4])), false).is_err());
    }

    #[test]
    fn i8_min_codes_fall_back_to_exact_kernel() {
        // −128 can only enter via `from_codes`; the pairwise i16 kernel
        // would overflow on it, so the engine must switch kernels and still
        // match the naive reference bit-exactly.
        let k = 19;
        let a_codes: Vec<i8> = (0..6 * k)
            .map(|i| if i % 5 == 0 { i8::MIN } else { 73 })
            .collect();
        let b_codes: Vec<i8> = (0..k * 9)
            .map(|i| if i % 7 == 0 { i8::MIN } else { -90 })
            .collect();
        let qa = QuantTensor::from_codes(&[6, k], a_codes, 0.01).unwrap();
        let qb = QuantTensor::from_codes(&[k, 9], b_codes, 0.02).unwrap();
        let packed = int8_matmul(&qa, &qb).unwrap();
        let naive = reference::int8_matmul(&qa, &qb).unwrap();
        assert_eq!(packed.data(), naive.data());

        // −128 in only ONE operand keeps the fast pairwise kernel (the pair
        // sum is bounded by 2·128·127 = 32512) and must still be exact.
        let worst: Vec<i8> = vec![i8::MIN; 6 * k];
        let qa_min = QuantTensor::from_codes(&[6, k], worst, 0.01).unwrap();
        let qb_max = QuantTensor::from_codes(&[k, 9], vec![127i8; k * 9], 0.02).unwrap();
        let packed = int8_matmul(&qa_min, &qb_max).unwrap();
        let naive = reference::int8_matmul(&qa_min, &qb_max).unwrap();
        assert_eq!(packed.data(), naive.data());
    }

    #[test]
    fn op_count_matches_mk_n() {
        let (mul, add) = int8_gemm_op_count(10, 20, 30);
        assert_eq!(mul, 6000);
        assert_eq!(add, 6000);
    }

    #[test]
    fn identity_quantized_matmul_is_near_exact() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 0.5, -0.5, 0.25]).unwrap();
        let id = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let out = int8_matmul(&quantize(&a, 1), &quantize(&id, 2)).unwrap();
        for (x, y) in out.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 0.02);
        }
    }
}
