//! # ff-codec
//!
//! The shared binary-codec machinery behind the workspace's `FF8*` artifact
//! family: the `FF8S` frozen-model format (`ff-serve`) and the `FF8C`
//! training-checkpoint format (`ff-core`).
//!
//! Both formats follow the same conventions, which this crate encodes once:
//!
//! - a 4-byte magic followed by a little-endian `u16` format version and a
//!   reserved `u16` flags word;
//! - **length-prefixed records**: every variable-sized section is written as
//!   a `u32` byte length followed by exactly that many payload bytes, so a
//!   reader can skip or bound-check a section before parsing it;
//! - all integers little-endian, all `f32`/`f64` stored as their IEEE-754
//!   bit patterns (round-trips are bit-exact by construction);
//! - **panic-free reading**: every read is preceded by a remaining-length
//!   check and malformed input maps to a typed [`CodecError`], never a
//!   panic — the property the fuzz suites of both formats assert.
//!
//! [`Writer`] builds an artifact; [`Reader`] walks one. Consumers wrap
//! [`CodecError`] in their own error type (`ServeError`, `CoreError`) via a
//! `From` impl so the typed variants survive the crate boundary.
//!
//! # Examples
//!
//! ```
//! use ff_codec::{CodecError, Reader, Writer};
//!
//! const MAGIC: [u8; 4] = *b"FF8X";
//!
//! let mut w = Writer::new(&MAGIC, 1);
//! w.record(|r| {
//!     r.put_u32(7);
//!     r.put_f32(1.5);
//! });
//! let bytes = w.into_vec();
//!
//! let mut reader = Reader::new(&bytes, &MAGIC, 1)?;
//! let mut rec = reader.record("payload")?;
//! assert_eq!(rec.get_u32("count")?, 7);
//! assert_eq!(rec.get_f32("value")?, 1.5);
//! rec.finish("payload")?;
//! reader.finish("artifact")?;
//! # Ok::<(), CodecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bytes::{Buf, BufMut, BytesMut};
use std::fmt;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CodecError>;

/// Typed error surface shared by every `FF8*` loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic {
        /// The magic the reader expected.
        expected: [u8; 4],
    },
    /// The artifact declares a format version this build cannot read.
    UnsupportedVersion {
        /// The version found in the header.
        version: u16,
    },
    /// The buffer ends before a required field.
    Truncated {
        /// Which field or section was being read.
        context: &'static str,
    },
    /// The artifact is structurally invalid (bad lengths, out-of-range
    /// values, trailing garbage, ...).
    Corrupt {
        /// What is inconsistent.
        message: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic { expected } => write!(
                f,
                "bad magic (expected {:?})",
                std::str::from_utf8(expected).unwrap_or("????")
            ),
            CodecError::UnsupportedVersion { version } => {
                write!(f, "unsupported format version {version}")
            }
            CodecError::Truncated { context } => write!(f, "truncated while reading {context}"),
            CodecError::Corrupt { message } => write!(f, "corrupt artifact: {message}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Builds an `FF8*` artifact: magic + version header, then any mix of flat
/// fields and length-prefixed records.
#[derive(Debug)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Starts an artifact with the standard header: 4 magic bytes, a
    /// little-endian `u16` format version and a zero `u16` reserved-flags
    /// word.
    pub fn new(magic: &[u8; 4], version: u16) -> Self {
        Self::with_capacity(magic, version, 64)
    }

    /// Like [`Writer::new`], but pre-sizes the artifact buffer. Callers that
    /// can estimate the serialized size (e.g. from tensor element counts)
    /// avoid the doubling reallocations of growing from scratch.
    pub fn with_capacity(magic: &[u8; 4], version: u16, capacity: usize) -> Self {
        Self::with_flags(magic, version, 0, capacity)
    }

    /// Like [`Writer::with_capacity`], but writes an explicit `flags` word
    /// instead of the reserved zero — for formats that promote the header
    /// flags into a real field (the `FF8P` model id in protocol version 3).
    pub fn with_flags(magic: &[u8; 4], version: u16, flags: u16, capacity: usize) -> Self {
        let mut buf = BytesMut::with_capacity(capacity.max(8));
        buf.put_slice(magic);
        buf.put_u16_le(version);
        buf.put_u16_le(flags);
        Writer { buf }
    }

    /// Appends a length-prefixed record whose payload is produced by `f`.
    pub fn record<F: FnOnce(&mut RecordWriter)>(&mut self, f: F) {
        self.record_sized(0, f);
    }

    /// Like [`Writer::record`], but pre-sizes the record's payload buffer to
    /// `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics when the payload exceeds the `u32` length prefix (4 GiB) —
    /// a loud save-time failure instead of a silently corrupt artifact.
    pub fn record_sized<F: FnOnce(&mut RecordWriter)>(&mut self, capacity: usize, f: F) {
        let mut record = RecordWriter {
            buf: BytesMut::with_capacity(capacity),
        };
        f(&mut record);
        let len = u32::try_from(record.buf.len())
            .expect("record payload exceeds the u32 length prefix (4 GiB)");
        self.buf.put_u32_le(len);
        self.buf.put_slice(&record.buf);
    }

    /// Appends a `u32` outside any record (header-level field).
    pub fn put_u32(&mut self, value: u32) {
        self.buf.put_u32_le(value);
    }

    /// Finishes the artifact and returns its bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf.into_vec()
    }
}

/// Writes one record's payload (see [`Writer::record`]).
#[derive(Debug)]
pub struct RecordWriter {
    buf: BytesMut,
}

impl RecordWriter {
    /// Appends a single byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.put_u8(value);
    }

    /// Appends a signed byte (two's complement).
    pub fn put_i8(&mut self, value: i8) {
        self.buf.put_i8(value);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.put_u32_le(value);
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.put_u64_le(value);
    }

    /// Appends an `f32` as its IEEE-754 bit pattern.
    pub fn put_f32(&mut self, value: f32) {
        self.buf.put_f32_le(value);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, value: f64) {
        self.buf.put_f64_le(value);
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, src: &[u8]) {
        self.buf.put_slice(src);
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Panics
    ///
    /// Panics when the string exceeds the `u32` length prefix (4 GiB).
    pub fn put_string(&mut self, s: &str) {
        let len = u32::try_from(s.len()).expect("string exceeds the u32 length prefix (4 GiB)");
        self.buf.put_u32_le(len);
        self.buf.put_slice(s.as_bytes());
    }
}

/// Walks an `FF8*` artifact with checked, panic-free reads.
///
/// Created by [`Reader::new`], which validates the magic and version.
/// Sections are consumed in order; [`Reader::finish`] asserts no trailing
/// bytes remain.
#[derive(Debug)]
pub struct Reader<'a> {
    cursor: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Opens an artifact, validating the 4-byte magic, the format version
    /// and the reserved flags word.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadMagic`] / [`CodecError::UnsupportedVersion`] /
    /// [`CodecError::Truncated`] when the header is wrong or incomplete.
    pub fn new(bytes: &'a [u8], magic: &[u8; 4], version: u16) -> Result<Self> {
        Self::with_versions(bytes, magic, version..=version).map(|(reader, _)| reader)
    }

    /// Like [`Reader::new`], but accepts any format version inside
    /// `supported` and returns the version actually declared by the
    /// artifact — the hook for formats that evolve by **minor-version
    /// bump**, where a current build keeps decoding artifacts written by
    /// older peers (`FF8P` deadline fields, future `FF8C`/`FF8S` columns).
    ///
    /// # Errors
    ///
    /// As [`Reader::new`]; a declared version outside `supported` is
    /// [`CodecError::UnsupportedVersion`].
    pub fn with_versions(
        bytes: &'a [u8],
        magic: &[u8; 4],
        supported: std::ops::RangeInclusive<u16>,
    ) -> Result<(Self, u16)> {
        Self::with_versions_flags(bytes, magic, supported)
            .map(|(reader, version, _flags)| (reader, version))
    }

    /// Like [`Reader::with_versions`], but also returns the header's flags
    /// word instead of discarding it — the counterpart of
    /// [`Writer::with_flags`] for formats whose flags carry data.
    ///
    /// # Errors
    ///
    /// As [`Reader::with_versions`].
    pub fn with_versions_flags(
        bytes: &'a [u8],
        magic: &[u8; 4],
        supported: std::ops::RangeInclusive<u16>,
    ) -> Result<(Self, u16, u16)> {
        let mut reader = Reader { cursor: bytes };
        reader.need(4, "magic")?;
        let mut found = [0u8; 4];
        reader.cursor.copy_to_slice(&mut found);
        if &found != magic {
            return Err(CodecError::BadMagic { expected: *magic });
        }
        let declared = reader.get_u16("format version")?;
        if !supported.contains(&declared) {
            return Err(CodecError::UnsupportedVersion { version: declared });
        }
        let flags = reader.get_u16("header flags")?;
        Ok((reader, declared, flags))
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.cursor.remaining()
    }

    /// Checks that `count` elements of `elem_size` bytes each can still be
    /// read from this reader.
    ///
    /// Call it **before** allocating for a count decoded from the artifact:
    /// it bounds the allocation by what the payload can actually hold, so a
    /// corrupt length field yields a typed error instead of a huge
    /// speculative reservation.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the product overflows or exceeds the
    /// remaining payload.
    pub fn ensure_fits(&self, count: usize, elem_size: usize, context: &'static str) -> Result<()> {
        match count.checked_mul(elem_size) {
            Some(bytes) if bytes <= self.remaining() => Ok(()),
            _ => Err(CodecError::Truncated { context }),
        }
    }

    fn need(&self, needed: usize, context: &'static str) -> Result<()> {
        if self.cursor.remaining() < needed {
            return Err(CodecError::Truncated { context });
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8> {
        self.need(1, context)?;
        Ok(self.cursor.get_u8())
    }

    /// Reads a signed byte.
    pub fn get_i8(&mut self, context: &'static str) -> Result<i8> {
        self.need(1, context)?;
        Ok(self.cursor.get_i8())
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16> {
        self.need(2, context)?;
        Ok(self.cursor.get_u16_le())
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32> {
        self.need(4, context)?;
        Ok(self.cursor.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64> {
        self.need(8, context)?;
        Ok(self.cursor.get_u64_le())
    }

    /// Reads a little-endian IEEE-754 `f32`.
    pub fn get_f32(&mut self, context: &'static str) -> Result<f32> {
        self.need(4, context)?;
        Ok(self.cursor.get_f32_le())
    }

    /// Reads a little-endian IEEE-754 `f64`.
    pub fn get_f64(&mut self, context: &'static str) -> Result<f64> {
        self.need(8, context)?;
        Ok(self.cursor.get_f64_le())
    }

    /// Reads a `u32`-length-prefixed UTF-8 string, bounding its size.
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] when the declared length exceeds `max_len`
    /// or the bytes are not valid UTF-8.
    pub fn get_string(&mut self, max_len: usize, context: &'static str) -> Result<String> {
        let len = self.get_u32(context)? as usize;
        if len > max_len {
            return Err(CodecError::Corrupt {
                message: format!("{context}: string length {len} exceeds limit {max_len}"),
            });
        }
        self.need(len, context)?;
        let (bytes, rest) = self.cursor.split_at(len);
        self.cursor = rest;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Corrupt {
            message: format!("{context}: invalid UTF-8"),
        })
    }

    /// Reads a `u32`-length-prefixed record and returns a sub-reader scoped
    /// to exactly its payload.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the buffer ends before the declared
    /// record length.
    pub fn record(&mut self, context: &'static str) -> Result<Reader<'a>> {
        let len = self.get_u32(context)? as usize;
        self.need(len, context)?;
        let (payload, rest) = self.cursor.split_at(len);
        self.cursor = rest;
        Ok(Reader { cursor: payload })
    }

    /// Copies `dst.len()` raw bytes out.
    pub fn get_slice(&mut self, dst: &mut [u8], context: &'static str) -> Result<()> {
        self.need(dst.len(), context)?;
        self.cursor.copy_to_slice(dst);
        Ok(())
    }

    /// Asserts that every byte has been consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] naming the trailing byte count otherwise.
    pub fn finish(&self, context: &'static str) -> Result<()> {
        if self.cursor.remaining() != 0 {
            return Err(CodecError::Corrupt {
                message: format!(
                    "{context}: {} unread trailing bytes",
                    self.cursor.remaining()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 4] = *b"FF8T";

    fn sample() -> Vec<u8> {
        let mut w = Writer::new(&MAGIC, 3);
        w.put_u32(42);
        w.record(|r| {
            r.put_u8(1);
            r.put_i8(-2);
            r.put_u32(3);
            r.put_u64(4);
            r.put_f32(5.5);
            r.put_f64(-6.25);
            r.put_string("seven");
            r.put_slice(&[8, 9]);
        });
        w.into_vec()
    }

    #[test]
    fn roundtrip_every_field_kind() {
        let bytes = sample();
        let mut reader = Reader::new(&bytes, &MAGIC, 3).unwrap();
        assert_eq!(reader.get_u32("header field").unwrap(), 42);
        let mut rec = reader.record("record").unwrap();
        assert_eq!(rec.get_u8("u8").unwrap(), 1);
        assert_eq!(rec.get_i8("i8").unwrap(), -2);
        assert_eq!(rec.get_u32("u32").unwrap(), 3);
        assert_eq!(rec.get_u64("u64").unwrap(), 4);
        assert_eq!(rec.get_f32("f32").unwrap(), 5.5);
        assert_eq!(rec.get_f64("f64").unwrap(), -6.25);
        assert_eq!(rec.get_string(16, "string").unwrap(), "seven");
        let mut two = [0u8; 2];
        rec.get_slice(&mut two, "slice").unwrap();
        assert_eq!(two, [8, 9]);
        rec.finish("record").unwrap();
        reader.finish("artifact").unwrap();
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample();
        for len in 0..bytes.len() {
            let outcome = (|| -> Result<()> {
                let mut reader = Reader::new(&bytes[..len], &MAGIC, 3)?;
                reader.get_u32("header field")?;
                let mut rec = reader.record("record")?;
                rec.get_u8("u8")?;
                rec.get_string(16, "string")?;
                reader.finish("artifact")
            })();
            assert!(outcome.is_err(), "prefix of {len} bytes must not parse");
        }
    }

    #[test]
    fn magic_and_version_are_validated() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(
            Reader::new(&bytes, &MAGIC, 3),
            Err(CodecError::BadMagic { .. })
        ));
        let bytes = sample();
        assert!(matches!(
            Reader::new(&bytes, &MAGIC, 4),
            Err(CodecError::UnsupportedVersion { version: 3 })
        ));
    }

    #[test]
    fn version_ranges_accept_minor_versions() {
        let bytes = sample(); // declares version 3
        let (_, declared) = Reader::with_versions(&bytes, &MAGIC, 1..=3).unwrap();
        assert_eq!(declared, 3);
        let (_, declared) = Reader::with_versions(&bytes, &MAGIC, 3..=7).unwrap();
        assert_eq!(declared, 3);
        assert!(matches!(
            Reader::with_versions(&bytes, &MAGIC, 4..=7),
            Err(CodecError::UnsupportedVersion { version: 3 })
        ));
        assert!(matches!(
            Reader::with_versions(&bytes, &MAGIC, 1..=2),
            Err(CodecError::UnsupportedVersion { version: 3 })
        ));
    }

    #[test]
    fn header_flags_roundtrip_and_default_to_zero() {
        let mut w = Writer::with_flags(&MAGIC, 2, 0xBEEF, 16);
        w.record(|r| r.put_u32(5));
        let bytes = w.into_vec();
        let (mut reader, version, flags) =
            Reader::with_versions_flags(&bytes, &MAGIC, 1..=3).unwrap();
        assert_eq!((version, flags), (2, 0xBEEF));
        let mut rec = reader.record("record").unwrap();
        assert_eq!(rec.get_u32("value").unwrap(), 5);
        // The flag-blind reader still accepts the artifact (flags are
        // ignored, not validated, exactly as before).
        assert!(Reader::new(&bytes, &MAGIC, 2).is_ok());
        // And the default writer emits zero flags.
        let plain = Writer::new(&MAGIC, 1).into_vec();
        let (_, _, flags) = Reader::with_versions_flags(&plain, &MAGIC, 1..=1).unwrap();
        assert_eq!(flags, 0);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample();
        bytes.push(0);
        let mut reader = Reader::new(&bytes, &MAGIC, 3).unwrap();
        reader.get_u32("header field").unwrap();
        let _ = reader.record("record").unwrap();
        assert!(matches!(
            reader.finish("artifact"),
            Err(CodecError::Corrupt { .. })
        ));
    }

    #[test]
    fn string_length_is_bounded() {
        let mut w = Writer::new(&MAGIC, 1);
        w.record(|r| r.put_string("abcdef"));
        let bytes = w.into_vec();
        let mut reader = Reader::new(&bytes, &MAGIC, 1).unwrap();
        let mut rec = reader.record("record").unwrap();
        assert!(matches!(
            rec.get_string(3, "bounded"),
            Err(CodecError::Corrupt { .. })
        ));
    }

    #[test]
    fn record_scopes_its_payload() {
        let mut w = Writer::new(&MAGIC, 1);
        w.record(|r| r.put_u32(1));
        w.record(|r| r.put_u32(2));
        let bytes = w.into_vec();
        let mut reader = Reader::new(&bytes, &MAGIC, 1).unwrap();
        let mut first = reader.record("first").unwrap();
        assert_eq!(first.get_u32("one").unwrap(), 1);
        // Reading past the record's payload is a truncation, not a bleed
        // into the next record.
        assert!(matches!(
            first.get_u32("past end"),
            Err(CodecError::Truncated { .. })
        ));
        let mut second = reader.record("second").unwrap();
        assert_eq!(second.get_u32("two").unwrap(), 2);
        reader.finish("artifact").unwrap();
    }

    #[test]
    fn display_covers_every_variant() {
        for e in [
            CodecError::BadMagic { expected: MAGIC },
            CodecError::UnsupportedVersion { version: 9 },
            CodecError::Truncated { context: "header" },
            CodecError::Corrupt {
                message: "trailing".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
