//! Hot-swap determinism: concurrent clients hammer a registry entry while
//! it is swapped between two frozen models many times. Every reply must be
//! bit-identical to exactly one of the two models' direct answers — never
//! a mix within one wave — and no request may be dropped or errored by the
//! swaps.
//!
//! The probe inputs are chosen (by search) so the two models *disagree* on
//! every one of them, which makes each reply attributable: a wave whose
//! labels match neither direct answer vector would prove a torn read.

use ff_models::small_mlp;
use ff_serve::{
    BatchPolicy, FrozenModel, ModelRegistry, ServeConfig, ServeMode, Server, DEFAULT_MODEL_ID,
};
use ff_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

const FEATURES: usize = 8;
const CLASSES: usize = 3;
const SEED_A: u64 = 5;
const SEED_B: u64 = 77;

/// Freezing is deterministic, so the same seed always yields the same
/// model — tests keep one instance for direct answers and hand others to
/// the registry.
fn model_seeded(seed: u64) -> FrozenModel {
    let mut rng = StdRng::seed_from_u64(seed);
    FrozenModel::freeze(&small_mlp(FEATURES, &[6], CLASSES, &mut rng), CLASSES).unwrap()
}

fn probe_row(index: usize) -> Vec<f32> {
    (0..FEATURES)
        .map(|j| ((index * FEATURES + j) as f32 * 0.37).sin())
        .collect()
}

/// Searches the probe space for `want` inputs the two models label
/// differently, returning the inputs plus each model's direct labels.
fn disagreeing_probes(
    a: &FrozenModel,
    b: &FrozenModel,
    want: usize,
) -> (Vec<Vec<f32>>, Vec<usize>, Vec<usize>) {
    let mut probes = Vec::new();
    let mut labels_a = Vec::new();
    let mut labels_b = Vec::new();
    for index in 0..4096 {
        let row = probe_row(index);
        let x = Tensor::from_vec(&[1, FEATURES], row.clone()).unwrap();
        let la = a.predict_logits(&x).unwrap()[0];
        let lb = b.predict_logits(&x).unwrap()[0];
        if la != lb {
            probes.push(row);
            labels_a.push(la);
            labels_b.push(lb);
            if probes.len() == want {
                return (probes, labels_a, labels_b);
            }
        }
    }
    panic!("two differently-seeded models agree on 4096 probes");
}

#[test]
fn concurrent_swaps_never_tear_or_drop_replies() {
    const SWAPS: u64 = 12;
    const CLIENTS: usize = 4;

    let a = model_seeded(SEED_A);
    let b = model_seeded(SEED_B);
    let (probes, labels_a, labels_b) = disagreeing_probes(&a, &b, 12);

    let registry = ModelRegistry::new(model_seeded(SEED_A));
    let server = Server::start_registry(
        registry.clone(),
        ServeConfig {
            workers: 2,
            mode: ServeMode::Logits,
            policy: BatchPolicy {
                max_batch: 16,
                max_wait: Duration::from_micros(200),
            },
            gemm_threads: 1,
            trace: ff_serve::TraceSettings::default(),
        },
    )
    .unwrap();
    let handle = server.handle();

    let swapping = AtomicBool::new(true);
    let waves_a = AtomicU64::new(0);
    let waves_b = AtomicU64::new(0);
    let submitted = AtomicU64::new(0);
    std::thread::scope(|scope| {
        // The swapper: replace the entry back and forth while clients run.
        scope.spawn(|| {
            for swap in 0..SWAPS {
                let seed = if swap % 2 == 0 { SEED_B } else { SEED_A };
                registry.swap(DEFAULT_MODEL_ID, model_seeded(seed)).unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }
            swapping.store(false, Ordering::Release);
        });
        // Clients: waves of the full probe set, each wave pinned to one
        // model epoch by `predict_many_to` — its labels must equal one
        // model's direct answers *exactly*.
        for _ in 0..CLIENTS {
            scope.spawn(|| {
                let rows: Vec<&[f32]> = probes.iter().map(Vec::as_slice).collect();
                while swapping.load(Ordering::Acquire) {
                    let wave = handle
                        .predict_many_to(DEFAULT_MODEL_ID, rows.iter().copied())
                        .expect("swaps must not fail requests");
                    submitted.fetch_add(rows.len() as u64, Ordering::Relaxed);
                    let labels: Vec<usize> = wave.into_iter().map(|p| p.label).collect();
                    if labels == labels_a {
                        waves_a.fetch_add(1, Ordering::Relaxed);
                    } else if labels == labels_b {
                        waves_b.fetch_add(1, Ordering::Relaxed);
                    } else {
                        panic!(
                            "torn wave: {labels:?} matches neither model \
                             ({labels_a:?} / {labels_b:?})"
                        );
                    }
                }
            });
        }
    });

    // Both sides of the swap boundary were actually observed…
    assert!(waves_a.load(Ordering::Relaxed) > 0, "model A never served");
    assert!(waves_b.load(Ordering::Relaxed) > 0, "model B never served");
    // …no request was dropped…
    let stats = handle.stats();
    assert_eq!(stats.requests, submitted.load(Ordering::Relaxed));
    assert_eq!(stats.shed_expired, 0);
    // …and the entry's swap bookkeeping is exact.
    let entry = registry.entry(DEFAULT_MODEL_ID).unwrap();
    assert_eq!(entry.version(), 1 + SWAPS);
    let model_stats = &stats.models[0];
    assert_eq!(model_stats.swaps, SWAPS);
    assert_eq!(model_stats.requests, stats.requests);
    server.shutdown();
}

#[test]
fn swap_is_bit_exact_on_both_sides_of_the_boundary() {
    let a = model_seeded(SEED_A);
    let b = model_seeded(SEED_B);
    let (probes, labels_a, labels_b) = disagreeing_probes(&a, &b, 8);

    let registry = ModelRegistry::new(model_seeded(SEED_A));
    let server = Server::start_registry(
        registry.clone(),
        ServeConfig {
            workers: 1,
            mode: ServeMode::Logits,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let rows: Vec<&[f32]> = probes.iter().map(Vec::as_slice).collect();

    let before: Vec<usize> = handle
        .predict_many_to(DEFAULT_MODEL_ID, rows.iter().copied())
        .unwrap()
        .into_iter()
        .map(|p| p.label)
        .collect();
    assert_eq!(before, labels_a, "pre-swap answers must be model A's");

    // A snapshot pinned *before* the swap keeps answering as model A even
    // after the entry moves on — readers never observe a half-swapped
    // model.
    let pinned = handle.resolve(DEFAULT_MODEL_ID).unwrap();
    let new_version = registry
        .swap(DEFAULT_MODEL_ID, model_seeded(SEED_B))
        .unwrap();
    assert_eq!(new_version, 2);

    let after: Vec<usize> = handle
        .predict_many_to(DEFAULT_MODEL_ID, rows.iter().copied())
        .unwrap()
        .into_iter()
        .map(|p| p.label)
        .collect();
    assert_eq!(after, labels_b, "post-swap answers must be model B's");

    let via_pin: Vec<usize> = rows
        .iter()
        .map(|row| handle.submit_snapshot(&pinned, row, None).unwrap())
        .collect::<Vec<_>>()
        .into_iter()
        .map(|pending| pending.wait().unwrap().label)
        .collect();
    assert_eq!(via_pin, labels_a, "a pinned epoch must stay bit-stable");
    server.shutdown();
}
