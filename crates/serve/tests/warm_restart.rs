//! Serving warm-restart: a mid-training `FF8C` checkpoint feeds
//! [`FrozenModel::from_checkpoint`] directly, and the served predictions
//! are **bit-identical** to freezing a training session resumed from the
//! same checkpoint — the eval-while-training deployment path.

use ff_core::{Algorithm, SessionStatus, TrainOptions, TrainSession};
use ff_data::{synthetic_mnist, SyntheticConfig};
use ff_models::small_mlp;
use ff_serve::{FrozenModel, ServeConfig, ServeError, ServeMode, Server};
use ff_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn net(seed: u64) -> ff_nn::Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    small_mlp(784, &[24], 10, &mut rng)
}

#[test]
fn from_checkpoint_matches_resumed_session_predictions() {
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 96,
        test_size: 48,
        noise_std: 0.2,
        max_shift: 0,
        seed: 9,
    });
    let options = TrainOptions {
        epochs: 2,
        batch_size: 32,
        max_eval_samples: 48,
        ..TrainOptions::fast_test()
    };

    // Train a few steps into the run and checkpoint mid-epoch.
    let mut training_net = net(1);
    let mut session = TrainSession::new(
        &mut training_net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &options,
    )
    .unwrap();
    for _ in 0..2 {
        assert!(matches!(session.step().unwrap(), SessionStatus::Running));
    }
    let checkpoint = session.checkpoint();
    assert!(checkpoint.progress.is_some(), "mid-epoch checkpoint");

    // Path A: warm-restart — checkpoint straight into freeze.
    let mut serving_net = net(999); // any init; every parameter is overwritten
    let warm = FrozenModel::from_checkpoint(&checkpoint, &mut serving_net, 10).unwrap();

    // Path B: resume a training session from the same checkpoint, then
    // freeze its network.
    let mut resumed_net = net(12345);
    {
        let _session =
            TrainSession::resume(&mut resumed_net, &train_set, &test_set, &checkpoint).unwrap();
    }
    let resumed = FrozenModel::freeze(&resumed_net, 10).unwrap();

    // Bit-identical predictions, both classification modes.
    let x = test_set.take(48).unwrap().flattened().unwrap();
    assert_eq!(
        warm.predict_goodness(&x).unwrap(),
        resumed.predict_goodness(&x).unwrap()
    );
    assert_eq!(
        warm.predict_logits(&x).unwrap(),
        resumed.predict_logits(&x).unwrap()
    );

    // And the warm-restarted model serves through the micro-batcher with
    // the same answers.
    let direct = warm.predict_goodness(&x).unwrap();
    let server = Server::start(
        warm,
        ServeConfig {
            workers: 2,
            mode: ServeMode::Goodness,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let rows: Vec<&[f32]> = (0..x.rows()).map(|i| x.row(i)).collect();
    let served: Vec<usize> = server
        .handle()
        .predict_many(rows.iter().copied())
        .unwrap()
        .into_iter()
        .map(|p| p.label)
        .collect();
    assert_eq!(served, direct, "served warm-restart predictions diverged");
    server.shutdown();
}

#[test]
fn from_checkpoint_rejects_wrong_architecture() {
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 64,
        test_size: 32,
        noise_std: 0.2,
        max_shift: 0,
        seed: 10,
    });
    let mut training_net = net(2);
    let mut session = TrainSession::new(
        &mut training_net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &TrainOptions::fast_test(),
    )
    .unwrap();
    session.step().unwrap();
    let checkpoint = session.checkpoint();

    // Wrong hidden width: parameter shapes disagree.
    let mut rng = StdRng::seed_from_u64(3);
    let mut wrong = small_mlp(784, &[16], 10, &mut rng);
    assert!(matches!(
        FrozenModel::from_checkpoint(&checkpoint, &mut wrong, 10),
        Err(ServeError::InvalidModel { .. })
    ));

    // Unservable input is still rejected downstream of the restore.
    let mut right = net(4);
    let restored = FrozenModel::from_checkpoint(&checkpoint, &mut right, 10).unwrap();
    assert!(restored.forward(&Tensor::ones(&[1, 10])).is_err());
}
