//! The serve smoke gate run by `scripts/check.sh`: train a tiny FF-INT8
//! model, freeze it, round-trip the artifact, answer 100 concurrent
//! requests through the micro-batching server, and assert accuracy parity
//! with direct in-memory evaluation.

use ff_core::{FfTrainer, Precision, TrainOptions};
use ff_data::{synthetic_mnist, SyntheticConfig};
use ff_metrics::accuracy;
use ff_models::small_mlp;
use ff_serve::{load_bytes, save_bytes, BatchPolicy, FrozenModel, ServeConfig, ServeMode, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

#[test]
fn serve_smoke_gate() {
    // 1. Train a tiny model with FF-INT8 (+ look-ahead).
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 300,
        test_size: 100,
        noise_std: 0.15,
        max_shift: 0,
        seed: 5,
    });
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = small_mlp(784, &[64], 10, &mut rng);
    let options = TrainOptions {
        epochs: 6,
        learning_rate: 0.2,
        max_eval_samples: 100,
        ..TrainOptions::default()
    };
    let mut trainer = FfTrainer::new(Precision::Int8, true, options);
    let history = trainer
        .train(&mut net, &train_set, &test_set)
        .expect("training");
    let trained_accuracy = history.final_accuracy().expect("history has accuracy");
    assert!(
        trained_accuracy > 0.5,
        "training collapsed: accuracy {trained_accuracy}"
    );

    // 2. Freeze → save → load.
    let frozen = FrozenModel::freeze(&net, 10).expect("freeze");
    let artifact = save_bytes(&frozen);
    let served_model = load_bytes(&artifact).expect("load");

    // 3. Direct in-memory evaluation of the frozen model.
    let request_count = 100usize;
    let subset = test_set.take(request_count).expect("subset");
    let x = subset.flattened().expect("flatten");
    let direct_predictions = frozen.predict_goodness(&x).expect("direct predictions");
    let direct_accuracy = accuracy(&direct_predictions, subset.labels());

    // 4. 100 requests through the micro-batching server, 4 client threads.
    let server = Server::start(
        served_model,
        ServeConfig {
            workers: 2,
            mode: ServeMode::Goodness,
            policy: BatchPolicy {
                max_batch: 16,
                max_wait: Duration::from_micros(500),
            },
            gemm_threads: 1,
            trace: ff_serve::TraceSettings::default(),
        },
    )
    .expect("server start");
    server
        .warmup(subset.iter_batches(32).take(1))
        .expect("warmup");
    let mut served_predictions = vec![0usize; request_count];
    std::thread::scope(|scope| {
        let chunks = request_count / 4;
        for (client, predictions) in served_predictions.chunks_mut(chunks).enumerate() {
            let handle = server.handle();
            let x = &x;
            scope.spawn(move || {
                for (offset, slot) in predictions.iter_mut().enumerate() {
                    let i = client * chunks + offset;
                    *slot = handle.predict(x.row(i)).expect("request").label;
                }
            });
        }
    });

    // 5. Parity: the served predictions are bit-identical to direct
    //    in-memory inference, so accuracy parity is exact.
    assert_eq!(
        served_predictions, direct_predictions,
        "served predictions diverged from direct frozen inference"
    );
    let served_accuracy = accuracy(&served_predictions, subset.labels());
    assert_eq!(served_accuracy, direct_accuracy, "accuracy parity violated");
    // The INT8-frozen model must stay in the same accuracy regime as the
    // network it was frozen from (weights are already INT8-trained; only
    // activation quantization granularity differs).
    assert!(
        (served_accuracy - trained_accuracy).abs() <= 0.15,
        "frozen accuracy {served_accuracy} too far from trained accuracy {trained_accuracy}"
    );

    let stats = server.stats();
    assert_eq!(stats.requests, request_count as u64);
    assert!(stats.latency.count == stats.requests);
    println!(
        "serve smoke: trained={trained_accuracy:.3} served={served_accuracy:.3} \
         batches={} mean_batch={:.2} latency[{}]",
        stats.batches, stats.mean_batch, stats.latency
    );
    server.shutdown();
}
