//! Micro-batcher equivalence tests: N client threads × M concurrent
//! requests must produce predictions identical to single-threaded direct
//! evaluation, across batch-cap and wait-policy settings — the guarantee
//! that batching is a throughput optimization, never a behaviour change.

use ff_models::small_mlp;
use ff_serve::{BatchPolicy, FrozenModel, ServeConfig, ServeMode, Server};
use ff_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn frozen(seed: u64) -> FrozenModel {
    let mut rng = StdRng::seed_from_u64(seed);
    FrozenModel::freeze(&small_mlp(24, &[20, 16], 5, &mut rng), 5).unwrap()
}

fn samples(count: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    init::uniform(&[count, 24], -1.0, 1.0, &mut rng)
}

/// Runs `clients` threads, each predicting every sample through its own
/// handle, and checks every answer against the single-threaded reference.
fn assert_concurrent_equivalence(config: ServeConfig, clients: usize) {
    let model = frozen(1);
    let x = samples(12, 2);
    let reference = match config.mode {
        ServeMode::Logits => model.predict_logits(&x).unwrap(),
        ServeMode::Goodness => model.predict_goodness(&x).unwrap(),
    };
    let server = Server::start(model, config).unwrap();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let handle = server.handle();
            let x = &x;
            let reference = &reference;
            scope.spawn(move || {
                // Stagger start order per client so batches mix samples.
                for step in 0..x.rows() {
                    let i = (step + client) % x.rows();
                    let prediction = handle.predict(x.row(i)).unwrap();
                    assert_eq!(
                        prediction.label, reference[i],
                        "client {client} sample {i} diverged from single-threaded eval"
                    );
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.requests, (clients * x.rows()) as u64);
    assert_eq!(stats.latency.count, stats.requests);
    assert!(stats.batches >= 1 && stats.batches <= stats.requests);
    assert!(stats.max_batch <= config.policy.max_batch.max(1));
    server.shutdown();
}

#[test]
fn concurrent_goodness_predictions_match_single_threaded_eval() {
    for (workers, max_batch, max_wait_us) in [
        (1usize, 1usize, 0u64), // strict one-at-a-time baseline
        (1, 8, 500),            // single worker, coalescing
        (4, 4, 0),              // pool, opportunistic batching only
        (4, 32, 1000),          // pool, aggressive coalescing
    ] {
        assert_concurrent_equivalence(
            ServeConfig {
                workers,
                mode: ServeMode::Goodness,
                policy: BatchPolicy {
                    max_batch,
                    max_wait: Duration::from_micros(max_wait_us),
                },
                gemm_threads: 1,
                trace: ff_serve::TraceSettings::default(),
            },
            8,
        );
    }
}

#[test]
fn concurrent_logits_predictions_match_single_threaded_eval() {
    for (workers, max_batch) in [(1usize, 16usize), (4, 16)] {
        assert_concurrent_equivalence(
            ServeConfig {
                workers,
                mode: ServeMode::Logits,
                policy: BatchPolicy {
                    max_batch,
                    max_wait: Duration::from_micros(300),
                },
                gemm_threads: 1,
                trace: ff_serve::TraceSettings::default(),
            },
            6,
        );
    }
}

#[test]
fn coalescing_actually_batches_under_load() {
    // With many clients hammering one slow-waiting worker, at least one
    // multi-request batch must form (otherwise the micro-batcher is a
    // no-op and the throughput claims are fiction).
    let model = frozen(3);
    let x = samples(4, 4);
    let server = Server::start(
        model,
        ServeConfig {
            workers: 1,
            mode: ServeMode::Goodness,
            policy: BatchPolicy {
                max_batch: 16,
                max_wait: Duration::from_millis(5),
            },
            gemm_threads: 1,
            trace: ff_serve::TraceSettings::default(),
        },
    )
    .unwrap();
    std::thread::scope(|scope| {
        for client in 0..8 {
            let handle = server.handle();
            let x = &x;
            scope.spawn(move || {
                for _ in 0..4 {
                    handle.predict(x.row(client % x.rows())).unwrap();
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.requests, 32);
    assert!(
        stats.max_batch > 1,
        "no batch ever coalesced: {stats:?} — scheduler is broken"
    );
    server.shutdown();
}

#[test]
fn mixed_valid_and_invalid_requests_do_not_poison_batches() {
    let model = frozen(5);
    let x = samples(2, 6);
    let reference = model.predict_goodness(&x).unwrap();
    let server = Server::start(
        model,
        ServeConfig {
            workers: 2,
            mode: ServeMode::Goodness,
            policy: BatchPolicy {
                max_batch: 8,
                max_wait: Duration::from_millis(2),
            },
            gemm_threads: 1,
            trace: ff_serve::TraceSettings::default(),
        },
    )
    .unwrap();
    std::thread::scope(|scope| {
        for client in 0..6 {
            let handle = server.handle();
            let x = &x;
            let reference = &reference;
            scope.spawn(move || {
                for (i, &expected) in reference.iter().enumerate() {
                    if client % 2 == 0 {
                        assert_eq!(handle.predict(x.row(i)).unwrap().label, expected);
                    } else {
                        // Wrong width: must fail individually without
                        // affecting the valid requests sharing its batch.
                        assert!(handle.predict(&[0.0; 3]).is_err());
                    }
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(
        stats.requests, 6,
        "only the 3 valid clients' requests count"
    );
    server.shutdown();
}
