//! Registry reload chaos: hot-swapping from a rotating `FF8C` checkpoint
//! must be all-or-nothing. Truncated, byte-flipped, wrong-magic and
//! wrong-version artifacts fail with **typed errors** (never a panic), and
//! a failed reload never evicts or corrupts the model currently serving —
//! its version, stats and bit-exact answers are untouched. A flip that
//! still parses into a complete checkpoint may legitimately swap in, but
//! then the served answers must be bit-identical to a direct
//! [`FrozenModel::from_checkpoint`] of that same artifact.

use ff_core::checkpoint::{load_bytes, save_bytes};
use ff_core::{Algorithm, TrainOptions, TrainSession};
use ff_data::{synthetic_mnist, SyntheticConfig};
use ff_models::small_mlp;
use ff_serve::{
    FrozenModel, ModelRegistry, ServeConfig, ServeError, ServeMode, Server, DEFAULT_MODEL_ID,
};
use ff_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CLASSES: usize = 10;

fn template_net(seed: u64) -> ff_nn::Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    small_mlp(784, &[4], CLASSES, &mut rng)
}

/// A few training steps on a tiny run, serialized to `FF8C` bytes.
fn checkpoint_bytes() -> Vec<u8> {
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 64,
        test_size: 32,
        noise_std: 0.2,
        max_shift: 0,
        seed: 21,
    });
    let mut net = template_net(1);
    let mut session = TrainSession::new(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &TrainOptions::fast_test(),
    )
    .unwrap();
    session.step().unwrap();
    save_bytes(&session.checkpoint())
}

fn probe_inputs() -> Tensor {
    let mut rng = StdRng::seed_from_u64(33);
    ff_tensor::init::uniform(&[8, 784], -1.0, 1.0, &mut rng)
}

/// The served labels for `x` through the registry's default model.
fn served_labels(handle: &ff_serve::ServeHandle, x: &Tensor) -> Vec<usize> {
    let rows: Vec<&[f32]> = (0..x.rows()).map(|i| x.row(i)).collect();
    handle
        .predict_many_to(DEFAULT_MODEL_ID, rows.iter().copied())
        .unwrap()
        .into_iter()
        .map(|p| p.label)
        .collect()
}

#[test]
fn corrupt_reloads_are_typed_and_never_evict_the_serving_model() {
    let bytes = checkpoint_bytes();
    let x = probe_inputs();

    // The serving baseline: the checkpoint itself, swapped in cleanly.
    let registry = ModelRegistry::new({
        let mut rng = StdRng::seed_from_u64(77);
        FrozenModel::freeze(&small_mlp(784, &[4], CLASSES, &mut rng), CLASSES).unwrap()
    });
    let server = Server::start_registry(
        registry.clone(),
        ServeConfig {
            workers: 1,
            mode: ServeMode::Logits,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();

    let clean = load_bytes(&bytes).unwrap();
    let direct = FrozenModel::from_checkpoint(&clean, &mut template_net(50), CLASSES)
        .unwrap()
        .predict_logits(&x)
        .unwrap();
    let version = registry
        .swap_from_checkpoint(DEFAULT_MODEL_ID, &clean, &mut template_net(51), CLASSES)
        .unwrap();
    assert_eq!(version, 2, "clean swap bumps the entry version");
    assert_eq!(
        served_labels(&handle, &x),
        direct,
        "clean swap is bit-exact"
    );

    // Truncations: the header region at every offset, the payload strided.
    let mut offsets: Vec<usize> = (0..bytes.len().min(256)).collect();
    offsets.extend((256..bytes.len()).step_by(97));
    for &cut in &offsets {
        assert!(
            load_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes must be a typed load error"
        );
    }

    // Byte flips: most corrupt the structure (typed load error); a flip
    // that still parses yields a *complete* checkpoint, so the swap — when
    // its shape still matches — must land bit-exactly, and the registry
    // must never serve anything in between.
    let mut rejected = 0usize;
    let mut swapped = 0usize;
    for &offset in &offsets {
        let mut flipped = bytes.clone();
        flipped[offset] ^= 0xA5;
        let before = served_labels(&handle, &x);
        let attempted = load_bytes(&flipped).ok().and_then(|checkpoint| {
            let expected =
                FrozenModel::from_checkpoint(&checkpoint, &mut template_net(60), CLASSES)
                    .ok()?
                    .predict_logits(&x)
                    .ok()?;
            registry
                .swap_from_checkpoint(
                    DEFAULT_MODEL_ID,
                    &checkpoint,
                    &mut template_net(61),
                    CLASSES,
                )
                .ok()?;
            Some(expected)
        });
        match attempted {
            Some(expected) => {
                assert_eq!(
                    served_labels(&handle, &x),
                    expected,
                    "offset {offset}: swapped model must serve its own answers"
                );
                // Restore the baseline for the next iteration.
                registry
                    .swap_from_checkpoint(DEFAULT_MODEL_ID, &clean, &mut template_net(62), CLASSES)
                    .unwrap();
                swapped += 1;
            }
            None => {
                assert_eq!(
                    served_labels(&handle, &x),
                    before,
                    "offset {offset}: failed reload must leave serving intact"
                );
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "flip sweep never hit a structural byte");
    assert_eq!(rejected + swapped, offsets.len());

    // After the whole sweep the entry still serves the clean checkpoint.
    assert_eq!(served_labels(&handle, &x), direct);

    // Wrong magic and a from-the-future version are typed load errors.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(load_bytes(&bad_magic).is_err());
    let mut future = bytes.clone();
    future[4] = 0xFF;
    future[5] = 0xFF;
    assert!(load_bytes(&future).is_err());

    server.shutdown();
}

#[test]
fn shape_mismatched_checkpoints_are_rejected_without_eviction() {
    let bytes = checkpoint_bytes();
    let checkpoint = load_bytes(&bytes).unwrap();
    let x = probe_inputs();

    // The serving model scores a *different* class count than the
    // artifact, so even a checkpoint that restores cleanly must be refused
    // at the swap boundary — a hot-swap may not change the serving
    // contract out from under clients.
    const SERVING_CLASSES: usize = 5;
    let mut rng = StdRng::seed_from_u64(8);
    let serving = FrozenModel::freeze(
        &small_mlp(784, &[6], SERVING_CLASSES, &mut rng),
        SERVING_CLASSES,
    )
    .unwrap();
    let baseline = serving.predict_logits(&x).unwrap();
    let registry = ModelRegistry::new(serving);
    let server = Server::start_registry(
        registry.clone(),
        ServeConfig {
            workers: 1,
            mode: ServeMode::Logits,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();

    // Restoring into a mismatched scratch net fails in `from_checkpoint`…
    let mut rng = StdRng::seed_from_u64(9);
    let mut wrong_scratch = small_mlp(784, &[16], CLASSES, &mut rng);
    assert!(matches!(
        registry.swap_from_checkpoint(DEFAULT_MODEL_ID, &checkpoint, &mut wrong_scratch, CLASSES),
        Err(ServeError::InvalidModel { .. })
    ));
    // …and a cleanly-restored model with the wrong class count fails the
    // swap's own shape guard.
    assert!(matches!(
        registry.swap_from_checkpoint(
            DEFAULT_MODEL_ID,
            &checkpoint,
            &mut template_net(10),
            CLASSES
        ),
        Err(ServeError::InvalidModel { .. })
    ));

    let entry = registry.entry(DEFAULT_MODEL_ID).unwrap();
    assert_eq!(
        entry.version(),
        1,
        "failed reloads must not bump the version"
    );
    assert_eq!(entry.stats().swaps, 0);
    assert_eq!(
        served_labels(&handle, &x),
        baseline,
        "serving model evicted"
    );
    server.shutdown();
}
