//! Property tests for the frozen-artifact format: train → freeze → save →
//! load → serve must be bit-exact with direct in-memory inference, and any
//! corrupt or truncated buffer must come back as a typed error, never a
//! panic.

use ff_core::{train, Algorithm, TrainOptions};
use ff_data::{synthetic_mnist, SyntheticConfig};
use ff_models::small_mlp;
use ff_serve::{load_bytes, save_bytes, FrozenModel, ServeError};
use ff_tensor::init;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a random MLP (1–3 hidden layers) and a matching random batch.
fn random_model_and_batch(
    input: usize,
    depth: usize,
    width: usize,
    classes: usize,
    batch: usize,
    seed: u64,
) -> (FrozenModel, ff_tensor::Tensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let hidden: Vec<usize> = (0..depth).map(|i| width + i).collect();
    let net = small_mlp(input, &hidden, classes, &mut rng);
    let model = FrozenModel::freeze(&net, classes).expect("freeze");
    let x = init::uniform(&[batch, input], -1.0, 1.0, &mut rng);
    (model, x)
}

proptest! {
    #[test]
    fn save_load_preserves_predictions_bit_exactly(
        input in 8usize..32,
        depth in 1usize..4,
        width in 4usize..24,
        classes in 2usize..8,
        batch in 1usize..6,
        seed in 0u64..300,
    ) {
        prop_assume!(classes <= input);
        let (direct, x) = random_model_and_batch(input, depth, width, classes, batch, seed);
        let bytes = save_bytes(&direct);
        let loaded = load_bytes(&bytes).expect("load");
        // Serving from the reloaded artifact must match direct in-memory
        // inference bit-exactly, in both classification modes.
        prop_assert_eq!(
            loaded.predict_logits(&x).unwrap(),
            direct.predict_logits(&x).unwrap()
        );
        prop_assert_eq!(
            loaded.predict_goodness(&x).unwrap(),
            direct.predict_goodness(&x).unwrap()
        );
        // And the raw activations agree too, not just the argmax.
        let loaded_y = loaded.forward(&x).unwrap();
        let direct_y = direct.forward(&x).unwrap();
        prop_assert_eq!(loaded_y.data(), direct_y.data());
        // Idempotence: re-serializing reproduces the artifact verbatim.
        prop_assert_eq!(save_bytes(&loaded), bytes);
    }

    #[test]
    fn truncated_buffers_return_typed_errors(
        seed in 0u64..40,
        cut_fraction in 0.0f64..1.0,
    ) {
        let (model, _) = random_model_and_batch(12, 2, 8, 4, 1, seed);
        let bytes = save_bytes(&model);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        match load_bytes(&bytes[..cut]) {
            Err(ServeError::Truncated { .. }) | Err(ServeError::Corrupt { .. }) => {}
            other => prop_assert!(false, "expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn single_byte_flips_never_panic(
        seed in 0u64..20,
        position_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        // Any single-byte corruption must either fail with a typed error or
        // load as a (different but) structurally valid model — never panic.
        let (model, x) = random_model_and_batch(10, 1, 6, 3, 1, seed);
        let mut bytes = save_bytes(&model);
        let position = ((bytes.len() as f64) * position_fraction) as usize % bytes.len();
        bytes[position] ^= flip;
        if let Ok(loaded) = load_bytes(&bytes) {
            // A flipped weight code / bias byte still yields a servable model.
            let preds = loaded.predict_goodness(&x).unwrap();
            prop_assert_eq!(preds.len(), 1);
        }
    }
}

#[test]
fn trained_model_survives_the_full_pipeline() {
    // The end-to-end path the crate exists for: actually *train* with
    // FF-INT8, freeze, serialize, reload, and verify the served predictions
    // equal direct in-memory inference on every test sample.
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig::small());
    let mut rng = StdRng::seed_from_u64(11);
    let mut net = small_mlp(784, &[32], 10, &mut rng);
    train(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &TrainOptions::fast_test(),
    )
    .expect("training");

    let direct = FrozenModel::freeze(&net, 10).expect("freeze");
    let bytes = save_bytes(&direct);
    let served = load_bytes(&bytes).expect("load");

    let x = test_set.flattened().expect("flatten");
    assert_eq!(
        served.predict_goodness(&x).unwrap(),
        direct.predict_goodness(&x).unwrap(),
        "served predictions must be bit-exact with in-memory inference"
    );
    assert_eq!(
        served.predict_logits(&x).unwrap(),
        direct.predict_logits(&x).unwrap()
    );
    assert_eq!(save_bytes(&served), bytes);
}

#[test]
fn empty_and_garbage_buffers_are_rejected() {
    assert!(matches!(load_bytes(&[]), Err(ServeError::Truncated { .. })));
    assert!(matches!(load_bytes(b"nope"), Err(ServeError::BadMagic)));
    assert!(matches!(load_bytes(&[0u8; 64]), Err(ServeError::BadMagic)));
}
