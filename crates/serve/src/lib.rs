//! # ff-serve
//!
//! Frozen INT8 model artifacts and a multi-threaded micro-batching
//! inference engine for FF-INT8-trained networks.
//!
//! Training (in `ff-core`/`ff-nn`) produces a mutable [`ff_nn::Sequential`]
//! that dies with the process and cannot be shared across threads. This
//! crate adds the serving half of the system:
//!
//! 1. **Freeze** — [`FrozenModel::freeze`] extracts each layer's INT8
//!    weight codes, scale, fp32 bias, activation flag and shape metadata
//!    into an immutable, `Send + Sync` model whose weight panels are packed
//!    once ([`ff_quant::SharedGemmPlan`]) and shared by every thread.
//! 2. **Persist** — [`save_bytes`] / [`load_bytes`] serialize a frozen
//!    model into the versioned, length-prefixed `FF8S` binary format.
//!    Round-trips are bit-exact; malformed input yields typed
//!    [`ServeError`]s, never panics.
//! 3. **Serve** — [`Server`] runs a worker pool over an mpsc request
//!    queue, coalescing concurrent single-sample requests into batched
//!    INT8 GEMMs under a max-batch/max-wait [`BatchPolicy`], replying
//!    through per-request channels and recording latency percentiles
//!    ([`ff_metrics::LatencyHistogram`]).
//! 4. **Multi-model** — a [`ModelRegistry`] puts many named, versioned
//!    frozen models behind one worker pool, addressed per request by a
//!    `u16` model id, each entry **atomically hot-swappable** from a
//!    training checkpoint ([`ModelRegistry::swap_from_checkpoint`]) with
//!    zero downtime and no torn replies (see the registry module docs for
//!    the epoch-pointer memory-ordering contract).
//!
//! Both classification modes are supported: logits argmax and the FF-native
//! per-label goodness sweep with all candidate overlays batched into one
//! GEMM per layer. Activations are quantized **per row**, which makes every
//! prediction independent of how requests were batched — micro-batching
//! changes throughput, never answers.
//!
//! # Examples
//!
//! Train-free quick start (random weights): freeze, round-trip, serve.
//!
//! ```
//! use ff_models::small_mlp;
//! use ff_serve::{load_bytes, save_bytes, FrozenModel, ServeConfig, ServeMode, Server};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), ff_serve::ServeError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = small_mlp(20, &[16], 4, &mut rng);
//!
//! // Freeze and persist.
//! let frozen = FrozenModel::freeze(&net, 4)?;
//! let artifact = save_bytes(&frozen);
//! let model = load_bytes(&artifact)?;
//!
//! // Serve with micro-batching across 2 workers.
//! let server = Server::start(
//!     model,
//!     ServeConfig {
//!         workers: 2,
//!         mode: ServeMode::Goodness,
//!         ..ServeConfig::default()
//!     },
//! )?;
//! let prediction = server.predict(&[0.1; 20])?;
//! assert!(prediction.label < 4);
//! println!("{}", server.stats().latency);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod format;
mod model;
mod registry;
mod server;

pub use error::ServeError;
pub use format::{load_bytes, save_bytes, FORMAT_VERSION, MAGIC};
pub use model::{FrozenDense, FrozenLayer, FrozenModel};
pub use registry::{ModelEntry, ModelRegistry, ModelSnapshot, ModelStats, DEFAULT_MODEL_ID};
pub use server::{
    BatchPolicy, PendingPrediction, Prediction, ServeConfig, ServeHandle, ServeMode, Server,
    ServerStats, ShedCounters,
};
// The observability vocabulary the serve API speaks (`ServeConfig::trace`,
// `ServerStats::stages`, `ServeHandle::begin_trace`), re-exported so
// callers need not depend on `ff-trace` directly.
pub use ff_trace::{
    FlightRecorder, MetricsRegistry, RequestTrace, SharedHistogram, Stage, StageHistograms,
    StageSummaries, TraceHandle, TraceSettings, STAGE_COUNT,
};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
