//! The versioned `FF8S` binary artifact format.
//!
//! # Byte layout (version 1, all integers little-endian)
//!
//! ```text
//! header:
//!   magic            4 × u8   = "FF8S"
//!   format_version   u16      = 1
//!   flags            u16      = 0 (reserved)
//!   input_features   u32
//!   num_classes      u32
//!   layer_count      u32
//! then, per layer, one length-prefixed record:
//!   record_len       u32      — bytes in the record after this prefix
//!   kind             u8       — 1 = dense, 2 = flatten
//!   dense payload (kind = 1):
//!     layer_flags    u8       — bit 0: fused ReLU
//!     out_features   u32
//!     in_features    u32
//!     weight_scale   f32      — per-tensor symmetric scale, positive finite
//!     bias           out × f32
//!     weight_codes   out·in × i8  — row-major [out, in]
//!   flatten payload (kind = 2): empty
//! ```
//!
//! The format is a *frozen snapshot*, so round-tripping is **bit-exact**:
//! INT8 codes are stored verbatim and every `f32` is stored as its IEEE-754
//! bit pattern. A loaded model therefore produces predictions identical to
//! the model that was saved (property-tested in `tests/roundtrip.rs`).
//!
//! # Robustness
//!
//! [`load_bytes`] never panics on malformed input. Every read is preceded by
//! a remaining-length check ([`ServeError::Truncated`]); structural
//! inconsistencies — wrong magic, unknown version or layer kind, a record
//! length that disagrees with its payload, non-finite scales, dimension
//! overflow, trailing garbage — map to typed [`ServeError`] variants.
//!
//! The header/record/checked-read machinery is the shared [`ff_codec`]
//! crate, which the `FF8C` training-checkpoint format (`ff-core`) builds on
//! too; [`ff_codec::CodecError`]s convert losslessly into the matching
//! [`ServeError`] variants.

use crate::model::{FrozenDense, FrozenLayer, FrozenModel};
use crate::{Result, ServeError};
use ff_codec::{Reader, Writer};
use ff_quant::QuantTensor;
use ff_tensor::Tensor;

/// The four magic bytes every artifact starts with.
pub const MAGIC: [u8; 4] = *b"FF8S";

/// The artifact format version this build writes and reads.
pub const FORMAT_VERSION: u16 = 1;

const KIND_DENSE: u8 = 1;
const KIND_FLATTEN: u8 = 2;

/// Serializes a frozen model into its versioned binary artifact.
///
/// # Examples
///
/// ```
/// use ff_models::small_mlp;
/// use ff_serve::{load_bytes, save_bytes, FrozenModel};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ff_serve::ServeError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = FrozenModel::freeze(&small_mlp(12, &[8], 4, &mut rng), 4)?;
/// let bytes = save_bytes(&model);
/// let restored = load_bytes(&bytes)?;
/// assert_eq!(restored.input_features(), 12);
/// # Ok(())
/// # }
/// ```
pub fn save_bytes(model: &FrozenModel) -> Vec<u8> {
    // Record size: kind + flags + dims + scale + f32 biases + i8 codes.
    let record_bytes = |layer: &FrozenLayer| match layer {
        FrozenLayer::Dense(dense) => {
            14 + 4 * dense.out_features() + dense.out_features() * dense.in_features()
        }
        FrozenLayer::Flatten => 1,
    };
    let estimate = 32
        + model
            .layers()
            .iter()
            .map(|l| 4 + record_bytes(l))
            .sum::<usize>();
    let mut writer = Writer::with_capacity(&MAGIC, FORMAT_VERSION, estimate);
    writer.put_u32(model.input_features() as u32);
    writer.put_u32(model.num_classes() as u32);
    writer.put_u32(model.layers().len() as u32);
    for layer in model.layers() {
        writer.record_sized(record_bytes(layer), |record| match layer {
            FrozenLayer::Dense(dense) => {
                record.put_u8(KIND_DENSE);
                record.put_u8(u8::from(dense.has_relu()));
                record.put_u32(dense.out_features() as u32);
                record.put_u32(dense.in_features() as u32);
                record.put_f32(dense.plan().scale());
                for &b in dense.bias().data() {
                    record.put_f32(b);
                }
                for &c in dense.plan().quant().codes() {
                    record.put_i8(c);
                }
            }
            FrozenLayer::Flatten => record.put_u8(KIND_FLATTEN),
        });
    }
    writer.into_vec()
}

/// Deserializes an artifact produced by [`save_bytes`].
///
/// The returned model is fully validated (dimension chain, scales, label
/// capacity) and its weight panels are re-packed eagerly, so it is ready to
/// serve. Round-trips are bit-exact; the byte layout and robustness
/// guarantees are documented at the top of this module's source.
///
/// # Errors
///
/// Returns a typed [`ServeError`] — never panics — for any malformed,
/// truncated, or trailing-garbage input.
pub fn load_bytes(bytes: &[u8]) -> Result<FrozenModel> {
    let mut reader = Reader::new(bytes, &MAGIC, FORMAT_VERSION)?;
    let input_features = reader.get_u32("header")? as usize;
    let num_classes = reader.get_u32("header")? as usize;
    let layer_count = reader.get_u32("header")? as usize;
    let mut layers = Vec::new();
    for index in 0..layer_count {
        let mut record = reader.record("layer record")?;
        layers.push(read_layer(&mut record, index)?);
        if record.remaining() != 0 {
            return Err(ServeError::Corrupt {
                message: format!(
                    "layer {index} record has {} unread trailing bytes",
                    record.remaining()
                ),
            });
        }
    }
    if reader.remaining() != 0 {
        return Err(ServeError::Corrupt {
            message: format!("{} trailing bytes after last layer", reader.remaining()),
        });
    }
    let model = FrozenModel::from_layers(layers, num_classes)?;
    if model.input_features() != input_features {
        return Err(ServeError::Corrupt {
            message: format!(
                "header declares {input_features} input features but the first \
                 dense layer expects {}",
                model.input_features()
            ),
        });
    }
    Ok(model)
}

fn read_layer(record: &mut Reader<'_>, index: usize) -> Result<FrozenLayer> {
    match record.get_u8("layer kind")? {
        KIND_DENSE => read_dense(record, index),
        KIND_FLATTEN => Ok(FrozenLayer::Flatten),
        kind => Err(ServeError::Corrupt {
            message: format!("layer {index} has unknown kind {kind}"),
        }),
    }
}

fn read_dense(record: &mut Reader<'_>, index: usize) -> Result<FrozenLayer> {
    let flags = record.get_u8("dense layer header")?;
    if flags > 1 {
        return Err(ServeError::Corrupt {
            message: format!("dense layer {index} has unknown flag bits {flags:#x}"),
        });
    }
    let relu = flags & 1 == 1;
    let out = record.get_u32("dense layer header")? as usize;
    let inp = record.get_u32("dense layer header")? as usize;
    let scale = record.get_f32("dense layer header")?;
    if out == 0 || inp == 0 {
        return Err(ServeError::Corrupt {
            message: format!("dense layer {index} has zero dimension [{out}, {inp}]"),
        });
    }
    let Some(weight_len) = out.checked_mul(inp) else {
        return Err(ServeError::Corrupt {
            message: format!("dense layer {index} dimensions [{out}, {inp}] overflow"),
        });
    };
    if !scale.is_finite() || scale <= 0.0 {
        return Err(ServeError::Corrupt {
            message: format!("dense layer {index} weight scale {scale} is not positive finite"),
        });
    }
    // Allocations bounded by what the record can actually hold, so a corrupt
    // header cannot force a huge reservation before the reads fail.
    record.ensure_fits(out, 4, "dense bias")?;
    let mut bias = Vec::with_capacity(out);
    for _ in 0..out {
        bias.push(record.get_f32("dense bias")?);
    }
    record.ensure_fits(weight_len, 1, "dense weight codes")?;
    let mut codes = Vec::with_capacity(weight_len);
    for _ in 0..weight_len {
        codes.push(record.get_i8("dense weight codes")?);
    }
    let weight = QuantTensor::from_codes(&[out, inp], codes, scale)?;
    let bias = Tensor::from_vec(&[out], bias)?;
    Ok(FrozenLayer::Dense(FrozenDense::new(weight, bias, relu)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_models::small_mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_model() -> FrozenModel {
        let mut rng = StdRng::seed_from_u64(3);
        let net = small_mlp(10, &[8, 6], 4, &mut rng);
        FrozenModel::freeze(&net, 4).unwrap()
    }

    #[test]
    fn save_load_roundtrip_preserves_bytes_and_structure() {
        let model = sample_model();
        let bytes = save_bytes(&model);
        let restored = load_bytes(&bytes).unwrap();
        assert_eq!(restored.layers().len(), model.layers().len());
        assert_eq!(restored.input_features(), model.input_features());
        assert_eq!(restored.num_classes(), model.num_classes());
        // Re-serializing the loaded model reproduces the artifact verbatim.
        assert_eq!(save_bytes(&restored), bytes);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = save_bytes(&sample_model());
        for len in 0..bytes.len() {
            match load_bytes(&bytes[..len]) {
                Err(ServeError::Truncated { .. }) | Err(ServeError::Corrupt { .. }) => {}
                other => panic!("prefix of {len} bytes: expected error, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = save_bytes(&sample_model());
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(load_bytes(&wrong), Err(ServeError::BadMagic)));
        bytes[4] = 0xFF; // version low byte
        assert!(matches!(
            load_bytes(&bytes),
            Err(ServeError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = save_bytes(&sample_model());
        bytes.push(0);
        assert!(matches!(
            load_bytes(&bytes),
            Err(ServeError::Corrupt { .. })
        ));
    }

    #[test]
    fn unknown_layer_kind_is_rejected() {
        let model = sample_model();
        let bytes = save_bytes(&model);
        // First record starts right after the 20-byte header; its kind byte
        // is at offset 24 (after the u32 record length).
        let mut bad = bytes.clone();
        bad[24] = 9;
        assert!(matches!(load_bytes(&bad), Err(ServeError::Corrupt { .. })));
    }
}
