//! The multi-model registry: many named, versioned [`FrozenModel`]s behind
//! one micro-batcher, with atomic zero-downtime hot-swap.
//!
//! # Why a registry
//!
//! One process serving one frozen model cannot host multi-tenant load, and
//! picking up retrained weights required a restart. The [`ModelRegistry`]
//! fixes both: entries are addressed by a `u16` model id (the id the `FF8P`
//! protocol carries in its header flags word from version 3 on), and each
//! entry's model can be **replaced while it is being served** — the
//! train-and-serve-in-one-process story, fed by rotating `FF8C` checkpoints
//! ([`ModelRegistry::swap_from_checkpoint`]).
//!
//! # Swap semantics and memory ordering
//!
//! Each entry holds its current model behind an epoch pointer —
//! `RwLock<Arc<FrozenModel>>`, the std-only equivalent of an arc-swap. A
//! reader *resolves* the entry once per request wave
//! ([`ModelRegistry::resolve`]), cloning the `Arc` under a momentary read
//! lock; a swap takes the write lock only to replace the pointer (never to
//! run inference) and bumps the entry's version gauge with release
//! ordering. Consequences, which the hot-swap determinism suite asserts:
//!
//! - a resolved [`ModelSnapshot`] pins its epoch — every row submitted
//!   through it is served by exactly that model, bit-exactly, no matter how
//!   many swaps land while the rows sit in the batch queue;
//! - readers never observe a torn model: they see the old `Arc` or the new
//!   one, never a mix, because the pointer swap is a single guarded store;
//! - swaps are zero-downtime: the write lock is held for one pointer store,
//!   and in-flight batches keep the old epoch alive through their `Arc`
//!   until the last reply is delivered, after which it is freed.
//!
//! # Chaos safety
//!
//! [`ModelRegistry::swap_from_checkpoint`] builds and validates the
//! replacement **before** touching the entry: a truncated, byte-flipped or
//! wrong-version `FF8C` artifact yields a typed [`ServeError`] and the
//! currently-serving model remains exactly as it was — a failed reload can
//! never evict or corrupt live traffic.

use crate::{FrozenModel, Result, ServeError, ShedCounters};
use ff_metrics::{Counter, Gauge, LatencySummary};
use ff_trace::{MetricsRegistry, SharedHistogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// The model id requests address when they do not say otherwise —
/// version-1/-2 `FF8P` peers (whose header has no model id) land here.
pub const DEFAULT_MODEL_ID: u16 = 0;

/// One registry slot: a named model behind an epoch pointer, plus the
/// per-model serving statistics the stats endpoint reports.
#[derive(Debug)]
pub struct ModelEntry {
    id: u16,
    name: String,
    /// The epoch pointer (see the [module docs](self) for the ordering
    /// contract).
    current: RwLock<Arc<FrozenModel>>,
    /// Monotonic model version: 1 for the registered model, bumped by every
    /// successful swap.
    version: Gauge,
    swaps: Counter,
    requests: Counter,
    shed: ShedCounters,
    latency: SharedHistogram,
    /// Wall-clock duration of each [`ModelEntry::swap_model`] (lock +
    /// shape check + pointer store) — the hot-swap cost the observability
    /// story promises is bounded.
    swap_latency: SharedHistogram,
}

impl ModelEntry {
    fn new(id: u16, name: String, model: FrozenModel) -> Self {
        let version = Gauge::new();
        version.set(1);
        ModelEntry {
            id,
            name,
            current: RwLock::new(Arc::new(model)),
            version,
            swaps: Counter::new(),
            requests: Counter::new(),
            shed: ShedCounters::default(),
            latency: SharedHistogram::new(),
            swap_latency: SharedHistogram::new(),
        }
    }

    /// Publishes this entry's existing metric handles into `metrics` under
    /// stable `serve.model.<id>.*` names — the call sites keep bumping the
    /// handles they already hold; the registry just sees the same cells.
    fn bind_metrics(&self, metrics: &MetricsRegistry) {
        let prefix = format!("serve.model.{}", self.id);
        metrics.register_gauge(&format!("{prefix}.version"), self.version.clone());
        metrics.register_counter(&format!("{prefix}.swaps"), self.swaps.clone());
        metrics.register_counter(&format!("{prefix}.requests"), self.requests.clone());
        metrics.register_counter(
            &format!("{prefix}.shed_expired"),
            self.shed.shed_expired.clone(),
        );
        metrics.register_counter(
            &format!("{prefix}.rejected_overload"),
            self.shed.rejected_overload.clone(),
        );
        metrics.register_counter(
            &format!("{prefix}.rejected_deadline"),
            self.shed.rejected_deadline.clone(),
        );
        metrics.register_histogram(&format!("{prefix}.latency_ns"), self.latency.clone());
        metrics.register_histogram(&format!("{prefix}.swap_ns"), self.swap_latency.clone());
    }

    /// The entry's model id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// The entry's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current model version (1 at registration, +1 per swap).
    pub fn version(&self) -> u64 {
        self.version.get()
    }

    /// The model this entry currently serves (a momentary read lock; the
    /// returned `Arc` pins that epoch).
    pub fn model(&self) -> Arc<FrozenModel> {
        Arc::clone(&self.current.read().expect("model epoch lock poisoned"))
    }

    /// Cloneable handles onto this entry's load-shedding counters, so a
    /// front-end can record per-model refusals it makes itself.
    pub fn shed_counters(&self) -> &ShedCounters {
        &self.shed
    }

    /// Records one served request's queue-to-reply latency.
    pub(crate) fn record_served(&self, latency: Duration) {
        self.requests.inc();
        self.latency.record(latency);
    }

    /// A consistent snapshot of this entry's serving statistics.
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            id: self.id,
            name: self.name.clone(),
            version: self.version.get(),
            swaps: self.swaps.get(),
            requests: self.requests.get(),
            shed_expired: self.shed.shed_expired.get(),
            rejected_overload: self.shed.rejected_overload.get(),
            rejected_deadline: self.shed.rejected_deadline.get(),
            latency: self.latency.summary(),
        }
    }

    /// Replaces the entry's model, enforcing shape compatibility.
    fn swap_model(&self, model: FrozenModel) -> Result<u64> {
        let swap_started = Instant::now();
        let replacement = Arc::new(model);
        let mut current = self.current.write().expect("model epoch lock poisoned");
        if replacement.input_features() != current.input_features()
            || replacement.num_classes() != current.num_classes()
        {
            return Err(ServeError::InvalidModel {
                message: format!(
                    "swap shape mismatch for model {}: serving {}→{} classes, \
                     replacement is {}→{}",
                    self.id,
                    current.input_features(),
                    current.num_classes(),
                    replacement.input_features(),
                    replacement.num_classes()
                ),
            });
        }
        *current = replacement;
        self.swaps.inc();
        let version = self.version.bump();
        self.swap_latency.record(swap_started.elapsed());
        Ok(version)
    }
}

/// One model's serving statistics, as reported through
/// [`crate::ServerStats`] and the `FF8P` stats reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStats {
    /// The registry id requests address this model by.
    pub id: u16,
    /// Human-readable entry name.
    pub name: String,
    /// Current model version (1 at registration, +1 per swap).
    pub version: u64,
    /// Successful hot-swaps performed on this entry.
    pub swaps: u64,
    /// Requests this model answered successfully.
    pub requests: u64,
    /// Requests shed in the batch queue on an expired deadline.
    pub shed_expired: u64,
    /// Requests refused admission under overload.
    pub rejected_overload: u64,
    /// Requests refused on arrival with an already-expired deadline.
    pub rejected_deadline: u64,
    /// Queue-to-reply latency distribution (served requests only).
    pub latency: LatencySummary,
}

/// A resolved (entry, model-epoch) pair: the unit of torn-reply prevention.
///
/// Resolving once per request wave and submitting every row through the
/// same snapshot guarantees the whole wave is answered by one model epoch,
/// even when a swap lands mid-wave (see the module docs above).
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    entry: Arc<ModelEntry>,
    model: Arc<FrozenModel>,
}

impl ModelSnapshot {
    /// The model id this snapshot resolved.
    pub fn model_id(&self) -> u16 {
        self.entry.id
    }

    /// The pinned model epoch.
    pub fn model(&self) -> &Arc<FrozenModel> {
        &self.model
    }

    /// The registry entry (live statistics, *not* pinned — its `version()`
    /// keeps moving under swaps).
    pub fn entry(&self) -> &Arc<ModelEntry> {
        &self.entry
    }
}

#[derive(Debug)]
struct RegistryInner {
    entries: RwLock<BTreeMap<u16, Arc<ModelEntry>>>,
    default_id: u16,
    /// Set by [`ModelRegistry::bind_metrics`]; entries registered after the
    /// bind publish their metrics here immediately.
    metrics: Mutex<Option<MetricsRegistry>>,
}

/// Many named, versioned frozen models behind one id space — the module
/// docs above cover the swap semantics. Cheap to clone; clones share one
/// registry.
///
/// # Examples
///
/// ```
/// use ff_models::small_mlp;
/// use ff_serve::{FrozenModel, ModelRegistry, DEFAULT_MODEL_ID};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ff_serve::ServeError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let registry = ModelRegistry::new(FrozenModel::freeze(
///     &small_mlp(12, &[8], 4, &mut rng),
///     4,
/// )?);
/// registry.register(
///     7,
///     "candidate",
///     FrozenModel::freeze(&small_mlp(12, &[8], 4, &mut rng), 4)?,
/// )?;
/// assert_eq!(registry.ids(), vec![DEFAULT_MODEL_ID, 7]);
///
/// // Zero-downtime replacement: readers keep the epoch they resolved.
/// let replacement = FrozenModel::freeze(&small_mlp(12, &[8], 4, &mut rng), 4)?;
/// assert_eq!(registry.swap(7, replacement)?, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    inner: Arc<RegistryInner>,
}

impl ModelRegistry {
    /// Creates a registry serving `model` as the default entry
    /// ([`DEFAULT_MODEL_ID`], named `"default"`) — what version-1/-2 wire
    /// peers and id-less in-process callers get.
    pub fn new(model: FrozenModel) -> Self {
        let entry = ModelEntry::new(DEFAULT_MODEL_ID, "default".to_string(), model);
        let mut entries = BTreeMap::new();
        entries.insert(DEFAULT_MODEL_ID, Arc::new(entry));
        ModelRegistry {
            inner: Arc::new(RegistryInner {
                entries: RwLock::new(entries),
                default_id: DEFAULT_MODEL_ID,
                metrics: Mutex::new(None),
            }),
        }
    }

    /// Publishes every entry's metric handles (version, swaps, requests,
    /// shed counts, serve latency, swap latency) into `metrics` under
    /// `serve.model.<id>.*` names, and remembers the registry so models
    /// registered later are published the moment they appear.
    /// [`crate::Server::start_registry`] calls this automatically.
    pub fn bind_metrics(&self, metrics: &MetricsRegistry) {
        for entry in self.read_entries().values() {
            entry.bind_metrics(metrics);
        }
        *self
            .inner
            .metrics
            .lock()
            .expect("registry metrics lock poisoned") = Some(metrics.clone());
    }

    /// Registers a new entry under `id`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when `id` is already registered —
    /// replacing a live model is [`ModelRegistry::swap`]'s job, and the two
    /// must not be confused silently.
    pub fn register(&self, id: u16, name: &str, model: FrozenModel) -> Result<()> {
        let mut entries = self.write_entries();
        if entries.contains_key(&id) {
            return Err(ServeError::BadRequest {
                message: format!("model id {id} is already registered (use swap to replace)"),
            });
        }
        let entry = Arc::new(ModelEntry::new(id, name.to_string(), model));
        if let Some(metrics) = self
            .inner
            .metrics
            .lock()
            .expect("registry metrics lock poisoned")
            .as_ref()
        {
            entry.bind_metrics(metrics);
        }
        entries.insert(id, entry);
        Ok(())
    }

    /// Atomically replaces the model served under `id` and returns the new
    /// version. In-flight requests that already resolved the entry keep the
    /// old epoch; every later resolve sees the replacement.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id and
    /// [`ServeError::InvalidModel`] when the replacement's shape
    /// (`input_features`, `num_classes`) differs from the serving model —
    /// a swap must never change the contract live clients rely on.
    pub fn swap(&self, id: u16, model: FrozenModel) -> Result<u64> {
        self.entry(id)?.swap_model(model)
    }

    /// [`ModelRegistry::swap`] from a training checkpoint: restores the
    /// checkpoint into `net`, freezes it, and swaps the result in — the
    /// zero-downtime reload path fed by a rotating `FF8C` directory.
    ///
    /// The replacement is fully built and validated **before** the entry is
    /// touched; on any error the currently-serving model is untouched.
    ///
    /// # Errors
    ///
    /// Checkpoint/restore failures as typed [`ServeError`]s (see
    /// [`FrozenModel::from_checkpoint`]), plus the [`ModelRegistry::swap`]
    /// errors.
    pub fn swap_from_checkpoint(
        &self,
        id: u16,
        checkpoint: &ff_core::Checkpoint,
        net: &mut ff_nn::Sequential,
        num_classes: usize,
    ) -> Result<u64> {
        let replacement = FrozenModel::from_checkpoint(checkpoint, net, num_classes)?;
        self.swap(id, replacement)
    }

    /// Resolves `id` to a pinned (entry, model-epoch) snapshot. Resolve
    /// once per request wave; see [`ModelSnapshot`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id.
    pub fn resolve(&self, id: u16) -> Result<ModelSnapshot> {
        let entry = self.entry(id)?;
        let model = entry.model();
        Ok(ModelSnapshot { entry, model })
    }

    /// The registry entry for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id.
    pub fn entry(&self, id: u16) -> Result<Arc<ModelEntry>> {
        self.read_entries()
            .get(&id)
            .map(Arc::clone)
            .ok_or(ServeError::UnknownModel { id })
    }

    /// The model currently served under `id`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id.
    pub fn get(&self, id: u16) -> Result<Arc<FrozenModel>> {
        Ok(self.entry(id)?.model())
    }

    /// The id id-less requests are routed to.
    pub fn default_id(&self) -> u16 {
        self.inner.default_id
    }

    /// The model currently served under the default id.
    pub fn default_model(&self) -> Arc<FrozenModel> {
        self.get(self.inner.default_id)
            .expect("the default entry always exists")
    }

    /// Registered model ids, ascending.
    pub fn ids(&self) -> Vec<u16> {
        self.read_entries().keys().copied().collect()
    }

    /// Number of registered models (at least 1: the default entry).
    pub fn len(&self) -> usize {
        self.read_entries().len()
    }

    /// Never true — a registry always holds its default entry. Present for
    /// API completeness alongside [`ModelRegistry::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Per-model statistics for every entry, ascending by id.
    pub fn model_stats(&self) -> Vec<ModelStats> {
        self.read_entries()
            .values()
            .map(|entry| entry.stats())
            .collect()
    }

    fn read_entries(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<u16, Arc<ModelEntry>>> {
        self.inner
            .entries
            .read()
            .expect("registry entries lock poisoned")
    }

    fn write_entries(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<u16, Arc<ModelEntry>>> {
        self.inner
            .entries
            .write()
            .expect("registry entries lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_models::small_mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> FrozenModel {
        let mut rng = StdRng::seed_from_u64(seed);
        FrozenModel::freeze(&small_mlp(8, &[6], 3, &mut rng), 3).unwrap()
    }

    #[test]
    fn registers_resolves_and_lists_models() {
        let registry = ModelRegistry::new(model(0));
        assert_eq!(registry.default_id(), DEFAULT_MODEL_ID);
        assert_eq!(registry.len(), 1);
        assert!(!registry.is_empty());
        registry.register(3, "candidate", model(1)).unwrap();
        assert_eq!(registry.ids(), vec![0, 3]);
        let snapshot = registry.resolve(3).unwrap();
        assert_eq!(snapshot.model_id(), 3);
        assert_eq!(snapshot.entry().name(), "candidate");
        assert_eq!(snapshot.entry().version(), 1);
        assert_eq!(
            registry.resolve(9).unwrap_err(),
            ServeError::UnknownModel { id: 9 }
        );
        assert!(matches!(
            registry.register(3, "again", model(2)),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn swap_bumps_the_version_and_keeps_resolved_epochs() {
        let registry = ModelRegistry::new(model(0));
        let before = registry.resolve(0).unwrap();
        assert_eq!(registry.swap(0, model(1)).unwrap(), 2);
        let after = registry.resolve(0).unwrap();
        // The pre-swap snapshot still pins the old epoch...
        assert!(!Arc::ptr_eq(before.model(), after.model()));
        // ...while the entry's live view moved on.
        assert_eq!(before.entry().version(), 2);
        assert_eq!(after.entry().stats().swaps, 1);
    }

    #[test]
    fn swap_rejects_unknown_ids_and_shape_changes() {
        let registry = ModelRegistry::new(model(0));
        assert_eq!(
            registry.swap(7, model(1)).unwrap_err(),
            ServeError::UnknownModel { id: 7 }
        );
        let mut rng = StdRng::seed_from_u64(9);
        let wrong_shape = FrozenModel::freeze(&small_mlp(10, &[6], 3, &mut rng), 3).unwrap();
        assert!(matches!(
            registry.swap(0, wrong_shape),
            Err(ServeError::InvalidModel { .. })
        ));
        // The failed swap left the entry untouched.
        assert_eq!(registry.entry(0).unwrap().version(), 1);
    }

    #[test]
    fn per_model_stats_start_empty() {
        let registry = ModelRegistry::new(model(0));
        registry.register(1, "b", model(1)).unwrap();
        let stats = registry.model_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].id, 0);
        assert_eq!(stats[1].name, "b");
        assert!(stats.iter().all(|s| s.requests == 0 && s.version == 1));
    }
}
