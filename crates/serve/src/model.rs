//! Frozen models: immutable, thread-shareable INT8 inference networks.
//!
//! # Freezing
//!
//! [`FrozenModel::freeze`] walks a trained [`ff_nn::Sequential`] through
//! [`ff_nn::Sequential::snapshots`] and turns every layer into its serving
//! form: dense weights become eagerly packed [`SharedGemmPlan`]s (INT8
//! codes with their per-tensor scale and `A·Bᵀ` panels), biases stay fp32,
//! the fused-ReLU flag is preserved, and shape metadata is validated to
//! chain correctly.
//! The result borrows nothing from the network and exposes **only `&self`**
//! methods, so one `Arc<FrozenModel>` serves every worker thread of the
//! micro-batching engine.
//!
//! # Numerics: per-row activation quantization
//!
//! Training quantizes activations with one scale per *batch tensor*, which
//! couples samples: a sample's INT8 codes depend on what else is in the
//! batch. A serving engine that coalesces arbitrary requests into batches
//! cannot afford that — results would depend on scheduling. Frozen models
//! therefore quantize activations **per row** ([`RowQuantTensor`]) and run
//! the GEMM with a per-row dequantization scale
//! ([`int8_matmul_a_bt_shared_rows`]), making every output row a pure
//! function of its own input row and the weights. Predictions are
//! bit-identical no matter how requests are batched — the property the
//! batcher tests assert and the micro-batching scheduler relies on.
//!
//! # Classification modes
//!
//! * [`FrozenModel::predict_logits`] — plain forward chain, row-wise argmax
//!   of the final layer (the backprop-trained-network convention).
//! * [`FrozenModel::predict_goodness`] — the FF-native sweep: every
//!   candidate label is embedded into the input, **all candidate overlays
//!   are batched into a single GEMM per layer**, per-layer goodness is
//!   accumulated with [`GoodnessSweep`], and the best-scoring label wins.
//!   This mirrors `ff_core::FfTrainer::predict` (label embedding, per-unit
//!   goodness, activation normalization between units) but needs `C`× fewer
//!   GEMM launches for `C` classes.

use crate::{Result, ServeError};
use ff_core::{goodness, GoodnessSweep};
use ff_nn::{LayerSnapshot, Sequential};
use ff_quant::{int8_matmul_a_bt_shared_rows, QuantTensor, RowQuantTensor, SharedGemmPlan};
use ff_tensor::Tensor;

/// One frozen layer of a [`FrozenModel`].
#[derive(Debug, Clone)]
pub enum FrozenLayer {
    /// A dense layer with an eagerly packed shared weight plan.
    Dense(FrozenDense),
    /// A flatten layer (no-op on the already-flat serving inputs).
    Flatten,
}

impl FrozenLayer {
    /// Short human-readable kind name.
    pub fn kind(&self) -> &'static str {
        match self {
            FrozenLayer::Dense(_) => "dense",
            FrozenLayer::Flatten => "flatten",
        }
    }
}

/// A frozen dense layer: `y = act(x · Wᵀ + b)` with INT8 weights.
#[derive(Debug, Clone)]
pub struct FrozenDense {
    plan: SharedGemmPlan,
    bias: Tensor,
    relu: bool,
}

impl FrozenDense {
    /// Builds a frozen dense layer, validating the bias length against the
    /// weight's output dimension.
    pub(crate) fn new(weight: QuantTensor, bias: Tensor, relu: bool) -> Result<Self> {
        let plan = SharedGemmPlan::from_quant(weight)?;
        if bias.ndim() != 1 || bias.len() != plan.shape()[0] {
            return Err(ServeError::InvalidModel {
                message: format!(
                    "dense bias shape {:?} does not match {} output features",
                    bias.shape(),
                    plan.shape()[0]
                ),
            });
        }
        if !plan.scale().is_finite() || plan.scale() <= 0.0 {
            return Err(ServeError::InvalidModel {
                message: format!("dense weight scale {} is not positive finite", plan.scale()),
            });
        }
        Ok(FrozenDense { plan, bias, relu })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.plan.shape()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.plan.shape()[0]
    }

    /// `true` when the layer applies a fused ReLU.
    pub fn has_relu(&self) -> bool {
        self.relu
    }

    /// The shared packed weight plan.
    pub fn plan(&self) -> &SharedGemmPlan {
        &self.plan
    }

    /// The fp32 bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    fn forward(&self, x: &Tensor, threads: Option<usize>) -> Result<Tensor> {
        let rows = RowQuantTensor::quantize(x)?;
        Ok(int8_matmul_a_bt_shared_rows(
            &rows,
            &self.plan,
            Some(&self.bias),
            self.relu,
            threads,
        )?)
    }
}

/// An immutable INT8 inference network.
///
/// See the crate docs ([`crate`]) for the freezing and numerics contract. All
/// methods take `&self`; the type is `Send + Sync` so one instance (behind
/// an `Arc`) serves any number of threads.
///
/// # Examples
///
/// ```
/// use ff_models::small_mlp;
/// use ff_serve::FrozenModel;
/// use ff_tensor::Tensor;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ff_serve::ServeError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = small_mlp(20, &[16], 4, &mut rng);
/// let model = FrozenModel::freeze(&net, 4)?;
/// let x = Tensor::ones(&[3, 20]);
/// assert_eq!(model.predict_logits(&x)?.len(), 3);
/// assert_eq!(model.predict_goodness(&x)?.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FrozenModel {
    layers: Vec<FrozenLayer>,
    input_features: usize,
    num_classes: usize,
}

impl FrozenModel {
    /// Freezes a trained network into its immutable serving form.
    ///
    /// `num_classes` is recorded for the goodness sweep (how many candidate
    /// labels to embed); it must fit within the model's input features.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnsupportedLayer`] when the network contains a
    /// layer with no frozen representation, and
    /// [`ServeError::InvalidModel`] when the layer dimensions do not chain,
    /// no dense layer exists, or `num_classes` is unusable.
    pub fn freeze(net: &Sequential, num_classes: usize) -> Result<Self> {
        let snapshots = net.snapshots().map_err(|e| match e {
            ff_nn::NnError::UnsupportedLayer { layer, .. } => ServeError::UnsupportedLayer {
                layer: layer.to_string(),
            },
            other => ServeError::InvalidModel {
                message: other.to_string(),
            },
        })?;
        let mut layers = Vec::with_capacity(snapshots.len());
        for snapshot in snapshots {
            layers.push(match snapshot {
                LayerSnapshot::Dense { weight, bias, relu } => {
                    FrozenLayer::Dense(FrozenDense::new(weight, bias, relu)?)
                }
                LayerSnapshot::Flatten => FrozenLayer::Flatten,
            });
        }
        Self::from_layers(layers, num_classes)
    }

    /// Warm-restart freezing: restores a mid-training `FF8C`
    /// [`ff_core::Checkpoint`]'s parameters into `net` (the caller rebuilds
    /// the architecture with any RNG — every parameter is overwritten) and
    /// freezes the result, without ever constructing a training session.
    ///
    /// This is the eval-while-training deployment path: a trainer
    /// auto-checkpoints every *n* steps, and a serving process picks up
    /// `checkpoint::latest` and starts answering traffic from it. The
    /// frozen model is **bit-identical** to freezing a
    /// [`ff_core::TrainSession::resume`]d session's network, because both
    /// go through [`ff_core::Checkpoint::restore_params`] — the property
    /// the warm-restart test suite asserts.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidModel`] when the checkpoint's parameter
    /// count or shapes do not fit `net`, plus every [`FrozenModel::freeze`]
    /// error.
    pub fn from_checkpoint(
        checkpoint: &ff_core::Checkpoint,
        net: &mut Sequential,
        num_classes: usize,
    ) -> Result<Self> {
        checkpoint
            .restore_params(net)
            .map_err(|e| ServeError::InvalidModel {
                message: format!("checkpoint does not fit the network: {e}"),
            })?;
        Self::freeze(net, num_classes)
    }

    /// Assembles a frozen model from already-built layers (the artifact
    /// loader's entry point), validating the dimension chain.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidModel`] when the dimensions do not
    /// chain, no dense layer exists, or `num_classes` does not fit.
    pub(crate) fn from_layers(layers: Vec<FrozenLayer>, num_classes: usize) -> Result<Self> {
        let mut input_features = None;
        let mut prev_out = None;
        for (i, layer) in layers.iter().enumerate() {
            if let FrozenLayer::Dense(dense) = layer {
                if let Some(out) = prev_out {
                    if dense.in_features() != out {
                        return Err(ServeError::InvalidModel {
                            message: format!(
                                "layer {i} expects {} input features but the previous \
                                 dense layer produces {out}",
                                dense.in_features()
                            ),
                        });
                    }
                }
                if input_features.is_none() {
                    input_features = Some(dense.in_features());
                }
                prev_out = Some(dense.out_features());
            }
        }
        let Some(input_features) = input_features else {
            return Err(ServeError::InvalidModel {
                message: "model has no dense layer to serve".to_string(),
            });
        };
        if num_classes == 0 {
            return Err(ServeError::InvalidModel {
                message: "num_classes must be positive".to_string(),
            });
        }
        if num_classes > input_features {
            return Err(ServeError::InvalidModel {
                message: format!(
                    "cannot embed {num_classes} candidate labels into \
                     {input_features} input features"
                ),
            });
        }
        Ok(FrozenModel {
            layers,
            input_features,
            num_classes,
        })
    }

    /// The frozen layer stack.
    pub fn layers(&self) -> &[FrozenLayer] {
        &self.layers
    }

    /// Number of input features a request must provide.
    pub fn input_features(&self) -> usize {
        self.input_features
    }

    /// Number of candidate labels the goodness sweep tries.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total bytes held by packed weight panels (diagnostics).
    pub fn packed_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                FrozenLayer::Dense(d) => d.plan().packed_bytes(),
                FrozenLayer::Flatten => 0,
            })
            .sum()
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.ndim() != 2 || input.shape()[1] != self.input_features {
            return Err(ServeError::BadRequest {
                message: format!(
                    "expected [batch, {}], got {:?}",
                    self.input_features,
                    input.shape()
                ),
            });
        }
        Ok(())
    }

    /// Runs the plain forward chain (no inter-layer normalization) and
    /// returns the final activations — the logits path.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when `input` is not
    /// `[batch, input_features]`.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.forward_threads(input, None)
    }

    /// [`FrozenModel::forward`] with an explicit GEMM thread count
    /// (`Some(1)` inside server workers, whose parallelism comes from
    /// concurrent batches instead).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when `input` is not
    /// `[batch, input_features]`.
    pub fn forward_threads(&self, input: &Tensor, threads: Option<usize>) -> Result<Tensor> {
        self.check_input(input)?;
        let mut x: Option<Tensor> = None;
        for layer in &self.layers {
            if let FrozenLayer::Dense(dense) = layer {
                x = Some(dense.forward(x.as_ref().unwrap_or(input), threads)?);
            }
        }
        // A model with no dense layer is unconstructible, but stay total.
        Ok(x.unwrap_or_else(|| input.clone()))
    }

    /// Classifies by forward pass + row-wise argmax of the final logits.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when `input` is not
    /// `[batch, input_features]`.
    pub fn predict_logits(&self, input: &Tensor) -> Result<Vec<usize>> {
        self.predict_logits_threads(input, None)
    }

    /// [`FrozenModel::predict_logits`] with an explicit GEMM thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when `input` is not
    /// `[batch, input_features]`.
    pub fn predict_logits_threads(
        &self,
        input: &Tensor,
        threads: Option<usize>,
    ) -> Result<Vec<usize>> {
        Ok(self.forward_threads(input, threads)?.argmax_rows())
    }

    /// FF-native classification: embeds every candidate label, batches all
    /// `batch · num_classes` overlays into **one GEMM per layer**, and picks
    /// the label with the highest goodness summed over all dense units.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when `input` is not
    /// `[batch, input_features]`.
    pub fn predict_goodness(&self, input: &Tensor) -> Result<Vec<usize>> {
        self.predict_goodness_threads(input, None)
    }

    /// [`FrozenModel::predict_goodness`] with an explicit GEMM thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when `input` is not
    /// `[batch, input_features]`.
    pub fn predict_goodness_threads(
        &self,
        input: &Tensor,
        threads: Option<usize>,
    ) -> Result<Vec<usize>> {
        self.check_input(input)?;
        let batch = input.rows();
        if batch == 0 {
            return Ok(Vec::new());
        }
        let classes = self.num_classes;
        // Candidate-major overlay block: rows [c·batch, (c+1)·batch) carry
        // candidate label c embedded into the first `classes` features.
        let features = self.input_features;
        let mut overlay = Vec::with_capacity(batch * classes * features);
        for candidate in 0..classes {
            for row in 0..batch {
                let src = input.row(row);
                let base = overlay.len();
                overlay.extend_from_slice(src);
                for slot in &mut overlay[base..base + classes] {
                    *slot = 0.0;
                }
                overlay[base + candidate] = 1.0;
            }
        }
        let mut x = Tensor::from_vec(&[batch * classes, features], overlay)?;
        let mut sweep = GoodnessSweep::new(batch, classes);
        for layer in &self.layers {
            if let FrozenLayer::Dense(dense) = layer {
                let y = dense.forward(&x, threads)?;
                // Per-sample goodness of this unit, added into the sweep
                // cell of (sample, candidate) the row belongs to.
                let g = goodness(&y);
                for candidate in 0..classes {
                    for row in 0..batch {
                        sweep.add(row, candidate, g[candidate * batch + row]);
                    }
                }
                // Hinton's inter-unit normalization, row-wise and therefore
                // batching-invariant.
                x = y.normalize_rows(1e-6);
            }
        }
        Ok(sweep.predictions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_models::small_mlp;
    use ff_nn::{Dense, ForwardMode, Sequential};
    use ff_quant::Rounding;
    use ff_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    fn frozen(
        input: usize,
        hidden: &[usize],
        classes: usize,
        seed: u64,
    ) -> (Sequential, FrozenModel) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = small_mlp(input, hidden, classes, &mut rng);
        let model = FrozenModel::freeze(&net, classes).unwrap();
        (net, model)
    }

    #[test]
    fn frozen_model_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenModel>();
    }

    #[test]
    fn freeze_preserves_structure_and_metadata() {
        let (net, model) = frozen(20, &[16, 12], 5, 1);
        assert_eq!(model.layers().len(), net.len());
        assert_eq!(model.input_features(), 20);
        assert_eq!(model.num_classes(), 5);
        assert!(model.packed_bytes() > 0, "plans are packed eagerly");
        let FrozenLayer::Dense(first) = &model.layers()[0] else {
            panic!("first layer is dense");
        };
        assert_eq!(first.in_features(), 20);
        assert_eq!(first.out_features(), 16);
        assert!(first.has_relu());
        assert_eq!(model.layers()[0].kind(), "dense");
        assert_eq!(first.bias().len(), 16);
    }

    #[test]
    fn freeze_rejects_unsupported_and_invalid() {
        let mut net = Sequential::new();
        net.push(Box::new(
            ff_nn::Conv2d::new(1, 2, 3, 1, 1, false, &mut rng()).unwrap(),
        ));
        assert!(matches!(
            FrozenModel::freeze(&net, 2),
            Err(ServeError::UnsupportedLayer { .. })
        ));
        // No dense layer at all.
        let mut flat_only = Sequential::new();
        flat_only.push(Box::new(ff_nn::Flatten::new()));
        assert!(matches!(
            FrozenModel::freeze(&flat_only, 2),
            Err(ServeError::InvalidModel { .. })
        ));
        // num_classes out of range.
        let net = small_mlp(4, &[8], 3, &mut rng());
        assert!(FrozenModel::freeze(&net, 0).is_err());
        assert!(FrozenModel::freeze(&net, 5).is_err());
    }

    #[test]
    fn forward_matches_sequential_int8_nearest_on_single_rows() {
        // For a one-row input, per-row and per-tensor activation scales
        // coincide, so the frozen forward must reproduce the training-time
        // INT8 (nearest) forward bit-exactly.
        let (mut net, model) = frozen(12, &[10, 8], 4, 2);
        let mut r = rng();
        for _ in 0..5 {
            let x = init::uniform(&[1, 12], -1.0, 1.0, &mut r);
            let frozen_y = model.forward(&x).unwrap();
            let train_y = net
                .forward(&x, ForwardMode::Int8(Rounding::Nearest))
                .unwrap();
            assert_eq!(frozen_y.data(), train_y.data());
        }
    }

    #[test]
    fn predictions_are_batching_invariant() {
        let (_, model) = frozen(16, &[14], 6, 3);
        let x = init::uniform(&[7, 16], -1.0, 1.0, &mut rng());
        let batched_logits = model.predict_logits(&x).unwrap();
        let batched_goodness = model.predict_goodness(&x).unwrap();
        for i in 0..7 {
            let row = x.slice_rows(i, i + 1).unwrap();
            assert_eq!(model.predict_logits(&row).unwrap()[0], batched_logits[i]);
            assert_eq!(
                model.predict_goodness(&row).unwrap()[0],
                batched_goodness[i]
            );
        }
    }

    #[test]
    fn goodness_sweep_prefers_amplified_label_slot() {
        // A diagonal layer whose gain is largest on label slot 2: the
        // candidate overlay that lights up slot 2 accumulates the highest
        // goodness, so the sweep must pick label 2.
        let mut net = Sequential::new();
        let mut dense = Dense::new(6, 6, true, &mut rng());
        let mut w = Tensor::zeros(&[6, 6]);
        for i in 0..6 {
            w.set2(i, i, if i == 2 { 3.0 } else { 1.0 }).unwrap();
        }
        dense.set_weight(w).unwrap();
        net.push(Box::new(dense));
        let model = FrozenModel::freeze(&net, 3).unwrap();
        let x = Tensor::zeros(&[1, 6]);
        assert_eq!(model.predict_goodness(&x).unwrap(), vec![2]);
    }

    #[test]
    fn rejects_wrong_feature_count() {
        let (_, model) = frozen(10, &[8], 4, 4);
        assert!(matches!(
            model.forward(&Tensor::ones(&[2, 9])),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(model.predict_goodness(&Tensor::ones(&[4])).is_err());
    }

    #[test]
    fn empty_batch_predicts_nothing() {
        let (_, model) = frozen(10, &[8], 4, 5);
        let empty = Tensor::zeros(&[0, 10]);
        assert!(model.predict_goodness(&empty).unwrap().is_empty());
        assert!(model.predict_logits(&empty).unwrap().is_empty());
    }

    #[test]
    fn thread_count_does_not_change_predictions() {
        let (_, model) = frozen(24, &[20], 8, 6);
        let x = init::uniform(&[9, 24], -1.0, 1.0, &mut rng());
        let auto = model.predict_goodness(&x).unwrap();
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(
                model.predict_goodness_threads(&x, Some(threads)).unwrap(),
                auto
            );
        }
    }
}
