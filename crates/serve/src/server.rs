//! The multi-threaded micro-batching inference server.
//!
//! # Architecture
//!
//! ```text
//!  clients (any thread)            worker pool (config.workers threads)
//!  ───────────────────             ─────────────────────────────────────
//!  handle.predict(x) ──┐
//!  handle.predict(y) ──┼──▶ mpsc request queue ──▶ worker locks the
//!  handle.predict(z) ──┘                           receiver, takes one
//!                                                  request, then drains
//!                                                  more until max_batch
//!                                                  or max_wait ──▶ one
//!                                                  batched INT8 GEMM per
//!                                                  layer, per model epoch
//!                                                  ──▶ per-request reply
//!                                                  channels
//! ```
//!
//! Requests are submitted through a cloneable [`ServeHandle`] and answered
//! through a per-request channel, so any number of client threads can block
//! on their own predictions concurrently. Workers coalesce whatever is
//! queued into one batch (bounded by [`BatchPolicy::max_batch`]), waiting at
//! most [`BatchPolicy::max_wait`] after the first request for stragglers —
//! under load batches fill instantly, while a lone request pays at most the
//! configured wait.
//!
//! # Many models, one queue
//!
//! The server fronts a whole [`crate::ModelRegistry`]: requests address a
//! model id ([`ServeHandle::submit_to`]) and share one queue and one worker
//! pool, so capacity flows to whichever model is hot. Each request pins its
//! model epoch at submit time (a [`crate::ModelSnapshot`]); a worker groups
//! an assembled batch by pinned epoch and runs **one GEMM per group**, so a
//! hot-swap landing mid-batch can never mix two models' weights in one
//! answer wave.
//!
//! Because frozen models quantize per row (see [`crate::FrozenModel`]), a
//! request's prediction is **bit-identical no matter which batch it lands
//! in** — batching is purely a throughput optimization, verified by the
//! batcher equivalence tests.
//!
//! Worker-level parallelism and GEMM-level parallelism compose: each worker
//! runs its batch GEMMs with [`ServeConfig::gemm_threads`] threads
//! (default 1), so the canonical scaling axis is the worker count.

use crate::{FrozenModel, ModelRegistry, ModelSnapshot, ModelStats, Result, ServeError};
use ff_metrics::{Counter, Gauge, LatencySummary};
use ff_tensor::Tensor;
use ff_trace::{
    FlightRecorder, MetricsRegistry, SharedHistogram, Stage, StageHistograms, StageSummaries,
    TraceHandle, TraceSettings,
};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How aggressively workers coalesce queued requests into batches.
///
/// A worker first drains whatever is already queued (up to `max_batch`).
/// Only a **lone** request waits — at most `max_wait` — for company; as
/// soon as a batch holds two or more requests it dispatches the moment the
/// queue is momentarily empty, and a full `max_batch` dispatches
/// immediately. Under sustained load batches therefore self-regulate to
/// roughly "whatever arrived during the previous batch's GEMM", while a
/// solitary request pays at most `max_wait` extra latency and an idle
/// server never stalls a ready batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest number of requests fused into one GEMM batch.
    pub max_batch: usize,
    /// How long a lone request waits for a batch-mate. Zero means "take
    /// only what is already queued".
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
        }
    }
}

/// Which classification mode the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// Forward chain + argmax of the final logits.
    #[default]
    Logits,
    /// FF-native per-label goodness sweep (all candidates in one GEMM per
    /// layer).
    Goodness,
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of worker threads executing batches.
    pub workers: usize,
    /// Classification mode.
    pub mode: ServeMode,
    /// Micro-batching policy.
    pub policy: BatchPolicy,
    /// GEMM threads **per worker** (keep at 1 and scale `workers` instead;
    /// raising both oversubscribes the machine).
    pub gemm_threads: usize,
    /// Per-request tracing and flight-recorder settings (see
    /// [`TraceSettings`]). The always-on stage histograms are unaffected
    /// by this knob; it governs only sampled per-request traces.
    pub trace: TraceSettings,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            mode: ServeMode::Logits,
            policy: BatchPolicy::default(),
            gemm_threads: 1,
            trace: TraceSettings::default(),
        }
    }
}

/// One answered prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The predicted class label.
    pub label: usize,
    /// The size of the same-model GEMM group this request was served in
    /// (1 = rode alone).
    pub batch_size: usize,
}

struct Request {
    /// The (entry, model-epoch) pair pinned at submit time — the worker
    /// serves exactly this epoch no matter how many swaps land while the
    /// request queues.
    snapshot: ModelSnapshot,
    features: Vec<f32>,
    enqueued: Instant,
    /// Absolute point after which the answer is worthless: the worker sheds
    /// the request (typed [`ServeError::DeadlineExceeded`]) instead of
    /// spending a GEMM row on it.
    deadline: Option<Instant>,
    /// Per-request trace handle, if the flight recorder sampled this
    /// request. Dropped (committing the trace) when the request is
    /// answered, shed, or abandoned.
    trace: Option<TraceHandle>,
    reply: Sender<Result<Prediction>>,
}

/// Queue item: a client request, or a shutdown poison pill (one per worker).
enum Job {
    Run(Request),
    Poison,
}

/// Aggregate serving statistics, readable at any time.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Requests answered successfully.
    pub requests: u64,
    /// Same-model GEMM groups executed.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Largest batch observed.
    pub max_batch: usize,
    /// Requests shed by a worker because their deadline expired in the
    /// queue (dropped before any GEMM work).
    pub shed_expired: u64,
    /// Requests refused admission under overload (counted by a front-end
    /// through [`ShedCounters`]).
    pub rejected_overload: u64,
    /// Requests refused because they arrived with an already-expired
    /// deadline (counted by a front-end through [`ShedCounters`]).
    pub rejected_deadline: u64,
    /// Queue-to-reply latency distribution (served requests only).
    pub latency: LatencySummary,
    /// Always-on per-stage latency summaries (queue wait, batch assembly,
    /// GEMM, reply write) — where end-to-end time actually went.
    pub stages: StageSummaries,
    /// Per-model statistics for every registry entry, ascending by id.
    pub models: Vec<ModelStats>,
}

/// Cloneable handles onto the server's load-shedding counters.
///
/// The `shed_expired` counter is bumped by the workers themselves; the
/// `rejected_*` counters exist so a front-end (the `ff-net` admission gate)
/// can record refusals **it** makes into the same [`ServerStats`] snapshot
/// every [`ServeHandle::stats`] caller sees. Per-model front-ends should
/// additionally bump the addressed entry's counters
/// ([`crate::ModelEntry::shed_counters`]).
#[derive(Debug, Clone, Default)]
pub struct ShedCounters {
    /// Deadline expired while queued; shed by a worker before the GEMM.
    pub shed_expired: Counter,
    /// Refused admission because the pending-request bound was reached.
    pub rejected_overload: Counter,
    /// Refused because the deadline had already expired on arrival.
    pub rejected_deadline: Counter,
}

/// The server's observability bundle: every serve-side counter and
/// histogram, pre-registered under stable names in one [`MetricsRegistry`],
/// plus the flight recorder behind sampled per-request traces. Built once
/// at startup; the hot path only touches the (lock-free or short-mutex)
/// handles, never the registry itself.
struct Telemetry {
    metrics: MetricsRegistry,
    recorder: FlightRecorder,
    stages: StageHistograms,
    requests: Counter,
    batches: Counter,
    max_batch: Gauge,
    latency: SharedHistogram,
}

impl Telemetry {
    fn new(settings: TraceSettings, counters: &ShedCounters, registry: &ModelRegistry) -> Self {
        let metrics = MetricsRegistry::new();
        let recorder = FlightRecorder::new(settings);
        let stages = StageHistograms::new();
        let requests = metrics.counter("serve.requests");
        let batches = metrics.counter("serve.batches");
        let max_batch = metrics.gauge("serve.max_batch");
        let latency = metrics.histogram("serve.latency_ns");
        // The shed counters pre-date the registry; publish the existing
        // handles so front-ends keep bumping the cells they already hold.
        metrics.register_counter("serve.shed_expired", counters.shed_expired.clone());
        metrics.register_counter(
            "serve.rejected_overload",
            counters.rejected_overload.clone(),
        );
        metrics.register_counter(
            "serve.rejected_deadline",
            counters.rejected_deadline.clone(),
        );
        metrics.register_histogram("serve.stage.queue_ns", stages.queue.clone());
        metrics.register_histogram("serve.stage.assembly_ns", stages.assembly.clone());
        metrics.register_histogram("serve.stage.gemm_ns", stages.gemm.clone());
        metrics.register_histogram("serve.stage.write_ns", stages.write.clone());
        metrics.register_counter("trace.dropped", recorder.dropped_counter());
        registry.bind_metrics(&metrics);
        Telemetry {
            metrics,
            recorder,
            stages,
            requests,
            batches,
            max_batch,
            latency,
        }
    }
}

struct Shared {
    registry: ModelRegistry,
    config: ServeConfig,
    /// Taken (and dropped) by [`Server::shutdown`] after the workers join,
    /// which closes the channel: late sends fail and any still-queued
    /// request's reply channel drops, so no client can hang.
    queue: Mutex<Option<Receiver<Job>>>,
    telemetry: Telemetry,
    counters: ShedCounters,
}

/// A cloneable client handle onto a running [`Server`].
///
/// Handles are `Send`, so each client thread clones one and calls
/// [`ServeHandle::predict`], which blocks until its reply arrives. Dropping
/// every handle (including the server's own) shuts the workers down.
#[derive(Clone)]
pub struct ServeHandle {
    tx: Sender<Job>,
    shared: Arc<Shared>,
}

/// A submitted-but-not-yet-answered prediction (see
/// [`ServeHandle::submit`]).
///
/// The request is already in the micro-batch queue; [`PendingPrediction::wait`]
/// blocks until its reply arrives. Dropping it abandons the request (the
/// worker's reply send fails harmlessly).
#[derive(Debug)]
pub struct PendingPrediction {
    rx: Receiver<Result<Prediction>>,
    /// Present only on the in-process convenience path (where delivery to
    /// the caller *is* the reply-written stage); the network path keeps its
    /// own handle and stamps after the socket write instead.
    trace: Option<TraceHandle>,
}

impl PendingPrediction {
    /// Blocks until the prediction is ready.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when the submitted features did
    /// not match the model's input width, and [`ServeError::ServerClosed`]
    /// when the server shut down before answering.
    pub fn wait(self) -> Result<Prediction> {
        let result = self.rx.recv().map_err(|_| ServeError::ServerClosed)?;
        if result.is_ok() {
            if let Some(trace) = &self.trace {
                trace.stamp(Stage::ReplyWritten);
            }
        }
        result
    }
}

impl ServeHandle {
    /// Enqueues one sample for the **default model** without waiting and
    /// returns a [`PendingPrediction`] to collect later.
    ///
    /// This is the building block of every pipelined path: submitting many
    /// samples before waiting lets the worker pool coalesce them into large
    /// GEMM batches ([`ServeHandle::predict_many`] and the `ff-net`
    /// connection loop both use it).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ServerClosed`] when the server has shut down.
    pub fn submit(&self, features: &[f32]) -> Result<PendingPrediction> {
        self.submit_with_deadline(features, None)
    }

    /// [`ServeHandle::submit`] with an absolute deadline: if it expires
    /// while the request waits in the batch queue, a worker sheds the
    /// request with [`ServeError::DeadlineExceeded`] **before** it occupies
    /// a GEMM row — under overload the engine spends its compute only on
    /// answers someone is still waiting for.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ServerClosed`] when the server has shut down.
    pub fn submit_with_deadline(
        &self,
        features: &[f32],
        deadline: Option<Instant>,
    ) -> Result<PendingPrediction> {
        self.submit_to(self.shared.registry.default_id(), features, deadline)
    }

    /// [`ServeHandle::submit_with_deadline`] addressed to a registry model.
    ///
    /// The model epoch is pinned here, at submit time; callers submitting a
    /// related wave of rows should resolve once ([`ServeHandle::resolve`])
    /// and use [`ServeHandle::submit_snapshot`] so the whole wave is
    /// guaranteed to be answered by one epoch even if a hot-swap lands
    /// mid-wave.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id and
    /// [`ServeError::ServerClosed`] when the server has shut down.
    pub fn submit_to(
        &self,
        model_id: u16,
        features: &[f32],
        deadline: Option<Instant>,
    ) -> Result<PendingPrediction> {
        let snapshot = self.shared.registry.resolve(model_id)?;
        self.submit_snapshot(&snapshot, features, deadline)
    }

    /// Enqueues one sample against an already-resolved model epoch — the
    /// torn-reply-prevention primitive (see [`ModelSnapshot`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ServerClosed`] when the server has shut down.
    pub fn submit_snapshot(
        &self,
        snapshot: &ModelSnapshot,
        features: &[f32],
        deadline: Option<Instant>,
    ) -> Result<PendingPrediction> {
        let trace = self.begin_trace(snapshot.model_id());
        if let Some(trace) = &trace {
            // In-process submission has no auth/admission step: the admit
            // stage coincides with receive.
            trace.stamp(Stage::Admit);
        }
        let mut pending =
            self.submit_snapshot_traced(snapshot, features, deadline, trace.clone())?;
        // Delivery to the caller is this path's "reply written" stage.
        pending.trace = trace;
        Ok(pending)
    }

    /// [`ServeHandle::submit_snapshot`] with a caller-begun [`TraceHandle`]
    /// — the network front-end begins the trace at frame receive (so the
    /// recv→admit span covers auth and admission) and threads the handle
    /// through here, keeping a clone to stamp [`Stage::ReplyWritten`] after
    /// the socket write. Stamps [`Stage::Enqueue`] as the request enters
    /// the batch queue.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ServerClosed`] when the server has shut down.
    pub fn submit_snapshot_traced(
        &self,
        snapshot: &ModelSnapshot,
        features: &[f32],
        deadline: Option<Instant>,
        trace: Option<TraceHandle>,
    ) -> Result<PendingPrediction> {
        if let Some(trace) = &trace {
            trace.stamp(Stage::Enqueue);
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let request = Request {
            snapshot: snapshot.clone(),
            features: features.to_vec(),
            enqueued: Instant::now(),
            deadline,
            trace,
            reply: reply_tx,
        };
        self.tx
            .send(Job::Run(request))
            .map_err(|_| ServeError::ServerClosed)?;
        Ok(PendingPrediction {
            rx: reply_rx,
            trace: None,
        })
    }

    /// Resolves a model id to a pinned (entry, epoch) snapshot — resolve
    /// once per request wave, then submit every row through it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id.
    pub fn resolve(&self, model_id: u16) -> Result<ModelSnapshot> {
        self.shared.registry.resolve(model_id)
    }

    /// Submits one sample to the default model and blocks until its
    /// prediction is ready.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when `features` does not match the
    /// model's input width, and [`ServeError::ServerClosed`] when the server
    /// has shut down.
    pub fn predict(&self, features: &[f32]) -> Result<Prediction> {
        self.submit(features)?.wait()
    }

    /// Submits many samples at once and blocks until every prediction is
    /// ready, preserving input order — the default-model form of
    /// [`ServeHandle::predict_many_to`].
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::predict_many_to`].
    pub fn predict_many<'r, I>(&self, rows: I) -> Result<Vec<Prediction>>
    where
        I: IntoIterator<Item = &'r [f32]>,
    {
        self.predict_many_to(self.shared.registry.default_id(), rows)
    }

    /// Submits many samples against one model and blocks until every
    /// prediction is ready, preserving input order.
    ///
    /// All requests enter the queue **before** the first reply is awaited,
    /// so the worker pool coalesces them into large GEMM batches — this is
    /// the in-process half of the pipelined network path (`ff-net` funnels
    /// `PredictBatch` frames through it). The model epoch is resolved
    /// **once** for the whole wave, so every answer comes from the same
    /// model even when a hot-swap lands mid-wave; per-row quantization
    /// keeps every answer bit-identical to a lone [`ServeHandle::predict`]
    /// call.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id, the
    /// first per-row error ([`ServeError::BadRequest`] for a wrong-width
    /// row), or [`ServeError::ServerClosed`] when the server has shut down;
    /// rows are all-or-nothing from the caller's perspective.
    pub fn predict_many_to<'r, I>(&self, model_id: u16, rows: I) -> Result<Vec<Prediction>>
    where
        I: IntoIterator<Item = &'r [f32]>,
    {
        let snapshot = self.resolve(model_id)?;
        let mut replies = Vec::new();
        for features in rows {
            replies.push(self.submit_snapshot(&snapshot, features, None)?);
        }
        let mut predictions = Vec::with_capacity(replies.len());
        let mut first_error = None;
        // Drain every reply even after an error so the stats count the
        // whole wave consistently.
        for reply in replies {
            match reply.wait() {
                Ok(prediction) => predictions.push(prediction),
                Err(error) => {
                    first_error.get_or_insert(error);
                }
            }
        }
        match first_error {
            None => Ok(predictions),
            Some(error) => Err(error),
        }
    }

    /// Current aggregate statistics — readable from any handle, which is
    /// what lets a network front-end answer stats requests without a
    /// reference to the owning [`Server`].
    pub fn stats(&self) -> ServerStats {
        let models = self.shared.registry.model_stats();
        let telemetry = &self.shared.telemetry;
        let requests = telemetry.requests.get();
        let batches = telemetry.batches.get();
        ServerStats {
            requests,
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
            max_batch: telemetry.max_batch.get() as usize,
            shed_expired: self.shared.counters.shed_expired.get(),
            rejected_overload: self.shared.counters.rejected_overload.get(),
            rejected_deadline: self.shared.counters.rejected_deadline.get(),
            latency: telemetry.latency.summary(),
            stages: telemetry.stages.summaries(),
            models,
        }
    }

    /// The unified metrics registry behind this server: every serve-side
    /// counter, gauge and histogram (including per-model entries and the
    /// stage histograms), snapshot-able in one call and renderable in the
    /// stable exposition format.
    pub fn metrics(&self) -> MetricsRegistry {
        self.shared.telemetry.metrics.clone()
    }

    /// The flight recorder holding recently committed per-request traces.
    pub fn flight_recorder(&self) -> FlightRecorder {
        self.shared.telemetry.recorder.clone()
    }

    /// The always-on per-stage histograms. A network front-end clones
    /// `write` into its reply writer so socket-write time lands in the same
    /// snapshot as the in-engine stages.
    pub fn stage_histograms(&self) -> StageHistograms {
        self.shared.telemetry.stages.clone()
    }

    /// Begins a per-request trace against `model_id`, stamping
    /// [`Stage::Recv`] now. `None` (at the cost of one atomic increment)
    /// when tracing is disabled or the request was not sampled — callers
    /// thread the `Option` through untouched.
    pub fn begin_trace(&self, model_id: u16) -> Option<TraceHandle> {
        self.shared.telemetry.recorder.begin(model_id)
    }

    /// Cloneable handles onto the load-shedding counters reported by
    /// [`ServeHandle::stats`] — a front-end bumps the `rejected_*` pair for
    /// refusals it makes before a request ever reaches the queue.
    pub fn shed_counters(&self) -> ShedCounters {
        self.shared.counters.clone()
    }

    /// The model currently served under the default id.
    pub fn model(&self) -> Arc<FrozenModel> {
        self.shared.registry.default_model()
    }

    /// The model registry behind this server — register, inspect, and
    /// hot-swap models while the server runs.
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }
}

/// A running micro-batching inference server.
///
/// # Examples
///
/// ```
/// use ff_models::small_mlp;
/// use ff_serve::{FrozenModel, ServeConfig, ServeMode, Server};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ff_serve::ServeError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = FrozenModel::freeze(&small_mlp(12, &[8], 4, &mut rng), 4)?;
/// let server = Server::start(
///     model,
///     ServeConfig {
///         workers: 2,
///         mode: ServeMode::Goodness,
///         ..ServeConfig::default()
///     },
/// )?;
/// let prediction = server.handle().predict(&[0.5; 12])?;
/// assert!(prediction.label < 4);
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct Server {
    handle: ServeHandle,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawns the worker pool around a single-model registry (the model
    /// becomes the default entry) and returns the running server.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when the configuration is
    /// unusable (zero workers or zero `max_batch`).
    pub fn start(model: FrozenModel, config: ServeConfig) -> Result<Self> {
        Self::start_registry(ModelRegistry::new(model), config)
    }

    /// Spawns the worker pool in front of an existing [`ModelRegistry`] —
    /// many models behind one queue, addressable per request
    /// ([`ServeHandle::submit_to`]) and hot-swappable while serving.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when the configuration is
    /// unusable (zero workers or zero `max_batch`).
    pub fn start_registry(registry: ModelRegistry, config: ServeConfig) -> Result<Self> {
        if config.workers == 0 {
            return Err(ServeError::BadRequest {
                message: "config.workers must be positive".to_string(),
            });
        }
        if config.policy.max_batch == 0 {
            return Err(ServeError::BadRequest {
                message: "config.policy.max_batch must be positive".to_string(),
            });
        }
        let (tx, rx) = mpsc::channel();
        let counters = ShedCounters::default();
        let telemetry = Telemetry::new(config.trace, &counters, &registry);
        let shared = Arc::new(Shared {
            registry,
            config,
            queue: Mutex::new(Some(rx)),
            telemetry,
            counters,
        });
        let workers = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ff-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a named worker thread cannot fail")
            })
            .collect();
        Ok(Server {
            handle: ServeHandle { tx, shared },
            workers,
        })
    }

    /// A cloneable client handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Convenience: submit one sample through the server's own handle.
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::predict`].
    pub fn predict(&self, features: &[f32]) -> Result<Prediction> {
        self.handle.predict(features)
    }

    /// Current aggregate statistics (the "stats endpoint").
    pub fn stats(&self) -> ServerStats {
        self.handle.stats()
    }

    /// Runs every sample of an in-order batch iterator through the default
    /// model once — used to pre-fault weight panels and warm caches before
    /// opening the server to traffic.
    ///
    /// # Errors
    ///
    /// Propagates model errors (wrong feature width in the warmup set).
    pub fn warmup<I: Iterator<Item = ff_data::Batch>>(&self, batches: I) -> Result<usize> {
        let model = self.handle.shared.registry.default_model();
        let mut samples = 0;
        for batch in batches {
            let rows = batch.images.rows();
            let flat = batch
                .images
                .reshape(&[rows, batch.images.len() / rows.max(1)])?;
            match self.handle.shared.config.mode {
                ServeMode::Logits => model.predict_logits(&flat)?,
                ServeMode::Goodness => model.predict_goodness(&flat)?,
            };
            samples += rows;
        }
        Ok(samples)
    }

    /// Stops the worker pool and closes the request queue.
    ///
    /// One poison pill per worker is enqueued behind all already-submitted
    /// work, so in-flight requests are still answered; the queue is then
    /// closed, after which any [`ServeHandle::predict`] — including calls
    /// racing with the shutdown — returns [`ServeError::ServerClosed`]
    /// instead of hanging.
    pub fn shutdown(self) {
        let Server { handle, workers } = self;
        for _ in 0..workers.len() {
            // Send failures mean every worker already exited; fine.
            let _ = handle.tx.send(Job::Poison);
        }
        for worker in workers {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        // Close the channel: late sends now fail, and dropping any queued
        // `Job::Run` drops its reply sender, waking its client with
        // `ServerClosed`.
        let receiver = handle.shared.queue.lock().expect("queue lock").take();
        drop(receiver);
        drop(handle);
    }
}

/// One worker: pull a batch off the shared queue, run it, reply. Exits on
/// the first poison pill it consumes (or when the channel closes).
fn worker_loop(shared: &Shared) {
    let policy = shared.config.policy;
    loop {
        let mut poisoned = false;
        let batch = {
            let guard = shared.queue.lock().expect("queue lock");
            let Some(queue) = guard.as_ref() else {
                return; // queue already closed
            };
            let first = match queue.recv() {
                Ok(Job::Run(request)) => request,
                Ok(Job::Poison) | Err(_) => return,
            };
            let mut batch = vec![first];
            if policy.max_batch > 1 {
                let deadline = Instant::now() + policy.max_wait;
                while batch.len() < policy.max_batch {
                    let job = match queue.try_recv() {
                        Ok(job) => Some(job),
                        Err(_) if batch.len() > 1 => None, // company found: go
                        Err(_) => {
                            // Lone request: wait out the remaining budget
                            // for one batch-mate.
                            match deadline
                                .checked_duration_since(Instant::now())
                                .filter(|d| !d.is_zero())
                            {
                                None => None,
                                Some(budget) => queue.recv_timeout(budget).ok(),
                            }
                        }
                    };
                    match job {
                        Some(Job::Run(request)) => batch.push(request),
                        Some(Job::Poison) => {
                            // Exactly one pill per worker: finish this batch,
                            // then exit.
                            poisoned = true;
                            break;
                        }
                        None => break,
                    }
                }
            }
            batch
            // queue lock released here: the next worker can assemble its
            // batch while this one computes.
        };
        run_batch(shared, batch);
        if poisoned {
            return;
        }
    }
}

/// Validates an assembled batch, groups it by pinned model epoch, and runs
/// one GEMM wave per group.
fn run_batch(shared: &Shared, batch: Vec<Request>) {
    // Reject malformed requests individually and shed the ones whose
    // deadline expired while queued — both before any GEMM work; the rest
    // still batch. The deadline check runs *after* batch assembly (which
    // may have waited `max_wait`), so queue time counts against the budget.
    // This instant also closes the queue-wait stage for every request in
    // the batch: enqueue → here is time spent waiting for a worker.
    let assembled = Instant::now();
    let mut groups: Vec<(Arc<FrozenModel>, Vec<Request>)> = Vec::new();
    for request in batch {
        if request
            .deadline
            .is_some_and(|deadline| assembled > deadline)
        {
            shared.counters.shed_expired.inc();
            request.snapshot.entry().shed_counters().shed_expired.inc();
            let _ = request.reply.send(Err(ServeError::DeadlineExceeded));
            continue;
        }
        let features = request.snapshot.model().input_features();
        if request.features.len() != features {
            let error = ServeError::BadRequest {
                message: format!(
                    "expected {features} features, got {}",
                    request.features.len()
                ),
            };
            let _ = request.reply.send(Err(error));
            continue;
        }
        // Group by pinned epoch (pointer identity): two requests share a
        // GEMM only when they were resolved against the *same* frozen
        // weights, so a swap landing mid-batch can never mix models.
        let model = Arc::clone(request.snapshot.model());
        match groups.iter_mut().find(|(m, _)| Arc::ptr_eq(m, &model)) {
            Some((_, group)) => group.push(request),
            None => groups.push((model, vec![request])),
        }
    }
    for (model, group) in groups {
        run_group(shared, &model, group, assembled);
    }
}

/// Executes and answers one same-epoch group. `assembled` is the instant
/// batch assembly completed (queue wait ends there; validation, grouping
/// and input flattening between it and the GEMM are the assembly stage).
fn run_group(shared: &Shared, model: &FrozenModel, group: Vec<Request>, assembled: Instant) {
    let features = model.input_features();
    let rows = group.len();
    let mut data = Vec::with_capacity(rows * features);
    for request in &group {
        data.extend_from_slice(&request.features);
    }
    let gemm_threads = Some(shared.config.gemm_threads.max(1));
    let wave_start = Instant::now();
    for request in &group {
        if let Some(trace) = &request.trace {
            trace.stamp_at(Stage::WaveStart, wave_start);
        }
    }
    let outcome = Tensor::from_vec(&[rows, features], data)
        .map_err(ServeError::from)
        .and_then(|input| match shared.config.mode {
            ServeMode::Logits => model.predict_logits_threads(&input, gemm_threads),
            ServeMode::Goodness => model.predict_goodness_threads(&input, gemm_threads),
        });
    match outcome {
        Ok(labels) => {
            let gemm_done = Instant::now();
            let latencies: Vec<Duration> = group.iter().map(|r| r.enqueued.elapsed()).collect();
            // Record stats *before* replying: once the last reply of a wave
            // is delivered, `Server::stats` must already reflect it (tests
            // and the smoke gate assert exact request counts).
            let telemetry = &shared.telemetry;
            telemetry.batches.inc();
            telemetry.requests.add(rows as u64);
            telemetry.max_batch.max_of(rows as u64);
            telemetry.latency.record_all(latencies.iter().copied());
            // One lock acquisition per stage histogram for the whole wave.
            telemetry.stages.queue.record_all(
                group
                    .iter()
                    .map(|r| assembled.saturating_duration_since(r.enqueued)),
            );
            let assembly = wave_start.saturating_duration_since(assembled);
            telemetry
                .stages
                .assembly
                .record_all(std::iter::repeat_n(assembly, rows));
            let gemm = gemm_done.saturating_duration_since(wave_start);
            telemetry
                .stages
                .gemm
                .record_all(std::iter::repeat_n(gemm, rows));
            for ((request, label), latency) in group.into_iter().zip(labels).zip(latencies) {
                if let Some(trace) = &request.trace {
                    trace.stamp_at(Stage::GemmDone, gemm_done);
                }
                request.snapshot.entry().record_served(latency);
                let _ = request.reply.send(Ok(Prediction {
                    label,
                    batch_size: rows,
                }));
            }
        }
        Err(error) => {
            // Failed requests drop their trace handles unstamped past
            // wave-start: the committed trace stays incomplete, which is
            // exactly what the dump should show for an errored request.
            for request in group {
                let _ = request.reply.send(Err(error.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_models::small_mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> FrozenModel {
        model_seeded(5)
    }

    fn model_seeded(seed: u64) -> FrozenModel {
        let mut rng = StdRng::seed_from_u64(seed);
        FrozenModel::freeze(&small_mlp(8, &[6], 3, &mut rng), 3).unwrap()
    }

    #[test]
    fn start_validates_config() {
        assert!(Server::start(
            model(),
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            }
        )
        .is_err());
        assert!(Server::start(
            model(),
            ServeConfig {
                policy: BatchPolicy {
                    max_batch: 0,
                    max_wait: Duration::ZERO
                },
                ..ServeConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn serves_a_request_and_counts_it() {
        let server = Server::start(model(), ServeConfig::default()).unwrap();
        let prediction = server.predict(&[0.25; 8]).unwrap();
        assert!(prediction.label < 3);
        assert!(prediction.batch_size >= 1);
        let stats = server.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.latency.count, 1);
        assert!(stats.mean_batch >= 1.0);
        // Per-model accounting flows into the same snapshot.
        assert_eq!(stats.models.len(), 1);
        assert_eq!(stats.models[0].requests, 1);
        assert_eq!(stats.models[0].latency.count, 1);
        server.shutdown();
    }

    #[test]
    fn predict_many_matches_individual_predictions() {
        let server = Server::start(model(), ServeConfig::default()).unwrap();
        let rows: Vec<Vec<f32>> = (0..10)
            .map(|i| (0..8).map(|j| ((i * 8 + j) as f32).sin()).collect())
            .collect();
        let individually: Vec<usize> = rows
            .iter()
            .map(|row| server.predict(row).unwrap().label)
            .collect();
        let many = server
            .handle()
            .predict_many(rows.iter().map(Vec::as_slice))
            .unwrap();
        let labels: Vec<usize> = many.iter().map(|p| p.label).collect();
        assert_eq!(
            labels, individually,
            "pipelined answers must be bit-identical"
        );
        assert_eq!(server.handle().stats().requests, 20);
        // A bad row fails the whole call with its typed error.
        let bad = [vec![0.0f32; 8], vec![0.0f32; 7]];
        assert!(matches!(
            server.handle().predict_many(bad.iter().map(Vec::as_slice)),
            Err(ServeError::BadRequest { .. })
        ));
        server.shutdown();
    }

    #[test]
    fn routes_requests_to_the_addressed_model() {
        let server = Server::start(model_seeded(5), ServeConfig::default()).unwrap();
        let handle = server.handle();
        handle
            .registry()
            .register(2, "b", model_seeded(77))
            .unwrap();
        // Find an input the two models disagree on, then check routing.
        let model_a = handle.registry().get(0).unwrap();
        let model_b = handle.registry().get(2).unwrap();
        let mut probe = None;
        for i in 0..256u32 {
            let row: Vec<f32> = (0..8).map(|j| ((i * 8 + j) as f32 * 0.37).sin()).collect();
            let input = Tensor::from_vec(&[1, 8], row.clone()).unwrap();
            let a = model_a.predict_logits(&input).unwrap()[0];
            let b = model_b.predict_logits(&input).unwrap()[0];
            if a != b {
                probe = Some((row, a, b));
                break;
            }
        }
        let (row, label_a, label_b) = probe.expect("differently-seeded models must disagree");
        assert_eq!(handle.predict(&row).unwrap().label, label_a);
        let via_b = handle.submit_to(2, &row, None).unwrap().wait().unwrap();
        assert_eq!(via_b.label, label_b);
        assert_eq!(
            handle.submit_to(9, &row, None).unwrap_err(),
            ServeError::UnknownModel { id: 9 }
        );
        let stats = handle.stats();
        assert_eq!(stats.models.len(), 2);
        assert_eq!(stats.models[0].requests, 1);
        assert_eq!(stats.models[1].requests, 1);
        server.shutdown();
    }

    #[test]
    fn mixed_model_batches_never_share_a_gemm() {
        // One worker, generous wait: waves to both models interleave in one
        // queue, yet each reply's batch_size only counts same-model rows.
        let server = Server::start(
            model_seeded(5),
            ServeConfig {
                policy: BatchPolicy {
                    max_batch: 64,
                    max_wait: Duration::from_millis(5),
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let handle = server.handle();
        handle
            .registry()
            .register(1, "b", model_seeded(77))
            .unwrap();
        let mut pending = Vec::new();
        for i in 0..12 {
            let row = [i as f32 * 0.1; 8];
            pending.push((0u16, handle.submit_to(0, &row, None).unwrap()));
            pending.push((1u16, handle.submit_to(1, &row, None).unwrap()));
        }
        for (_, reply) in pending {
            let prediction = reply.wait().unwrap();
            assert!(prediction.batch_size <= 12, "groups must not mix models");
        }
        let stats = handle.stats();
        assert_eq!(stats.requests, 24);
        assert_eq!(stats.models[0].requests, 12);
        assert_eq!(stats.models[1].requests, 12);
        server.shutdown();
    }

    #[test]
    fn wrong_feature_count_is_rejected_per_request() {
        let server = Server::start(model(), ServeConfig::default()).unwrap();
        assert!(matches!(
            server.predict(&[0.0; 7]),
            Err(ServeError::BadRequest { .. })
        ));
        // A valid request still succeeds afterwards.
        assert!(server.predict(&[0.0; 8]).is_ok());
        server.shutdown();
    }

    #[test]
    fn expired_deadlines_are_shed_before_the_gemm() {
        let server = Server::start(model(), ServeConfig::default()).unwrap();
        let handle = server.handle();
        // A deadline already in the past: the worker must shed, not serve.
        let expired = Instant::now() - Duration::from_millis(5);
        let pending = handle
            .submit_with_deadline(&[0.25; 8], Some(expired))
            .unwrap();
        assert_eq!(pending.wait().unwrap_err(), ServeError::DeadlineExceeded);
        // A generous deadline serves normally.
        let roomy = Instant::now() + Duration::from_secs(30);
        let prediction = handle
            .submit_with_deadline(&[0.25; 8], Some(roomy))
            .unwrap()
            .wait()
            .unwrap();
        assert!(prediction.label < 3);
        let stats = handle.stats();
        assert_eq!(stats.shed_expired, 1);
        assert_eq!(stats.requests, 1, "shed requests are not 'served'");
        // The shed is attributed to the addressed model as well.
        assert_eq!(stats.models[0].shed_expired, 1);
        assert_eq!(stats.models[0].requests, 1);
        // Front-end rejection counters flow into the same snapshot.
        let counters = handle.shed_counters();
        counters.rejected_overload.add(3);
        counters.rejected_deadline.inc();
        let stats = handle.stats();
        assert_eq!(stats.rejected_overload, 3);
        assert_eq!(stats.rejected_deadline, 1);
        server.shutdown();
    }

    #[test]
    fn predict_after_shutdown_fails_cleanly() {
        let server = Server::start(model(), ServeConfig::default()).unwrap();
        let handle = server.handle();
        server.shutdown();
        assert_eq!(
            handle.predict(&[0.0; 8]).unwrap_err(),
            ServeError::ServerClosed
        );
    }

    #[test]
    fn warmup_touches_every_sample() {
        let images = ff_tensor::Tensor::ones(&[10, 8]);
        let dataset = ff_data::Dataset::new(images, vec![0; 10], 3).unwrap();
        let server = Server::start(
            model(),
            ServeConfig {
                mode: ServeMode::Goodness,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let warmed = server.warmup(dataset.iter_batches(4)).unwrap();
        assert_eq!(warmed, 10);
        assert_eq!(server.handle().model().num_classes(), 3);
        server.shutdown();
    }
}
