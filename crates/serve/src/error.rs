//! The typed error surface of the serving crate.
//!
//! Artifact loading never panics: every way a byte buffer can be malformed
//! maps to a [`ServeError`] variant, which the round-trip and fuzz-style
//! corruption tests exercise exhaustively.

use ff_codec::CodecError;
use ff_tensor::TensorError;
use std::fmt;

/// Error type for model freezing, artifact (de)serialization, and serving.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The network contains a layer type with no frozen representation.
    UnsupportedLayer {
        /// Name of the offending layer.
        layer: String,
    },
    /// The network (or a loaded artifact) is not a servable model — wrong
    /// layer dimension chaining, no dense layer, zero classes, ...
    InvalidModel {
        /// What is wrong with the model.
        message: String,
    },
    /// The artifact buffer does not start with the `FF8S` magic.
    BadMagic,
    /// The artifact declares a format version this build cannot read.
    UnsupportedVersion {
        /// The version found in the header.
        version: u16,
    },
    /// The artifact buffer ends before a required field.
    Truncated {
        /// Which field or section the loader was reading.
        context: &'static str,
    },
    /// The artifact is structurally invalid (bad lengths, unknown layer
    /// kind, non-finite scale, trailing garbage, ...).
    Corrupt {
        /// What is inconsistent.
        message: String,
    },
    /// A request does not match the model (wrong feature count, ...).
    BadRequest {
        /// What is wrong with the request.
        message: String,
    },
    /// A request addressed a model id the registry does not hold.
    UnknownModel {
        /// The model id the request asked for.
        id: u16,
    },
    /// The server has shut down (or its worker dropped the reply channel).
    ServerClosed,
    /// The request's deadline expired while it waited in the batch queue —
    /// it was shed *before* spending GEMM time on an answer nobody is
    /// waiting for.
    DeadlineExceeded,
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnsupportedLayer { layer } => {
                write!(f, "layer `{layer}` has no frozen inference representation")
            }
            ServeError::InvalidModel { message } => write!(f, "invalid model: {message}"),
            ServeError::BadMagic => write!(f, "not an FF8S artifact (bad magic)"),
            ServeError::UnsupportedVersion { version } => {
                write!(f, "unsupported artifact format version {version}")
            }
            ServeError::Truncated { context } => {
                write!(f, "artifact truncated while reading {context}")
            }
            ServeError::Corrupt { message } => write!(f, "corrupt artifact: {message}"),
            ServeError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServeError::UnknownModel { id } => {
                write!(f, "no model registered under id {id}")
            }
            ServeError::ServerClosed => write!(f, "server closed"),
            ServeError::DeadlineExceeded => {
                write!(f, "deadline expired before the request was served")
            }
            ServeError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ServeError {
    fn from(e: TensorError) -> Self {
        ServeError::Tensor(e)
    }
}

impl From<CodecError> for ServeError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::BadMagic { .. } => ServeError::BadMagic,
            CodecError::UnsupportedVersion { version } => {
                ServeError::UnsupportedVersion { version }
            }
            CodecError::Truncated { context } => ServeError::Truncated { context },
            CodecError::Corrupt { message } => ServeError::Corrupt { message },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let variants: Vec<ServeError> = vec![
            ServeError::UnsupportedLayer {
                layer: "conv2d".into(),
            },
            ServeError::InvalidModel {
                message: "no dense layer".into(),
            },
            ServeError::BadMagic,
            ServeError::UnsupportedVersion { version: 9 },
            ServeError::Truncated { context: "header" },
            ServeError::Corrupt {
                message: "trailing bytes".into(),
            },
            ServeError::BadRequest {
                message: "784 features expected".into(),
            },
            ServeError::UnknownModel { id: 3 },
            ServeError::ServerClosed,
            ServeError::DeadlineExceeded,
            TensorError::InvalidParameter {
                message: "bad".into(),
            }
            .into(),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn source_points_to_tensor_error() {
        use std::error::Error;
        let e: ServeError = TensorError::InvalidParameter {
            message: "bad".into(),
        }
        .into();
        assert!(e.source().is_some());
        assert!(ServeError::BadMagic.source().is_none());
    }
}
