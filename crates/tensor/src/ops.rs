//! Element-wise operations, reductions and broadcasting helpers on [`Tensor`].

use crate::{Result, Tensor, TensorError};

impl Tensor {
    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().to_vec(),
                right: other.shape().to_vec(),
                op,
            });
        }
        Ok(())
    }

    /// Element-wise sum of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ff_tensor::Tensor;
    /// # fn main() -> Result<(), ff_tensor::TensorError> {
    /// let s = Tensor::ones(&[2]).add(&Tensor::ones(&[2]))?;
    /// assert_eq!(s.data(), &[2.0, 2.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "add")?;
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(a, b)| a + b)
            .collect();
        Tensor::from_vec(self.shape(), data)
    }

    /// In-place element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "add_assign")?;
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_scaled_assign(&mut self, other: &Tensor, alpha: f32) -> Result<()> {
        self.check_same_shape(other, "add_scaled_assign")?;
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Element-wise difference of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "sub")?;
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(a, b)| a - b)
            .collect();
        Tensor::from_vec(self.shape(), data)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul_elem(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "mul_elem")?;
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(a, b)| a * b)
            .collect();
        Tensor::from_vec(self.shape(), data)
    }

    /// Multiplies every element by `factor`, returning a new tensor.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Multiplies every element by `factor` in place.
    pub fn scale_inplace(&mut self, factor: f32) {
        for v in self.data_mut() {
            *v *= factor;
        }
    }

    /// Adds `value` to every element, returning a new tensor.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|x| x + value)
    }

    /// Applies `f` to every element, returning a new tensor.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ff_tensor::Tensor;
    /// let sq = Tensor::from_slice(&[2], &[2.0, 3.0]).unwrap().map(|x| x * x);
    /// assert_eq!(sq.data(), &[4.0, 9.0]);
    /// ```
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        let data = self.data().iter().map(|&x| f(x)).collect();
        Tensor::from_vec(self.shape(), data).expect("map preserves element count")
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// Rectified linear unit applied element-wise.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Mask of the ReLU derivative: `1.0` where the element is positive,
    /// `0.0` otherwise.
    pub fn relu_grad_mask(&self) -> Tensor {
        self.map(|x| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Largest absolute value (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Minimum element value.
    pub fn min_value(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element value.
    pub fn max_value(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Frobenius norm (square root of the sum of squares).
    pub fn frobenius_norm(&self) -> f32 {
        self.data().iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Column sums of a `[rows, cols]` view: returns a `[cols]` tensor.
    ///
    /// Used for bias gradients (sum over the batch dimension).
    pub fn sum_axis0(&self) -> Tensor {
        let rows = self.rows();
        let cols = self.cols();
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            for (o, v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        Tensor::from_vec(&[cols], out).expect("sum_axis0 shape")
    }

    /// Per-row sums of a `[rows, cols]` view: returns a `[rows]` tensor.
    pub fn sum_rows(&self) -> Tensor {
        let rows = self.rows();
        let data: Vec<f32> = (0..rows).map(|r| self.row(r).iter().sum()).collect();
        Tensor::from_vec(&[rows], data).expect("sum_rows shape")
    }

    /// Per-row sum of squares of a `[rows, cols]` view.
    ///
    /// This is the Forward-Forward "goodness" of each sample when applied to a
    /// layer-activation matrix.
    pub fn sum_squares_rows(&self) -> Vec<f32> {
        let rows = self.rows();
        (0..rows)
            .map(|r| self.row(r).iter().map(|x| x * x).sum())
            .collect()
    }

    /// Index of the maximum element in each row of a `[rows, cols]` view.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let rows = self.rows();
        (0..rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// L2-normalises each row of a `[rows, cols]` view.
    ///
    /// This is the layer-normalisation step used between Forward-Forward
    /// layers so later layers cannot trivially inherit goodness magnitude.
    pub fn normalize_rows(&self, epsilon: f32) -> Tensor {
        let rows = self.rows();
        let cols = self.cols();
        let mut out = self.clone();
        for r in 0..rows {
            let norm = (self.row(r).iter().map(|x| x * x).sum::<f32>()).sqrt() + epsilon;
            for c in 0..cols {
                out.data_mut()[r * cols + c] = self.data()[r * cols + c] / norm;
            }
        }
        out
    }

    /// Broadcast-adds a `[cols]` bias vector to every row of a `[rows, cols]`
    /// tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the bias length differs
    /// from the number of columns.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor> {
        let cols = self.cols();
        if bias.len() != cols {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().to_vec(),
                right: bias.shape().to_vec(),
                op: "add_row_broadcast",
            });
        }
        let rows = self.rows();
        let mut out = self.clone();
        for r in 0..rows {
            for (o, b) in out.row_mut(r).iter_mut().zip(bias.data()) {
                *o += b;
            }
        }
        Ok(out)
    }

    /// Clamps every element into `[lo, hi]`, returning a new tensor.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2() -> Tensor {
        Tensor::from_vec(&[2, 3], vec![1., -2., 3., 4., -5., 6.]).unwrap()
    }

    #[test]
    fn add_sub_mul() {
        let a = t2();
        let b = Tensor::ones(&[2, 3]);
        assert_eq!(a.add(&b).unwrap().data()[1], -1.0);
        assert_eq!(a.sub(&b).unwrap().data()[0], 0.0);
        assert_eq!(a.mul_elem(&b).unwrap().data(), a.data());
        assert!(a.add(&Tensor::ones(&[3, 2])).is_err());
    }

    #[test]
    fn add_assign_and_axpy() {
        let mut a = Tensor::zeros(&[2, 2]);
        a.add_assign(&Tensor::ones(&[2, 2])).unwrap();
        a.add_scaled_assign(&Tensor::ones(&[2, 2]), 0.5).unwrap();
        assert_eq!(a.data(), &[1.5; 4]);
        assert!(a.add_assign(&Tensor::ones(&[3])).is_err());
    }

    #[test]
    fn scale_and_map() {
        let a = t2();
        assert_eq!(a.scale(2.0).data()[0], 2.0);
        let mut b = a.clone();
        b.scale_inplace(0.0);
        assert_eq!(b.sum(), 0.0);
        assert_eq!(a.add_scalar(1.0).data()[1], -1.0);
        let mut c = a.clone();
        c.map_inplace(f32::abs);
        assert!(c.min_value() >= 0.0);
    }

    #[test]
    fn relu_and_mask() {
        let a = t2();
        let r = a.relu();
        assert_eq!(r.data(), &[1., 0., 3., 4., 0., 6.]);
        let m = a.relu_grad_mask();
        assert_eq!(m.data(), &[1., 0., 1., 1., 0., 1.]);
    }

    #[test]
    fn reductions() {
        let a = t2();
        assert_eq!(a.sum(), 7.0);
        assert!((a.mean() - 7.0 / 6.0).abs() < 1e-6);
        assert_eq!(a.max_abs(), 6.0);
        assert_eq!(a.min_value(), -5.0);
        assert_eq!(a.max_value(), 6.0);
        let expected = (1f32 + 4. + 9. + 16. + 25. + 36.).sqrt();
        assert!((a.frobenius_norm() - expected).abs() < 1e-5);
    }

    #[test]
    fn axis_reductions() {
        let a = t2();
        assert_eq!(a.sum_axis0().data(), &[5., -7., 9.]);
        assert_eq!(a.sum_rows().data(), &[2., 5.]);
        assert_eq!(a.sum_squares_rows(), vec![14., 77.]);
    }

    #[test]
    fn argmax_rows_finds_max() {
        let a = t2();
        assert_eq!(a.argmax_rows(), vec![2, 2]);
    }

    #[test]
    fn normalize_rows_has_unit_norm() {
        let a = t2();
        let n = a.normalize_rows(0.0);
        for r in 0..2 {
            let norm: f32 = n.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn row_broadcast_bias() {
        let a = Tensor::zeros(&[2, 3]);
        let bias = Tensor::from_slice(&[3], &[1., 2., 3.]).unwrap();
        let out = a.add_row_broadcast(&bias).unwrap();
        assert_eq!(out.row(1), &[1., 2., 3.]);
        assert!(a.add_row_broadcast(&Tensor::ones(&[4])).is_err());
    }

    #[test]
    fn clamp_bounds_values() {
        let a = t2();
        let c = a.clamp(-1.0, 1.0);
        assert_eq!(c.min_value(), -1.0);
        assert_eq!(c.max_value(), 1.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
    }
}
