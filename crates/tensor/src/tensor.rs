use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` tensor of arbitrary rank.
///
/// `Tensor` is the single numeric container used across the FF-INT8
/// reproduction: mini-batches are `[batch, features]` or
/// `[batch, channels, height, width]`, dense weights are `[in, out]`, and
/// convolution weights are `[out_ch, in_ch, kh, kw]`.
///
/// # Examples
///
/// ```
/// use ff_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ff_tensor::Tensor;
    /// let t = Tensor::zeros(&[4]);
    /// assert_eq!(t.data(), &[0.0; 4]);
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// Creates a tensor of the given shape filled with ones.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ff_tensor::Tensor;
    /// assert_eq!(Tensor::ones(&[2]).sum(), 2.0);
    /// ```
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ff_tensor::Tensor;
    /// assert_eq!(Tensor::full(&[3], 2.0).sum(), 6.0);
    /// ```
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Creates a rank-0-like single-element tensor holding `value`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ff_tensor::Tensor;
    /// assert_eq!(Tensor::scalar(3.5).data(), &[3.5]);
    /// ```
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: vec![1],
            data: vec![value],
        }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] when `data.len()` does not
    /// equal the product of `shape`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ff_tensor::Tensor;
    /// # fn main() -> Result<(), ff_tensor::TensorError> {
    /// let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
    /// assert_eq!(t.at2(1, 0)?, 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ElementCountMismatch {
                shape: shape.to_vec(),
                provided: data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Builds a tensor from a slice, copying the contents.
    ///
    /// # Errors
    ///
    /// Same as [`Tensor::from_vec`].
    ///
    /// # Examples
    ///
    /// ```
    /// # use ff_tensor::Tensor;
    /// # fn main() -> Result<(), ff_tensor::TensorError> {
    /// let t = Tensor::from_slice(&[3], &[1.0, 2.0, 3.0])?;
    /// assert_eq!(t.sum(), 6.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_slice(shape: &[usize], data: &[f32]) -> Result<Self> {
        Tensor::from_vec(shape, data.to_vec())
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ff_tensor::Tensor;
    /// let v = Tensor::ones(&[2]).into_vec();
    /// assert_eq!(v, vec![1.0, 1.0]);
    /// ```
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy of the tensor with a new shape holding the same data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if the new shape does not
    /// describe the same number of elements.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ff_tensor::Tensor;
    /// # fn main() -> Result<(), ff_tensor::TensorError> {
    /// let t = Tensor::ones(&[2, 3]).reshape(&[3, 2])?;
    /// assert_eq!(t.shape(), &[3, 2]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ElementCountMismatch {
                shape: shape.to_vec(),
                provided: self.data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Number of rows for a rank-2 tensor (first dimension otherwise).
    pub fn rows(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Number of columns for a rank-2 tensor.
    ///
    /// For tensors of rank > 2 this is the product of all trailing dimensions,
    /// i.e. the row width after flattening to two dimensions.
    pub fn cols(&self) -> usize {
        if self.shape.len() <= 1 {
            return if self.shape.is_empty() { 0 } else { 1 };
        }
        self.shape[1..].iter().product()
    }

    /// Element access for rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index exceeds the
    /// shape and [`TensorError::RankMismatch`] for non-rank-2 tensors.
    pub fn at2(&self, i: usize, j: usize) -> Result<f32> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.ndim(),
                op: "at2",
            });
        }
        if i >= self.shape[0] || j >= self.shape[1] {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i, j],
                shape: self.shape.clone(),
            });
        }
        Ok(self.data[i * self.shape[1] + j])
    }

    /// Mutable element write for rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::at2`].
    pub fn set2(&mut self, i: usize, j: usize, value: f32) -> Result<()> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.ndim(),
                op: "set2",
            });
        }
        if i >= self.shape[0] || j >= self.shape[1] {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i, j],
                shape: self.shape.clone(),
            });
        }
        let cols = self.shape[1];
        self.data[i * cols + j] = value;
        Ok(())
    }

    /// Borrow row `i` of a tensor viewed as `[rows, cols]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f32] {
        let cols = self.cols();
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Mutably borrow row `i` of a tensor viewed as `[rows, cols]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let cols = self.cols();
        &mut self.data[i * cols..(i + 1) * cols]
    }

    /// Copies rows `[start, end)` into a new tensor with the same trailing
    /// dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when the range is invalid.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ff_tensor::Tensor;
    /// # fn main() -> Result<(), ff_tensor::TensorError> {
    /// let t = Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.])?;
    /// let s = t.slice_rows(1, 3)?;
    /// assert_eq!(s.shape(), &[2, 2]);
    /// assert_eq!(s.data(), &[3., 4., 5., 6.]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Self> {
        if start > end || end > self.rows() {
            return Err(TensorError::InvalidParameter {
                message: format!(
                    "row slice {start}..{end} out of range for {} rows",
                    self.rows()
                ),
            });
        }
        let cols = self.cols();
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        Tensor::from_vec(&shape, self.data[start * cols..end * cols].to_vec())
    }

    /// Gathers the given rows (in order, duplicates allowed) into a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any index exceeds the row
    /// count.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Self> {
        let cols = self.cols();
        let rows = self.rows();
        let mut data = Vec::with_capacity(indices.len() * cols);
        for &idx in indices {
            if idx >= rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: vec![idx],
                    shape: self.shape.clone(),
                });
            }
            data.extend_from_slice(self.row(idx));
        }
        let mut shape = self.shape.clone();
        shape[0] = indices.len();
        Tensor::from_vec(&shape, data)
    }

    /// Stacks two tensors along the first (row) dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the trailing dimensions
    /// differ.
    pub fn concat_rows(&self, other: &Tensor) -> Result<Self> {
        if self.shape[1..] != other.shape[1..] {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op: "concat_rows",
            });
        }
        let mut shape = self.shape.clone();
        shape[0] += other.shape[0];
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Tensor::from_vec(&shape, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[2, 2], 0.5).sum(), 2.0);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.reshape(&[6]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[5]).is_err());
    }

    #[test]
    fn indexing_2d() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set2(0, 1, 3.0).unwrap();
        assert_eq!(t.at2(0, 1).unwrap(), 3.0);
        assert!(t.at2(2, 0).is_err());
        assert!(t.set2(0, 5, 1.0).is_err());
    }

    #[test]
    fn at2_requires_rank_2() {
        let t = Tensor::zeros(&[2, 2, 2]);
        assert!(matches!(t.at2(0, 0), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn row_access_and_slice() {
        let t = Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.row(1), &[3., 4.]);
        let s = t.slice_rows(0, 2).unwrap();
        assert_eq!(s.rows(), 2);
        assert!(t.slice_rows(2, 5).is_err());
    }

    #[test]
    fn select_rows_gathers_in_order() {
        let t = Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let g = t.select_rows(&[2, 0]).unwrap();
        assert_eq!(g.data(), &[5., 6., 1., 2.]);
        assert!(t.select_rows(&[7]).is_err());
    }

    #[test]
    fn concat_rows_stacks() {
        let a = Tensor::ones(&[1, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let c = a.concat_rows(&b).unwrap();
        assert_eq!(c.shape(), &[3, 3]);
        assert!(a.concat_rows(&Tensor::zeros(&[1, 4])).is_err());
    }

    #[test]
    fn cols_flattens_trailing_dims() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.cols(), 12);
        assert_eq!(t.rows(), 2);
    }

    #[test]
    fn default_is_empty() {
        assert!(Tensor::default().is_empty());
    }
}
