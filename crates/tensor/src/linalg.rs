//! Dense linear-algebra kernels: matrix multiplication and transposition.
//!
//! All three product variants ([`matmul`], [`matmul_a_bt`], [`matmul_at_b`])
//! shard their output into row panels with [`crate::par::shard_rows`] once
//! the work exceeds [`crate::par::PARALLEL_THRESHOLD`] fused multiply-adds;
//! smaller products run single-threaded to avoid thread start-up overhead.
//! Per output element the accumulation order is independent of the thread
//! count, so parallel and serial runs produce bit-identical results.
//!
//! [`matmul_a_bt_fused`] additionally applies a per-column bias and an
//! optional ReLU (recording its gradient mask) inside the worker while the
//! output panel is still cache-hot — the fused epilogue used by the dense
//! and convolution layers.

use crate::par::{shard_rows, worker_count};
use crate::{Result, Tensor, TensorError};

fn check_rank2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
            op,
        });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// Multiplies `[m, k] × [k, n] → [m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank-2 and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use ff_tensor::{linalg, Tensor};
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let a = Tensor::from_vec(&[1, 2], vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(&[2, 1], vec![3.0, 4.0])?;
/// assert_eq!(linalg::matmul(&a, &b)?.data(), &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_rank2(a, "matmul")?;
    let (kb, n) = check_rank2(b, "matmul")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let threads = worker_count(m * n * ka, m);
    let (a_data, b_data) = (a.data(), b.data());
    shard_rows(&mut out, None, n, 1, threads, |first_row, panel, _| {
        let rows = panel.len() / n;
        let a_panel = &a_data[first_row * ka..(first_row + rows) * ka];
        serial_matmul(a_panel, b_data, panel, rows, ka, n);
    })?;
    Tensor::from_vec(&[m, n], out)
}

fn serial_matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// Multiplies `aᵀ × b` where `a` is `[k, m]` and `b` is `[k, n]`, yielding
/// `[m, n]` without materialising the transpose.
///
/// Sharded across threads by output row panels above the parallel threshold,
/// like [`matmul`].
///
/// # Errors
///
/// Returns the same errors as [`matmul`].
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m) = check_rank2(a, "matmul_at_b")?;
    let (kb, n) = check_rank2(b, "matmul_at_b")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul_at_b",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let threads = worker_count(m * n * ka, m);
    let (a_data, b_data) = (a.data(), b.data());
    shard_rows(&mut out, None, n, 1, threads, |first_row, panel, _| {
        let rows = panel.len() / n;
        // out[i, j] = Σ_p a[p, i] · b[p, j]; the p loop stays outermost so b
        // rows stream sequentially and per-element accumulation order matches
        // the serial kernel exactly.
        for p in 0..ka {
            let a_row = &a_data[p * m..(p + 1) * m];
            let b_row = &b_data[p * n..(p + 1) * n];
            for i in 0..rows {
                let a_pi = a_row[first_row + i];
                if a_pi == 0.0 {
                    continue;
                }
                let out_row = &mut panel[i * n..(i + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                    *o += a_pi * b_pj;
                }
            }
        }
    })?;
    Tensor::from_vec(&[m, n], out)
}

/// Multiplies `a × bᵀ` where `a` is `[m, k]` and `b` is `[n, k]`, yielding
/// `[m, n]` without materialising the transpose.
///
/// Sharded across threads by output row panels above the parallel threshold,
/// like [`matmul`].
///
/// # Errors
///
/// Returns the same errors as [`matmul`].
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (out, _) = matmul_a_bt_fused(a, b, None, false)?;
    Ok(out)
}

/// [`matmul_a_bt`] with a fused epilogue: adds a per-column `bias`, applies
/// an optional ReLU, and (when `relu` is set) records the ReLU gradient mask
/// — all while the output panel is cache-hot inside the GEMM worker.
///
/// Returns the output and, when `relu` is true, the mask tensor whose
/// elements are `1.0` where the pre-activation was positive.
///
/// # Errors
///
/// Returns the same shape errors as [`matmul`], plus
/// [`TensorError::ShapeMismatch`] when `bias` is not a length-`n` vector.
///
/// # Examples
///
/// ```
/// use ff_tensor::{linalg, Tensor};
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let x = Tensor::from_vec(&[1, 2], vec![1.0, -3.0])?;
/// let w = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0])?; // identity, stored [out, in]
/// let bias = Tensor::from_vec(&[2], vec![0.5, 0.5])?;
/// let (y, mask) = linalg::matmul_a_bt_fused(&x, &w, Some(&bias), true)?;
/// assert_eq!(y.data(), &[1.5, 0.0]);
/// assert_eq!(mask.unwrap().data(), &[1.0, 0.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul_a_bt_fused(
    a: &Tensor,
    b: &Tensor,
    bias: Option<&Tensor>,
    relu: bool,
) -> Result<(Tensor, Option<Tensor>)> {
    let (m, ka) = check_rank2(a, "matmul_a_bt")?;
    let (n, kb) = check_rank2(b, "matmul_a_bt")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul_a_bt",
        });
    }
    let bias_data = match bias {
        Some(bias) if bias.len() != n => {
            return Err(TensorError::ShapeMismatch {
                left: bias.shape().to_vec(),
                right: vec![n],
                op: "matmul_a_bt_fused bias",
            });
        }
        Some(bias) => Some(bias.data()),
        None => None,
    };
    let mut out = vec![0.0f32; m * n];
    let mut mask = if relu {
        vec![0.0f32; m * n]
    } else {
        Vec::new()
    };
    let threads = worker_count(m * n * ka, m);
    let (a_data, b_data) = (a.data(), b.data());
    let mask_slice = if relu { Some(&mut mask[..]) } else { None };
    shard_rows(
        &mut out,
        mask_slice,
        n,
        1,
        threads,
        |first_row, panel, mut mask_panel| {
            let rows = panel.len() / n;
            for i in 0..rows {
                let a_row = &a_data[(first_row + i) * ka..(first_row + i + 1) * ka];
                let out_row = &mut panel[i * n..(i + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &b_data[j * kb..(j + 1) * kb];
                    *o = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
                }
                if let Some(bias) = bias_data {
                    for (o, &bj) in out_row.iter_mut().zip(bias) {
                        *o += bj;
                    }
                }
                if let Some(mask_panel) = mask_panel.as_deref_mut() {
                    let mask_row = &mut mask_panel[i * n..(i + 1) * n];
                    for (o, mk) in out_row.iter_mut().zip(mask_row) {
                        if *o > 0.0 {
                            *mk = 1.0;
                        } else {
                            *o = 0.0;
                            *mk = 0.0;
                        }
                    }
                }
            }
        },
    )?;
    let out = Tensor::from_vec(&[m, n], out)?;
    let mask = if relu {
        Some(Tensor::from_vec(&[m, n], mask)?)
    } else {
        None
    };
    Ok((out, mask))
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-2 input.
///
/// # Examples
///
/// ```
/// use ff_tensor::{linalg, Tensor};
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// assert_eq!(linalg::transpose(&t)?.shape(), &[3, 2]);
/// # Ok(())
/// # }
/// ```
pub fn transpose(t: &Tensor) -> Result<Tensor> {
    let (rows, cols) = check_rank2(t, "transpose")?;
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = t.data()[r * cols + c];
        }
    }
    Tensor::from_vec(&[cols, rows], out)
}

impl Tensor {
    /// Matrix product, see [`matmul`].
    ///
    /// # Errors
    ///
    /// See [`matmul`].
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        matmul(self, other)
    }

    /// Transposed matrix, see [`transpose`].
    ///
    /// # Errors
    ///
    /// See [`transpose`].
    pub fn transpose2(&self) -> Result<Tensor> {
        transpose(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]).unwrap();
        let id = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]).unwrap();
        assert_eq!(matmul(&a, &id).unwrap().data(), a.data());
        assert_eq!(matmul(&id, &a).unwrap().data(), a.data());
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&Tensor::zeros(&[2]), &b).is_err());
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(&[3, 4], (0..12).map(|x| x as f32).collect()).unwrap();
        let direct = matmul_at_b(&a, &b).unwrap();
        let explicit = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(direct.data(), explicit.data());

        let c = Tensor::from_vec(&[2, 3], vec![1., 0., 2., -1., 3., 1.]).unwrap();
        let d = Tensor::from_vec(&[4, 3], (0..12).map(|x| x as f32 / 2.0).collect()).unwrap();
        let direct = matmul_a_bt(&c, &d).unwrap();
        let explicit = matmul(&c, &transpose(&d).unwrap()).unwrap();
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(tt.data(), a.data());
        assert!(transpose(&Tensor::zeros(&[2, 2, 2])).is_err());
    }

    #[test]
    fn large_matmul_parallel_matches_serial() {
        let m = 64;
        let k = 300;
        let n = 70;
        let a_data: Vec<f32> = (0..m * k).map(|i| ((i * 7919) % 13) as f32 - 6.0).collect();
        let b_data: Vec<f32> = (0..k * n)
            .map(|i| ((i * 104729) % 11) as f32 - 5.0)
            .collect();
        let a = Tensor::from_vec(&[m, k], a_data).unwrap();
        let b = Tensor::from_vec(&[k, n], b_data).unwrap();
        let par = matmul(&a, &b).unwrap();
        let mut serial = vec![0.0f32; m * n];
        serial_matmul(a.data(), b.data(), &mut serial, m, k, n);
        assert_eq!(par.data(), &serial[..]);
    }

    #[test]
    fn transposed_variants_parallel_match_serial_order() {
        // Large enough to cross PARALLEL_THRESHOLD (m·n·k ≥ 2^20).
        let m = 128;
        let k = 96;
        let n = 96;
        let a_data: Vec<f32> = (0..m * k).map(|i| ((i * 31) % 17) as f32 - 8.0).collect();
        let bt_data: Vec<f32> = (0..n * k).map(|i| ((i * 57) % 19) as f32 - 9.0).collect();
        let a = Tensor::from_vec(&[m, k], a_data).unwrap();
        let bt = Tensor::from_vec(&[n, k], bt_data).unwrap();
        let direct = matmul_a_bt(&a, &bt).unwrap();
        let explicit = matmul(&a, &transpose(&bt).unwrap()).unwrap();
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-3);
        }

        let at = transpose(&a).unwrap(); // [k=?]: a^T is [k, m]
        let b2 =
            Tensor::from_vec(&[m, n], (0..m * n).map(|x| (x % 23) as f32 * 0.5).collect()).unwrap();
        let direct = matmul_at_b(&a, &b2).unwrap(); // aᵀ·b2: [k, n]... a is [m, k] so aᵀ is [k dims]
        let explicit = matmul(&at, &b2).unwrap();
        assert_eq!(direct.data(), explicit.data());
    }

    #[test]
    fn fused_epilogue_matches_unfused() {
        let m = 5;
        let k = 7;
        let n = 4;
        let a = Tensor::from_vec(
            &[m, k],
            (0..m * k).map(|i| (i as f32 - 15.0) / 7.0).collect(),
        )
        .unwrap();
        let b = Tensor::from_vec(
            &[n, k],
            (0..n * k).map(|i| (i as f32 - 12.0) / 9.0).collect(),
        )
        .unwrap();
        let bias = Tensor::from_vec(&[n], vec![0.5, -0.25, 0.0, 1.0]).unwrap();
        let (fused, mask) = matmul_a_bt_fused(&a, &b, Some(&bias), true).unwrap();
        let mask = mask.unwrap();
        let unfused = matmul_a_bt(&a, &b)
            .unwrap()
            .add_row_broadcast(&bias)
            .unwrap();
        for ((&f, &u), &mk) in fused.data().iter().zip(unfused.data()).zip(mask.data()) {
            if u > 0.0 {
                assert_eq!(f, u);
                assert_eq!(mk, 1.0);
            } else {
                assert_eq!(f, 0.0);
                assert_eq!(mk, 0.0);
            }
        }

        // Without relu: bias only, no mask.
        let (fused, mask) = matmul_a_bt_fused(&a, &b, Some(&bias), false).unwrap();
        assert!(mask.is_none());
        assert_eq!(fused.data(), unfused.data());
    }

    #[test]
    fn fused_epilogue_rejects_bad_bias() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 3]);
        let bias = Tensor::ones(&[5]);
        assert!(matmul_a_bt_fused(&a, &b, Some(&bias), false).is_err());
    }

    #[test]
    fn method_wrappers_delegate() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(a.matmul(&a).unwrap().data(), &[7., 10., 15., 22.]);
        assert_eq!(a.transpose2().unwrap().data(), &[1., 3., 2., 4.]);
    }
}
