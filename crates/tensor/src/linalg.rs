//! Dense linear-algebra kernels: matrix multiplication and transposition.
//!
//! Matrix products above a size threshold are sharded across threads with
//! `crossbeam::scope`; smaller products run single-threaded to avoid thread
//! start-up overhead.

use crate::{Result, Tensor, TensorError};

/// Minimum number of fused multiply-adds before a matmul is parallelised.
const PARALLEL_THRESHOLD: usize = 1 << 20;

fn check_rank2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
            op,
        });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// Multiplies `[m, k] × [k, n] → [m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank-2 and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use ff_tensor::{linalg, Tensor};
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let a = Tensor::from_vec(&[1, 2], vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(&[2, 1], vec![3.0, 4.0])?;
/// assert_eq!(linalg::matmul(&a, &b)?.data(), &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_rank2(a, "matmul")?;
    let (kb, n) = check_rank2(b, "matmul")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let work = m * n * ka;
    if work >= PARALLEL_THRESHOLD && m > 1 {
        parallel_matmul(a.data(), b.data(), &mut out, m, ka, n);
    } else {
        serial_matmul(a.data(), b.data(), &mut out, m, ka, n);
    }
    Tensor::from_vec(&[m, n], out)
}

fn serial_matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

fn parallel_matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(m)
        .max(1);
    let rows_per_chunk = m.div_ceil(threads);
    crossbeam::scope(|scope| {
        for (chunk_idx, out_chunk) in out.chunks_mut(rows_per_chunk * n).enumerate() {
            let row_start = chunk_idx * rows_per_chunk;
            let rows_here = out_chunk.len() / n;
            let a_chunk = &a[row_start * k..(row_start + rows_here) * k];
            scope.spawn(move |_| {
                serial_matmul(a_chunk, b, out_chunk, rows_here, k, n);
            });
        }
    })
    .expect("matmul worker thread panicked");
}

/// Multiplies `aᵀ × b` where `a` is `[k, m]` and `b` is `[k, n]`, yielding
/// `[m, n]` without materialising the transpose.
///
/// # Errors
///
/// Returns the same errors as [`matmul`].
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m) = check_rank2(a, "matmul_at_b")?;
    let (kb, n) = check_rank2(b, "matmul_at_b")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul_at_b",
        });
    }
    let mut out = vec![0.0f32; m * n];
    for p in 0..ka {
        let a_row = &a.data()[p * m..(p + 1) * m];
        let b_row = &b.data()[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_pi * b_pj;
            }
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// Multiplies `a × bᵀ` where `a` is `[m, k]` and `b` is `[n, k]`, yielding
/// `[m, n]` without materialising the transpose.
///
/// # Errors
///
/// Returns the same errors as [`matmul`].
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_rank2(a, "matmul_a_bt")?;
    let (n, kb) = check_rank2(b, "matmul_a_bt")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul_a_bt",
        });
    }
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a.data()[i * ka..(i + 1) * ka];
        for j in 0..n {
            let b_row = &b.data()[j * kb..(j + 1) * kb];
            out[i * n + j] = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-2 input.
///
/// # Examples
///
/// ```
/// use ff_tensor::{linalg, Tensor};
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// assert_eq!(linalg::transpose(&t)?.shape(), &[3, 2]);
/// # Ok(())
/// # }
/// ```
pub fn transpose(t: &Tensor) -> Result<Tensor> {
    let (rows, cols) = check_rank2(t, "transpose")?;
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = t.data()[r * cols + c];
        }
    }
    Tensor::from_vec(&[cols, rows], out)
}

impl Tensor {
    /// Matrix product, see [`matmul`].
    ///
    /// # Errors
    ///
    /// See [`matmul`].
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        matmul(self, other)
    }

    /// Transposed matrix, see [`transpose`].
    ///
    /// # Errors
    ///
    /// See [`transpose`].
    pub fn transpose2(&self) -> Result<Tensor> {
        transpose(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]).unwrap();
        let id = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]).unwrap();
        assert_eq!(matmul(&a, &id).unwrap().data(), a.data());
        assert_eq!(matmul(&id, &a).unwrap().data(), a.data());
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&Tensor::zeros(&[2]), &b).is_err());
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(&[3, 4], (0..12).map(|x| x as f32).collect()).unwrap();
        let direct = matmul_at_b(&a, &b).unwrap();
        let explicit = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(direct.data(), explicit.data());

        let c = Tensor::from_vec(&[2, 3], vec![1., 0., 2., -1., 3., 1.]).unwrap();
        let d = Tensor::from_vec(&[4, 3], (0..12).map(|x| x as f32 / 2.0).collect()).unwrap();
        let direct = matmul_a_bt(&c, &d).unwrap();
        let explicit = matmul(&c, &transpose(&d).unwrap()).unwrap();
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(tt.data(), a.data());
        assert!(transpose(&Tensor::zeros(&[2, 2, 2])).is_err());
    }

    #[test]
    fn large_matmul_parallel_matches_serial() {
        let m = 64;
        let k = 300;
        let n = 70;
        let a_data: Vec<f32> = (0..m * k).map(|i| ((i * 7919) % 13) as f32 - 6.0).collect();
        let b_data: Vec<f32> = (0..k * n).map(|i| ((i * 104729) % 11) as f32 - 5.0).collect();
        let a = Tensor::from_vec(&[m, k], a_data).unwrap();
        let b = Tensor::from_vec(&[k, n], b_data).unwrap();
        let par = matmul(&a, &b).unwrap();
        let mut serial = vec![0.0f32; m * n];
        serial_matmul(a.data(), b.data(), &mut serial, m, k, n);
        assert_eq!(par.data(), &serial[..]);
    }

    #[test]
    fn method_wrappers_delegate() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(a.matmul(&a).unwrap().data(), &[7., 10., 15., 22.]);
        assert_eq!(a.transpose2().unwrap().data(), &[1., 3., 2., 4.]);
    }
}
