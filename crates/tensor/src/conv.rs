//! Convolution and pooling kernels (im2col-based).
//!
//! Layout conventions: activations are `[batch, channels, height, width]`,
//! convolution weights are `[out_ch, in_ch, kh, kw]`.

use crate::{linalg, Result, Tensor, TensorError};

/// Spatial geometry of a 2-D convolution or pooling operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding added to each spatial border.
    pub padding: usize,
}

impl ConvGeometry {
    /// Creates a square-kernel geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when `kernel` or `stride` is
    /// zero.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Result<Self> {
        if kernel == 0 || stride == 0 {
            return Err(TensorError::InvalidParameter {
                message: format!("kernel ({kernel}) and stride ({stride}) must be non-zero"),
            });
        }
        Ok(ConvGeometry {
            kh: kernel,
            kw: kernel,
            stride,
            padding,
        })
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when the kernel does not fit
    /// in the padded input.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if ph < self.kh || pw < self.kw {
            return Err(TensorError::InvalidParameter {
                message: format!(
                    "kernel {}x{} larger than padded input {ph}x{pw}",
                    self.kh, self.kw
                ),
            });
        }
        Ok((
            (ph - self.kh) / self.stride + 1,
            (pw - self.kw) / self.stride + 1,
        ))
    }
}

fn expect_rank4(t: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if t.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.ndim(),
            op,
        });
    }
    let s = t.shape();
    Ok((s[0], s[1], s[2], s[3]))
}

/// Unfolds an `[n, c, h, w]` input into a `[n·oh·ow, c·kh·kw]` patch matrix.
///
/// Each row holds one receptive field so that convolution reduces to a single
/// matrix product with the flattened weights.
///
/// # Errors
///
/// Returns a rank or parameter error when the input is not rank-4 or the
/// kernel does not fit.
pub fn im2col(input: &Tensor, geom: ConvGeometry) -> Result<(Tensor, usize, usize)> {
    let (n, c, h, w) = expect_rank4(input, "im2col")?;
    let (oh, ow) = geom.output_size(h, w)?;
    let row_len = c * geom.kh * geom.kw;
    let mut out = vec![0.0f32; n * oh * ow * row_len];
    let data = input.data();
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row_idx = (img * oh + oy) * ow + ox;
                let row = &mut out[row_idx * row_len..(row_idx + 1) * row_len];
                let mut col = 0;
                for ch in 0..c {
                    for ky in 0..geom.kh {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        for kx in 0..geom.kw {
                            let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                let src = ((img * c + ch) * h + iy as usize) * w + ix as usize;
                                row[col] = data[src];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    Ok((Tensor::from_vec(&[n * oh * ow, row_len], out)?, oh, ow))
}

/// Folds a `[n·oh·ow, c·kh·kw]` patch-gradient matrix back into an
/// `[n, c, h, w]` input gradient (the adjoint of [`im2col`]).
///
/// # Errors
///
/// Returns [`TensorError::ElementCountMismatch`] when the column matrix does
/// not match the given geometry.
pub fn col2im(
    cols: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    geom: ConvGeometry,
) -> Result<Tensor> {
    let (oh, ow) = geom.output_size(h, w)?;
    let row_len = c * geom.kh * geom.kw;
    if cols.len() != n * oh * ow * row_len {
        return Err(TensorError::ElementCountMismatch {
            shape: vec![n * oh * ow, row_len],
            provided: cols.len(),
        });
    }
    let mut out = vec![0.0f32; n * c * h * w];
    let data = cols.data();
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row_idx = (img * oh + oy) * ow + ox;
                let row = &data[row_idx * row_len..(row_idx + 1) * row_len];
                let mut col = 0;
                for ch in 0..c {
                    for ky in 0..geom.kh {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        for kx in 0..geom.kw {
                            let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                let dst = ((img * c + ch) * h + iy as usize) * w + ix as usize;
                                out[dst] += row[col];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(&[n, c, h, w], out)
}

/// 2-D convolution of `input [n, c, h, w]` with `weight [oc, c, kh, kw]` and an
/// optional `[oc]` bias, producing `[n, oc, oh, ow]`.
///
/// # Errors
///
/// Returns shape/rank errors when operands are inconsistent with `geom`.
///
/// # Examples
///
/// ```
/// use ff_tensor::conv::{conv2d, ConvGeometry};
/// use ff_tensor::Tensor;
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let input = Tensor::ones(&[1, 1, 3, 3]);
/// let weight = Tensor::ones(&[1, 1, 3, 3]);
/// let out = conv2d(&input, &weight, None, ConvGeometry::new(3, 1, 0)?)?;
/// assert_eq!(out.data(), &[9.0]);
/// # Ok(())
/// # }
/// ```
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    geom: ConvGeometry,
) -> Result<Tensor> {
    let (n, c, _h, _w) = expect_rank4(input, "conv2d")?;
    let (oc, wc, wkh, wkw) = expect_rank4(weight, "conv2d")?;
    if wc != c || wkh != geom.kh || wkw != geom.kw {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().to_vec(),
            right: weight.shape().to_vec(),
            op: "conv2d",
        });
    }
    let (cols, oh, ow) = im2col(input, geom)?;
    let weight_mat = weight.reshape(&[oc, c * geom.kh * geom.kw])?;
    // [n·oh·ow, row_len] × [row_len, oc]  (via a·bᵀ with weight rows)
    let out_mat = linalg::matmul_a_bt(&cols, &weight_mat)?;
    let mut out = vec![0.0f32; n * oc * oh * ow];
    let src = out_mat.data();
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row_idx = (img * oh + oy) * ow + ox;
                for ch in 0..oc {
                    let mut v = src[row_idx * oc + ch];
                    if let Some(b) = bias {
                        v += b.data()[ch];
                    }
                    out[((img * oc + ch) * oh + oy) * ow + ox] = v;
                }
            }
        }
    }
    Tensor::from_vec(&[n, oc, oh, ow], out)
}

/// Output of [`max_pool2d`]: pooled activations plus the flat input index of
/// every selected maximum (needed for the backward pass).
#[derive(Debug, Clone, PartialEq)]
pub struct MaxPoolOutput {
    /// Pooled `[n, c, oh, ow]` activations.
    pub output: Tensor,
    /// For each pooled element, the flat index into the input buffer that won.
    pub argmax: Vec<usize>,
}

/// 2-D max pooling.
///
/// # Errors
///
/// Returns rank/parameter errors when the input is not rank-4 or the window
/// does not fit.
pub fn max_pool2d(input: &Tensor, geom: ConvGeometry) -> Result<MaxPoolOutput> {
    let (n, c, h, w) = expect_rank4(input, "max_pool2d")?;
    let (oh, ow) = geom.output_size(h, w)?;
    let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
    let mut argmax = vec![0usize; n * c * oh * ow];
    let data = input.data();
    for img in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let dst = ((img * c + ch) * oh + oy) * ow + ox;
                    for ky in 0..geom.kh {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..geom.kw {
                            let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            let src = ((img * c + ch) * h + iy as usize) * w + ix as usize;
                            if data[src] > out[dst] {
                                out[dst] = data[src];
                                argmax[dst] = src;
                            }
                        }
                    }
                    if out[dst] == f32::NEG_INFINITY {
                        out[dst] = 0.0;
                    }
                }
            }
        }
    }
    Ok(MaxPoolOutput {
        output: Tensor::from_vec(&[n, c, oh, ow], out)?,
        argmax,
    })
}

/// 2-D average pooling.
///
/// # Errors
///
/// Returns rank/parameter errors when the input is not rank-4 or the window
/// does not fit.
pub fn avg_pool2d(input: &Tensor, geom: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, w) = expect_rank4(input, "avg_pool2d")?;
    let (oh, ow) = geom.output_size(h, w)?;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let data = input.data();
    let window = (geom.kh * geom.kw) as f32;
    for img in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..geom.kh {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..geom.kw {
                            let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            acc += data[((img * c + ch) * h + iy as usize) * w + ix as usize];
                        }
                    }
                    out[((img * c + ch) * oh + oy) * ow + ox] = acc / window;
                }
            }
        }
    }
    Tensor::from_vec(&[n, c, oh, ow], out)
}

/// Global average pooling: `[n, c, h, w] → [n, c]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = expect_rank4(input, "global_avg_pool")?;
    let area = (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    let data = input.data();
    for img in 0..n {
        for ch in 0..c {
            let base = (img * c + ch) * h * w;
            out[img * c + ch] = data[base..base + h * w].iter().sum::<f32>() / area;
        }
    }
    Tensor::from_vec(&[n, c], out)
}

/// Distributes a `[n, c]` gradient uniformly back over `[n, c, h, w]`
/// (the adjoint of [`global_avg_pool`]).
///
/// # Errors
///
/// Returns [`TensorError::ElementCountMismatch`] when the gradient does not
/// have `n · c` elements.
pub fn global_avg_pool_backward(
    grad: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
) -> Result<Tensor> {
    if grad.len() != n * c {
        return Err(TensorError::ElementCountMismatch {
            shape: vec![n, c],
            provided: grad.len(),
        });
    }
    let area = (h * w) as f32;
    let mut out = vec![0.0f32; n * c * h * w];
    for img in 0..n {
        for ch in 0..c {
            let g = grad.data()[img * c + ch] / area;
            let base = (img * c + ch) * h * w;
            for v in &mut out[base..base + h * w] {
                *v = g;
            }
        }
    }
    Tensor::from_vec(&[n, c, h, w], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..n).map(|x| x as f32).collect()).unwrap()
    }

    #[test]
    fn geometry_validation() {
        assert!(ConvGeometry::new(0, 1, 0).is_err());
        assert!(ConvGeometry::new(3, 0, 0).is_err());
        let g = ConvGeometry::new(3, 1, 1).unwrap();
        assert_eq!(g.output_size(4, 4).unwrap(), (4, 4));
        assert!(g.output_size(0, 0).is_err());
    }

    #[test]
    fn im2col_shape_and_content() {
        let input = seq_tensor(&[1, 1, 3, 3]);
        let (cols, oh, ow) = im2col(&input, ConvGeometry::new(2, 1, 0).unwrap()).unwrap();
        assert_eq!((oh, ow), (2, 2));
        assert_eq!(cols.shape(), &[4, 4]);
        // first patch is rows [0 1; 3 4]
        assert_eq!(cols.row(0), &[0., 1., 3., 4.]);
        assert_eq!(cols.row(3), &[4., 5., 7., 8.]);
    }

    #[test]
    fn conv2d_matches_direct_computation() {
        let input = seq_tensor(&[1, 1, 3, 3]);
        let weight = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 0., 0., 1.]).unwrap();
        let out = conv2d(&input, &weight, None, ConvGeometry::new(2, 1, 0).unwrap()).unwrap();
        // each output = top-left + bottom-right of the 2x2 window
        assert_eq!(out.data(), &[4., 6., 10., 12.]);
    }

    #[test]
    fn conv2d_bias_and_padding() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let weight = Tensor::ones(&[2, 1, 3, 3]);
        let bias = Tensor::from_slice(&[2], &[1.0, -1.0]).unwrap();
        let out = conv2d(
            &input,
            &weight,
            Some(&bias),
            ConvGeometry::new(3, 1, 1).unwrap(),
        )
        .unwrap();
        assert_eq!(out.shape(), &[1, 2, 2, 2]);
        // centre of padded 2x2 ones covered by 3x3 kernel sums 4 ones
        assert_eq!(out.data()[0], 5.0);
        assert_eq!(out.data()[4], 3.0);
    }

    #[test]
    fn conv2d_rejects_mismatched_weight() {
        let input = Tensor::ones(&[1, 2, 4, 4]);
        let weight = Tensor::ones(&[1, 3, 3, 3]);
        assert!(conv2d(&input, &weight, None, ConvGeometry::new(3, 1, 0).unwrap()).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col_for_ones() {
        // For stride 1 / no padding, col2im(im2col(x)) counts how many patches
        // cover each pixel.
        let input = Tensor::ones(&[1, 1, 3, 3]);
        let geom = ConvGeometry::new(2, 1, 0).unwrap();
        let (cols, _, _) = im2col(&input, geom).unwrap();
        let folded = col2im(&cols, 1, 1, 3, 3, geom).unwrap();
        assert_eq!(folded.data(), &[1., 2., 1., 2., 4., 2., 1., 2., 1.]);
    }

    #[test]
    fn max_pool_tracks_argmax() {
        let input = seq_tensor(&[1, 1, 4, 4]);
        let pooled = max_pool2d(&input, ConvGeometry::new(2, 2, 0).unwrap()).unwrap();
        assert_eq!(pooled.output.data(), &[5., 7., 13., 15.]);
        assert_eq!(pooled.argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn avg_pool_averages_window() {
        let input = seq_tensor(&[1, 1, 2, 2]);
        let out = avg_pool2d(&input, ConvGeometry::new(2, 2, 0).unwrap()).unwrap();
        assert_eq!(out.data(), &[1.5]);
    }

    #[test]
    fn global_avg_pool_and_backward() {
        let input = seq_tensor(&[2, 2, 2, 2]);
        let pooled = global_avg_pool(&input).unwrap();
        assert_eq!(pooled.shape(), &[2, 2]);
        assert_eq!(pooled.data()[0], 1.5);
        let grad = Tensor::ones(&[2, 2]);
        let back = global_avg_pool_backward(&grad, 2, 2, 2, 2).unwrap();
        assert_eq!(back.data()[0], 0.25);
        assert!(global_avg_pool_backward(&grad, 3, 3, 2, 2).is_err());
    }

    #[test]
    fn pooling_rejects_wrong_rank() {
        let input = Tensor::ones(&[2, 2]);
        let geom = ConvGeometry::new(2, 2, 0).unwrap();
        assert!(max_pool2d(&input, geom).is_err());
        assert!(avg_pool2d(&input, geom).is_err());
        assert!(global_avg_pool(&input).is_err());
    }
}
