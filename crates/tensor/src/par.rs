//! Row-panel work sharding shared by every GEMM in the workspace.
//!
//! Both the fp32 kernels in [`crate::linalg`] and the packed INT8 engine in
//! `ff-quant` — whether its operands are packed per call or served from a
//! cached plan — split their output matrix into contiguous panels of rows
//! and hand each panel to a worker thread (via `crossbeam::scope`). This
//! module centralises that pattern so thresholds, thread-count selection and
//! panel alignment behave identically everywhere.
//!
//! # Examples
//!
//! ```
//! use ff_tensor::par::shard_rows;
//!
//! # fn main() -> Result<(), ff_tensor::TensorError> {
//! // Fill a 4×3 row-major buffer, one panel per worker.
//! let mut out = vec![0.0f32; 12];
//! shard_rows(&mut out, None, 3, 1, 2, |first_row, panel, _aux| {
//!     for (r, row) in panel.chunks_mut(3).enumerate() {
//!         row.fill((first_row + r) as f32);
//!     }
//! })?;
//! assert_eq!(out[3..6], [1.0, 1.0, 1.0]);
//! # Ok(())
//! # }
//! ```

use crate::Result;

/// Minimum number of fused multiply-adds before a GEMM is parallelised.
///
/// Below this, thread start-up costs more than the arithmetic saves.
pub const PARALLEL_THRESHOLD: usize = 1 << 20;

/// Picks the number of worker threads for a GEMM of `work = m·n·k` MACs whose
/// output can be split into at most `max_shards` row panels.
///
/// Returns `1` (serial) when the product is below [`PARALLEL_THRESHOLD`] or
/// only one shard exists; otherwise the machine's available parallelism
/// capped by `max_shards`.
pub fn worker_count(work: usize, max_shards: usize) -> usize {
    if work < PARALLEL_THRESHOLD || max_shards <= 1 {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(max_shards)
        .max(1)
}

/// Splits `out` (a row-major `rows × row_width` buffer) into contiguous row
/// panels and runs `body(first_row, panel, aux_panel)` for each, on
/// `threads` worker threads.
///
/// - Panel boundaries are aligned to multiples of `granule` rows so blocked
///   kernels can keep their micro-panel alignment (pass `1` for no
///   constraint).
/// - `aux` is an optional second buffer of identical shape (e.g. a ReLU mask
///   written alongside the output); it is sharded with the same boundaries.
/// - With `threads <= 1` the body runs inline on the calling thread, so the
///   serial path stays allocation- and thread-free.
///
/// # Errors
///
/// Returns [`crate::TensorError::InvalidParameter`] when `row_width` is zero,
/// `out.len()` is not a multiple of `row_width`, or `aux` has a different
/// length than `out`.
pub fn shard_rows<T, F>(
    out: &mut [T],
    mut aux: Option<&mut [T]>,
    row_width: usize,
    granule: usize,
    threads: usize,
    body: F,
) -> Result<()>
where
    T: Send,
    F: Fn(usize, &mut [T], Option<&mut [T]>) + Sync,
{
    if row_width == 0 || !out.len().is_multiple_of(row_width) {
        return Err(crate::TensorError::InvalidParameter {
            message: format!(
                "shard_rows: buffer of {} elements is not rows × {row_width}",
                out.len()
            ),
        });
    }
    if let Some(ref a) = aux {
        if a.len() != out.len() {
            return Err(crate::TensorError::InvalidParameter {
                message: format!(
                    "shard_rows: aux buffer {} != out buffer {}",
                    a.len(),
                    out.len()
                ),
            });
        }
    }
    let rows = out.len() / row_width;
    let granule = granule.max(1);
    if threads <= 1 || rows <= granule {
        body(0, out, aux.as_deref_mut());
        return Ok(());
    }
    let rows_per_panel = rows.div_ceil(threads).div_ceil(granule) * granule;
    let chunk = rows_per_panel * row_width;
    crossbeam::scope(|scope| match aux {
        Some(aux) => {
            for (idx, (panel, aux_panel)) in
                out.chunks_mut(chunk).zip(aux.chunks_mut(chunk)).enumerate()
            {
                let body = &body;
                scope.spawn(move |_| body(idx * rows_per_panel, panel, Some(aux_panel)));
            }
        }
        None => {
            for (idx, panel) in out.chunks_mut(chunk).enumerate() {
                let body = &body;
                scope.spawn(move |_| body(idx * rows_per_panel, panel, None));
            }
        }
    })
    .expect("shard_rows worker thread panicked");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_path_covers_everything() {
        let mut out = vec![0usize; 12];
        shard_rows(&mut out, None, 3, 1, 1, |first_row, panel, _| {
            for (r, row) in panel.chunks_mut(3).enumerate() {
                row.fill(first_row + r);
            }
        })
        .unwrap();
        assert_eq!(out, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn threaded_path_matches_serial() {
        for threads in [2, 3, 4, 7] {
            let mut out = vec![0usize; 10 * 4];
            shard_rows(&mut out, None, 4, 1, threads, |first_row, panel, _| {
                for (r, row) in panel.chunks_mut(4).enumerate() {
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = (first_row + r) * 100 + c;
                    }
                }
            })
            .unwrap();
            for r in 0..10 {
                for c in 0..4 {
                    assert_eq!(out[r * 4 + c], r * 100 + c, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn granule_alignment_respected() {
        let mut out = vec![0usize; 20 * 2];
        let granule = 8;
        shard_rows(&mut out, None, 2, granule, 3, |first_row, panel, _| {
            assert_eq!(
                first_row % granule,
                0,
                "panel start must be granule-aligned"
            );
            panel.fill(first_row + 1);
        })
        .unwrap();
        assert!(out.iter().all(|&v| v != 0));
    }

    #[test]
    fn aux_buffer_sharded_identically() {
        let mut out = vec![0usize; 9 * 3];
        let mut aux = vec![0usize; 9 * 3];
        shard_rows(
            &mut out,
            Some(&mut aux),
            3,
            1,
            4,
            |first_row, panel, aux| {
                let aux = aux.expect("aux panel present");
                assert_eq!(panel.len(), aux.len());
                panel.fill(first_row);
                aux.fill(first_row + 1000);
            },
        )
        .unwrap();
        for (o, a) in out.iter().zip(&aux) {
            assert_eq!(o + 1000, *a);
        }
    }

    #[test]
    fn invalid_shapes_error() {
        let mut out = vec![0u8; 7];
        assert!(shard_rows(&mut out, None, 3, 1, 1, |_, _, _| {}).is_err());
        assert!(shard_rows(&mut out, None, 0, 1, 1, |_, _, _| {}).is_err());
        let mut out = vec![0u8; 6];
        let mut aux = vec![0u8; 3];
        assert!(shard_rows(&mut out, Some(&mut aux), 3, 1, 1, |_, _, _| {}).is_err());
    }

    #[test]
    fn worker_count_thresholds() {
        assert_eq!(worker_count(PARALLEL_THRESHOLD - 1, 64), 1);
        assert_eq!(worker_count(PARALLEL_THRESHOLD, 1), 1);
        assert!(worker_count(PARALLEL_THRESHOLD, 64) >= 1);
    }
}
