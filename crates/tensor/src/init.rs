//! Random tensor initialisers (normal, uniform, Kaiming/He, Xavier/Glorot).
//!
//! All initialisers take an explicit `rand::Rng` so experiments stay
//! reproducible from a single seed.

use crate::Tensor;
use rand::Rng;

/// Samples a standard normal value via the Box–Muller transform.
///
/// Using Box–Muller keeps the crate independent of `rand_distr` while still
/// producing Gaussian weights for initialisation.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Tensor with elements drawn from `N(mean, std²)`.
///
/// # Examples
///
/// ```
/// use ff_tensor::init;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let t = init::randn(&[4, 4], 0.0, 1.0, &mut rng);
/// assert_eq!(t.shape(), &[4, 4]);
/// ```
pub fn randn<R: Rng + ?Sized>(shape: &[usize], mean: f32, std: f32, rng: &mut R) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n)
        .map(|_| mean + std * sample_standard_normal(rng))
        .collect();
    Tensor::from_vec(shape, data).expect("randn shape")
}

/// Tensor with elements drawn uniformly from `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data).expect("uniform shape")
}

/// Kaiming/He normal initialisation for ReLU networks: `N(0, 2/fan_in)`.
///
/// `fan_in` is the number of input connections feeding each output unit
/// (input features for dense layers, `in_ch · kh · kw` for convolutions).
pub fn kaiming_normal<R: Rng + ?Sized>(shape: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    randn(shape, 0.0, std, rng)
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(shape, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = randn(&[10_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.min_value() >= -0.5);
        assert!(t.max_value() < 0.5);
    }

    #[test]
    fn kaiming_scale_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let wide = kaiming_normal(&[2000], 10_000, &mut rng);
        let narrow = kaiming_normal(&[2000], 10, &mut rng);
        assert!(wide.max_abs() < narrow.max_abs());
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = xavier_uniform(&[500], 100, 100, &mut rng);
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(t.max_abs() <= bound);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            randn(&[16], 0.0, 1.0, &mut a).data(),
            randn(&[16], 0.0, 1.0, &mut b).data()
        );
    }
}
