//! # ff-tensor
//!
//! Dense `f32` tensor primitives used by every other crate of the FF-INT8
//! reproduction.
//!
//! The crate intentionally stays small: row-major [`Tensor`] storage, the
//! linear-algebra kernels needed by dense and convolutional layers
//! ([`Tensor::matmul`], [`conv::conv2d`], [`conv::im2col`]), element-wise
//! helpers, reductions, and random initialisers ([`init`]).
//!
//! # Examples
//!
//! ```
//! use ff_tensor::Tensor;
//!
//! # fn main() -> Result<(), ff_tensor::TensorError> {
//! let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Tensor::from_vec(&[3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0])?;
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data(), &[4.0, 5.0, 10.0, 11.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ops;
mod tensor;

pub mod conv;
pub mod init;
pub mod linalg;
pub mod par;

pub use error::TensorError;
pub use tensor::Tensor;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
