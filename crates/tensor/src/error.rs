use std::fmt;

/// Error type for every fallible tensor operation.
///
/// # Examples
///
/// ```
/// use ff_tensor::{Tensor, TensorError};
///
/// let err = Tensor::from_vec(&[2, 2], vec![1.0]).unwrap_err();
/// assert!(matches!(err, TensorError::ElementCountMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors (or a tensor and an expected shape) disagree on shape.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand (or the expected shape).
        right: Vec<usize>,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// The provided buffer does not contain `shape.iter().product()` elements.
    ElementCountMismatch {
        /// Requested shape.
        shape: Vec<usize>,
        /// Number of elements actually supplied.
        provided: usize,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the tensor that was supplied.
        actual: usize,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A parameter (stride, kernel size, ...) was invalid for the operation.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        message: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in `{op}`: {left:?} vs {right:?}")
            }
            TensorError::ElementCountMismatch { shape, provided } => write!(
                f,
                "element count mismatch: shape {shape:?} needs {} elements, got {provided}",
                shape.iter().product::<usize>()
            ),
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(
                f,
                "`{op}` expects a rank-{expected} tensor, got rank {actual}"
            ),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![4, 5],
            op: "add",
        };
        assert!(e.to_string().contains("add"));
        assert!(e.to_string().contains("[2, 3]"));
    }

    #[test]
    fn display_element_count() {
        let e = TensorError::ElementCountMismatch {
            shape: vec![2, 2],
            provided: 3,
        };
        assert!(e.to_string().contains("4 elements"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn display_rank_and_index_and_param() {
        let r = TensorError::RankMismatch {
            expected: 2,
            actual: 4,
            op: "matmul",
        };
        assert!(r.to_string().contains("rank-2"));
        let i = TensorError::IndexOutOfBounds {
            index: vec![9],
            shape: vec![3],
        };
        assert!(i.to_string().contains("out of bounds"));
        let p = TensorError::InvalidParameter {
            message: "stride must be non-zero".into(),
        };
        assert!(p.to_string().contains("stride"));
    }
}
