//! Property-based tests for the tensor crate.

use ff_tensor::conv::{self, ConvGeometry};
use ff_tensor::{linalg, Tensor};
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(&[r, c], data).expect("shape"))
    })
}

proptest! {
    #[test]
    fn matmul_identity_is_noop(a in small_matrix(6)) {
        let n = a.shape()[1];
        let mut id = Tensor::zeros(&[n, n]);
        for i in 0..n {
            id.set2(i, i, 1.0).unwrap();
        }
        let prod = linalg::matmul(&a, &id).unwrap();
        for (x, y) in prod.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(a in small_matrix(5), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let k = a.shape()[1];
        let b = ff_tensor::init::uniform(&[k, 3], -1.0, 1.0, &mut rng);
        let c = ff_tensor::init::uniform(&[k, 3], -1.0, 1.0, &mut rng);
        let lhs = linalg::matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = linalg::matmul(&a, &b).unwrap().add(&linalg::matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_is_involution(a in small_matrix(8)) {
        let tt = linalg::transpose(&linalg::transpose(&a).unwrap()).unwrap();
        prop_assert_eq!(tt.data(), a.data());
    }

    #[test]
    fn matmul_a_bt_matches_explicit(a in small_matrix(5), b in small_matrix(5)) {
        // make inner dims agree by construction
        let k = a.shape()[1];
        let b = if b.shape()[1] == k { b } else {
            Tensor::from_vec(&[b.shape()[0], k], vec![0.5; b.shape()[0] * k]).unwrap()
        };
        let direct = linalg::matmul_a_bt(&a, &b).unwrap();
        let explicit = linalg::matmul(&a, &linalg::transpose(&b).unwrap()).unwrap();
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(a in small_matrix(8)) {
        let r = a.relu();
        prop_assert!(r.min_value() >= 0.0);
        let rr = r.relu();
        prop_assert_eq!(rr.data(), r.data());
    }

    #[test]
    fn normalize_rows_produces_unit_norm(a in small_matrix(8)) {
        prop_assume!(a.data().iter().all(|x| x.abs() > 1e-3));
        let n = a.normalize_rows(0.0);
        for r in 0..n.rows() {
            let norm: f32 = n.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!((norm - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn sum_axis0_matches_total_sum(a in small_matrix(8)) {
        let col_total = a.sum_axis0().sum();
        prop_assert!((col_total - a.sum()).abs() < 1e-3 * (1.0 + a.sum().abs()));
    }

    #[test]
    fn conv_of_ones_counts_window(h in 3usize..7, w in 3usize..7) {
        let input = Tensor::ones(&[1, 1, h, w]);
        let weight = Tensor::ones(&[1, 1, 2, 2]);
        let out = conv::conv2d(&input, &weight, None, ConvGeometry::new(2, 1, 0).unwrap()).unwrap();
        for &v in out.data() {
            prop_assert!((v - 4.0).abs() < 1e-5);
        }
    }

    // ---- parallel/fused fp32 kernels vs explicit-transpose reference ------

    #[test]
    fn matmul_a_bt_any_shape_within_1e4(
        m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..500
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = ff_tensor::init::uniform(&[m, k], -1.0, 1.0, &mut rng);
        let bt = ff_tensor::init::uniform(&[n, k], -1.0, 1.0, &mut rng);
        let direct = linalg::matmul_a_bt(&a, &bt).unwrap();
        let explicit = linalg::matmul(&a, &linalg::transpose(&bt).unwrap()).unwrap();
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            let tol = 1e-4f32 * (1.0 + y.abs());
            prop_assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_at_b_any_shape_within_1e4(
        m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..500
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let at = ff_tensor::init::uniform(&[k, m], -1.0, 1.0, &mut rng);
        let b = ff_tensor::init::uniform(&[k, n], -1.0, 1.0, &mut rng);
        let direct = linalg::matmul_at_b(&at, &b).unwrap();
        let explicit = linalg::matmul(&linalg::transpose(&at).unwrap(), &b).unwrap();
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            let tol = 1e-4f32 * (1.0 + y.abs());
            prop_assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn fused_bias_relu_epilogue_matches_separate_passes(
        m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..500
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = ff_tensor::init::uniform(&[m, k], -1.0, 1.0, &mut rng);
        let bt = ff_tensor::init::uniform(&[n, k], -1.0, 1.0, &mut rng);
        let bias = ff_tensor::init::uniform(&[n], -0.5, 0.5, &mut rng);
        let (fused, mask) = linalg::matmul_a_bt_fused(&a, &bt, Some(&bias), true).unwrap();
        let mask = mask.unwrap();
        let separate = linalg::matmul_a_bt(&a, &bt)
            .unwrap()
            .add_row_broadcast(&bias)
            .unwrap();
        for ((&f, &s), &mk) in fused.data().iter().zip(separate.data()).zip(mask.data()) {
            if s > 0.0 {
                prop_assert!(f == s, "fused {f} != separate {s}");
                prop_assert!(mk == 1.0);
            } else {
                prop_assert!(f == 0.0);
                prop_assert!(mk == 0.0);
            }
        }
    }

    #[test]
    fn global_avg_pool_preserves_mean(n in 1usize..3, c in 1usize..4, hw in 2usize..5) {
        let len = n * c * hw * hw;
        let data: Vec<f32> = (0..len).map(|i| (i % 17) as f32 / 4.0).collect();
        let input = Tensor::from_vec(&[n, c, hw, hw], data).unwrap();
        let pooled = conv::global_avg_pool(&input).unwrap();
        prop_assert!((pooled.mean() - input.mean()).abs() < 1e-4);
    }
}
