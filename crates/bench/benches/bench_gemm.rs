//! Micro-benchmark: the packed/blocked INT8 GEMM engine versus the naive
//! reference kernels and FP32 GEMM.
//!
//! This is the arithmetic primitive whose hardware speed difference underlies
//! the paper's time/energy savings (Section V-C: "INT8 arithmetic is also 4x
//! faster than FP32 in hardware"). Three groups are measured:
//!
//! - `gemm`: fp32 vs naive-INT8 vs packed-INT8 at square sizes (the
//!   acceptance gate is packed ≥ 2× naive at 256³ and above);
//! - `gemm_paper_shapes`: the shapes the paper's workloads actually run —
//!   the MNIST dense layer (784→2000) and an im2col'd 3×3 conv;
//! - `gemm_threads`: 1/2/4/8-worker sweeps of the packed engine;
//! - `gemm_train_step`: one INT8 dense training step (input quantize,
//!   forward GEMM, gradient quantize, gW GEMM) with per-step weight
//!   requantize+repack (`uncached`, the pre-plan behaviour) vs a cached
//!   [`ff_quant::QGemmPlan`] (`cached`, what the layers do now). The
//!   acceptance gate is cached ≥ 1.3× uncached at the paper's layer shapes.
//!
//! Running with `--bench` (what `cargo bench` passes) writes a
//! `BENCH_gemm.json` baseline into the bench binary's working directory
//! (`crates/bench/`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_quant::gemm::reference;
use ff_quant::{
    int8_matmul, int8_matmul_a_bt_fused, int8_matmul_a_bt_planned, int8_matmul_at_b,
    int8_matmul_at_b_planned, GemmVariant, QGemmPlan, QuantConfig, QuantTensor, Rounding,
};
use ff_tensor::{init, linalg, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quant_pair(m: usize, k: usize, n: usize, seed: u64) -> (QuantTensor, QuantTensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = init::uniform(&[m, k], -1.0, 1.0, &mut rng);
    let b = init::uniform(&[k, n], -1.0, 1.0, &mut rng);
    let qa = QuantTensor::quantize_with_rng(&a, QuantConfig::new(Rounding::Nearest), &mut rng);
    let qb = QuantTensor::quantize_with_rng(&b, QuantConfig::new(Rounding::Nearest), &mut rng);
    (qa, qb)
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    for &n in &[64usize, 128, 256, 512] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = init::uniform(&[n, n], -1.0, 1.0, &mut rng);
        let b = init::uniform(&[n, n], -1.0, 1.0, &mut rng);
        let qa = QuantTensor::quantize_with_rng(&a, QuantConfig::new(Rounding::Nearest), &mut rng);
        let qb = QuantTensor::quantize_with_rng(&b, QuantConfig::new(Rounding::Nearest), &mut rng);
        group.bench_with_input(BenchmarkId::new("fp32", n), &n, |bencher, _| {
            bencher.iter(|| linalg::matmul(&a, &b).expect("matmul"));
        });
        group.bench_with_input(BenchmarkId::new("int8_naive", n), &n, |bencher, _| {
            bencher.iter(|| reference::int8_matmul(&qa, &qb).expect("naive int8 matmul"));
        });
        group.bench_with_input(BenchmarkId::new("int8_packed", n), &n, |bencher, _| {
            bencher.iter(|| int8_matmul(&qa, &qb).expect("packed int8 matmul"));
        });
    }
    group.finish();
}

fn bench_paper_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_paper_shapes");
    group.sample_size(10);
    // (label, m, k, n): batch-64 MNIST dense 784→2000 (paper's MLP layer) and
    // an im2col'd 3×3×32 conv over a 16×16 feature map (m = oh·ow·batch).
    let shapes: &[(&str, usize, usize, usize)] = &[
        ("mnist_dense_784x2000", 64, 784, 2000),
        ("im2col_conv3x3x32", 1024, 288, 32),
    ];
    for &(label, m, k, n) in shapes {
        let (qa, qb) = quant_pair(m, k, n, 2);
        group.bench_with_input(
            BenchmarkId::new("int8_naive", label),
            &label,
            |bencher, _| {
                bencher.iter(|| reference::int8_matmul(&qa, &qb).expect("naive int8 matmul"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("int8_packed", label),
            &label,
            |bencher, _| {
                bencher.iter(|| int8_matmul(&qa, &qb).expect("packed int8 matmul"));
            },
        );
    }
    group.finish();
}

fn bench_thread_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_threads");
    group.sample_size(10);
    let (qa, qb) = quant_pair(256, 256, 256, 3);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("int8_packed_256", threads),
            &threads,
            |bencher, &threads| {
                bencher.iter(|| {
                    ff_quant::int8_gemm(GemmVariant::AB, &qa, &qb, None, false, Some(threads))
                        .expect("packed int8 matmul")
                });
            },
        );
    }
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_train_step");
    group.sample_size(10);
    // (label, batch, in_features, out_features): the paper's MNIST dense
    // layer at the training batch size and at an edge-style small batch
    // (where operand preparation dominates the GEMM itself).
    let shapes: &[(&str, usize, usize, usize)] = &[
        ("mnist_dense_784x2000_b64", 64, 784, 2000),
        ("mnist_dense_784x2000_b16", 16, 784, 2000),
    ];
    let nearest = QuantConfig::new(Rounding::Nearest);
    for &(label, batch, in_f, out_f) in shapes {
        let mut rng = StdRng::seed_from_u64(11);
        let x = init::uniform(&[batch, in_f], -1.0, 1.0, &mut rng);
        let w = init::uniform(&[out_f, in_f], -1.0, 1.0, &mut rng);
        let g = init::uniform(&[batch, out_f], -1.0, 1.0, &mut rng);
        let bias = Tensor::zeros(&[out_f]);
        // The pre-plan behaviour: every step requantizes and repacks the
        // unchanged weight matrix before the forward GEMM.
        group.bench_with_input(BenchmarkId::new("uncached", label), &label, |bencher, _| {
            bencher.iter(|| {
                let mut rng = StdRng::seed_from_u64(12);
                let q_x = QuantTensor::quantize_with_rng(&x, nearest, &mut rng);
                let q_w = QuantTensor::quantize_with_rng(&w, nearest, &mut rng);
                let (y, _) =
                    int8_matmul_a_bt_fused(&q_x, &q_w, Some(&bias), true).expect("forward");
                let q_g = QuantTensor::quantize_with_rng(&g, nearest, &mut rng);
                let gw = int8_matmul_at_b(&q_g, &q_x).expect("gW");
                (y, gw)
            });
        });
        // The plan-cached path: the weight plan persists across steps, so a
        // step quantizes and packs activations only.
        let mut w_plan = QGemmPlan::from_tensor(&w, 0).expect("weight plan");
        w_plan.packed_as_b_transposed(); // warm, as after any prior step
        group.bench_with_input(BenchmarkId::new("cached", label), &label, |bencher, _| {
            bencher.iter(|| {
                let mut rng = StdRng::seed_from_u64(12);
                let q_x = QuantTensor::quantize_with_rng(&x, nearest, &mut rng);
                let (y, _) = int8_matmul_a_bt_planned(&q_x, &mut w_plan, Some(&bias), true)
                    .expect("forward");
                let mut x_plan = QGemmPlan::from_quant(q_x, 0).expect("input plan");
                let q_g = QuantTensor::quantize_with_rng(&g, nearest, &mut rng);
                let gw = int8_matmul_at_b_planned(&q_g, &mut x_plan).expect("gW");
                (y, gw)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_paper_shapes,
    bench_thread_sweep,
    bench_train_step
);
criterion_main!(benches);
