//! Micro-benchmark: INT8 GEMM (i32 accumulation) versus FP32 GEMM.
//!
//! This is the arithmetic primitive whose hardware speed difference underlies
//! the paper's time/energy savings (Section V-C: "INT8 arithmetic is also 4x
//! faster than FP32 in hardware").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_quant::{int8_matmul, QuantConfig, QuantTensor, Rounding};
use ff_tensor::{init, linalg};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    for &n in &[64usize, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = init::uniform(&[n, n], -1.0, 1.0, &mut rng);
        let b = init::uniform(&[n, n], -1.0, 1.0, &mut rng);
        let qa = QuantTensor::quantize_with_rng(&a, QuantConfig::new(Rounding::Nearest), &mut rng);
        let qb = QuantTensor::quantize_with_rng(&b, QuantConfig::new(Rounding::Nearest), &mut rng);
        group.bench_with_input(BenchmarkId::new("fp32", n), &n, |bencher, _| {
            bencher.iter(|| linalg::matmul(&a, &b).expect("matmul"));
        });
        group.bench_with_input(BenchmarkId::new("int8_i32acc", n), &n, |bencher, _| {
            bencher.iter(|| int8_matmul(&qa, &qb).expect("int8 matmul"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
