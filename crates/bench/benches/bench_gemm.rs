//! Micro-benchmark: the packed/blocked INT8 GEMM engine versus the naive
//! reference kernels and FP32 GEMM.
//!
//! This is the arithmetic primitive whose hardware speed difference underlies
//! the paper's time/energy savings (Section V-C: "INT8 arithmetic is also 4x
//! faster than FP32 in hardware"). Three groups are measured:
//!
//! - `gemm`: fp32 vs naive-INT8 vs packed-INT8 at square sizes (the
//!   acceptance gate is packed ≥ 2× naive at 256³ and above);
//! - `gemm_paper_shapes`: the shapes the paper's workloads actually run —
//!   the MNIST dense layer (784→2000) and an im2col'd 3×3 conv;
//! - `gemm_threads`: 1/2/4/8-worker sweeps of the packed engine.
//!
//! Running with `--bench` (what `cargo bench` passes) writes a
//! `BENCH_gemm.json` baseline into the bench binary's working directory
//! (`crates/bench/`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_quant::gemm::reference;
use ff_quant::{int8_matmul, GemmVariant, QuantConfig, QuantTensor, Rounding};
use ff_tensor::{init, linalg};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quant_pair(m: usize, k: usize, n: usize, seed: u64) -> (QuantTensor, QuantTensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = init::uniform(&[m, k], -1.0, 1.0, &mut rng);
    let b = init::uniform(&[k, n], -1.0, 1.0, &mut rng);
    let qa = QuantTensor::quantize_with_rng(&a, QuantConfig::new(Rounding::Nearest), &mut rng);
    let qb = QuantTensor::quantize_with_rng(&b, QuantConfig::new(Rounding::Nearest), &mut rng);
    (qa, qb)
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    for &n in &[64usize, 128, 256, 512] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = init::uniform(&[n, n], -1.0, 1.0, &mut rng);
        let b = init::uniform(&[n, n], -1.0, 1.0, &mut rng);
        let qa = QuantTensor::quantize_with_rng(&a, QuantConfig::new(Rounding::Nearest), &mut rng);
        let qb = QuantTensor::quantize_with_rng(&b, QuantConfig::new(Rounding::Nearest), &mut rng);
        group.bench_with_input(BenchmarkId::new("fp32", n), &n, |bencher, _| {
            bencher.iter(|| linalg::matmul(&a, &b).expect("matmul"));
        });
        group.bench_with_input(BenchmarkId::new("int8_naive", n), &n, |bencher, _| {
            bencher.iter(|| reference::int8_matmul(&qa, &qb).expect("naive int8 matmul"));
        });
        group.bench_with_input(BenchmarkId::new("int8_packed", n), &n, |bencher, _| {
            bencher.iter(|| int8_matmul(&qa, &qb).expect("packed int8 matmul"));
        });
    }
    group.finish();
}

fn bench_paper_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_paper_shapes");
    group.sample_size(10);
    // (label, m, k, n): batch-64 MNIST dense 784→2000 (paper's MLP layer) and
    // an im2col'd 3×3×32 conv over a 16×16 feature map (m = oh·ow·batch).
    let shapes: &[(&str, usize, usize, usize)] = &[
        ("mnist_dense_784x2000", 64, 784, 2000),
        ("im2col_conv3x3x32", 1024, 288, 32),
    ];
    for &(label, m, k, n) in shapes {
        let (qa, qb) = quant_pair(m, k, n, 2);
        group.bench_with_input(
            BenchmarkId::new("int8_naive", label),
            &label,
            |bencher, _| {
                bencher.iter(|| reference::int8_matmul(&qa, &qb).expect("naive int8 matmul"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("int8_packed", label),
            &label,
            |bencher, _| {
                bencher.iter(|| int8_matmul(&qa, &qb).expect("packed int8 matmul"));
            },
        );
    }
    group.finish();
}

fn bench_thread_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_threads");
    group.sample_size(10);
    let (qa, qb) = quant_pair(256, 256, 256, 3);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("int8_packed_256", threads),
            &threads,
            |bencher, &threads| {
                bencher.iter(|| {
                    ff_quant::int8_gemm(GemmVariant::AB, &qa, &qb, None, false, Some(threads))
                        .expect("packed int8 matmul")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_paper_shapes, bench_thread_sweep);
criterion_main!(benches);
