//! Training-throughput benchmark: the paper's 3-layer MLP (784 → 2000 →
//! 2000 → 10) trained one epoch sequentially, layer-pipelined
//! across three stage threads, and data-parallel over a 2-worker loopback
//! `FF8D` cluster.
//!
//! All three configurations produce **bit-identical weights** (asserted
//! every run, smoke and measure alike — this bench doubles as a parity
//! check on the paper-scale net), so the only question is wall-clock.
//!
//! The acceptance gate (ISSUE 9 / `BENCH_train.json`) is **pipeline ≥
//! 1.3× sequential epoch throughput** with one stage per layer. The gate
//! needs real parallel hardware: with fewer than 3 cores the stage
//! threads time-slice one another and the channel overhead is pure loss,
//! so the gate is enforced only when `std::thread::available_parallelism`
//! reports ≥ 3 cores; otherwise the speedup is still measured and
//! recorded, with `train/pipeline_gate_skipped = 1` in the baseline
//! saying *honestly* that the gate did not run (rather than a green
//! checkmark earned on a box where the claim is untestable).
//!
//! Running with `--bench` (what `cargo bench` passes) writes a
//! `BENCH_train.json` baseline into `crates/bench/`.

use criterion::Criterion;
use ff_core::{Algorithm, Precision, TrainOptions, TrainSession, TrainerCore};
use ff_data::{synthetic_mnist, Dataset, SyntheticConfig};
use ff_dist::protocol::TrainMsg;
use ff_dist::{Coordinator, CoordinatorConfig, PipelineSession, Worker};
use ff_models::small_mlp;
use ff_nn::Sequential;
use ff_serve::{MetricsRegistry, TraceSettings};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// The paper's MNIST architecture: two 2000-wide hidden layers plus the
/// class head — three FF layers, one pipeline stage each.
const HIDDEN: [usize; 2] = [2000, 2000];

fn paper_net() -> Sequential {
    let mut rng = StdRng::seed_from_u64(42);
    small_mlp(784, &HIDDEN, 10, &mut rng)
}

fn train_options(grad_shards: usize) -> TrainOptions {
    TrainOptions {
        epochs: 1,
        batch_size: 32,
        max_eval_samples: 32,
        seed: 11,
        grad_shards,
        ..TrainOptions::fast_test()
    }
}

/// Sizes the dataset so one measured iteration is a few batches of real
/// GEMM work, not minutes of it.
fn dataset(measuring: bool) -> (Dataset, Dataset) {
    synthetic_mnist(&SyntheticConfig {
        train_size: if measuring { 96 } else { 32 },
        test_size: 32,
        noise_std: 0.3,
        max_shift: 0,
        seed: 7,
    })
}

fn weight_bits(net: &mut Sequential) -> Vec<Vec<u32>> {
    net.params_mut()
        .iter()
        .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn bench_train(c: &mut Criterion) {
    let measuring = c.measuring();
    let (train_set, test_set) = dataset(measuring);
    let options = train_options(1);

    // Reference run once, outside measurement: every benched configuration
    // must land on exactly these bits.
    let mut reference_net = paper_net();
    TrainSession::new(
        &mut reference_net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: false },
        &options,
    )
    .expect("session")
    .run()
    .expect("reference run");
    let reference = weight_bits(&mut reference_net);

    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut net = paper_net();
            TrainSession::new(
                &mut net,
                &train_set,
                &test_set,
                Algorithm::FfInt8 { lookahead: false },
                &options,
            )
            .expect("session")
            .run()
            .expect("sequential epoch");
            assert_eq!(weight_bits(&mut net), reference, "sequential diverged");
        });
    });
    group.bench_function("pipeline_3_stages", |b| {
        b.iter(|| {
            let mut net = paper_net();
            let mut session = PipelineSession::new(
                &mut net,
                &train_set,
                &test_set,
                Precision::Int8,
                &options,
                &[1, 1, 1],
            )
            .expect("pipeline session");
            session.run().expect("pipelined epoch");
            drop(session);
            assert_eq!(weight_bits(&mut net), reference, "pipeline diverged");
        });
    });
    group.finish();

    let mean_ns = |id: &str| {
        c.results()
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.mean_ns)
            .unwrap_or(f64::NAN)
    };
    if measuring {
        let sequential = mean_ns("train/sequential");
        let pipeline = mean_ns("train/pipeline_3_stages");
        let speedup = sequential / pipeline;
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        c.record_metric("train/pipeline_speedup_x", speedup);
        c.record_metric("train/available_cores", cores as f64);
        // One stage thread per layer: the 1.3x claim presumes the three
        // stages actually run concurrently.
        if cores >= 3 {
            c.record_metric("train/pipeline_gate_skipped", 0.0);
            assert!(
                speedup >= 1.3,
                "pipeline gate: expected >= 1.3x over sequential on {cores} cores, got {speedup:.2}x"
            );
            println!("    pipeline gate PASSED: {speedup:.2}x >= 1.3x on {cores} cores");
        } else {
            c.record_metric("train/pipeline_gate_skipped", 1.0);
            println!(
                "    pipeline gate SKIPPED: only {cores} core(s) available, stages would \
                 time-slice; measured {speedup:.2}x recorded, 1.3x threshold not enforced"
            );
        }
    }
}

fn bench_train_cluster(c: &mut Criterion) {
    let measuring = c.measuring();
    let (train_set, test_set) = dataset(measuring);
    let options = train_options(2);

    let mut reference_net = paper_net();
    TrainSession::new(
        &mut reference_net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: false },
        &options,
    )
    .expect("session")
    .run()
    .expect("reference run");
    let reference = weight_bits(&mut reference_net);

    // One persistent cluster across iterations — workers join once, every
    // measured epoch reuses them (rebuilding TCP workers per sample would
    // measure connection setup, not training).
    let mut coordinator =
        Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).expect("bind");
    let addr = coordinator.addr();
    let workers: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(9000 + i);
                let mut replica = small_mlp(784, &HIDDEN, 10, &mut rng);
                Worker::connect(addr, "", &mut replica)
            })
        })
        .collect();
    while coordinator.worker_count() < 2 {
        std::thread::sleep(Duration::from_millis(2));
    }

    // A coordinator hands out exactly one trainer, so the trainer lives
    // across iterations and is rewound to its pristine state (RNG +
    // optimizer slots) before each measured epoch — the reset is what
    // makes every iteration bit-identical to the reference.
    let mut trainer = coordinator
        .trainer(Precision::Int8, false, options.clone())
        .expect("dist trainer");
    let pristine = trainer.export_state();

    let mut group = c.benchmark_group("train_cluster");
    group.sample_size(10);
    group.bench_function("data_parallel_2_workers", |b| {
        b.iter(|| {
            let mut net = paper_net();
            trainer
                .import_state(&pristine, &mut net)
                .expect("rewind trainer");
            TrainSession::with_trainer(&mut net, &train_set, &test_set, &mut trainer)
                .expect("session")
                .run()
                .expect("cluster epoch");
            assert_eq!(weight_bits(&mut net), reference, "cluster diverged");
        });
    });
    group.finish();
    coordinator.shutdown();
    for handle in workers {
        handle.join().expect("worker thread").expect("worker run");
    }
}

/// Cluster-tracing overhead gate (ISSUE 10): the same 2-worker loopback
/// epoch with observability fully off vs capture-all tracing (every step
/// sampled, every frame and byte accounted, every span committed) — the
/// *worst-case* instrumented configuration, not the production sampled one.
/// The gate is `dist_trace_overhead ≤ 3%`, recorded into
/// `BENCH_train.json`.
///
/// Each configuration is timed as the **best of `waves`** epochs over a
/// persistent cluster (minimum is the noise-robust estimator for a fixed
/// workload — both configurations train the exact same batches to the
/// exact same bits, asserted every wave).
fn bench_dist_trace_overhead(c: &mut Criterion) {
    let measuring = c.measuring();
    let waves: usize = if measuring { 10 } else { 2 };
    let (train_set, test_set) = dataset(measuring);
    let options = train_options(2);

    let mut reference_net = paper_net();
    TrainSession::new(
        &mut reference_net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: false },
        &options,
    )
    .expect("session")
    .run()
    .expect("reference run");
    let reference = weight_bits(&mut reference_net);

    let best_epoch_secs = |config: CoordinatorConfig| -> f64 {
        let mut coordinator = Coordinator::bind("127.0.0.1:0", config).expect("bind");
        let addr = coordinator.addr();
        let workers: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(9500 + i);
                    let mut replica = small_mlp(784, &HIDDEN, 10, &mut rng);
                    Worker::connect(addr, "", &mut replica)
                })
            })
            .collect();
        while coordinator.worker_count() < 2 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut trainer = coordinator
            .trainer(Precision::Int8, false, options.clone())
            .expect("dist trainer");
        let pristine = trainer.export_state();
        let mut epoch = |net: &mut Sequential| {
            trainer.import_state(&pristine, net).expect("rewind");
            TrainSession::with_trainer(net, &train_set, &test_set, &mut trainer)
                .expect("session")
                .run()
                .expect("cluster epoch");
            assert_eq!(weight_bits(net), reference, "traced cluster diverged");
        };
        let mut net = paper_net();
        epoch(&mut net); // warm caches, packed panels, worker replicas
        let mut best = f64::INFINITY;
        for _ in 0..waves {
            let mut net = paper_net();
            let start = Instant::now();
            epoch(&mut net);
            best = best.min(start.elapsed().as_secs_f64());
        }
        coordinator.shutdown();
        for handle in workers {
            handle.join().expect("worker thread").expect("worker run");
        }
        best
    };

    let disabled = best_epoch_secs(CoordinatorConfig::default());
    let registry = MetricsRegistry::new();
    let instrumented = best_epoch_secs(CoordinatorConfig {
        metrics: Some(registry.clone()),
        trace: TraceSettings {
            capacity: 256,
            sample_per_sec: u32::MAX, // capture-all: every step spans
            ..TraceSettings::default()
        },
        ..CoordinatorConfig::default()
    });
    let overhead = instrumented / disabled - 1.0;

    // Surface what the instrumented run measured: how the cluster's bytes
    // split across message kinds (ParamSync is the broadcast the paper's
    // edge budget cares about) and whether any shard needed recomputing.
    let bytes = |kind: &str| registry.counter(&format!("dist.wire.{kind}.bytes")).get();
    let total: u64 = TrainMsg::kind_names().iter().map(|kind| bytes(kind)).sum();
    let sync_share = bytes("param_sync") as f64 / total.max(1) as f64;
    let recomputed = registry.counter("dist.coord.recompute.worker_death").get();
    println!(
        "    dist_trace: disabled {:.3}ms instrumented {:.3}ms overhead {:+.2}% \
         (param_sync {:.1}% of {} wire bytes, {} shard(s) recomputed)",
        disabled * 1e3,
        instrumented * 1e3,
        overhead * 100.0,
        sync_share * 100.0,
        total,
        recomputed
    );
    if measuring {
        c.record_metric("train_cluster/dist_trace_overhead", overhead.max(0.0));
        c.record_metric("train_cluster/param_sync_byte_share", sync_share);
        c.record_metric("train_cluster/worker_death_recomputes", recomputed as f64);
        assert!(
            overhead <= 0.03,
            "cluster tracing costs {:.1}% of epoch throughput (gate: 3%)",
            overhead * 100.0
        );
    }
}

criterion::criterion_group!(
    benches,
    bench_train,
    bench_train_cluster,
    bench_dist_trace_overhead
);
criterion::criterion_main!(benches);
