//! Table IV harness: analytic operation counting for FF-INT8, BP-FP32 and
//! GDAI8 on the 4-layer MLP, plus a measured comparison of the real per-batch
//! work each algorithm performs in this implementation.

use criterion::{criterion_group, criterion_main, Criterion};
use ff_bench::{bench_mnist, bench_options};
use ff_core::{train, Algorithm};
use ff_edge::{AlgorithmKind, CostModel};
use ff_models::{small_mlp, specs};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_table4(c: &mut Criterion) {
    let model = CostModel::jetson_orin_nano();
    let spec = specs::mlp_depth_spec(2);
    let mut group = c.benchmark_group("table4_op_counts");
    group.sample_size(20);
    group.bench_function("analytic_counting", |bencher| {
        bencher.iter(|| {
            AlgorithmKind::table5_lineup()
                .iter()
                .map(|&a| model.batch_ops(a, &spec, 10).mac_ops())
                .sum::<u64>()
        });
    });

    // Measured stand-in: one epoch of each algorithm on the same (scaled)
    // MLP, so the relative per-update cost can be compared with the analytic
    // counts.
    let (train_set, test_set) = bench_mnist();
    let options = bench_options();
    for algorithm in [
        Algorithm::FfInt8 { lookahead: true },
        Algorithm::BpFp32,
        Algorithm::BpGdai8,
    ] {
        group.sample_size(10);
        group.bench_function(format!("measured_epoch/{}", algorithm.label()), |bencher| {
            bencher.iter(|| {
                let mut rng = StdRng::seed_from_u64(5);
                let mut net = small_mlp(784, &[64, 64], 10, &mut rng);
                train(&mut net, &train_set, &test_set, algorithm, &options).expect("train")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
