//! Serving benchmark: micro-batched vs one-request-at-a-time throughput on
//! the paper's 784→2000 MLP, swept over 1/2/4/8 worker threads.
//!
//! Two server configurations answer the same closed-loop load (8 concurrent
//! client threads, 256 requests per measured iteration):
//!
//! - `unbatched`: `max_batch = 1` — every request runs its own GEMM chain
//!   (the baseline a naive server would implement);
//! - `batched`: `max_batch = 32`, 1 ms max-wait — concurrent requests
//!   coalesce into shared GEMMs.
//!
//! The acceptance gate (ISSUE 3 / `BENCH_serve.json`) is **batched ≥ 2×
//! unbatched at concurrency 8**, met at the canonical single-worker pairing
//! (worker parallelism adds nothing on a 1-core container, so the sweep is
//! informational there). A `goodness` group measures the FF-native sweep
//! mode — each goodness request already runs `num_classes` overlay rows
//! through every GEMM, so request coalescing adds little on one core and
//! the group mainly tracks absolute sweep throughput. Latency percentiles
//! from the server's stats endpoint are printed after each run.
//!
//! Running with `--bench` (what `cargo bench` passes) writes a
//! `BENCH_serve.json` baseline into the bench binary's working directory
//! (`crates/bench/`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_models::small_mlp;
use ff_serve::{BatchPolicy, FrozenModel, ServeConfig, ServeMode, Server, TraceSettings};
use ff_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Concurrent client threads driving the closed loop.
const CLIENTS: usize = 8;
/// Requests answered per measured iteration (across all clients).
const REQUESTS_PER_ITER: usize = 256;

/// The paper's MNIST MLP: one 784→2000 hidden layer, 10-class head.
fn paper_mlp() -> FrozenModel {
    let mut rng = StdRng::seed_from_u64(42);
    let net = small_mlp(784, &[2000], 10, &mut rng);
    FrozenModel::freeze(&net, 10).expect("freeze")
}

fn request_pool(count: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(7);
    init::uniform(&[count, 784], -1.0, 1.0, &mut rng)
}

fn config(workers: usize, max_batch: usize, mode: ServeMode) -> ServeConfig {
    ServeConfig {
        workers,
        mode,
        policy: BatchPolicy {
            max_batch,
            max_wait: Duration::from_millis(1),
        },
        gemm_threads: 1,
        trace: TraceSettings::default(),
    }
}

/// A persistent pool of closed-loop client threads.
///
/// Clients are spawned once per server configuration and re-armed through a
/// barrier for every measured wave, so the benchmark times request traffic,
/// not thread spawning. Each wave answers [`REQUESTS_PER_ITER`] requests
/// ([`CLIENTS`] threads × `REQUESTS_PER_ITER / CLIENTS` blocking requests).
struct ClientPool {
    barrier: std::sync::Arc<std::sync::Barrier>,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    clients: Vec<std::thread::JoinHandle<()>>,
}

impl ClientPool {
    fn start(server: &Server, pool: &Tensor) -> Self {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::{Arc, Barrier};
        let barrier = Arc::new(Barrier::new(CLIENTS + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let clients = (0..CLIENTS)
            .map(|client| {
                let handle = server.handle();
                let pool = pool.clone();
                let barrier = Arc::clone(&barrier);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || loop {
                    barrier.wait(); // arm
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let per_client = REQUESTS_PER_ITER / CLIENTS;
                    for step in 0..per_client {
                        let row = (client * per_client + step) % pool.rows();
                        handle.predict(pool.row(row)).expect("request");
                    }
                    barrier.wait(); // wave done
                })
            })
            .collect();
        ClientPool {
            barrier,
            stop,
            clients,
        }
    }

    /// Runs one wave: releases every client and blocks until all finish.
    fn run_wave(&self) {
        self.barrier.wait();
        self.barrier.wait();
    }

    fn stop(self) {
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        self.barrier.wait(); // release clients into the stop check
        for client in self.clients {
            client.join().expect("client thread");
        }
    }
}

fn bench_serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(20);
    let pool = request_pool(REQUESTS_PER_ITER);
    for &workers in &[1usize, 2, 4, 8] {
        for (label, max_batch) in [("unbatched", 1usize), ("batched", 32)] {
            let server = Server::start(paper_mlp(), config(workers, max_batch, ServeMode::Logits))
                .expect("server");
            let clients = ClientPool::start(&server, &pool);
            group.bench_with_input(
                BenchmarkId::new(label, format!("workers{workers}")),
                &workers,
                |bencher, _| {
                    bencher.iter(|| clients.run_wave());
                },
            );
            let stats = server.stats();
            println!(
                "    {label}/workers{workers}: requests={} mean_batch={:.2} latency[{}]",
                stats.requests, stats.mean_batch, stats.latency
            );
            clients.stop();
            server.shutdown();
        }
    }
    group.finish();
}

fn bench_serve_goodness(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_goodness");
    group.sample_size(20);
    let pool = request_pool(REQUESTS_PER_ITER);
    for (label, max_batch) in [("unbatched", 1usize), ("batched", 32)] {
        let server =
            Server::start(paper_mlp(), config(2, max_batch, ServeMode::Goodness)).expect("server");
        let clients = ClientPool::start(&server, &pool);
        group.bench_with_input(
            BenchmarkId::new(label, "workers2"),
            &max_batch,
            |bencher, _| {
                bencher.iter(|| clients.run_wave());
            },
        );
        let stats = server.stats();
        println!(
            "    goodness/{label}: requests={} mean_batch={:.2} latency[{}]",
            stats.requests, stats.mean_batch, stats.latency
        );
        clients.stop();
        server.shutdown();
    }
    group.finish();
}

/// Instrumentation-overhead gate (ISSUE 8): batched throughput with the
/// observability layer fully disabled vs enabled with sampling off — the
/// production configuration, where every request still feeds the stage
/// histograms and metric counters but no per-request trace is allocated.
/// The gate is `trace_overhead ≤ 3%`, recorded into `BENCH_serve.json`.
///
/// Each configuration is timed as the **best of `waves`** closed-loop waves
/// (minimum is the noise-robust estimator for a fixed workload: every wave
/// answers the same 256 requests, so the fastest wave is the one least
/// disturbed by the container's scheduler).
fn bench_serve_trace_overhead(c: &mut Criterion) {
    let waves: usize = if c.measuring() { 24 } else { 2 };
    let pool = request_pool(REQUESTS_PER_ITER);
    let best_wave_secs = |trace: TraceSettings| -> f64 {
        let server = Server::start(
            paper_mlp(),
            ServeConfig {
                trace,
                ..config(1, 32, ServeMode::Logits)
            },
        )
        .expect("server");
        let clients = ClientPool::start(&server, &pool);
        for _ in 0..2 {
            clients.run_wave(); // warm caches and packed panels
        }
        let mut best = f64::INFINITY;
        for _ in 0..waves {
            let start = Instant::now();
            clients.run_wave();
            best = best.min(start.elapsed().as_secs_f64());
        }
        clients.stop();
        server.shutdown();
        best
    };
    let disabled = best_wave_secs(TraceSettings::disabled());
    let instrumented = best_wave_secs(TraceSettings {
        sample_per_sec: 0,
        slow_threshold: None,
        ..TraceSettings::default()
    });
    let overhead = instrumented / disabled - 1.0;
    println!(
        "    serve_trace: disabled {:.3}ms instrumented {:.3}ms overhead {:+.2}%",
        disabled * 1e3,
        instrumented * 1e3,
        overhead * 100.0
    );
    if c.measuring() {
        c.record_metric("serve_trace/trace_overhead", overhead.max(0.0));
        assert!(
            overhead <= 0.03,
            "observability instrumentation costs {:.1}% of batched throughput (gate: 3%)",
            overhead * 100.0
        );
    }
}

criterion_group!(
    benches,
    bench_serve_throughput,
    bench_serve_goodness,
    bench_serve_trace_overhead
);
criterion_main!(benches);
