//! Figure 6 harness: one FF-INT8 training epoch with and without the
//! look-ahead scheme (MLP), measuring the per-epoch cost of the scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use ff_bench::{bench_mnist, bench_options};
use ff_core::{train, Algorithm};
use ff_models::small_mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig6(c: &mut Criterion) {
    let (train_set, test_set) = bench_mnist();
    let options = bench_options();
    let mut group = c.benchmark_group("fig6_ff_epoch_mlp");
    group.sample_size(10);
    for lookahead in [false, true] {
        let name = if lookahead {
            "with_lookahead"
        } else {
            "without_lookahead"
        };
        group.bench_function(name, |bencher| {
            bencher.iter(|| {
                let mut rng = StdRng::seed_from_u64(4);
                let mut net = small_mlp(784, &[64, 64], 10, &mut rng);
                train(
                    &mut net,
                    &train_set,
                    &test_set,
                    Algorithm::FfInt8 { lookahead },
                    &options,
                )
                .expect("train")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
