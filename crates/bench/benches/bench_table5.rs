//! Table V harness: full-run cost estimation (time/energy/memory) for every
//! benchmark architecture under every training algorithm, plus a measured
//! per-epoch comparison of FF-INT8 against BP-GDAI8 on the scaled MLP.

use criterion::{criterion_group, criterion_main, Criterion};
use ff_bench::{bench_mnist, bench_options};
use ff_core::{train, Algorithm};
use ff_edge::{AlgorithmKind, CostModel, TrainingRun};
use ff_models::{small_mlp, specs};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_table5(c: &mut Criterion) {
    let model = CostModel::jetson_orin_nano();
    let run = TrainingRun {
        batch_size: 32,
        batches_per_epoch: 1563,
        epochs: 200,
    };
    let mut group = c.benchmark_group("table5_summary");
    group.sample_size(20);
    group.bench_function("analytic_cost_sweep", |bencher| {
        bencher.iter(|| {
            let mut total_time = 0.0f64;
            for spec in specs::table2_specs() {
                for algorithm in AlgorithmKind::table5_lineup() {
                    total_time += model.estimate(algorithm, &spec, &run).time_s;
                }
            }
            total_time
        });
    });

    let (train_set, test_set) = bench_mnist();
    let options = bench_options();
    for algorithm in [Algorithm::FfInt8 { lookahead: true }, Algorithm::BpGdai8] {
        group.sample_size(10);
        group.bench_function(format!("measured_epoch/{}", algorithm.label()), |bencher| {
            bencher.iter(|| {
                let mut rng = StdRng::seed_from_u64(6);
                let mut net = small_mlp(784, &[64, 64], 10, &mut rng);
                train(&mut net, &train_set, &test_set, algorithm, &options).expect("train")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
