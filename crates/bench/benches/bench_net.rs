//! Network-serving benchmark: closed-loop multi-client load against the
//! `ff-net` TCP front-end on the paper's 784→2000 MLP, swept over client
//! counts × request payloads.
//!
//! Three wire strategies answer the same closed-loop load:
//!
//! - `per_conn`: one request per connection — connect, one `Predict`
//!   frame, read the reply, disconnect (the naive baseline a
//!   curl-per-request deployment would produce);
//! - `pipelined`: one persistent connection per client, `Predict` frames
//!   pipelined in waves of [`PIPELINE_DEPTH`];
//! - `batched`: one persistent connection per client, [`PIPELINE_DEPTH`]
//!   rows per `PredictBatch` frame.
//!
//! An `inproc` group runs the identical load through the in-process
//! [`ServeHandle`], quantifying the socket tax. The acceptance gate
//! (ISSUE 5 / `BENCH_net.json`) is **pipelined (or batched) ≥ 1.5×
//! per_conn aggregate throughput at 8 concurrent clients** — persistent
//! connections keep the micro-batcher fed with deep waves, while
//! one-request-per-connection caps every client at one in-flight row plus
//! a connect handshake per request. Client-observed latency percentiles
//! (p50/p95/p99 via [`ff_metrics::LatencyHistogram`]) are printed per
//! configuration.
//!
//! A fourth group drives the server past saturation: closed-loop offered
//! concurrency at 2× the admission gate's capacity (and far beyond one
//! GEMM worker's throughput). Under overload the server must **shed** —
//! typed `Overloaded` replies with a retry hint — rather than queue to
//! death; the shed rate and the p99 of the requests it *did* serve land in
//! the baseline as `net_overload/*` metrics.
//!
//! A fifth, **open-loop** group decouples arrivals from completions: a
//! generator fires `Predict` frames at seeded Poisson arrival times,
//! fire-and-forget, at 0.5× and 2× the calibrated service rate. Closed
//! loops self-throttle (a slow server slows its own clients), hiding the
//! queueing collapse this group exists to measure — its
//! `net_open_loop/*_queue_p{50,95,99}_ms` metrics report client-observed
//! queueing delay below and above saturation (coordinated-omission-free).
//!
//! Running with `--bench` (what `cargo bench` passes) writes a
//! `BENCH_net.json` baseline into the bench binary's working directory
//! (`crates/bench/`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_metrics::LatencyHistogram;
use ff_models::small_mlp;
use ff_net::{AdmissionConfig, Client, ErrorCode, NetConfig, NetError, NetServer};
use ff_serve::{BatchPolicy, FrozenModel, ServeConfig, ServeMode, TraceSettings};
use ff_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Requests answered per measured iteration (across all clients).
const REQUESTS_PER_ITER: usize = 256;
/// Rows per pipelined wave / batch frame.
const PIPELINE_DEPTH: usize = 16;

/// The paper's MNIST MLP: one 784→2000 hidden layer, 10-class head.
fn paper_mlp() -> FrozenModel {
    let mut rng = StdRng::seed_from_u64(42);
    let net = small_mlp(784, &[2000], 10, &mut rng);
    FrozenModel::freeze(&net, 10).expect("freeze")
}

fn request_pool(count: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(7);
    init::uniform(&[count, 784], -1.0, 1.0, &mut rng)
}

fn net_config() -> NetConfig {
    NetConfig {
        conn_threads: 8,
        read_timeout: Duration::from_millis(200),
        serve: ServeConfig {
            workers: 1,
            mode: ServeMode::Logits,
            policy: BatchPolicy {
                max_batch: 32,
                max_wait: Duration::from_millis(1),
            },
            gemm_threads: 1,
            trace: TraceSettings::default(),
        },
        ..NetConfig::default()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    PerConn,
    Pipelined,
    Batched,
}

impl Strategy {
    fn label(self) -> &'static str {
        match self {
            Strategy::PerConn => "per_conn",
            Strategy::Pipelined => "pipelined",
            Strategy::Batched => "batched",
        }
    }
}

/// Runs one client's share of a wave and records per-call latency.
fn run_client_wave(
    addr: SocketAddr,
    strategy: Strategy,
    pool: &Tensor,
    base: usize,
    count: usize,
    latency: &mut LatencyHistogram,
) {
    match strategy {
        Strategy::PerConn => {
            for step in 0..count {
                let row = pool.row((base + step) % pool.rows());
                let started = Instant::now();
                let mut client = Client::connect(addr).expect("connect");
                client.predict(row).expect("request");
                client.close();
                latency.record(started.elapsed());
            }
        }
        Strategy::Pipelined => {
            let mut client = Client::connect(addr).expect("connect");
            for wave in 0..count.div_ceil(PIPELINE_DEPTH) {
                let rows = (0..PIPELINE_DEPTH)
                    .map(|i| pool.row((base + wave * PIPELINE_DEPTH + i) % pool.rows()));
                let started = Instant::now();
                let labels = client.predict_pipelined(rows).expect("wave");
                latency.record(started.elapsed() / labels.len() as u32);
            }
            client.close();
        }
        Strategy::Batched => {
            let mut client = Client::connect(addr).expect("connect");
            for wave in 0..count.div_ceil(PIPELINE_DEPTH) {
                let flat: Vec<f32> = (0..PIPELINE_DEPTH)
                    .flat_map(|i| {
                        pool.row((base + wave * PIPELINE_DEPTH + i) % pool.rows())
                            .to_vec()
                    })
                    .collect();
                let started = Instant::now();
                let labels = client.predict_batch(784, &flat).expect("batch");
                latency.record(started.elapsed() / labels.len() as u32);
            }
            client.close();
        }
    }
}

/// One measured wave: `clients` threads splitting [`REQUESTS_PER_ITER`]
/// requests, latencies folded into `histogram`.
fn run_wave(
    addr: SocketAddr,
    strategy: Strategy,
    clients: usize,
    pool: &Tensor,
    histogram: &Arc<Mutex<LatencyHistogram>>,
) {
    let per_client = REQUESTS_PER_ITER / clients;
    std::thread::scope(|scope| {
        for client_index in 0..clients {
            let histogram = Arc::clone(histogram);
            scope.spawn(move || {
                let mut local = LatencyHistogram::new();
                run_client_wave(
                    addr,
                    strategy,
                    pool,
                    client_index * per_client,
                    per_client,
                    &mut local,
                );
                histogram.lock().expect("latency lock").merge(&local);
            });
        }
    });
}

fn bench_net_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("net");
    group.sample_size(10);
    let pool = request_pool(REQUESTS_PER_ITER);
    let server = NetServer::bind(paper_mlp(), "127.0.0.1:0", net_config()).expect("bind");
    let addr = server.local_addr();
    for &clients in &[1usize, 2, 4, 8] {
        for strategy in [Strategy::PerConn, Strategy::Pipelined, Strategy::Batched] {
            let histogram = Arc::new(Mutex::new(LatencyHistogram::new()));
            group.bench_with_input(
                BenchmarkId::new(strategy.label(), format!("clients{clients}")),
                &clients,
                |bencher, _| {
                    bencher.iter(|| run_wave(addr, strategy, clients, &pool, &histogram));
                },
            );
            let summary = histogram.lock().expect("latency lock").summary();
            println!(
                "    {}/clients{clients}: latency[{summary}]",
                strategy.label()
            );
        }
    }
    group.finish();

    // The socket tax: the same closed loop through the in-process handle.
    let mut group = c.benchmark_group("net_inproc_baseline");
    group.sample_size(10);
    let handle = server.handle();
    for &clients in &[1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("inproc", format!("clients{clients}")),
            &clients,
            |bencher, _| {
                bencher.iter(|| {
                    let per_client = REQUESTS_PER_ITER / clients;
                    std::thread::scope(|scope| {
                        for client_index in 0..clients {
                            let handle = handle.clone();
                            let pool = &pool;
                            scope.spawn(move || {
                                for step in 0..per_client {
                                    let row =
                                        pool.row((client_index * per_client + step) % pool.rows());
                                    handle.predict(row).expect("request");
                                }
                            });
                        }
                    });
                });
            },
        );
    }
    group.finish();
    let stats = server.handle().stats();
    println!(
        "    server totals: requests={} mean_batch={:.2} latency[{}]",
        stats.requests, stats.mean_batch, stats.latency
    );
    server.shutdown();
}

/// Overload point: 16 closed-loop clients against an 8-row admission gate
/// backed by a single GEMM worker — offered concurrency is 2× what the
/// gate admits, and the offered *rate* (a client whose request is shed
/// comes back after the retry hint) is far beyond GEMM capacity. Records
/// the shed rate and served-side latency into `BENCH_net.json`; in smoke
/// mode it runs a two-request-per-client panic check.
fn bench_net_overload(c: &mut Criterion) {
    const OVERLOAD_CLIENTS: usize = 16;
    const GATE_ROWS: usize = 8;
    let per_client: usize = if c.measuring() { 64 } else { 2 };
    let config = NetConfig {
        conn_threads: OVERLOAD_CLIENTS,
        read_timeout: Duration::from_millis(200),
        admission: AdmissionConfig {
            max_in_flight_rows: GATE_ROWS,
            retry_after: Duration::from_millis(2),
            ..AdmissionConfig::default()
        },
        serve: ServeConfig {
            workers: 1,
            mode: ServeMode::Logits,
            policy: BatchPolicy {
                max_batch: GATE_ROWS,
                max_wait: Duration::from_millis(1),
            },
            gemm_threads: 1,
            trace: TraceSettings::default(),
        },
        ..NetConfig::default()
    };
    let pool = request_pool(REQUESTS_PER_ITER);
    let server = NetServer::bind(paper_mlp(), "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let served_latency = Arc::new(Mutex::new(LatencyHistogram::new()));
    let served = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client_index in 0..OVERLOAD_CLIENTS {
            let served_latency = Arc::clone(&served_latency);
            let (pool, served, shed, failed) = (&pool, &served, &shed, &failed);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut local = LatencyHistogram::new();
                for step in 0..per_client {
                    let row = pool.row((client_index * per_client + step) % pool.rows());
                    let sent = Instant::now();
                    match client.predict(row) {
                        Ok(_) => {
                            local.record(sent.elapsed());
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(NetError::Remote {
                            code: ErrorCode::Overloaded,
                            retry_after,
                            ..
                        }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                            // An honest client honors the hint before its
                            // next request — the offered rate stays ≥2×
                            // capacity even so.
                            std::thread::sleep(retry_after.unwrap_or(Duration::from_millis(2)));
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                client.close();
                served_latency.lock().expect("latency lock").merge(&local);
            });
        }
    });
    let elapsed = started.elapsed();
    let offered = (OVERLOAD_CLIENTS * per_client) as u64;
    let served = served.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    let failed = failed.load(Ordering::Relaxed);
    assert_eq!(
        served + shed + failed,
        offered,
        "every offered request must be accounted for"
    );
    assert_eq!(failed, 0, "overload must surface as typed Overloaded only");
    let latency = served_latency.lock().expect("latency lock");
    println!(
        "    overload: offered={offered} served={served} shed={shed} \
         in {elapsed:?}, served latency[{}]",
        latency.summary()
    );
    if c.measuring() {
        assert!(shed > 0, "2x offered concurrency must trigger shedding");
        assert!(served > 0, "shedding must not starve admitted work");
        c.record_metric("net_overload/offered_requests", offered as f64);
        c.record_metric("net_overload/shed_rate", shed as f64 / offered as f64);
        c.record_metric(
            "net_overload/served_p99_ms",
            latency.p99().as_secs_f64() * 1e3,
        );
        c.record_metric(
            "net_overload/served_throughput_rps",
            served as f64 / elapsed.as_secs_f64(),
        );
    }
    drop(latency);
    server.shutdown();
}

/// One open-loop run: a writer thread fires `requests` `Predict` frames at
/// Poisson arrivals of `rate` req/s — **fire-and-forget**, never waiting
/// for replies — while the main thread reads the in-order replies and
/// measures each request's sojourn time (send → reply). Unlike the
/// closed-loop groups, a slow server does *not* slow the arrival process
/// down, which is what exposes queueing delay honestly: above saturation
/// the queue (and the sojourn tail) grows for as long as the run lasts.
///
/// Returns the sojourn histogram of answered requests plus the count of
/// typed error replies (shed — excluded from the percentiles).
fn open_loop_run(
    addr: SocketAddr,
    pool: &Tensor,
    rate: f64,
    requests: usize,
    seed: u64,
) -> (LatencyHistogram, u64) {
    use ff_net::protocol::{read_frame, write_frame, Frame, DEFAULT_MAX_FRAME_BYTES};
    use rand::Rng;
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = std::io::BufReader::new(stream);
    let (sent_tx, sent_rx) = std::sync::mpsc::channel::<Instant>();

    let mut sojourn = LatencyHistogram::new();
    let mut shed = 0u64;
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let start = Instant::now();
            let mut due = Duration::ZERO;
            for index in 0..requests {
                // Exponential interarrival via inverse transform; capped so
                // one extreme draw cannot stall the whole run.
                let u: f64 = rng.gen();
                let gap = (-(1.0 - u).ln() / rate).min(0.25);
                due += Duration::from_secs_f64(gap);
                if let Some(wait) = (start + due).checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let frame = Frame::Predict {
                    id: index as u64 + 1,
                    deadline_micros: 0,
                    features: pool.row(index % pool.rows()).to_vec(),
                };
                let sent = Instant::now();
                write_frame(&mut writer, &frame, DEFAULT_MAX_FRAME_BYTES).expect("send");
                std::io::Write::flush(&mut writer).expect("flush");
                sent_tx.send(sent).expect("reader alive");
            }
        });
        // Replies come back in request order on the one connection, so the
        // send timestamps pair up positionally.
        for _ in 0..requests {
            let sent = sent_rx.recv().expect("writer alive");
            match read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).expect("reply") {
                Frame::Labels { .. } => sojourn.record(sent.elapsed()),
                Frame::Error { .. } => shed += 1,
                other => panic!("unexpected open-loop reply {other:?}"),
            }
        }
    });
    (sojourn, shed)
}

/// Open-loop arrival-rate sweep: calibrates the server's closed-loop
/// service rate μ, then offers Poisson arrivals at 0.5μ (below saturation)
/// and 2μ (above), recording queueing-delay percentiles — sojourn time
/// minus the unloaded service floor — as `net_open_loop/*` metrics. Below
/// saturation the queueing delay stays near zero; above it the tail is
/// unbounded in run length, which no closed-loop benchmark can show.
fn bench_net_open_loop(c: &mut Criterion) {
    let requests: usize = if c.measuring() { 384 } else { 24 };
    let calibration: usize = if c.measuring() { 128 } else { 16 };
    let config = NetConfig {
        conn_threads: 2,
        read_timeout: Duration::from_millis(200),
        admission: AdmissionConfig {
            // Let the open-loop backlog queue (the quantity under study)
            // instead of shedding it at the gate.
            max_in_flight_rows: 1 << 20,
            ..AdmissionConfig::default()
        },
        serve: ServeConfig {
            workers: 1,
            mode: ServeMode::Logits,
            policy: BatchPolicy {
                max_batch: 32,
                max_wait: Duration::from_millis(1),
            },
            gemm_threads: 1,
            trace: TraceSettings::default(),
        },
        ..NetConfig::default()
    };
    let pool = request_pool(REQUESTS_PER_ITER);
    let server = NetServer::bind(paper_mlp(), "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    // Calibrate μ with a closed-loop pipelined burst, and the unloaded
    // service floor with sequential single requests.
    let mut client = Client::connect(addr).expect("connect");
    let calib_started = Instant::now();
    for wave in 0..calibration.div_ceil(PIPELINE_DEPTH) {
        let rows = (0..PIPELINE_DEPTH).map(|i| pool.row((wave * PIPELINE_DEPTH + i) % pool.rows()));
        client.predict_pipelined(rows).expect("calibration wave");
    }
    let waves = calibration.div_ceil(PIPELINE_DEPTH) * PIPELINE_DEPTH;
    let service_rate = waves as f64 / calib_started.elapsed().as_secs_f64();
    let mut floor = LatencyHistogram::new();
    for step in 0..16 {
        let started = Instant::now();
        client.predict(pool.row(step % pool.rows())).expect("floor");
        floor.record(started.elapsed());
    }
    let floor_p50 = floor.p50();
    client.close();
    println!("    open_loop: calibrated service rate {service_rate:.0} req/s, floor {floor_p50:?}");

    for (label, factor, seed) in [
        ("below_saturation", 0.5, 90_u64),
        ("above_saturation", 2.0, 91),
    ] {
        let rate = service_rate * factor;
        let (sojourn, shed) = open_loop_run(addr, &pool, rate, requests, seed);
        let queue_delay = |quantile: Duration| quantile.saturating_sub(floor_p50);
        let summary = sojourn.summary();
        println!(
            "    open_loop/{label}: arrivals {rate:.0} req/s, answered {} shed {shed}, \
             sojourn[{summary}], queue p99 {:?}",
            summary.count,
            queue_delay(sojourn.p99()),
        );
        if c.measuring() {
            assert!(summary.count > 0, "open-loop run must answer requests");
            c.record_metric(format!("net_open_loop/{label}_arrival_rps"), rate);
            c.record_metric(
                format!("net_open_loop/{label}_shed_rate"),
                shed as f64 / requests as f64,
            );
            for (name, value) in [
                ("queue_p50_ms", queue_delay(sojourn.p50())),
                ("queue_p95_ms", queue_delay(sojourn.p95())),
                ("queue_p99_ms", queue_delay(sojourn.p99())),
            ] {
                c.record_metric(
                    format!("net_open_loop/{label}_{name}"),
                    value.as_secs_f64() * 1e3,
                );
            }
        }
    }
    server.shutdown();
}

criterion_group!(
    benches,
    bench_net_throughput,
    bench_net_overload,
    bench_net_open_loop
);
criterion_main!(benches);
