//! Micro-benchmark: symmetric uniform quantization throughput (nearest and
//! stochastic rounding) — the "quantization phase" of the paper's Table IV.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_quant::{QuantConfig, QuantTensor, Rounding};
use ff_tensor::init;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_quantization(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantization");
    group.sample_size(20);
    for &len in &[1 << 12, 1 << 16] {
        let mut rng = StdRng::seed_from_u64(2);
        let t = init::randn(&[len], 0.0, 0.1, &mut rng);
        group.bench_with_input(BenchmarkId::new("nearest", len), &len, |bencher, _| {
            bencher.iter(|| {
                QuantTensor::quantize_with_rng(&t, QuantConfig::new(Rounding::Nearest), &mut rng)
            });
        });
        group.bench_with_input(BenchmarkId::new("stochastic", len), &len, |bencher, _| {
            bencher.iter(|| {
                QuantTensor::quantize_with_rng(&t, QuantConfig::new(Rounding::Stochastic), &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quantization);
criterion_main!(benches);
