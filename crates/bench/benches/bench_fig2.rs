//! Figure 2 harness: one training epoch of BP-FP32 versus naive BP-INT8 on a
//! small residual network (the configuration whose INT8 variant diverges in
//! the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use ff_bench::{bench_cifar10, bench_options};
use ff_core::{train, Algorithm};
use ff_models::{small_resnet, SmallModelConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig2(c: &mut Criterion) {
    let (train_set, test_set) = bench_cifar10();
    let options = bench_options();
    let config = SmallModelConfig::default()
        .with_base_channels(4)
        .with_stages(1);
    let mut group = c.benchmark_group("fig2_bp_epoch_resnet");
    group.sample_size(10);
    for algorithm in [Algorithm::BpFp32, Algorithm::BpInt8] {
        group.bench_function(algorithm.label(), |bencher| {
            bencher.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut net = small_resnet(&config, &mut rng);
                train(&mut net, &train_set, &test_set, algorithm, &options).expect("train")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
