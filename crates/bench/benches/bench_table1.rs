//! Table I harness: one training epoch of FP32 versus direct-INT8
//! backpropagation for MLPs of increasing depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_bench::{bench_mnist, bench_options};
use ff_core::{train, Algorithm};
use ff_models::small_mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_table1(c: &mut Criterion) {
    let (train_set, test_set) = bench_mnist();
    let options = bench_options();
    let mut group = c.benchmark_group("table1_bp_epoch_mlp");
    group.sample_size(10);
    for hidden_layers in [1usize, 3] {
        for algorithm in [Algorithm::BpFp32, Algorithm::BpInt8] {
            let id = BenchmarkId::new(algorithm.label(), hidden_layers);
            group.bench_with_input(id, &hidden_layers, |bencher, &depth| {
                bencher.iter(|| {
                    let mut rng = StdRng::seed_from_u64(2);
                    let mut net = small_mlp(784, &vec![64; depth], 10, &mut rng);
                    train(&mut net, &train_set, &test_set, algorithm, &options).expect("train")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
