//! Figure 3 harness: computing the first-layer gradient distribution
//! statistics (histogram, kurtosis, INT8 underflow fraction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_quant::stats::{DistributionStats, GradientHistogram};
use ff_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sharp_gradient(len: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(3);
    let mut data = init::randn(&[len - 2], 0.0, 1e-3, &mut rng).into_vec();
    data.push(0.5);
    data.push(-0.5);
    Tensor::from_vec(&[len], data).expect("shape")
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_gradient_stats");
    group.sample_size(20);
    for &len in &[1 << 14, 1 << 17] {
        let grad = sharp_gradient(len);
        group.bench_with_input(BenchmarkId::new("histogram", len), &len, |bencher, _| {
            bencher.iter(|| GradientHistogram::from_tensor(&grad, 41));
        });
        group.bench_with_input(BenchmarkId::new("stats", len), &len, |bencher, _| {
            bencher.iter(|| DistributionStats::from_tensor(&grad));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
