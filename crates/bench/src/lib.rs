//! # ff-bench
//!
//! Shared fixtures for the Criterion benchmarks that regenerate the paper's
//! evaluation artefacts. One bench target exists per table/figure plus two
//! micro-benchmarks (INT8 vs FP32 GEMM, quantization throughput).
//!
//! Run everything with `cargo bench --workspace`; each target prints the
//! measured timings that stand in for the wall-clock comparisons of the
//! paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ff_core::TrainOptions;
use ff_data::{synthetic_cifar10, synthetic_mnist, Dataset, SyntheticConfig};

/// A small MNIST stand-in used by the training benchmarks.
pub fn bench_mnist() -> (Dataset, Dataset) {
    synthetic_mnist(&SyntheticConfig {
        train_size: 256,
        test_size: 64,
        noise_std: 0.3,
        max_shift: 1,
        seed: 7,
    })
}

/// A small CIFAR-10 stand-in used by the convolutional benchmarks.
pub fn bench_cifar10() -> (Dataset, Dataset) {
    synthetic_cifar10(&SyntheticConfig {
        train_size: 96,
        test_size: 32,
        noise_std: 0.3,
        max_shift: 1,
        seed: 7,
    })
}

/// Single-epoch training options used by the benchmarks.
pub fn bench_options() -> TrainOptions {
    TrainOptions {
        epochs: 1,
        batch_size: 32,
        learning_rate: 0.1,
        eval_every: 10,
        max_eval_samples: 32,
        ..TrainOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_small() {
        let (train, test) = bench_mnist();
        assert_eq!(train.len(), 256);
        assert_eq!(test.len(), 64);
        assert_eq!(bench_cifar10().0.image_shape(), &[3, 32, 32]);
        assert_eq!(bench_options().epochs, 1);
    }
}
