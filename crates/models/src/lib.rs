//! # ff-models
//!
//! The DNN architectures evaluated by the FF-INT8 paper (Table II): a
//! multi-layer perceptron, ResNet-18, MobileNetV2 and EfficientNet-B0.
//!
//! Each architecture exists in two forms:
//!
//! * a **full-scale [`ModelSpec`]** describing every layer's dimensions.
//!   Parameter counts reproduce the paper's Table II; the analytic cost model
//!   in `ff-edge` consumes these specs to regenerate Table IV and the
//!   time/energy/memory columns of Table V.
//! * a **runnable scaled-down builder** returning an `ff_nn::Sequential`
//!   network small enough to train on a CPU within the test budget, used for
//!   the empirical accuracy experiments (Figs. 2 and 6, accuracy column of
//!   Table V).
//!
//! # Examples
//!
//! ```
//! use ff_models::specs;
//!
//! let mlp = specs::mlp_spec(&[1000, 1000]);
//! // Paper Table II: 1.79M parameters for the 2-hidden-layer MLP.
//! assert!((mlp.param_count() as f64 / 1.0e6 - 1.79).abs() < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod specs;

pub use builders::{small_cnn, small_mlp, small_resnet, SmallModelConfig};
pub use specs::{LayerSpec, ModelSpec};
