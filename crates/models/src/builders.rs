//! Runnable scaled-down model builders.
//!
//! The paper's accuracy experiments run full-scale networks for hundreds of
//! epochs on a GPU. The empirical runs in this repository use these reduced
//! variants (narrower channels, fewer blocks, smaller spatial extents) so the
//! accuracy *trends* — which training algorithm learns, diverges, or stalls —
//! can be reproduced on a CPU within seconds to minutes. Absolute accuracy is
//! not comparable to the paper; relative ordering is (see `EXPERIMENTS.md`).

use ff_nn::{Conv2d, Dense, Flatten, GlobalAvgPool, Layer, ResidualBlock, Sequential};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the scaled-down convolutional models.
///
/// # Examples
///
/// ```
/// use ff_models::SmallModelConfig;
///
/// let cfg = SmallModelConfig::default().with_base_channels(8);
/// assert_eq!(cfg.base_channels, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmallModelConfig {
    /// Input channels (1 for the MNIST stand-in, 3 for CIFAR-10).
    pub input_channels: usize,
    /// Input spatial size (height = width).
    pub input_hw: usize,
    /// Base channel width of the first stage.
    pub base_channels: usize,
    /// Number of residual stages (each stage doubles the width and halves the
    /// spatial size).
    pub stages: usize,
    /// Number of output classes.
    pub num_classes: usize,
}

impl Default for SmallModelConfig {
    fn default() -> Self {
        SmallModelConfig {
            input_channels: 3,
            input_hw: 32,
            base_channels: 8,
            stages: 2,
            num_classes: 10,
        }
    }
}

impl SmallModelConfig {
    /// Overrides the base channel width.
    pub fn with_base_channels(mut self, base_channels: usize) -> Self {
        self.base_channels = base_channels;
        self
    }

    /// Overrides the input geometry.
    pub fn with_input(mut self, channels: usize, hw: usize) -> Self {
        self.input_channels = channels;
        self.input_hw = hw;
        self
    }

    /// Overrides the number of residual stages.
    pub fn with_stages(mut self, stages: usize) -> Self {
        self.stages = stages;
        self
    }
}

/// Builds an MLP with the given hidden widths.
///
/// Hidden layers use a fused ReLU (the granularity at which the
/// Forward-Forward algorithm computes goodness); the output layer is linear.
///
/// # Examples
///
/// ```
/// use ff_models::small_mlp;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = small_mlp(784, &[128, 128], 10, &mut rng);
/// assert_eq!(net.len(), 3);
/// ```
pub fn small_mlp<R: Rng + ?Sized>(
    input_dim: usize,
    hidden: &[usize],
    num_classes: usize,
    rng: &mut R,
) -> Sequential {
    let mut net = Sequential::new();
    let mut in_dim = input_dim;
    for &width in hidden {
        net.push(Box::new(Dense::new(in_dim, width, true, rng)));
        in_dim = width;
    }
    net.push(Box::new(Dense::new(in_dim, num_classes, false, rng)));
    net
}

/// Builds a plain (non-residual) convolutional classifier:
/// `[conv3x3 + ReLU] × stages → global average pool → dense`.
///
/// This is the scaled-down stand-in for the paper's MobileNetV2 and
/// EfficientNet-B0 rows (architectures without residual *identity* joins at
/// this scale); widths differ per model via `base_channels`.
pub fn small_cnn<R: Rng + ?Sized>(config: &SmallModelConfig, rng: &mut R) -> Sequential {
    let mut net = Sequential::new();
    let mut in_ch = config.input_channels;
    let mut ch = config.base_channels;
    for stage in 0..config.stages.max(1) {
        let stride = if stage == 0 { 1 } else { 2 };
        net.push(Box::new(
            Conv2d::new(in_ch, ch, 3, stride, 1, true, rng).expect("valid conv geometry"),
        ));
        in_ch = ch;
        ch *= 2;
    }
    net.push(Box::new(GlobalAvgPool::new()));
    net.push(Box::new(Dense::new(in_ch, config.num_classes, false, rng)));
    net
}

/// Builds a scaled-down ResNet: a stem convolution followed by
/// `stages` residual blocks (the first block of each later stage downsamples
/// with a projection shortcut), global average pooling and a dense head.
///
/// Residual blocks are exactly the structure the paper identifies as
/// problematic for vanilla Forward-Forward training (Fig. 6b).
pub fn small_resnet<R: Rng + ?Sized>(config: &SmallModelConfig, rng: &mut R) -> Sequential {
    let mut net = Sequential::new();
    let base = config.base_channels;
    net.push(Box::new(
        Conv2d::new(config.input_channels, base, 3, 1, 1, true, rng).expect("valid conv geometry"),
    ));
    let mut in_ch = base;
    for stage in 0..config.stages.max(1) {
        let out_ch = base << stage;
        let stride = if stage == 0 { 1 } else { 2 };
        let main: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(in_ch, out_ch, 3, stride, 1, true, rng).expect("valid geometry")),
            Box::new(Conv2d::new(out_ch, out_ch, 3, 1, 1, false, rng).expect("valid geometry")),
        ];
        let shortcut: Vec<Box<dyn Layer>> = if stride != 1 || in_ch != out_ch {
            vec![Box::new(
                Conv2d::new(in_ch, out_ch, 1, stride, 0, false, rng).expect("valid geometry"),
            )]
        } else {
            Vec::new()
        };
        net.push(Box::new(ResidualBlock::new(main, shortcut)));
        in_ch = out_ch;
    }
    net.push(Box::new(GlobalAvgPool::new()));
    net.push(Box::new(Dense::new(in_ch, config.num_classes, false, rng)));
    net
}

/// Builds a flattening front-end plus MLP, for running MLPs directly on 4-D
/// image tensors.
pub fn small_mlp_on_images<R: Rng + ?Sized>(
    config: &SmallModelConfig,
    hidden: &[usize],
    rng: &mut R,
) -> Sequential {
    let input_dim = config.input_channels * config.input_hw * config.input_hw;
    let mut net = Sequential::new();
    net.push(Box::new(Flatten::new()));
    let mut in_dim = input_dim;
    for &width in hidden {
        net.push(Box::new(Dense::new(in_dim, width, true, rng)));
        in_dim = width;
    }
    net.push(Box::new(Dense::new(in_dim, config.num_classes, false, rng)));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_nn::ForwardMode;
    use ff_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn mlp_builder_layer_count_and_shapes() {
        let mut net = small_mlp(784, &[64, 64], 10, &mut rng());
        assert_eq!(net.len(), 3);
        let y = net
            .forward(&Tensor::ones(&[2, 784]), ForwardMode::Fp32)
            .unwrap();
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn cnn_builder_forward_shape() {
        let cfg = SmallModelConfig::default()
            .with_base_channels(4)
            .with_stages(2);
        let mut net = small_cnn(&cfg, &mut rng());
        let y = net
            .forward(&Tensor::ones(&[2, 3, 32, 32]), ForwardMode::Fp32)
            .unwrap();
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn resnet_builder_forward_shape_and_params() {
        let cfg = SmallModelConfig::default()
            .with_base_channels(4)
            .with_stages(2);
        let mut net = small_resnet(&cfg, &mut rng());
        let y = net
            .forward(&Tensor::ones(&[1, 3, 32, 32]), ForwardMode::Fp32)
            .unwrap();
        assert_eq!(y.shape(), &[1, 10]);
        assert!(net.param_count() > 0);
        // deeper/wider config has more parameters
        let big = small_resnet(&cfg.with_base_channels(8), &mut rng());
        assert!(big.param_count() > net.param_count());
    }

    #[test]
    fn mlp_on_images_flattens() {
        let cfg = SmallModelConfig::default().with_input(1, 28);
        let mut net = small_mlp_on_images(&cfg, &[32], &mut rng());
        let y = net
            .forward(&Tensor::ones(&[3, 1, 28, 28]), ForwardMode::Fp32)
            .unwrap();
        assert_eq!(y.shape(), &[3, 10]);
    }

    #[test]
    fn config_builders() {
        let cfg = SmallModelConfig::default()
            .with_base_channels(16)
            .with_input(1, 28)
            .with_stages(3);
        assert_eq!(cfg.base_channels, 16);
        assert_eq!(cfg.input_channels, 1);
        assert_eq!(cfg.input_hw, 28);
        assert_eq!(cfg.stages, 3);
    }
}
