//! Full-scale architecture specifications.
//!
//! A [`ModelSpec`] is a purely structural description (no weights) of one of
//! the paper's benchmark networks. The analytic device model in `ff-edge`
//! walks these specs to count operations, bytes and activations exactly,
//! which is how Table IV and the time/energy/memory columns of Table V are
//! regenerated without the physical Jetson board.

use serde::{Deserialize, Serialize};

/// One layer of a [`ModelSpec`].
///
/// Only the quantities needed for cost accounting are stored: parameter
/// tensor sizes, MAC counts and activation sizes, all **per sample**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Fully-connected layer.
    Dense {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Standard 2-D convolution (square kernel, `same`-style padding assumed
    /// for spatial bookkeeping; `out_hw` is the actual output spatial size).
    Conv2d {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Square kernel size.
        kernel: usize,
        /// Output spatial size (height = width).
        out_hw: usize,
    },
    /// Depthwise 2-D convolution (one filter per channel).
    DepthwiseConv2d {
        /// Channels (input = output).
        channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Output spatial size (height = width).
        out_hw: usize,
    },
    /// Batch normalisation over `channels` feature maps of `hw × hw` pixels.
    BatchNorm2d {
        /// Normalised channels.
        channels: usize,
        /// Spatial size (height = width).
        hw: usize,
    },
    /// Parameter-free layer (pooling, flatten, activation) producing
    /// `output_elements` activations per sample.
    Reshape {
        /// Activations produced per sample.
        output_elements: usize,
    },
}

impl LayerSpec {
    /// Number of trainable parameters.
    pub fn param_count(&self) -> u64 {
        match *self {
            LayerSpec::Dense {
                in_features,
                out_features,
            } => (in_features * out_features + out_features) as u64,
            LayerSpec::Conv2d {
                in_ch,
                out_ch,
                kernel,
                ..
            } => (out_ch * in_ch * kernel * kernel + out_ch) as u64,
            LayerSpec::DepthwiseConv2d {
                channels, kernel, ..
            } => (channels * kernel * kernel + channels) as u64,
            LayerSpec::BatchNorm2d { channels, .. } => (2 * channels) as u64,
            LayerSpec::Reshape { .. } => 0,
        }
    }

    /// Fused multiply–accumulate operations for one forward pass of one
    /// sample.
    pub fn forward_macs(&self) -> u64 {
        match *self {
            LayerSpec::Dense {
                in_features,
                out_features,
            } => (in_features * out_features) as u64,
            LayerSpec::Conv2d {
                in_ch,
                out_ch,
                kernel,
                out_hw,
            } => (out_ch * out_hw * out_hw * in_ch * kernel * kernel) as u64,
            LayerSpec::DepthwiseConv2d {
                channels,
                kernel,
                out_hw,
            } => (channels * out_hw * out_hw * kernel * kernel) as u64,
            LayerSpec::BatchNorm2d { channels, hw } => (2 * channels * hw * hw) as u64,
            LayerSpec::Reshape { .. } => 0,
        }
    }

    /// Number of activation values produced per sample.
    pub fn output_elements(&self) -> u64 {
        match *self {
            LayerSpec::Dense { out_features, .. } => out_features as u64,
            LayerSpec::Conv2d { out_ch, out_hw, .. } => (out_ch * out_hw * out_hw) as u64,
            LayerSpec::DepthwiseConv2d {
                channels, out_hw, ..
            } => (channels * out_hw * out_hw) as u64,
            LayerSpec::BatchNorm2d { channels, hw } => (channels * hw * hw) as u64,
            LayerSpec::Reshape { output_elements } => output_elements as u64,
        }
    }

    /// `true` when the layer holds trainable MAC weights (dense or conv).
    pub fn is_mac_layer(&self) -> bool {
        matches!(
            self,
            LayerSpec::Dense { .. } | LayerSpec::Conv2d { .. } | LayerSpec::DepthwiseConv2d { .. }
        )
    }
}

/// A full architecture description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable model name (e.g. `"ResNet-18"`).
    pub name: String,
    /// Input elements per sample (e.g. `3 · 32 · 32` for CIFAR-10).
    pub input_elements: usize,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl ModelSpec {
    /// Total trainable parameters.
    pub fn param_count(&self) -> u64 {
        self.layers.iter().map(LayerSpec::param_count).sum()
    }

    /// Total parameters in millions (for comparison with Table II).
    pub fn param_millions(&self) -> f64 {
        self.param_count() as f64 / 1.0e6
    }

    /// Forward MACs per sample.
    pub fn forward_macs(&self) -> u64 {
        self.layers.iter().map(LayerSpec::forward_macs).sum()
    }

    /// Total activation elements produced per sample across all layers (what
    /// backpropagation has to keep resident for its backward pass).
    pub fn activation_elements(&self) -> u64 {
        self.layers.iter().map(LayerSpec::output_elements).sum()
    }

    /// The largest single-layer activation (what a layer-at-a-time algorithm
    /// such as Forward-Forward has to keep resident).
    pub fn max_layer_activation(&self) -> u64 {
        self.layers
            .iter()
            .map(LayerSpec::output_elements)
            .max()
            .unwrap_or(0)
    }

    /// Number of MAC layers (dense/conv), i.e. FF-trainable blocks.
    pub fn mac_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_mac_layer()).count()
    }
}

/// MLP on MNIST with the given hidden widths (paper Table II uses two hidden
/// layers of 1000 units → 1.79 M parameters).
pub fn mlp_spec(hidden: &[usize]) -> ModelSpec {
    let mut layers = Vec::new();
    let mut in_features = 784;
    for &width in hidden {
        layers.push(LayerSpec::Dense {
            in_features,
            out_features: width,
        });
        in_features = width;
    }
    layers.push(LayerSpec::Dense {
        in_features,
        out_features: 10,
    });
    ModelSpec {
        name: format!("MLP-{}h", hidden.len()),
        input_elements: 784,
        layers,
    }
}

/// The depth-sweep MLPs of Table I: `hidden_layers` hidden layers of 500
/// neurons each on MNIST.
pub fn mlp_depth_spec(hidden_layers: usize) -> ModelSpec {
    mlp_spec(&vec![500; hidden_layers])
}

fn push_conv_bn(
    layers: &mut Vec<LayerSpec>,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    hw: &mut usize,
) {
    *hw = hw.div_ceil(stride);
    layers.push(LayerSpec::Conv2d {
        in_ch,
        out_ch,
        kernel,
        out_hw: *hw,
    });
    layers.push(LayerSpec::BatchNorm2d {
        channels: out_ch,
        hw: *hw,
    });
}

/// ResNet-18 for CIFAR-10 (3×32×32 input, 10 classes).
///
/// Matches the paper's 11.19 M parameter count to within a few percent.
pub fn resnet18_spec() -> ModelSpec {
    let mut layers = Vec::new();
    let mut hw = 32usize;
    push_conv_bn(&mut layers, 3, 64, 3, 1, &mut hw);
    let stage_channels = [64usize, 128, 256, 512];
    let mut in_ch = 64usize;
    for (stage, &out_ch) in stage_channels.iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            // main path: two 3x3 convolutions
            push_conv_bn(&mut layers, in_ch, out_ch, 3, stride, &mut hw);
            push_conv_bn(&mut layers, out_ch, out_ch, 3, 1, &mut hw);
            // projection shortcut when the shape changes
            if stride != 1 || in_ch != out_ch {
                layers.push(LayerSpec::Conv2d {
                    in_ch,
                    out_ch,
                    kernel: 1,
                    out_hw: hw,
                });
                layers.push(LayerSpec::BatchNorm2d {
                    channels: out_ch,
                    hw,
                });
            }
            in_ch = out_ch;
        }
    }
    layers.push(LayerSpec::Reshape {
        output_elements: 512,
    });
    layers.push(LayerSpec::Dense {
        in_features: 512,
        out_features: 10,
    });
    ModelSpec {
        name: "ResNet-18".to_string(),
        input_elements: 3 * 32 * 32,
        layers,
    }
}

fn push_inverted_residual(
    layers: &mut Vec<LayerSpec>,
    in_ch: usize,
    out_ch: usize,
    expansion: usize,
    stride: usize,
    kernel: usize,
    hw: &mut usize,
) {
    let expanded = in_ch * expansion;
    if expansion != 1 {
        // 1x1 expansion
        layers.push(LayerSpec::Conv2d {
            in_ch,
            out_ch: expanded,
            kernel: 1,
            out_hw: *hw,
        });
        layers.push(LayerSpec::BatchNorm2d {
            channels: expanded,
            hw: *hw,
        });
    }
    // depthwise
    *hw = hw.div_ceil(stride);
    layers.push(LayerSpec::DepthwiseConv2d {
        channels: expanded,
        kernel,
        out_hw: *hw,
    });
    layers.push(LayerSpec::BatchNorm2d {
        channels: expanded,
        hw: *hw,
    });
    // 1x1 projection
    layers.push(LayerSpec::Conv2d {
        in_ch: expanded,
        out_ch,
        kernel: 1,
        out_hw: *hw,
    });
    layers.push(LayerSpec::BatchNorm2d {
        channels: out_ch,
        hw: *hw,
    });
}

/// MobileNetV2 for CIFAR-10 (width multiplier 1.0).
///
/// Matches the paper's 2.24 M parameters to within a few percent.
pub fn mobilenet_v2_spec() -> ModelSpec {
    let mut layers = Vec::new();
    let mut hw = 32usize;
    push_conv_bn(&mut layers, 3, 32, 3, 1, &mut hw);
    // (expansion, out_channels, repeats, stride)
    let config: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 1),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut in_ch = 32usize;
    for &(t, c, n, s) in &config {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            push_inverted_residual(&mut layers, in_ch, c, t, stride, 3, &mut hw);
            in_ch = c;
        }
    }
    push_conv_bn(&mut layers, in_ch, 1280, 1, 1, &mut hw);
    layers.push(LayerSpec::Reshape {
        output_elements: 1280,
    });
    layers.push(LayerSpec::Dense {
        in_features: 1280,
        out_features: 10,
    });
    ModelSpec {
        name: "MobileNet-V2".to_string(),
        input_elements: 3 * 32 * 32,
        layers,
    }
}

/// EfficientNet-B0 for CIFAR-10 (MBConv backbone; squeeze-excitation blocks
/// are omitted, which keeps the parameter count near the paper's 3.39 M).
pub fn efficientnet_b0_spec() -> ModelSpec {
    let mut layers = Vec::new();
    let mut hw = 32usize;
    push_conv_bn(&mut layers, 3, 32, 3, 1, &mut hw);
    // (expansion, out_channels, repeats, stride, kernel)
    let config: [(usize, usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    let mut in_ch = 32usize;
    for &(t, c, n, s, k) in &config {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            push_inverted_residual(&mut layers, in_ch, c, t, stride, k, &mut hw);
            in_ch = c;
        }
    }
    push_conv_bn(&mut layers, in_ch, 1280, 1, 1, &mut hw);
    layers.push(LayerSpec::Reshape {
        output_elements: 1280,
    });
    layers.push(LayerSpec::Dense {
        in_features: 1280,
        out_features: 10,
    });
    ModelSpec {
        name: "EfficientNet-B0".to_string(),
        input_elements: 3 * 32 * 32,
        layers,
    }
}

/// All four benchmark specs of the paper's Table II, in table order.
pub fn table2_specs() -> Vec<ModelSpec> {
    vec![
        mlp_spec(&[1000, 1000]),
        mobilenet_v2_spec(),
        efficientnet_b0_spec(),
        resnet18_spec(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_spec_param_counts() {
        assert_eq!(
            LayerSpec::Dense {
                in_features: 10,
                out_features: 5
            }
            .param_count(),
            55
        );
        assert_eq!(
            LayerSpec::Conv2d {
                in_ch: 3,
                out_ch: 8,
                kernel: 3,
                out_hw: 16
            }
            .param_count(),
            3 * 8 * 9 + 8
        );
        assert_eq!(
            LayerSpec::DepthwiseConv2d {
                channels: 8,
                kernel: 3,
                out_hw: 16
            }
            .param_count(),
            8 * 9 + 8
        );
        assert_eq!(
            LayerSpec::BatchNorm2d {
                channels: 16,
                hw: 8
            }
            .param_count(),
            32
        );
        assert_eq!(LayerSpec::Reshape { output_elements: 4 }.param_count(), 0);
    }

    #[test]
    fn layer_spec_macs_and_outputs() {
        let conv = LayerSpec::Conv2d {
            in_ch: 2,
            out_ch: 4,
            kernel: 3,
            out_hw: 8,
        };
        assert_eq!(conv.forward_macs(), 4 * 64 * 2 * 9);
        assert_eq!(conv.output_elements(), 4 * 64);
        assert!(conv.is_mac_layer());
        assert!(!LayerSpec::BatchNorm2d { channels: 4, hw: 8 }.is_mac_layer());
    }

    #[test]
    fn mlp_spec_matches_table2() {
        let spec = mlp_spec(&[1000, 1000]);
        assert!(
            (spec.param_millions() - 1.79).abs() < 0.02,
            "MLP params {:.3}M",
            spec.param_millions()
        );
        assert_eq!(spec.mac_layer_count(), 3);
    }

    #[test]
    fn table1_depth_specs() {
        assert_eq!(mlp_depth_spec(0).mac_layer_count(), 1);
        assert_eq!(mlp_depth_spec(3).mac_layer_count(), 4);
        // 0 hidden layers: a single 784x10 softmax layer
        assert_eq!(mlp_depth_spec(0).param_count(), 7850);
    }

    #[test]
    fn resnet18_spec_matches_table2() {
        let spec = resnet18_spec();
        let m = spec.param_millions();
        assert!(
            (m - 11.19).abs() / 11.19 < 0.05,
            "ResNet-18 params {m:.3}M vs paper 11.19M"
        );
    }

    #[test]
    fn mobilenet_spec_matches_table2() {
        let spec = mobilenet_v2_spec();
        let m = spec.param_millions();
        assert!(
            (m - 2.24).abs() / 2.24 < 0.10,
            "MobileNetV2 params {m:.3}M vs paper 2.24M"
        );
    }

    #[test]
    fn efficientnet_spec_matches_table2() {
        let spec = efficientnet_b0_spec();
        let m = spec.param_millions();
        assert!(
            (m - 3.39).abs() / 3.39 < 0.15,
            "EfficientNet-B0 params {m:.3}M vs paper 3.39M"
        );
    }

    #[test]
    fn table2_order_and_relative_sizes() {
        let specs = table2_specs();
        assert_eq!(specs.len(), 4);
        // ResNet-18 is the largest, MLP the smallest of the conv trio ordering
        assert!(specs[3].param_count() > specs[2].param_count());
        assert!(specs[2].param_count() > specs[1].param_count());
    }

    #[test]
    fn activation_accounting_is_consistent() {
        let spec = resnet18_spec();
        assert!(spec.activation_elements() > spec.max_layer_activation());
        assert!(spec.forward_macs() > spec.param_count());
    }
}
