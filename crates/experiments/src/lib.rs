//! # ff-experiments
//!
//! Shared helpers for the experiment binaries that regenerate every table and
//! figure of the FF-INT8 paper. One binary exists per experiment:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig2_int8_bp_divergence` | Fig. 2 — INT8 backpropagation divergence |
//! | `table1_depth_vs_quantization` | Table I — accuracy vs. depth for FP32/INT8 BP |
//! | `fig3_gradient_distribution` | Fig. 3 — first-layer gradient distributions |
//! | `fig6_lookahead_convergence` | Fig. 6 — FF-INT8 with/without look-ahead |
//! | `table4_op_counts` | Table IV — operation counts per mini-batch |
//! | `table5_summary` | Table V — accuracy/time/energy/memory summary |
//!
//! Every binary accepts `--full` for a longer, closer-to-paper run; the
//! default configuration finishes in seconds on a laptop CPU.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ff_core::{Algorithm, SessionControl, TrainEvent, TrainOptions};
use ff_data::{synthetic_cifar10, synthetic_mnist, Dataset, SyntheticConfig};

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Small datasets and few epochs; finishes in seconds.
    Quick,
    /// Larger datasets and more epochs; closer to the paper's setting.
    Full,
}

impl RunScale {
    /// Parses `--full` from the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            RunScale::Full
        } else {
            RunScale::Quick
        }
    }

    /// `true` for the full-scale run.
    pub fn is_full(&self) -> bool {
        matches!(self, RunScale::Full)
    }
}

/// The synthetic MNIST stand-in sized for the requested scale.
pub fn mnist(scale: RunScale) -> (Dataset, Dataset) {
    let config = match scale {
        RunScale::Quick => SyntheticConfig {
            train_size: 1000,
            test_size: 300,
            noise_std: 0.35,
            max_shift: 2,
            seed: 42,
        },
        RunScale::Full => SyntheticConfig {
            train_size: 6000,
            test_size: 1000,
            noise_std: 0.4,
            max_shift: 3,
            seed: 42,
        },
    };
    synthetic_mnist(&config)
}

/// The synthetic CIFAR-10 stand-in sized for the requested scale.
pub fn cifar10(scale: RunScale) -> (Dataset, Dataset) {
    let config = match scale {
        RunScale::Quick => SyntheticConfig {
            train_size: 400,
            test_size: 150,
            noise_std: 0.3,
            max_shift: 2,
            seed: 42,
        },
        RunScale::Full => SyntheticConfig {
            train_size: 3000,
            test_size: 600,
            noise_std: 0.35,
            max_shift: 3,
            seed: 42,
        },
    };
    synthetic_cifar10(&config)
}

/// Training options for backpropagation baselines at the requested scale.
pub fn bp_options(scale: RunScale) -> TrainOptions {
    TrainOptions {
        epochs: if scale.is_full() { 20 } else { 6 },
        learning_rate: 0.05,
        max_eval_samples: if scale.is_full() { 1000 } else { 200 },
        ..TrainOptions::default()
    }
}

/// Training options for Forward-Forward runs at the requested scale.
pub fn ff_options(scale: RunScale) -> TrainOptions {
    TrainOptions {
        epochs: if scale.is_full() { 40 } else { 10 },
        learning_rate: 0.2,
        max_eval_samples: if scale.is_full() { 500 } else { 150 },
        ..TrainOptions::default()
    }
}

/// Formats a percentage with one decimal, as in the paper's tables.
pub fn pct(value: f32) -> String {
    format!("{:.1}", value * 100.0)
}

/// Parses an optional `--algo=<label>` filter from the process arguments
/// via [`Algorithm::parse`] (`--algo=bp-gdai8`, `--algo=FF-INT8`, ...).
///
/// Exits with the parse error when the label is unknown, so a typo'd flag
/// fails loudly instead of silently running every algorithm.
pub fn algo_filter_from_args() -> Option<Algorithm> {
    std::env::args().find_map(|arg| {
        arg.strip_prefix("--algo=").map(|label| {
            Algorithm::parse(label).unwrap_or_else(|error| {
                eprintln!("{error}");
                std::process::exit(2);
            })
        })
    })
}

/// A [`ff_core::TrainSession`] observer printing one live progress line per
/// evaluated epoch — the experiment binaries attach it so long runs are
/// observable instead of silent until the end.
pub fn progress_observer(label: String) -> impl FnMut(&TrainEvent) -> SessionControl {
    move |event| {
        if let TrainEvent::EpochEnd {
            epoch,
            mean_loss,
            test_accuracy: Some(accuracy),
            seconds,
            ..
        } = event
        {
            println!(
                "    [{label}] epoch {epoch:>3}: loss {mean_loss:>8.4}  test acc {accuracy:.3}  \
                 ({seconds:.2}s)"
            );
        }
        SessionControl::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_produce_datasets() {
        let (train, test) = mnist(RunScale::Quick);
        assert_eq!(train.len(), 1000);
        assert_eq!(test.len(), 300);
        let (ctrain, _) = cifar10(RunScale::Quick);
        assert_eq!(ctrain.image_shape(), &[3, 32, 32]);
    }

    #[test]
    fn options_differ_by_scale() {
        assert!(bp_options(RunScale::Full).epochs > bp_options(RunScale::Quick).epochs);
        assert!(ff_options(RunScale::Full).epochs > ff_options(RunScale::Quick).epochs);
        assert!(
            ff_options(RunScale::Quick).learning_rate > bp_options(RunScale::Quick).learning_rate
        );
    }

    #[test]
    fn pct_formats_one_decimal() {
        assert_eq!(pct(0.943), "94.3");
        assert_eq!(pct(1.0), "100.0");
    }

    #[test]
    fn progress_observer_never_stops_the_run() {
        let mut observer = progress_observer("test".to_string());
        let event = TrainEvent::EpochEnd {
            epoch: 0,
            mean_loss: 1.0,
            train_accuracy: 0.5,
            test_accuracy: Some(0.4),
            seconds: 0.1,
        };
        assert_eq!(observer(&event), SessionControl::Continue);
        assert_eq!(
            observer(&TrainEvent::EpochStart {
                epoch: 1,
                lambda: 0.0
            }),
            SessionControl::Continue
        );
    }

    #[test]
    fn run_scale_queries() {
        assert!(RunScale::Full.is_full());
        assert!(!RunScale::Quick.is_full());
    }
}
