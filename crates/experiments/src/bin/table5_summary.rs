//! Table V: accuracy, training time, energy consumption and memory footprint
//! for the four benchmark DNNs under the five training algorithms.
//!
//! Accuracy is measured empirically on scaled-down models and the synthetic
//! datasets; time, energy and memory come from the analytic Jetson Orin Nano
//! cost model applied to the full-scale architecture specs (see DESIGN.md).

use ff_core::{Algorithm, TrainOptions, TrainSession};
use ff_data::Dataset;
use ff_edge::{AlgorithmKind, CostModel, TrainingRun};
use ff_experiments::{
    algo_filter_from_args, bp_options, cifar10, ff_options, mnist, pct, RunScale,
};
use ff_metrics::format_table;
use ff_models::{small_cnn, small_mlp, small_resnet, specs, ModelSpec, SmallModelConfig};
use ff_nn::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One benchmark row group: a full-scale spec for the cost model plus a
/// builder for the scaled-down empirical model.
struct Benchmark {
    name: &'static str,
    spec: ModelSpec,
    dataset: (Dataset, Dataset),
    build: Box<dyn Fn(&mut StdRng) -> Sequential>,
    epochs_paperish: usize,
}

fn edge_algorithm(algorithm: Algorithm) -> AlgorithmKind {
    match algorithm {
        Algorithm::BpFp32 => AlgorithmKind::BpFp32,
        Algorithm::BpInt8 => AlgorithmKind::BpInt8,
        Algorithm::BpUi8 => AlgorithmKind::BpUi8,
        Algorithm::BpGdai8 => AlgorithmKind::BpGdai8,
        Algorithm::FfInt8 { .. } | Algorithm::FfFp32 { .. } => AlgorithmKind::FfInt8,
    }
}

fn options_for(algorithm: Algorithm, scale: RunScale) -> TrainOptions {
    if algorithm.is_forward_forward() {
        ff_options(scale)
    } else {
        bp_options(scale)
    }
}

fn main() {
    let scale = RunScale::from_args();
    let algo_filter = algo_filter_from_args();
    let cost_model = CostModel::jetson_orin_nano();
    let cnn_config = SmallModelConfig::default()
        .with_base_channels(if scale.is_full() { 8 } else { 4 })
        .with_stages(2);

    let benchmarks: Vec<Benchmark> = vec![
        Benchmark {
            name: "MLP",
            spec: specs::mlp_spec(&[1000, 1000]),
            dataset: mnist(scale),
            build: Box::new(|rng| small_mlp(784, &[64, 64], 10, rng)),
            epochs_paperish: 180,
        },
        Benchmark {
            name: "MobileNet-V2",
            spec: specs::mobilenet_v2_spec(),
            dataset: cifar10(scale),
            build: Box::new(move |rng| small_cnn(&cnn_config, rng)),
            epochs_paperish: 200,
        },
        Benchmark {
            name: "EfficientNet-B0",
            spec: specs::efficientnet_b0_spec(),
            dataset: cifar10(scale),
            build: Box::new(move |rng| small_cnn(&cnn_config.with_base_channels(6), rng)),
            epochs_paperish: 200,
        },
        Benchmark {
            name: "ResNet-18",
            spec: specs::resnet18_spec(),
            dataset: cifar10(scale),
            build: Box::new(move |rng| small_resnet(&cnn_config, rng)),
            epochs_paperish: 200,
        },
    ];

    println!("== Table V: accuracy / time / energy / memory across training algorithms ==\n");
    println!(
        "(accuracy + measured train s: scaled-down models + synthetic data on this machine;\n\
         model time/energy/memory: analytic Jetson Orin Nano model on the full-scale\n\
         architectures; pass --algo=<label> to run a single algorithm)\n"
    );

    let mut rows = Vec::new();
    let mut ff_vs_gdai8: Vec<(f64, f64, f64, f32)> = Vec::new();
    for bench in &benchmarks {
        let run = TrainingRun {
            batch_size: 32,
            batches_per_epoch: 1563,
            epochs: bench.epochs_paperish,
        };
        let mut gdai8_metrics = None;
        let mut ff_metrics = None;
        for algorithm in Algorithm::table5_lineup() {
            if algo_filter.is_some_and(|wanted| wanted != algorithm) {
                continue;
            }
            let mut conv_options = options_for(algorithm, scale);
            if bench.name != "MLP" {
                // convolutional empirical runs are the slowest part; cap them
                conv_options.epochs = conv_options
                    .epochs
                    .min(if scale.is_full() { 12 } else { 3 });
                conv_options.max_eval_samples = conv_options.max_eval_samples.min(100);
            }
            let mut rng = StdRng::seed_from_u64(33);
            let mut net = (bench.build)(&mut rng);
            let history = TrainSession::new(
                &mut net,
                &bench.dataset.0,
                &bench.dataset.1,
                algorithm,
                &conv_options,
            )
            .expect("session creation failed")
            .run()
            .expect("training failed");
            let accuracy = history.final_accuracy().unwrap_or(0.0);
            let cost = cost_model.estimate(edge_algorithm(algorithm), &bench.spec, &run);
            rows.push(vec![
                bench.name.to_string(),
                algorithm.label(),
                pct(accuracy),
                format!("{:.1}", history.total_seconds()),
                format!("{:.1}", cost.time_s),
                format!("{:.1}", cost.energy_j),
                format!("{:.1}", cost.memory_mib()),
            ]);
            if algorithm == Algorithm::BpGdai8 {
                gdai8_metrics = Some((cost.time_s, cost.energy_j, cost.memory_mib(), accuracy));
            }
            if matches!(algorithm, Algorithm::FfInt8 { .. }) {
                ff_metrics = Some((cost.time_s, cost.energy_j, cost.memory_mib(), accuracy));
            }
        }
        if let (Some(g), Some(f)) = (gdai8_metrics, ff_metrics) {
            ff_vs_gdai8.push((1.0 - f.0 / g.0, 1.0 - f.1 / g.1, 1.0 - f.2 / g.2, f.3 - g.3));
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "Model",
                "Training algorithm",
                "Accuracy (%)",
                "Measured train (s)",
                "Model time (s)",
                "Energy (J)",
                "Memory (MB)"
            ],
            &rows
        )
    );

    let n = ff_vs_gdai8.len().max(1) as f64;
    let avg_time: f64 = ff_vs_gdai8.iter().map(|x| x.0).sum::<f64>() / n;
    let avg_energy: f64 = ff_vs_gdai8.iter().map(|x| x.1).sum::<f64>() / n;
    let avg_mem: f64 = ff_vs_gdai8.iter().map(|x| x.2).sum::<f64>() / n;
    let avg_acc: f32 = ff_vs_gdai8.iter().map(|x| x.3).sum::<f32>() / n as f32;
    println!(
        "Average FF-INT8 vs BP-GDAI8 (state of the art): accuracy {:+.1} pp, time saved {:.1}%, \
         energy saved {:.1}%, memory saved {:.1}%",
        avg_acc * 100.0,
        avg_time * 100.0,
        avg_energy * 100.0,
        avg_mem * 100.0
    );
    println!(
        "Paper reports: accuracy +0.2 pp, time saved 4.6%, energy saved 8.3%, memory saved 27.0%."
    );
}
