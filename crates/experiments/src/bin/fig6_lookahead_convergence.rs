//! Figure 6: test accuracy per epoch for FF-INT8 with and without the
//! look-ahead scheme, on (a) an MLP and (b) a residual convolutional network.

use ff_core::{Algorithm, TrainEvent, TrainSession};
use ff_experiments::{cifar10, ff_options, mnist, progress_observer, RunScale};
use ff_metrics::format_series;
use ff_models::{small_mlp, small_resnet, SmallModelConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let scale = RunScale::from_args();
    let run_resnet = std::env::args().any(|a| a == "--model=resnet") || scale.is_full();

    println!("== Figure 6(a): MLP trained with FF-INT8, with and without look-ahead ==\n");
    let (train_set, test_set) = mnist(scale);
    let options = ff_options(scale);
    let mut convergence = Vec::new();
    for lookahead in [false, true] {
        let algorithm = Algorithm::FfInt8 { lookahead };
        let mut rng = StdRng::seed_from_u64(21);
        let mut net = small_mlp(784, &[64, 64], 10, &mut rng);
        let mut session = TrainSession::new(&mut net, &train_set, &test_set, algorithm, &options)
            .expect("session creation failed");
        // Observe the λ schedule live: every change event is one increment
        // of the look-ahead coefficient (paper Section V-A3).
        let lambda_changes: Rc<RefCell<usize>> = Rc::default();
        let counter = Rc::clone(&lambda_changes);
        session.on_event(move |event| {
            if matches!(event, TrainEvent::LambdaChanged { .. }) {
                *counter.borrow_mut() += 1;
            }
            ff_core::SessionControl::Continue
        });
        let history = session.run().expect("training failed");
        println!("-- {algorithm} --");
        println!(
            "{}",
            format_series("epoch", "test accuracy", &history.test_accuracy_series())
        );
        let best = history.best_test_accuracy().unwrap_or(0.0);
        let to_threshold = history.epochs_to_reach(0.8 * best);
        println!(
            "best accuracy {:.3}, epochs to reach 80% of best: {:?}, λ steps observed: {}, \
             wall-clock: {:.1}s\n",
            best,
            to_threshold,
            lambda_changes.borrow(),
            history.total_seconds()
        );
        convergence.push((algorithm.label(), best, to_threshold));
    }

    if run_resnet {
        println!("== Figure 6(b): residual network trained with FF-INT8, with and without look-ahead ==\n");
        let (ctrain, ctest) = cifar10(scale);
        let mut conv_options = ff_options(scale);
        conv_options.epochs = if scale.is_full() { 25 } else { 5 };
        conv_options.max_eval_samples = 100;
        let model_config = SmallModelConfig::default()
            .with_base_channels(if scale.is_full() { 8 } else { 4 })
            .with_stages(2);
        for lookahead in [false, true] {
            let algorithm = Algorithm::FfInt8 { lookahead };
            let mut rng = StdRng::seed_from_u64(22);
            let mut net = small_resnet(&model_config, &mut rng);
            let mut session =
                TrainSession::new(&mut net, &ctrain, &ctest, algorithm, &conv_options)
                    .expect("session creation failed");
            session.on_event(progress_observer(format!("{algorithm} resnet")));
            let history = session.run().expect("training failed");
            println!("-- {algorithm} (residual network) --");
            println!(
                "{}",
                format_series("epoch", "test accuracy", &history.test_accuracy_series())
            );
        }
    } else {
        println!("(run with --model=resnet or --full to also reproduce Fig. 6(b))");
    }

    println!(
        "\nPaper's qualitative result: look-ahead reaches a slightly higher accuracy in fewer\n\
         epochs on the MLP, and is required for the residual network to converge at all."
    );
}
