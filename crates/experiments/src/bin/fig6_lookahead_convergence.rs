//! Figure 6: test accuracy per epoch for FF-INT8 with and without the
//! look-ahead scheme, on (a) an MLP and (b) a residual convolutional network.

use ff_core::{train, Algorithm};
use ff_experiments::{cifar10, ff_options, mnist, RunScale};
use ff_metrics::format_series;
use ff_models::{small_mlp, small_resnet, SmallModelConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = RunScale::from_args();
    let run_resnet = std::env::args().any(|a| a == "--model=resnet") || scale.is_full();

    println!("== Figure 6(a): MLP trained with FF-INT8, with and without look-ahead ==\n");
    let (train_set, test_set) = mnist(scale);
    let options = ff_options(scale);
    let mut convergence = Vec::new();
    for lookahead in [false, true] {
        let mut rng = StdRng::seed_from_u64(21);
        let mut net = small_mlp(784, &[64, 64], 10, &mut rng);
        let history = train(
            &mut net,
            &train_set,
            &test_set,
            Algorithm::FfInt8 { lookahead },
            &options,
        )
        .expect("training failed");
        let label = if lookahead {
            "with look-ahead"
        } else {
            "without look-ahead"
        };
        println!("-- FF-INT8 {label} --");
        println!(
            "{}",
            format_series("epoch", "test accuracy", &history.test_accuracy_series())
        );
        let best = history.best_test_accuracy().unwrap_or(0.0);
        let to_threshold = history.epochs_to_reach(0.8 * best);
        println!(
            "best accuracy {:.3}, epochs to reach 80% of best: {:?}\n",
            best, to_threshold
        );
        convergence.push((label, best, to_threshold));
    }

    if run_resnet {
        println!("== Figure 6(b): residual network trained with FF-INT8, with and without look-ahead ==\n");
        let (ctrain, ctest) = cifar10(scale);
        let mut conv_options = ff_options(scale);
        conv_options.epochs = if scale.is_full() { 25 } else { 5 };
        conv_options.max_eval_samples = 100;
        let model_config = SmallModelConfig::default()
            .with_base_channels(if scale.is_full() { 8 } else { 4 })
            .with_stages(2);
        for lookahead in [false, true] {
            let mut rng = StdRng::seed_from_u64(22);
            let mut net = small_resnet(&model_config, &mut rng);
            let history = train(
                &mut net,
                &ctrain,
                &ctest,
                Algorithm::FfInt8 { lookahead },
                &conv_options,
            )
            .expect("training failed");
            let label = if lookahead {
                "with look-ahead"
            } else {
                "without look-ahead"
            };
            println!("-- FF-INT8 {label} (residual network) --");
            println!(
                "{}",
                format_series("epoch", "test accuracy", &history.test_accuracy_series())
            );
        }
    } else {
        println!("(run with --model=resnet or --full to also reproduce Fig. 6(b))");
    }

    println!(
        "\nPaper's qualitative result: look-ahead reaches a slightly higher accuracy in fewer\n\
         epochs on the MLP, and is required for the residual network to converge at all."
    );
}
