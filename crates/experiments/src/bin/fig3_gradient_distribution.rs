//! Figure 3: distribution of the first layer's weight gradients for MLPs of
//! increasing depth, trained with FP32 backpropagation.

use ff_experiments::{bp_options, mnist, RunScale};
use ff_metrics::format_table;
use ff_models::small_mlp;
use ff_nn::{softmax_cross_entropy, ForwardMode};
use ff_quant::stats::{DistributionStats, GradientHistogram};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = RunScale::from_args();
    let (train_set, _) = mnist(scale);
    let options = bp_options(scale);
    let hidden_width = if scale.is_full() { 500 } else { 128 };

    println!("== Figure 3: first-layer gradient distribution vs. network depth ==\n");
    let mut rows = Vec::new();
    for hidden_layers in 0..=3usize {
        let hidden = vec![hidden_width; hidden_layers];
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = small_mlp(784, &hidden, 10, &mut rng);
        // Accumulate the first layer's gradient over one epoch of batches
        // (FP32 backprop), then inspect its distribution.
        let batches = train_set.batches(options.batch_size, true, &mut rng);
        for batch in batches.iter().take(if scale.is_full() { 100 } else { 20 }) {
            let input = batch
                .images
                .reshape(&[batch.images.rows(), batch.images.cols()])
                .expect("flatten");
            let logits = net.forward(&input, ForwardMode::Fp32).expect("forward");
            let out = softmax_cross_entropy(&logits, &batch.labels).expect("loss");
            net.backward(&out.grad).expect("backward");
        }
        let mut params = net.params_mut();
        let first_layer_grad = params
            .first_mut()
            .map(|p| p.grad.clone())
            .expect("first layer gradient");
        let stats = DistributionStats::from_tensor(&first_layer_grad);
        let hist = GradientHistogram::from_tensor(&first_layer_grad, 41);
        println!(
            "hidden layers = {hidden_layers}: {}  (range ±{:.2e})",
            hist.to_sparkline(),
            hist.hi()
        );
        rows.push(vec![
            hidden_layers.to_string(),
            format!("{:.2e}", stats.std),
            format!("{:.2e}", stats.max_abs),
            format!("{:.1}", stats.kurtosis),
            format!("{:.1}", stats.underflow_fraction * 100.0),
            format!("{:.1}", hist.central_mass(3) * 100.0),
        ]);
    }
    println!();
    println!(
        "{}",
        format_table(
            &[
                "Hidden layers",
                "Std",
                "Max |g|",
                "Kurtosis",
                "Underflow under SUQ (%)",
                "Mass in central 3 bins (%)",
            ],
            &rows
        )
    );
    println!(
        "Paper's qualitative result: deeper networks produce sharper first-layer gradient\n\
         distributions (larger extremes, more mass near zero), so direct per-tensor INT8\n\
         quantization loses most of the gradient information."
    );
}
