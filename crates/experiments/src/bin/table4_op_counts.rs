//! Table IV: operation counts for training one mini-batch of 10 samples of a
//! 4-layer MLP on MNIST with FF-INT8, BP-FP32 and GDAI8 (BP-INT8).

use ff_edge::{AlgorithmKind, CostModel};
use ff_metrics::format_table;
use ff_models::specs;

fn fmt_count(v: u64) -> String {
    if v >= 1_000_000 {
        format!("{:.1}M", v as f64 / 1.0e6)
    } else if v >= 1_000 {
        format!("{:.1}K", v as f64 / 1.0e3)
    } else {
        v.to_string()
    }
}

fn main() {
    // The paper's "4-layer MLP" on MNIST: input, two hidden layers of 500
    // units and the output layer (Table I architecture), mini-batch of 10.
    let spec = specs::mlp_depth_spec(2);
    let batch = 10;
    let model = CostModel::jetson_orin_nano();

    println!("== Table IV: operation counts per mini-batch of {batch} (4-layer MLP, MNIST) ==\n");
    let mut rows = Vec::new();
    for algorithm in [
        AlgorithmKind::FfInt8,
        AlgorithmKind::BpFp32,
        AlgorithmKind::BpGdai8,
    ] {
        let ops = model.batch_ops(algorithm, &spec, batch);
        // BP-FP32 has no quantization phase; its fp32_add counts belong to the
        // MAC phase.
        let quant_fadd = if algorithm == AlgorithmKind::BpFp32 {
            0
        } else {
            ops.fp32_add
        };
        rows.push(vec![
            algorithm.label().to_string(),
            "Quantization".to_string(),
            format!("32-bit CMP: {}", fmt_count(ops.cmp32)),
            format!("32-bit FADD: {}", fmt_count(quant_fadd)),
        ]);
        let (mul_label, add_label) = if ops.int8_mul > 0 {
            (
                format!("8-bit MUL: {}", fmt_count(ops.int8_mul)),
                format!("8-bit ADD: {}", fmt_count(ops.int8_add)),
            )
        } else {
            (
                format!("32-bit FMUL: {}", fmt_count(ops.fp32_mul)),
                format!("32-bit FADD: {}", fmt_count(ops.fp32_add)),
            )
        };
        rows.push(vec![
            algorithm.label().to_string(),
            "MAC".to_string(),
            mul_label,
            add_label,
        ]);
    }
    println!(
        "{}",
        format_table(&["Algorithm", "Phase", "Operation", "Operation"], &rows)
    );

    let ff = model.batch_ops(AlgorithmKind::FfInt8, &spec, batch);
    let bp = model.batch_ops(AlgorithmKind::BpFp32, &spec, batch);
    println!(
        "FF-INT8 MAC ops as a fraction of BP-FP32 MAC ops: {:.1}%",
        100.0 * ff.mac_ops() as f64 / bp.mac_ops() as f64
    );
    println!(
        "Quantization phase as a fraction of the FF-INT8 MAC phase: {:.2}%",
        100.0 * ff.quantization_ops() as f64 / ff.mac_ops() as f64
    );
    println!(
        "\nNote: this harness counts every GEMM of Algorithm 1 (two forward passes plus one\n\
         weight-gradient GEMM per layer per pass), so the FF/BP MAC ratio is ~4/3 rather than\n\
         the paper's 2.6% — see EXPERIMENTS.md for the accounting discussion. The qualitative\n\
         claims that hold in both accountings: FF-INT8 performs *only* INT8 MACs, it has no\n\
         gradient back-propagation GEMMs, and the quantization phase is negligible."
    );
}
