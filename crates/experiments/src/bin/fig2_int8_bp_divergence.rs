//! Figure 2: loss and accuracy per epoch when gradients are directly
//! quantized to INT8 under backpropagation, versus FP32 backpropagation,
//! on a residual convolutional network trained on the CIFAR-10 stand-in.
//!
//! Pass `--algo=BP-FP32` / `--algo=BP-INT8` to run a single side.

use ff_core::{Algorithm, TrainSession};
use ff_experiments::{algo_filter_from_args, bp_options, cifar10, progress_observer, RunScale};
use ff_metrics::format_series;
use ff_models::{small_resnet, SmallModelConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = RunScale::from_args();
    let filter = algo_filter_from_args();
    let (train_set, test_set) = cifar10(scale);
    let options = bp_options(scale).with_batch_size(32);
    let model_config = SmallModelConfig::default()
        .with_base_channels(if scale.is_full() { 16 } else { 8 })
        .with_stages(2);

    println!("== Figure 2: direct INT8 gradient quantization under BP diverges ==\n");
    for algorithm in [Algorithm::BpFp32, Algorithm::BpInt8] {
        if filter.is_some_and(|wanted| wanted != algorithm) {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = small_resnet(&model_config, &mut rng);
        let mut session = TrainSession::new(&mut net, &train_set, &test_set, algorithm, &options)
            .expect("session creation failed");
        session.on_event(progress_observer(algorithm.to_string()));
        let history = session.run().expect("training failed");
        println!("-- {algorithm} --");
        let loss_series: Vec<(usize, f32)> = history
            .records()
            .iter()
            .map(|r| (r.epoch, r.train_loss))
            .collect();
        println!("{}", format_series("epoch", "train loss", &loss_series));
        println!(
            "{}",
            format_series("epoch", "test accuracy", &history.test_accuracy_series())
        );
        println!(
            "final accuracy: {:.3}   diverged: {}   wall-clock: {:.1}s\n",
            history.final_accuracy().unwrap_or(0.0),
            history.diverged(5.0),
            history.total_seconds()
        );
    }
    println!(
        "Paper's qualitative result: BP-FP32 trains normally while BP-INT8's loss rises and\n\
         its accuracy collapses toward chance (10%)."
    );
}
