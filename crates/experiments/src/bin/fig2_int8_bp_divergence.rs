//! Figure 2: loss and accuracy per epoch when gradients are directly
//! quantized to INT8 under backpropagation, versus FP32 backpropagation,
//! on a residual convolutional network trained on the CIFAR-10 stand-in.

use ff_core::{train, Algorithm};
use ff_experiments::{bp_options, cifar10, RunScale};
use ff_metrics::format_series;
use ff_models::{small_resnet, SmallModelConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = RunScale::from_args();
    let (train_set, test_set) = cifar10(scale);
    let options = bp_options(scale).with_batch_size(32);
    let model_config = SmallModelConfig::default()
        .with_base_channels(if scale.is_full() { 16 } else { 8 })
        .with_stages(2);

    println!("== Figure 2: direct INT8 gradient quantization under BP diverges ==\n");
    for algorithm in [Algorithm::BpFp32, Algorithm::BpInt8] {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = small_resnet(&model_config, &mut rng);
        let history =
            train(&mut net, &train_set, &test_set, algorithm, &options).expect("training failed");
        println!("-- {} --", algorithm.label());
        let loss_series: Vec<(usize, f32)> = history
            .records()
            .iter()
            .map(|r| (r.epoch, r.train_loss))
            .collect();
        println!("{}", format_series("epoch", "train loss", &loss_series));
        println!(
            "{}",
            format_series("epoch", "test accuracy", &history.test_accuracy_series())
        );
        println!(
            "final accuracy: {:.3}   diverged: {}\n",
            history.final_accuracy().unwrap_or(0.0),
            history.diverged(5.0)
        );
    }
    println!(
        "Paper's qualitative result: BP-FP32 trains normally while BP-INT8's loss rises and\n\
         its accuracy collapses toward chance (10%)."
    );
}
