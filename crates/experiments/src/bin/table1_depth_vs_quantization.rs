//! Table I: accuracy of MLPs with 0–3 hidden layers trained with FP32 versus
//! direct-INT8 backpropagation on the MNIST stand-in.

use ff_core::{Algorithm, TrainSession};
use ff_experiments::{bp_options, mnist, pct, RunScale};
use ff_metrics::format_table;
use ff_models::small_mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = RunScale::from_args();
    let (train_set, test_set) = mnist(scale);
    let options = bp_options(scale);
    let hidden_width = if scale.is_full() { 500 } else { 128 };

    println!("== Table I: accuracy vs. depth for FP32 and direct-INT8 backpropagation ==\n");
    let mut rows = Vec::new();
    for hidden_layers in 0..=3usize {
        let hidden = vec![hidden_width; hidden_layers];
        let mut accuracies = Vec::new();
        for algorithm in [Algorithm::BpFp32, Algorithm::BpInt8] {
            let mut rng = StdRng::seed_from_u64(11);
            let mut net = small_mlp(784, &hidden, 10, &mut rng);
            let history = TrainSession::new(&mut net, &train_set, &test_set, algorithm, &options)
                .expect("session creation failed")
                .run()
                .expect("training failed");
            accuracies.push(history.final_accuracy().unwrap_or(0.0));
        }
        let diff = accuracies[1] - accuracies[0];
        rows.push(vec![
            hidden_layers.to_string(),
            pct(accuracies[0]),
            pct(accuracies[1]),
            format!("{:+.1}", diff * 100.0),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "Hidden layers",
                "FP32 acc (%)",
                "INT8 acc (%)",
                "Difference (%)"
            ],
            &rows
        )
    );
    println!(
        "Paper's qualitative result: the FP32/INT8 gap is small for a 0-hidden-layer network\n\
         and grows sharply once hidden layers are added (quantization error accumulates with depth)."
    );
}
